//! Pager: paged table storage over the simulated device, with an LRU
//! page cache.
//!
//! The pager is what makes "zero-IO" measurable: every exact scan pulls
//! its column pages through [`Pager::read_stream`], each cache miss
//! increments the device counters, and the approximate path never calls
//! the pager at all.

use crate::checksum::crc32;
use crate::column::Column;
use crate::error::{Result, StorageError};
use crate::io::{IoStats, SimulatedDevice};
use crate::page::{decode_column, decode_partial_column, encode_column, partial_read_plan};
use crate::schema::{DataType, Schema};
use crate::table::Table;
use crate::zonemap::TableSynopsis;
use lawsdb_obs::{event, global_metrics, Counter};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// Location of one serialized column: the pages it spans and its exact
/// byte length (the final page is partially used).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnExtent {
    /// Page ids in order.
    pub pages: Vec<u64>,
    /// Total serialized length in bytes.
    pub byte_len: usize,
}

/// A table laid out on the device: schema plus one extent per column.
#[derive(Debug, Clone)]
pub struct PagedTable {
    /// Table name.
    pub name: String,
    /// Schema (kept in memory; the catalog is metadata, not data).
    pub schema: Schema,
    /// Row count.
    pub rows: usize,
    /// One extent per column, in schema order.
    pub extents: Vec<ColumnExtent>,
    /// Zone-map synopsis captured at store time (also persisted to its
    /// own extent). Scans consult this to prove pages irrelevant before
    /// any page IO.
    pub synopsis: Option<TableSynopsis>,
    /// Pages holding the serialized synopsis (not counted in
    /// [`PagedTable::page_count`], which is data pages only).
    pub synopsis_extent: Option<ColumnExtent>,
}

impl PagedTable {
    /// Total pages across all columns.
    pub fn page_count(&self) -> usize {
        self.extents.iter().map(|e| e.pages.len()).sum()
    }
}

/// Simple LRU cache of decoded pages.
#[derive(Debug)]
struct PageCache {
    capacity: usize,
    /// page id → (data, last-use tick)
    entries: HashMap<u64, (Vec<u8>, u64)>,
    tick: u64,
    hits: u64,
}

impl PageCache {
    fn new(capacity: usize) -> PageCache {
        PageCache { capacity, entries: HashMap::new(), tick: 0, hits: 0 }
    }

    fn get(&mut self, id: u64) -> Option<&[u8]> {
        self.tick += 1;
        let tick = self.tick;
        if let Some(entry) = self.entries.get_mut(&id) {
            entry.1 = tick;
            self.hits += 1;
            Some(&self.entries[&id].0)
        } else {
            None
        }
    }

    fn insert(&mut self, id: u64, data: Vec<u8>) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&id) {
            // Evict the least recently used entry.
            if let Some((&victim, _)) =
                self.entries.iter().min_by_key(|(_, (_, t))| *t)
            {
                self.entries.remove(&victim);
            }
        }
        self.entries.insert(id, (data, self.tick));
    }

    fn remove(&mut self, id: u64) {
        self.entries.remove(&id);
    }

    fn clear(&mut self) {
        self.entries.clear();
        self.hits = 0;
    }
}

/// Paged storage manager.
///
/// Every page write records a CRC-32 of the page's full content; every
/// device read verifies it. A mismatch quarantines the page — the bytes
/// are never returned, the read fails with
/// [`StorageError::ChecksumMismatch`], and the page id lands in
/// [`Pager::quarantined_pages`] so a caller can attempt model-based
/// reconstruction of the affected column instead of trusting silent
/// corruption.
#[derive(Debug)]
pub struct Pager {
    device: SimulatedDevice,
    cache: PageCache,
    tables: HashMap<String, PagedTable>,
    /// CRC-32 of each page's full (zero-padded) content at write time.
    page_crcs: HashMap<u64, u32>,
    /// Pages whose content failed verification.
    quarantine: BTreeSet<u64>,
    // DB-wide mirrors in the global registry, resolved once at
    // construction so the per-page path pays one atomic add each.
    g_pages_read: Arc<Counter>,
    g_cache_hits: Arc<Counter>,
    g_quarantined: Arc<Counter>,
}

impl Pager {
    /// New pager with the given page size (bytes) and cache capacity
    /// (pages).
    pub fn new(page_size: usize, cache_pages: usize) -> Pager {
        let reg = global_metrics();
        Pager {
            device: SimulatedDevice::new(page_size),
            cache: PageCache::new(cache_pages),
            tables: HashMap::new(),
            page_crcs: HashMap::new(),
            quarantine: BTreeSet::new(),
            g_pages_read: reg.counter("lawsdb_storage_pages_read"),
            g_cache_hits: reg.counter("lawsdb_storage_cache_hits"),
            g_quarantined: reg.counter("lawsdb_storage_pages_quarantined"),
        }
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> usize {
        self.device.page_size()
    }

    /// Write a table to the device, page by page.
    pub fn store_table(&mut self, table: &Table) -> Result<()> {
        if self.tables.contains_key(table.name()) {
            return Err(StorageError::TableExists { name: table.name().to_string() });
        }
        let mut extents = Vec::with_capacity(table.columns().len());
        for col in table.columns() {
            let bytes = encode_column(col);
            extents.push(self.write_stream(&bytes)?);
        }
        // Persist the zone-map synopsis alongside the data pages, and
        // keep a decoded copy in the catalog metadata so pruning never
        // costs IO.
        let synopsis = table.synopsis().cloned();
        let synopsis_extent = match &synopsis {
            Some(s) => Some(self.write_stream(&s.to_bytes())?),
            None => None,
        };
        self.tables.insert(
            table.name().to_string(),
            PagedTable {
                name: table.name().to_string(),
                schema: table.schema().clone(),
                rows: table.row_count(),
                extents,
                synopsis,
                synopsis_extent,
            },
        );
        Ok(())
    }

    /// Re-read a stored table's synopsis from its persisted pages
    /// (recovery path; the in-memory copy on [`PagedTable`] is the fast
    /// path).
    pub fn read_synopsis(&mut self, name: &str) -> Result<Option<TableSynopsis>> {
        let extent = match &self.paged_table(name)?.synopsis_extent {
            Some(e) => e.clone(),
            None => return Ok(None),
        };
        let bytes = self.read_stream(&extent)?;
        Ok(Some(TableSynopsis::from_bytes(&bytes)?))
    }

    /// Replace a stored table (model-change recompression path). The old
    /// pages are simply abandoned; a production system would free them,
    /// but page reuse is irrelevant to the experiments.
    pub fn replace_table(&mut self, table: &Table) -> Result<()> {
        self.tables.remove(table.name());
        self.store_table(table)
    }

    /// Metadata for a stored table.
    pub fn paged_table(&self, name: &str) -> Result<&PagedTable> {
        self.tables
            .get(name)
            .ok_or_else(|| StorageError::TableNotFound { name: name.to_string() })
    }

    /// Read one column of a stored table back through the cache.
    pub fn read_column(&mut self, table: &str, column: &str) -> Result<Column> {
        let pt = self.paged_table(table)?;
        let idx = pt
            .schema
            .index_of(column)
            .ok_or_else(|| StorageError::ColumnNotFound { name: column.to_string() })?;
        let extent = pt.extents[idx].clone();
        let bytes = self.read_stream(&extent)?;
        decode_column(&bytes)
    }

    /// Read a whole table back.
    pub fn read_table(&mut self, name: &str) -> Result<Table> {
        let pt = self.paged_table(name)?.clone();
        let mut cols = Vec::with_capacity(pt.extents.len());
        for extent in &pt.extents {
            let bytes = self.read_stream(extent)?;
            cols.push(decode_column(&bytes)?);
        }
        Table::new(pt.name, pt.schema, cols)
    }

    /// Read rows `[row0, row1)` of one column, touching only the pages
    /// that byte range covers.
    ///
    /// For fixed-width (Int64/Float64) columns this reads the header,
    /// the covering validity words, and exactly the requested value
    /// bytes — a zone-pruned scan therefore pays IO proportional to the
    /// rows it could not prune, not the column size. Other column types
    /// fall back to a full read plus slice.
    pub fn read_column_rows(
        &mut self,
        table: &str,
        column: &str,
        row0: usize,
        row1: usize,
    ) -> Result<Column> {
        let pt = self.paged_table(table)?;
        let idx = pt
            .schema
            .index_of(column)
            .ok_or_else(|| StorageError::ColumnNotFound { name: column.to_string() })?;
        if row0 > row1 || row1 > pt.rows {
            return Err(StorageError::RowOutOfRange { row: row1, len: pt.rows });
        }
        let fixed = matches!(
            pt.schema.fields()[idx].data_type,
            DataType::Int64 | DataType::Float64
        );
        let rows = pt.rows;
        let extent = pt.extents[idx].clone();
        if !fixed {
            let bytes = self.read_stream(&extent)?;
            return decode_column(&bytes)?.slice(row0, row1 - row0);
        }
        let [h, v, d] = partial_read_plan(rows, row0, row1);
        let header = self.read_extent_bytes(&extent, h.0, h.1)?;
        let validity = self.read_extent_bytes(&extent, v.0, v.1)?;
        let data = self.read_extent_bytes(&extent, d.0, d.1)?;
        decode_partial_column(&header, &validity, &data, rows, row0, row1)
    }

    /// Bytes `[start, end)` of an extent's stream, reading only the
    /// pages that range covers (through the cache).
    pub fn read_extent_bytes(
        &mut self,
        extent: &ColumnExtent,
        start: usize,
        end: usize,
    ) -> Result<Vec<u8>> {
        if start > end || end > extent.byte_len {
            return Err(StorageError::CorruptData {
                codec: "pager",
                detail: format!(
                    "byte range [{start}, {end}) outside extent of {} bytes",
                    extent.byte_len
                ),
            });
        }
        let ps = self.device.page_size();
        let mut out = Vec::with_capacity(end - start);
        if start == end {
            return Ok(out);
        }
        let first = start / ps;
        let last = (end - 1) / ps;
        for pi in first..=last {
            let page = extent.pages[pi];
            let page_bytes = (extent.byte_len - pi * ps).min(ps);
            let lo = start.max(pi * ps) - pi * ps;
            let hi = end.min(pi * ps + page_bytes) - pi * ps;
            if let Some(cached) = self.cache.get(page) {
                out.extend_from_slice(&cached[lo..hi]);
                self.g_cache_hits.inc();
                continue;
            }
            let data = self.read_page_verified(page)?;
            out.extend_from_slice(&data[lo..hi]);
            self.cache.insert(page, data);
        }
        Ok(out)
    }

    /// Read one page from the device and verify it against the CRC
    /// recorded at write time. A mismatch quarantines the page and
    /// fails the read — corrupt bytes never reach a caller or the
    /// cache. (The device read is still billed: the IO did happen.)
    fn read_page_verified(&mut self, page: u64) -> Result<Vec<u8>> {
        let data = self.device.read_page(page)?.to_vec();
        self.g_pages_read.inc();
        if let Some(&expected) = self.page_crcs.get(&page) {
            let got = crc32(&data);
            if got != expected {
                self.quarantine.insert(page);
                self.g_quarantined.inc();
                event!("storage.page.quarantine", page, expected, got);
                return Err(StorageError::ChecksumMismatch { page, expected, got });
            }
        }
        Ok(data)
    }

    /// Pages currently quarantined (content failed CRC verification),
    /// in ascending id order.
    pub fn quarantined_pages(&self) -> Vec<u64> {
        self.quarantine.iter().copied().collect()
    }

    /// True when `page` has failed verification.
    pub fn is_quarantined(&self, page: u64) -> bool {
        self.quarantine.contains(&page)
    }

    /// Fault-injection hook for resilience tests: flip one bit of a
    /// stored page behind the pager's back and drop it from the cache,
    /// so the next read must re-verify against the recorded CRC (and
    /// fail). Never a data path.
    pub fn corrupt_page(&mut self, page: u64, bit: usize) -> Result<()> {
        let ps = self.device.page_size();
        let data = self
            .device
            .poke_page(page)
            .ok_or(StorageError::PageNotFound { page })?;
        let bit = bit % (ps * 8);
        data[bit / 8] ^= 1 << (bit % 8);
        self.cache.remove(page);
        Ok(())
    }

    /// Raw byte-stream write across fresh pages.
    pub fn write_stream(&mut self, bytes: &[u8]) -> Result<ColumnExtent> {
        let ps = self.device.page_size();
        let mut pages = Vec::with_capacity(bytes.len().div_ceil(ps));
        for chunk in bytes.chunks(ps).chain(bytes.is_empty().then_some(&[][..])) {
            let id = self.device.allocate();
            self.device.write_page(id, chunk)?;
            // Record the CRC of the page as stored (the device
            // zero-pads short chunks to the full page).
            let mut padded = vec![0u8; ps];
            padded[..chunk.len()].copy_from_slice(chunk);
            self.page_crcs.insert(id, crc32(&padded));
            pages.push(id);
        }
        Ok(ColumnExtent { pages, byte_len: bytes.len() })
    }

    /// Raw byte-stream read through the cache.
    pub fn read_stream(&mut self, extent: &ColumnExtent) -> Result<Vec<u8>> {
        let ps = self.device.page_size();
        let mut out = Vec::with_capacity(extent.byte_len);
        for (i, &page) in extent.pages.iter().enumerate() {
            let want = if i + 1 == extent.pages.len() {
                extent.byte_len - i * ps
            } else {
                ps
            };
            if let Some(cached) = self.cache.get(page) {
                out.extend_from_slice(&cached[..want]);
                self.g_cache_hits.inc();
                continue;
            }
            let data = self.read_page_verified(page)?;
            out.extend_from_slice(&data[..want]);
            self.cache.insert(page, data);
        }
        Ok(out)
    }

    /// IO counters, with cache hits folded in.
    pub fn stats(&self) -> IoStats {
        let mut s = self.device.stats();
        s.cache_hits = self.cache.hits;
        s
    }

    /// Reset counters and drop the cache (cold-start measurement).
    pub fn reset(&mut self) {
        self.device.reset_stats();
        self.cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;

    fn demo_table(rows: usize) -> Table {
        let mut b = TableBuilder::new("demo");
        b.add_i64("id", (0..rows as i64).collect());
        b.add_f64("v", (0..rows).map(|i| i as f64 * 0.5).collect());
        b.build().unwrap()
    }

    #[test]
    fn store_and_read_table_roundtrip() {
        let mut p = Pager::new(256, 8);
        let t = demo_table(500);
        p.store_table(&t).unwrap();
        let back = p.read_table("demo").unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn duplicate_store_fails_replace_succeeds() {
        let mut p = Pager::new(256, 8);
        p.store_table(&demo_table(10)).unwrap();
        assert!(p.store_table(&demo_table(10)).is_err());
        p.replace_table(&demo_table(20)).unwrap();
        assert_eq!(p.read_table("demo").unwrap().row_count(), 20);
    }

    #[test]
    fn page_reads_are_counted_exactly() {
        let mut p = Pager::new(128, 0); // no cache
        let t = demo_table(100);
        p.store_table(&t).unwrap();
        let total_pages = p.paged_table("demo").unwrap().page_count();
        p.reset();
        p.read_table("demo").unwrap();
        assert_eq!(p.stats().pages_read as usize, total_pages);
        // A second scan costs the same — no cache.
        p.read_table("demo").unwrap();
        assert_eq!(p.stats().pages_read as usize, 2 * total_pages);
    }

    #[test]
    fn cache_absorbs_repeat_reads() {
        let mut p = Pager::new(128, 1024);
        let t = demo_table(100);
        p.store_table(&t).unwrap();
        p.reset();
        p.read_table("demo").unwrap();
        let cold = p.stats();
        p.read_table("demo").unwrap();
        let warm = p.stats();
        assert_eq!(cold.pages_read, warm.pages_read, "second scan fully cached");
        assert!(warm.cache_hits > 0);
    }

    #[test]
    fn lru_evicts_under_pressure() {
        let mut p = Pager::new(128, 2); // tiny cache
        let t = demo_table(200);
        p.store_table(&t).unwrap();
        p.reset();
        p.read_table("demo").unwrap();
        let first = p.stats().pages_read;
        p.read_table("demo").unwrap();
        let second = p.stats().pages_read - first;
        // With only 2 cache pages most reads miss again.
        assert!(second as usize >= p.paged_table("demo").unwrap().page_count() - 2);
    }

    #[test]
    fn read_single_column_touches_only_its_pages() {
        let mut p = Pager::new(128, 0);
        let t = demo_table(1000);
        p.store_table(&t).unwrap();
        let pt = p.paged_table("demo").unwrap();
        let id_pages = pt.extents[0].pages.len();
        p.reset();
        let col = p.read_column("demo", "id").unwrap();
        assert_eq!(col.len(), 1000);
        assert_eq!(p.stats().pages_read as usize, id_pages);
    }

    #[test]
    fn lru_evicts_in_recency_order() {
        // Three single-page streams against a 2-page cache let us pin
        // down the exact eviction order.
        let mut p = Pager::new(128, 2);
        let a = p.write_stream(&[1u8; 100]).unwrap();
        let b = p.write_stream(&[2u8; 100]).unwrap();
        let c = p.write_stream(&[3u8; 100]).unwrap();
        p.reset();
        p.read_stream(&a).unwrap(); // miss → cache {a}
        p.read_stream(&b).unwrap(); // miss → cache {a, b}
        p.read_stream(&a).unwrap(); // hit → b is now least recent
        p.read_stream(&c).unwrap(); // miss → evicts b → cache {a, c}
        let s = p.stats();
        assert_eq!((s.pages_read, s.cache_hits), (3, 1));
        p.read_stream(&a).unwrap(); // still cached
        p.read_stream(&c).unwrap(); // still cached
        let s = p.stats();
        assert_eq!((s.pages_read, s.cache_hits), (3, 3));
        p.read_stream(&b).unwrap(); // the victim: must miss
        assert_eq!(p.stats().pages_read, 4);
    }

    #[test]
    fn cache_hits_never_touch_the_device() {
        let mut p = Pager::new(128, 1024);
        let t = demo_table(100);
        p.store_table(&t).unwrap();
        p.reset();
        p.read_table("demo").unwrap();
        let cold = p.stats();
        assert_eq!(cold.cache_hits, 0, "cold scan misses everywhere");
        for _ in 0..3 {
            p.read_table("demo").unwrap();
        }
        let warm = p.stats();
        // Repeat scans are pure cache traffic: hits climb, every device
        // counter stays frozen.
        assert_eq!(warm.pages_read, cold.pages_read);
        assert_eq!(warm.bytes_read, cold.bytes_read);
        assert_eq!(warm.pages_written, cold.pages_written);
        assert_eq!(warm.cache_hits, 3 * cold.pages_read);
    }

    #[test]
    fn read_stream_trims_partial_final_page() {
        let mut p = Pager::new(128, 4);
        // 300 bytes over 128-byte pages: 2 full pages + 44 bytes used
        // of the third.
        let payload: Vec<u8> = (0..300u32).map(|i| (i % 251) as u8).collect();
        let e = p.write_stream(&payload).unwrap();
        assert_eq!(e.pages.len(), 3);
        assert_eq!(e.byte_len, 300);
        assert_eq!(p.read_stream(&e).unwrap(), payload, "cold read");
        assert_eq!(p.read_stream(&e).unwrap(), payload, "cached read");
        // A column whose serialization is an exact page multiple must
        // not gain or lose trailing bytes either.
        let exact = vec![0xEEu8; 256];
        let e2 = p.write_stream(&exact).unwrap();
        assert_eq!(e2.pages.len(), 2);
        assert_eq!(p.read_stream(&e2).unwrap(), exact);
    }

    #[test]
    fn partial_row_reads_touch_only_covering_pages() {
        let mut p = Pager::new(128, 0); // no cache: every page read hits the device
        let t = demo_table(1000);
        p.store_table(&t).unwrap();
        let id_pages = p.paged_table("demo").unwrap().extents[0].pages.len();
        p.reset();
        // 16 rows = 128 value bytes: 1-2 data pages + 1-2 header/validity
        // pages, far below the full column.
        let col = p.read_column_rows("demo", "id", 500, 516).unwrap();
        assert_eq!(col.i64_data().unwrap(), &(500..516).collect::<Vec<i64>>()[..]);
        let touched = p.stats().pages_read as usize;
        assert!(touched <= 4, "partial read touched {touched} pages");
        assert!(touched < id_pages, "partial read must not scan the column");
    }

    #[test]
    fn partial_row_reads_match_full_reads() {
        let mut p = Pager::new(256, 8);
        let mut b = TableBuilder::new("t");
        b.add_i64("a", (0..500).collect());
        b.add_f64_opt("b", (0..500).map(|i| (i % 3 != 0).then_some(i as f64)).collect());
        b.add_str("s", (0..500).map(|i| format!("s{i}")).collect());
        let t = b.build().unwrap();
        p.store_table(&t).unwrap();
        for &(r0, r1) in &[(0, 500), (0, 1), (63, 65), (100, 200), (499, 500), (250, 250)] {
            for col in ["a", "b", "s"] {
                let got = p.read_column_rows("t", col, r0, r1).unwrap();
                let want = t.column(col).unwrap().slice(r0, r1 - r0).unwrap();
                assert_eq!(got, want, "{col} rows [{r0},{r1})");
            }
        }
        assert!(p.read_column_rows("t", "a", 400, 501).is_err());
        assert!(p.read_column_rows("t", "zz", 0, 1).is_err());
    }

    #[test]
    fn synopsis_is_persisted_and_recoverable() {
        let mut p = Pager::new(128, 4);
        let t = demo_table(500);
        assert!(t.synopsis().is_some());
        p.store_table(&t).unwrap();
        let pt = p.paged_table("demo").unwrap();
        assert!(pt.synopsis.is_some());
        assert!(pt.synopsis_extent.is_some());
        // Data-page accounting is unchanged by the synopsis pages.
        assert_eq!(
            pt.page_count(),
            pt.extents.iter().map(|e| e.pages.len()).sum::<usize>()
        );
        let from_disk = p.read_synopsis("demo").unwrap().unwrap();
        let t2 = p.read_table("demo").unwrap();
        assert_eq!(t2, t);
        assert_eq!(&from_disk, t.synopsis().unwrap());
    }

    #[test]
    fn missing_names_error() {
        let mut p = Pager::new(128, 0);
        assert!(p.read_table("zz").is_err());
        p.store_table(&demo_table(5)).unwrap();
        assert!(p.read_column("demo", "zz").is_err());
    }

    #[test]
    fn corrupt_page_is_quarantined_not_returned() {
        let mut p = Pager::new(128, 8);
        p.store_table(&demo_table(100)).unwrap();
        let page = p.paged_table("demo").unwrap().extents[1].pages[0];
        p.corrupt_page(page, 37).unwrap();
        let err = p.read_column("demo", "v").unwrap_err();
        assert!(
            matches!(err, StorageError::ChecksumMismatch { page: pg, .. } if pg == page),
            "{err}"
        );
        assert!(p.is_quarantined(page));
        assert_eq!(p.quarantined_pages(), vec![page]);
        // Sibling columns are untouched and still readable.
        assert_eq!(p.read_column("demo", "id").unwrap().len(), 100);
        // Repeat reads keep failing — corruption is never served.
        assert!(p.read_column("demo", "v").is_err());
    }

    #[test]
    fn corruption_in_cache_shadow_is_caught_after_eviction() {
        // Corrupt the media while the clean copy sits in cache: the
        // hook drops the cache entry, so the next read re-verifies.
        let mut p = Pager::new(128, 1024);
        p.store_table(&demo_table(50)).unwrap();
        p.read_table("demo").unwrap(); // warm the cache
        let page = p.paged_table("demo").unwrap().extents[0].pages[0];
        p.corrupt_page(page, 0).unwrap();
        assert!(p.read_column("demo", "id").is_err());
    }

    #[test]
    fn clean_pages_verify_silently() {
        let mut p = Pager::new(128, 4);
        let t = demo_table(200);
        p.store_table(&t).unwrap();
        assert_eq!(p.read_table("demo").unwrap(), t);
        assert!(p.quarantined_pages().is_empty());
    }

    #[test]
    fn double_bit_flip_restores_the_page() {
        // CRC catches the single flip; flipping the same bit back makes
        // the content verify again (quarantine records history, reads
        // succeed once content matches).
        let mut p = Pager::new(128, 0);
        p.store_table(&demo_table(20)).unwrap();
        let page = p.paged_table("demo").unwrap().extents[0].pages[0];
        p.corrupt_page(page, 5).unwrap();
        assert!(p.read_column("demo", "id").is_err());
        p.corrupt_page(page, 5).unwrap();
        assert!(p.read_column("demo", "id").is_ok());
    }

    #[test]
    fn empty_stream_roundtrip() {
        let mut p = Pager::new(128, 0);
        let e = p.write_stream(&[]).unwrap();
        assert_eq!(p.read_stream(&e).unwrap(), Vec::<u8>::new());
    }
}
