//! Column statistics: min/max, distinct values, and *enumerability*
//! detection.
//!
//! Section 4.2 of the paper hinges on enumerable columns: "if a parameter
//! column is enumerable, we can use it without actually loading its
//! values. Straightforward examples … could be continuous integer
//! timestamps … Similarly, categorical variables can be replaced by a
//! small set with all the values they assume." — the LOFAR ν column only
//! assumes values in {0.12, 0.15, 0.16, 0.18}.
//!
//! [`ColumnStats::analyze`] detects both shapes:
//! * **Stepped ranges**: integers forming `lo, lo+s, …, hi` exactly;
//! * **Small categorical domains**: at most `max_distinct` distinct
//!   values, captured exhaustively.

use crate::column::Column;
use std::collections::BTreeSet;

/// How a column's value domain can be enumerated without scanning it.
#[derive(Debug, Clone, PartialEq)]
pub enum Enumerability {
    /// Integer values form an exact arithmetic progression
    /// `lo, lo+step, …, hi` with every member present.
    SteppedRange {
        /// Smallest value.
        lo: i64,
        /// Largest value.
        hi: i64,
        /// Common difference (≥ 1).
        step: i64,
    },
    /// Small categorical domain: the complete, sorted set of distinct
    /// values (as f64 for numeric columns).
    Categorical {
        /// The distinct values, sorted ascending.
        values: Vec<f64>,
    },
    /// The domain is too large or irregular to enumerate.
    NotEnumerable,
}

impl Enumerability {
    /// Materialize the enumerated domain, if any.
    pub fn enumerate(&self) -> Option<Vec<f64>> {
        match self {
            Enumerability::SteppedRange { lo, hi, step } => {
                let mut out = Vec::new();
                let mut v = *lo;
                while v <= *hi {
                    out.push(v as f64);
                    // `hi` near i64::MAX would wrap on the last advance.
                    match v.checked_add(*step) {
                        Some(next) => v = next,
                        None => break,
                    }
                }
                Some(out)
            }
            Enumerability::Categorical { values } => Some(values.clone()),
            Enumerability::NotEnumerable => None,
        }
    }

    /// Number of values the enumeration would produce, if enumerable.
    pub fn cardinality(&self) -> Option<usize> {
        match self {
            Enumerability::SteppedRange { lo, hi, step } => {
                // Spans wider than i64 (e.g. lo = i64::MIN, hi > 0) are
                // still well-defined: count in u128.
                let span = (*hi as i128 - *lo as i128) as u128;
                Some((span / *step as u128) as usize + 1)
            }
            Enumerability::Categorical { values } => Some(values.len()),
            Enumerability::NotEnumerable => None,
        }
    }
}

/// Summary statistics for one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Row count.
    pub rows: usize,
    /// NULL count.
    pub nulls: usize,
    /// Minimum (numeric columns, ignoring NULLs/NaNs).
    pub min: Option<f64>,
    /// Maximum.
    pub max: Option<f64>,
    /// Exact distinct count when ≤ the analysis cap, else `None`.
    pub distinct: Option<usize>,
    /// Detected enumerability of the value domain.
    pub enumerability: Enumerability,
}

impl ColumnStats {
    /// Analyze a column. `max_distinct` caps the categorical-domain
    /// detection (and the exact distinct count); 1024 is a sensible
    /// default for parameter-space enumeration.
    ///
    /// Degenerate inputs are well-defined rather than quirky:
    ///
    /// * **NaN policy**: NaNs are treated like NULLs — excluded from
    ///   `min`/`max`, the distinct count, and the enumerated domain.
    ///   They still count toward `rows` (but not `nulls`). A column of
    ///   only NULLs/NaNs reports `min == max == None`, `distinct ==
    ///   Some(0)`, and is not enumerable.
    /// * **Signed zero**: `-0.0` and `0.0` compare equal, so they are
    ///   one distinct value (reported as `0.0`), not two bit patterns.
    /// * **Infinities** are ordinary ordered values: they participate
    ///   in `min`/`max` and categorical domains.
    /// * **Empty columns** report `min == max == None`, `distinct ==
    ///   Some(0)`, `NotEnumerable` — never a panic.
    /// * **Single-value columns** report `min == max == Some(v)` and a
    ///   one-element categorical domain.
    pub fn analyze(column: &Column, max_distinct: usize) -> ColumnStats {
        let rows = column.len();
        let nulls = column.null_count();
        match column {
            Column::Int64 { data, validity } => {
                // Stepped-range detection (timestamps) must survive far
                // past the categorical cap: lo/hi/step summarize any
                // cardinality. Track distincts up to a larger internal
                // bound, but report the exact count and the categorical
                // domain only within `max_distinct`.
                let stepped_cap = max_distinct.max(1 << 20);
                let mut set: BTreeSet<i64> = BTreeSet::new();
                let mut min = None::<i64>;
                let mut max = None::<i64>;
                let mut overflow = false;
                for (i, &v) in data.iter().enumerate() {
                    if !validity.get(i) {
                        continue;
                    }
                    min = Some(min.map_or(v, |m: i64| m.min(v)));
                    max = Some(max.map_or(v, |m: i64| m.max(v)));
                    if !overflow {
                        set.insert(v);
                        if set.len() > stepped_cap {
                            overflow = true;
                        }
                    }
                }
                let distinct = (set.len() <= max_distinct && !overflow).then_some(set.len());
                let enumerability = if overflow || set.is_empty() {
                    Enumerability::NotEnumerable
                } else if set.len() <= max_distinct {
                    detect_stepped(&set).unwrap_or_else(|| Enumerability::Categorical {
                        values: set.iter().map(|&v| v as f64).collect(),
                    })
                } else {
                    detect_stepped(&set).unwrap_or(Enumerability::NotEnumerable)
                };
                ColumnStats {
                    rows,
                    nulls,
                    min: min.map(|v| v as f64),
                    max: max.map(|v| v as f64),
                    distinct,
                    enumerability,
                }
            }
            Column::Float64 { data, validity } => {
                // Distinct floats compare by bit pattern (NaNs excluded,
                // -0.0 normalized to 0.0 so signed zeros are one value).
                let mut set: BTreeSet<u64> = BTreeSet::new();
                let mut min = f64::INFINITY;
                let mut max = f64::NEG_INFINITY;
                let mut any = false;
                let mut overflow = false;
                for (i, &v) in data.iter().enumerate() {
                    if !validity.get(i) || v.is_nan() {
                        continue;
                    }
                    any = true;
                    min = min.min(v);
                    max = max.max(v);
                    if !overflow {
                        set.insert(if v == 0.0 { 0.0f64 } else { v }.to_bits());
                        if set.len() > max_distinct {
                            overflow = true;
                        }
                    }
                }
                let distinct = (!overflow).then_some(set.len());
                let enumerability = if overflow || !any {
                    Enumerability::NotEnumerable
                } else {
                    let mut values: Vec<f64> =
                        set.iter().map(|&b| f64::from_bits(b)).collect();
                    values.sort_by(|a, b| a.partial_cmp(b).expect("NaNs excluded"));
                    Enumerability::Categorical { values }
                };
                ColumnStats {
                    rows,
                    nulls,
                    min: any.then_some(min),
                    max: any.then_some(max),
                    distinct,
                    enumerability,
                }
            }
            Column::Str { data, validity } => {
                let mut set: BTreeSet<&str> = BTreeSet::new();
                let mut overflow = false;
                for (i, s) in data.iter().enumerate() {
                    if !validity.get(i) {
                        continue;
                    }
                    set.insert(s.as_str());
                    if set.len() > max_distinct {
                        overflow = true;
                        break;
                    }
                }
                ColumnStats {
                    rows,
                    nulls,
                    min: None,
                    max: None,
                    distinct: (!overflow).then_some(set.len()),
                    // String domains are enumerable for dictionary
                    // purposes but not as numeric model inputs.
                    enumerability: Enumerability::NotEnumerable,
                }
            }
            Column::Bool { data, validity } => {
                let mut seen_true = false;
                let mut seen_false = false;
                for i in 0..data.len() {
                    if !validity.get(i) {
                        continue;
                    }
                    if data.get(i) {
                        seen_true = true;
                    } else {
                        seen_false = true;
                    }
                }
                let mut values = Vec::new();
                if seen_false {
                    values.push(0.0);
                }
                if seen_true {
                    values.push(1.0);
                }
                ColumnStats {
                    rows,
                    nulls,
                    min: values.first().copied(),
                    max: values.last().copied(),
                    distinct: Some(values.len()),
                    enumerability: if values.is_empty() {
                        Enumerability::NotEnumerable
                    } else {
                        Enumerability::Categorical { values }
                    },
                }
            }
        }
    }
}

/// Detect an exact arithmetic progression in a sorted distinct set.
fn detect_stepped(set: &BTreeSet<i64>) -> Option<Enumerability> {
    if set.len() < 3 {
        return None;
    }
    let vals: Vec<i64> = set.iter().copied().collect();
    // Differences of extreme values (e.g. i64::MIN .. i64::MAX) exceed
    // i64; such domains are not usefully stepped anyway.
    let step = vals[1].checked_sub(vals[0])?;
    if step < 1 {
        return None;
    }
    for w in vals.windows(2) {
        if w[1].checked_sub(w[0]) != Some(step) {
            return None;
        }
    }
    Some(Enumerability::SteppedRange { lo: vals[0], hi: *vals.last().expect("len ≥ 3"), step })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lofar_frequency_column_is_categorical() {
        // The paper's example: ν ∈ {0.12, 0.15, 0.16, 0.18}.
        let freqs = [0.12, 0.15, 0.16, 0.18];
        let data: Vec<f64> = (0..1000).map(|i| freqs[i % 4]).collect();
        let c = Column::from_f64(data);
        let s = ColumnStats::analyze(&c, 1024);
        assert_eq!(s.distinct, Some(4));
        assert_eq!(
            s.enumerability,
            Enumerability::Categorical { values: freqs.to_vec() }
        );
        assert_eq!(s.enumerability.cardinality(), Some(4));
    }

    #[test]
    fn timestamp_column_is_stepped() {
        // "continuous integer timestamps, as they appear in time series".
        let data: Vec<i64> = (0..500).map(|i| 1000 + 10 * i).collect();
        let c = Column::from_i64(data);
        let s = ColumnStats::analyze(&c, 1024);
        assert_eq!(
            s.enumerability,
            Enumerability::SteppedRange { lo: 1000, hi: 5990, step: 10 }
        );
        let e = s.enumerability.enumerate().unwrap();
        assert_eq!(e.len(), 500);
        assert_eq!(e[0], 1000.0);
        assert_eq!(e[499], 5990.0);
    }

    #[test]
    fn stepped_with_gap_falls_back_to_categorical() {
        let c = Column::from_i64(vec![1, 2, 3, 5]);
        let s = ColumnStats::analyze(&c, 1024);
        assert_eq!(
            s.enumerability,
            Enumerability::Categorical { values: vec![1.0, 2.0, 3.0, 5.0] }
        );
    }

    #[test]
    fn wide_domain_is_not_enumerable() {
        let data: Vec<f64> = (0..5000).map(|i| i as f64 * 0.001).collect();
        let c = Column::from_f64(data);
        let s = ColumnStats::analyze(&c, 1024);
        assert_eq!(s.enumerability, Enumerability::NotEnumerable);
        assert_eq!(s.distinct, None); // exact count abandoned past the cap
        assert_eq!(s.min, Some(0.0));
        assert!((s.max.unwrap() - 4.999).abs() < 1e-12);
    }

    #[test]
    fn nulls_and_nans_are_ignored() {
        let c = Column::from_f64_opt(vec![Some(1.0), None, Some(f64::NAN), Some(3.0)]);
        let s = ColumnStats::analyze(&c, 16);
        assert_eq!(s.nulls, 1);
        assert_eq!(s.min, Some(1.0));
        assert_eq!(s.max, Some(3.0));
        assert_eq!(s.distinct, Some(2));
    }

    #[test]
    fn all_null_column() {
        let c = Column::from_i64_opt(vec![None, None]);
        let s = ColumnStats::analyze(&c, 16);
        assert_eq!(s.min, None);
        assert_eq!(s.distinct, Some(0));
        assert_eq!(s.enumerability, Enumerability::NotEnumerable);
    }

    #[test]
    fn empty_float_column_is_fully_defined() {
        let c = Column::from_f64(vec![]);
        let s = ColumnStats::analyze(&c, 16);
        assert_eq!(s.rows, 0);
        assert_eq!(s.nulls, 0);
        assert_eq!(s.min, None);
        assert_eq!(s.max, None);
        assert_eq!(s.distinct, Some(0));
        assert_eq!(s.enumerability, Enumerability::NotEnumerable);
    }

    #[test]
    fn all_nan_column_has_no_bounds_and_no_domain() {
        let c = Column::from_f64(vec![f64::NAN, f64::NAN, f64::NAN]);
        let s = ColumnStats::analyze(&c, 16);
        assert_eq!(s.rows, 3);
        assert_eq!(s.nulls, 0); // NaN is a value, not a NULL
        assert_eq!(s.min, None);
        assert_eq!(s.max, None);
        assert_eq!(s.distinct, Some(0));
        assert_eq!(s.enumerability, Enumerability::NotEnumerable);
    }

    #[test]
    fn single_value_columns_collapse_to_one_point() {
        let f = ColumnStats::analyze(&Column::from_f64(vec![2.5; 100]), 16);
        assert_eq!(f.min, Some(2.5));
        assert_eq!(f.max, Some(2.5));
        assert_eq!(f.distinct, Some(1));
        assert_eq!(f.enumerability, Enumerability::Categorical { values: vec![2.5] });

        let i = ColumnStats::analyze(&Column::from_i64(vec![7; 100]), 16);
        assert_eq!(i.min, Some(7.0));
        assert_eq!(i.max, Some(7.0));
        assert_eq!(i.distinct, Some(1));
        assert_eq!(i.enumerability, Enumerability::Categorical { values: vec![7.0] });
    }

    #[test]
    fn signed_zeros_are_one_distinct_value() {
        let c = Column::from_f64(vec![-0.0, 0.0, -0.0, 1.0]);
        let s = ColumnStats::analyze(&c, 16);
        assert_eq!(s.distinct, Some(2));
        assert_eq!(
            s.enumerability,
            Enumerability::Categorical { values: vec![0.0, 1.0] }
        );
    }

    #[test]
    fn infinities_are_ordinary_ordered_values() {
        let c = Column::from_f64(vec![f64::NEG_INFINITY, 1.0, f64::INFINITY]);
        let s = ColumnStats::analyze(&c, 16);
        assert_eq!(s.min, Some(f64::NEG_INFINITY));
        assert_eq!(s.max, Some(f64::INFINITY));
        assert_eq!(s.distinct, Some(3));
    }

    #[test]
    fn extreme_integer_domains_do_not_overflow() {
        let c = Column::from_i64(vec![i64::MIN, 0, i64::MAX]);
        let s = ColumnStats::analyze(&c, 16);
        assert_eq!(s.min, Some(i64::MIN as f64));
        assert_eq!(s.max, Some(i64::MAX as f64));
        // The span exceeds i64 — must degrade to categorical, not panic.
        assert_eq!(
            s.enumerability,
            Enumerability::Categorical {
                values: vec![i64::MIN as f64, 0.0, i64::MAX as f64]
            }
        );
    }

    #[test]
    fn stepped_cardinality_handles_wide_spans() {
        let e = Enumerability::SteppedRange { lo: i64::MIN / 2, hi: i64::MAX / 2, step: i64::MAX / 2 };
        // (hi - lo) alone would overflow i64; count must still be exact.
        assert_eq!(e.cardinality(), Some(3));
    }

    #[test]
    fn bool_column_enumerates_to_indicator_values() {
        let c = Column::from_bool(&[true, false, true]);
        let s = ColumnStats::analyze(&c, 16);
        assert_eq!(
            s.enumerability,
            Enumerability::Categorical { values: vec![0.0, 1.0] }
        );
    }

    #[test]
    fn string_column_counts_distinct_but_is_not_enumerable() {
        let c = Column::from_str(vec!["a".into(), "b".into(), "a".into()]);
        let s = ColumnStats::analyze(&c, 16);
        assert_eq!(s.distinct, Some(2));
        assert_eq!(s.enumerability, Enumerability::NotEnumerable);
    }
}
