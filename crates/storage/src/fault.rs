//! Deterministic fault injection, in the spirit of SQLite's test VFS.
//!
//! [`FaultyDevice`] wraps a [`SimulatedDevice`] and executes a seeded
//! [`FaultSchedule`]: at device operation *N* it injects one fault —
//! a short write, a torn page, a bit flip, or a plain IO error — and
//! from that point on every operation fails, simulating the process
//! dying mid-workload. The underlying device survives the "crash"
//! ([`FaultyDevice::into_inner`] recovers the disk image), so a harness
//! can re-open the store over it and assert that recovery lands on
//! exactly the pre- or post-commit state.
//!
//! All randomness (which bytes of a short write land, which sectors of
//! a torn page are old vs new, which bit flips) is a pure function of
//! `(seed, operation index)`, so every failure is replayable from the
//! logged seed alone.

use crate::error::{Result, StorageError};
use crate::io::{BlockDevice, IoStats, SimulatedDevice};
use lawsdb_obs::event;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// What happens at the scheduled crash operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// The operation fails cleanly; no bytes reach the media.
    IoError,
    /// A seeded-length prefix of the new data lands; the rest of the
    /// page keeps its old content.
    ShortWrite,
    /// The page is written in 64-byte sectors and a seeded subset of
    /// them land; the others keep their old content.
    TornPage,
    /// The full write lands with one seeded bit flipped.
    BitFlip,
    /// A seeded run of 1–3 consecutive operations fails cleanly and
    /// then the device heals — the transient-IO model (a glitching
    /// cable, not a dead disk). Unlike every other mode this does NOT
    /// leave the device crashed, so a retrying caller recovers.
    Transient,
}

impl FaultMode {
    /// All *crashing* modes, in the order the crash matrix cycles
    /// through them. `Transient` is deliberately excluded: the crash
    /// matrix asserts the device stays dead after the fault, which a
    /// self-healing fault would violate.
    pub const ALL: [FaultMode; 4] =
        [FaultMode::IoError, FaultMode::ShortWrite, FaultMode::TornPage, FaultMode::BitFlip];

    /// Stable lowercase name, used in structured events and logs.
    pub fn name(&self) -> &'static str {
        match self {
            FaultMode::IoError => "io_error",
            FaultMode::ShortWrite => "short_write",
            FaultMode::TornPage => "torn_page",
            FaultMode::BitFlip => "bit_flip",
            FaultMode::Transient => "transient",
        }
    }
}

/// When and how to fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSchedule {
    /// Zero-based device-operation index at which the fault fires;
    /// `None` never faults (golden run).
    pub crash_at: Option<u64>,
    /// The fault injected at that operation.
    pub mode: FaultMode,
    /// Seed for the fault's internal randomness (short-write length,
    /// torn-sector pattern, flipped bit).
    pub seed: u64,
}

impl FaultSchedule {
    /// A schedule that never faults.
    pub fn none() -> FaultSchedule {
        FaultSchedule { crash_at: None, mode: FaultMode::IoError, seed: 0 }
    }

    /// Fault at operation `op` with `mode`, seeded by `seed`.
    pub fn crash_at(op: u64, mode: FaultMode, seed: u64) -> FaultSchedule {
        FaultSchedule { crash_at: Some(op), mode, seed }
    }
}

/// SplitMix64 — the same deterministic generator the shims use.
fn splitmix(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A [`SimulatedDevice`] that executes a [`FaultSchedule`].
///
/// Every read and write attempt counts as one operation (allocation is
/// metadata and does not count). Once the scheduled fault has fired the
/// device is *crashed*: all further operations return
/// [`StorageError::Io`], exactly as a dead process would see them.
#[derive(Debug)]
pub struct FaultyDevice {
    inner: SimulatedDevice,
    schedule: FaultSchedule,
    ops: AtomicU64,
    crashed: AtomicBool,
    fired: AtomicBool,
    transient_left: AtomicU64,
}

impl FaultyDevice {
    /// Wrap `inner` under `schedule`.
    pub fn new(inner: SimulatedDevice, schedule: FaultSchedule) -> FaultyDevice {
        if let Some(op) = schedule.crash_at {
            event!(
                "storage.fault.armed",
                op,
                mode = schedule.mode.name(),
                seed = schedule.seed
            );
        }
        FaultyDevice {
            inner,
            schedule,
            ops: AtomicU64::new(0),
            crashed: AtomicBool::new(false),
            fired: AtomicBool::new(false),
            transient_left: AtomicU64::new(0),
        }
    }

    /// Total device operations attempted so far (reads + writes,
    /// including the faulted one).
    pub fn op_count(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// True once the scheduled fault has fired. Distinct from
    /// [`is_crashed`](FaultyDevice::is_crashed): a [`FaultMode::Transient`]
    /// fault fires without leaving the device crashed.
    pub fn fault_fired(&self) -> bool {
        self.fired.load(Ordering::Relaxed)
    }

    /// `Some(op)` when the schedule named operation `op` but the
    /// workload stopped after [`op_count`](FaultyDevice::op_count)
    /// operations without ever reaching it. A harness that ignores this
    /// is running a vacuous matrix cell — the fault was scheduled past
    /// the end of the workload and silently never injected.
    pub fn unfired_fault(&self) -> Option<u64> {
        match self.schedule.crash_at {
            Some(op) if !self.fault_fired() => Some(op),
            _ => None,
        }
    }

    /// True once the scheduled fault has fired.
    pub fn is_crashed(&self) -> bool {
        self.crashed.load(Ordering::Relaxed)
    }

    /// Surrender the underlying device — the disk image that survives
    /// the crash, ready to be re-opened and recovered.
    pub fn into_inner(self) -> SimulatedDevice {
        self.inner
    }

    fn crash_error(op: &'static str, page: u64) -> StorageError {
        StorageError::Io { op, page, detail: "device crashed (injected fault)".to_string() }
    }

    fn transient_error(op: &'static str, page: u64) -> StorageError {
        StorageError::Io { op, page, detail: "transient io error (injected fault)".to_string() }
    }

    /// Claim the next operation slot; `Ok(None)` = run normally,
    /// `Ok(Some(rng))` = this is the fault op, `Err` = already crashed,
    /// mid-transient-run, or a transient fault firing.
    fn next_op(&self, op: &'static str, page: u64) -> Result<Option<u64>> {
        if self.crashed.load(Ordering::Relaxed) {
            // Still bill the attempt: a dead device rejects, but the
            // caller did issue the operation.
            self.ops.fetch_add(1, Ordering::Relaxed);
            return Err(Self::crash_error(op, page));
        }
        let n = self.ops.fetch_add(1, Ordering::Relaxed);
        // Drain an in-flight transient run before consulting the
        // schedule; once it hits zero the device has healed.
        if self
            .transient_left
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |left| left.checked_sub(1))
            .is_ok()
        {
            return Err(Self::transient_error(op, page));
        }
        if self.schedule.crash_at == Some(n) {
            self.fired.store(true, Ordering::Relaxed);
            event!(
                "storage.fault.fired",
                op = n,
                mode = self.schedule.mode.name(),
                page,
                crashes = self.schedule.mode != FaultMode::Transient
            );
            let rng = splitmix(self.schedule.seed ^ n.wrapping_mul(0xA24B_AED4_963E_E407));
            if self.schedule.mode == FaultMode::Transient {
                // This op plus a seeded 0–2 more fail, then the device
                // heals; `crashed` stays false throughout.
                self.transient_left.store(rng % 3, Ordering::Relaxed);
                return Err(Self::transient_error(op, page));
            }
            self.crashed.store(true, Ordering::Relaxed);
            return Ok(Some(rng));
        }
        Ok(None)
    }
}

impl BlockDevice for FaultyDevice {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn page_count(&self) -> usize {
        self.inner.page_count()
    }

    fn allocate(&mut self) -> u64 {
        self.inner.allocate()
    }

    fn write_page(&mut self, id: u64, data: &[u8]) -> Result<()> {
        let Some(rng) = self.next_op("write", id)? else {
            return self.inner.write_page(id, data);
        };
        // The fault op: corrupt (per mode), then report the crash.
        let ps = self.inner.page_size();
        if data.len() <= ps {
            let old: Vec<u8> =
                self.inner.peek_page(id).map(<[u8]>::to_vec).unwrap_or_else(|| vec![0; ps]);
            let mut new = vec![0u8; ps];
            new[..data.len()].copy_from_slice(data);
            let corrupted: Option<Vec<u8>> = match self.schedule.mode {
                // Transient faults error in `next_op` before reaching
                // here; a crashing IoError leaves the media untouched.
                FaultMode::IoError | FaultMode::Transient => None,
                FaultMode::ShortWrite => {
                    // A prefix of the new bytes lands; the tail keeps
                    // its previous content.
                    let landed = (rng as usize) % (ps + 1);
                    let mut page = old;
                    page[..landed].copy_from_slice(&new[..landed]);
                    Some(page)
                }
                FaultMode::TornPage => {
                    // 64-byte sectors land independently.
                    let mut page = old;
                    let mut r = rng;
                    for (s, chunk) in page.chunks_mut(64).enumerate() {
                        r = splitmix(r ^ s as u64);
                        if r & 1 == 1 {
                            let lo = s * 64;
                            chunk.copy_from_slice(&new[lo..lo + chunk.len()]);
                        }
                    }
                    Some(page)
                }
                FaultMode::BitFlip => {
                    let bit = (rng as usize) % (ps * 8);
                    new[bit / 8] ^= 1 << (bit % 8);
                    Some(new)
                }
            };
            if let Some(page) = corrupted {
                // Bypass our own accounting: this is the same physical
                // write the caller already paid for, not a second one.
                self.inner.write_page(id, &page)?;
            }
        }
        Err(Self::crash_error("write", id))
    }

    fn read_page_owned(&self, id: u64) -> Result<Vec<u8>> {
        // Read faults all degrade to an error: a crashed process never
        // sees the (possibly corrupt) bytes.
        match self.next_op("read", id)? {
            Some(_) => Err(Self::crash_error("read", id)),
            None => self.inner.read_page_owned(id),
        }
    }

    fn stats(&self) -> IoStats {
        self.inner.stats()
    }

    fn reset_stats(&self) {
        self.inner.reset_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device(ps: usize, schedule: FaultSchedule) -> FaultyDevice {
        let mut inner = SimulatedDevice::new(ps);
        inner.allocate();
        inner.allocate();
        FaultyDevice::new(inner, schedule)
    }

    #[test]
    fn no_schedule_behaves_transparently() {
        let mut d = device(128, FaultSchedule::none());
        d.write_page(0, b"abc").unwrap();
        assert_eq!(&d.read_page_owned(0).unwrap()[..3], b"abc");
        assert_eq!(d.op_count(), 2);
        assert!(!d.is_crashed());
    }

    #[test]
    fn io_error_leaves_old_content() {
        let mut d = device(128, FaultSchedule::crash_at(1, FaultMode::IoError, 7));
        d.write_page(0, &[0xAA; 128]).unwrap();
        assert!(d.write_page(0, &[0xBB; 128]).is_err());
        assert!(d.is_crashed());
        let img = d.into_inner();
        assert!(img.peek_page(0).unwrap().iter().all(|&b| b == 0xAA));
    }

    #[test]
    fn short_write_mixes_prefix_and_old_tail() {
        let mut d = device(128, FaultSchedule::crash_at(1, FaultMode::ShortWrite, 42));
        d.write_page(0, &[0xAA; 128]).unwrap();
        assert!(d.write_page(0, &[0xBB; 128]).is_err());
        let img = d.into_inner();
        let page = img.peek_page(0).unwrap();
        let landed = page.iter().take_while(|&&b| b == 0xBB).count();
        assert!(page[landed..].iter().all(|&b| b == 0xAA), "clean prefix/tail split");
    }

    #[test]
    fn bit_flip_changes_exactly_one_bit() {
        let mut d = device(128, FaultSchedule::crash_at(0, FaultMode::BitFlip, 3));
        assert!(d.write_page(0, &[0x00; 128]).is_err());
        let img = d.into_inner();
        let ones: u32 = img.peek_page(0).unwrap().iter().map(|b| b.count_ones()).sum();
        assert_eq!(ones, 1);
    }

    #[test]
    fn torn_page_is_sector_mix_of_old_and_new() {
        let mut d = device(256, FaultSchedule::crash_at(1, FaultMode::TornPage, 9));
        d.write_page(0, &[0xAA; 256]).unwrap();
        assert!(d.write_page(0, &[0xBB; 256]).is_err());
        let img = d.into_inner();
        let page = img.peek_page(0).unwrap();
        for sector in page.chunks(64) {
            let first = sector[0];
            assert!(first == 0xAA || first == 0xBB);
            assert!(sector.iter().all(|&b| b == first), "sectors are atomic");
        }
    }

    #[test]
    fn everything_fails_after_the_crash() {
        let mut d = device(128, FaultSchedule::crash_at(0, FaultMode::IoError, 0));
        assert!(d.read_page_owned(0).is_err());
        assert!(d.read_page_owned(1).is_err());
        assert!(d.write_page(0, b"x").is_err());
        assert_eq!(d.op_count(), 3);
    }

    #[test]
    fn transient_fault_fails_then_heals() {
        let d = device(128, FaultSchedule::crash_at(0, FaultMode::Transient, 11));
        let mut failures = 0;
        while d.read_page_owned(0).is_err() {
            failures += 1;
            assert!(failures <= 3, "a transient run is at most 3 ops");
        }
        assert!((1..=3).contains(&failures));
        assert!(d.fault_fired());
        assert!(!d.is_crashed(), "transient faults never crash the device");
        assert!(d.read_page_owned(0).is_ok(), "healed device stays healthy");
    }

    #[test]
    fn transient_run_length_is_deterministic() {
        let run = |seed| {
            let d = device(128, FaultSchedule::crash_at(0, FaultMode::Transient, seed));
            (0..8).filter(|_| d.read_page_owned(0).is_err()).count()
        };
        assert_eq!(run(11), run(11));
    }

    #[test]
    fn unfired_schedule_is_reported() {
        let mut d = device(128, FaultSchedule::crash_at(100, FaultMode::IoError, 0));
        d.write_page(0, b"abc").unwrap();
        assert!(!d.fault_fired());
        assert_eq!(d.unfired_fault(), Some(100), "workload never reached op 100");
        assert_eq!(d.op_count(), 1);
    }

    #[test]
    fn fired_schedule_is_not_reported_as_unfired() {
        let mut d = device(128, FaultSchedule::crash_at(0, FaultMode::IoError, 0));
        assert!(d.write_page(0, b"abc").is_err());
        assert!(d.fault_fired());
        assert_eq!(d.unfired_fault(), None);
        let d = device(128, FaultSchedule::none());
        assert_eq!(d.unfired_fault(), None, "golden runs schedule nothing");
    }

    #[test]
    fn schedules_are_deterministic() {
        let image = |seed| {
            let mut d = device(128, FaultSchedule::crash_at(1, FaultMode::ShortWrite, seed));
            d.write_page(0, &[0xAA; 128]).unwrap();
            let _ = d.write_page(0, &[0xBB; 128]);
            d.into_inner().peek_page(0).unwrap().to_vec()
        };
        assert_eq!(image(5), image(5));
        assert_ne!(image(5), image(6), "different seeds tear differently");
    }
}
