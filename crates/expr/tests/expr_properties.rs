//! Property tests for the formula language: the compiled bytecode
//! evaluator must agree with the tree-walking reference on *arbitrary*
//! expressions, display must re-parse to the same tree, and symbolic
//! derivatives must match finite differences wherever both are finite.

use lawsdb_expr::ast::{CmpOp, Expr, Func};
use lawsdb_expr::{parse_expr, Bindings, CompiledExpr};
use proptest::prelude::*;

/// Strategy for arbitrary *differentiable* expressions over symbols
/// `x` (column) and `a`, `b` (scalars).
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-4.0f64..4.0).prop_map(Expr::Num),
        Just(Expr::Sym("x".to_string())),
        Just(Expr::Sym("a".to_string())),
        Just(Expr::Sym("b".to_string())),
    ];
    leaf.prop_recursive(4, 64, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(l, r)| Expr::Add(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone())
                .prop_map(|(l, r)| Expr::Sub(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone())
                .prop_map(|(l, r)| Expr::Mul(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone())
                .prop_map(|(l, r)| Expr::Div(Box::new(l), Box::new(r))),
            inner.clone().prop_map(|e| Expr::Neg(Box::new(e))),
            inner.clone().prop_map(|e| Expr::Call(Func::Sin, vec![e])),
            inner.clone().prop_map(|e| Expr::Call(Func::Cos, vec![e])),
            inner.clone().prop_map(|e| Expr::Call(Func::Exp, vec![e])),
            (inner.clone(), inner).prop_map(|(l, r)| Expr::Call(Func::Min, vec![l, r])),
        ]
    })
}

/// Strategy including comparisons and boolean operators (filters).
fn arb_filter() -> impl Strategy<Value = Expr> {
    (arb_expr(), arb_expr(), prop_oneof![
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
    ])
        .prop_map(|(l, r, op)| Expr::Cmp(op, Box::new(l), Box::new(r)))
}

fn bits_eq_or_both_nan(a: f64, b: f64) -> bool {
    (a.is_nan() && b.is_nan()) || a == b || (a - b).abs() <= 1e-9 * (1.0 + a.abs())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Compiled batch evaluation ≡ tree-walking reference, per row.
    #[test]
    fn compiled_matches_tree_walk(
        e in arb_expr(),
        xs in prop::collection::vec(-3.0f64..3.0, 1..24),
        a in -3.0f64..3.0,
        b in -3.0f64..3.0,
    ) {
        let compiled = CompiledExpr::compile(&e, &["x"]).unwrap();
        // Map compiled scalar order to our (a, b) values.
        let scalars: Vec<f64> = compiled
            .scalars()
            .iter()
            .map(|s| if s == "a" { a } else { b })
            .collect();
        let cols: Vec<&[f64]> = compiled.columns().iter().map(|_| &xs[..]).collect();
        let batch = compiled.eval_batch(&cols, &scalars).unwrap();
        let n = if compiled.columns().is_empty() { 1 } else { xs.len() };
        prop_assert_eq!(batch.len(), n);
        for (i, &x) in xs.iter().enumerate().take(n) {
            let mut bind = Bindings::new();
            bind.set("x", x);
            bind.set("a", a);
            bind.set("b", b);
            let reference = e.eval(&bind).unwrap();
            prop_assert!(
                bits_eq_or_both_nan(batch[i], reference),
                "{e}: batch {} vs tree {} at x={x}", batch[i], reference
            );
        }
    }

    /// Display → parse stabilizes after one round: parser-produced
    /// trees round-trip structurally. (A hand-built `Neg(Num(x))`
    /// legitimately normalizes to `Num(-x)` on the first parse.)
    #[test]
    fn display_parse_roundtrip_stabilizes(e in arb_expr()) {
        let once = parse_expr(&e.to_string()).unwrap();
        let twice = parse_expr(&once.to_string()).unwrap();
        prop_assert_eq!(&twice, &once, "from {}", e);
        // And the normalized tree is semantically identical.
        let mut bind = Bindings::new();
        bind.set("x", 0.7);
        bind.set("a", -1.3);
        bind.set("b", 2.1);
        let v1 = e.eval(&bind).unwrap();
        let v2 = once.eval(&bind).unwrap();
        prop_assert!(bits_eq_or_both_nan(v1, v2), "{e}: {v1} vs {v2}");
    }

    /// Filters (comparisons) also round-trip and evaluate to indicators.
    #[test]
    fn filters_roundtrip_and_are_boolean(
        f in arb_filter(),
        x in -3.0f64..3.0,
        a in -3.0f64..3.0,
        b in -3.0f64..3.0,
    ) {
        let once = parse_expr(&f.to_string()).unwrap();
        let twice = parse_expr(&once.to_string()).unwrap();
        prop_assert_eq!(&twice, &once);
        let mut bind = Bindings::new();
        bind.set("x", x);
        bind.set("a", a);
        bind.set("b", b);
        let v = f.eval(&bind).unwrap();
        prop_assert!(v == 0.0 || v == 1.0, "{f} -> {v}");
    }

    /// Simplification never changes the value (where finite).
    #[test]
    fn simplify_preserves_value(
        e in arb_expr(),
        x in -3.0f64..3.0,
        a in -3.0f64..3.0,
        b in -3.0f64..3.0,
    ) {
        let simplified = lawsdb_expr::simplify::simplify(&e);
        let mut bind = Bindings::new();
        bind.set("x", x);
        bind.set("a", a);
        bind.set("b", b);
        let v1 = e.eval(&bind).unwrap();
        let v2 = simplified.eval(&bind).unwrap();
        // The simplifier's documented conventions (0·x → 0, x^0 → 1)
        // only diverge on non-finite subvalues; skip those draws.
        if v1.is_finite() && v2.is_finite() {
            prop_assert!(
                (v1 - v2).abs() <= 1e-6 * (1.0 + v1.abs()),
                "{e} simplified to {simplified}: {v1} vs {v2}"
            );
        }
    }

    /// Symbolic derivative ≈ central finite difference at points where
    /// the function is smooth and well-scaled.
    #[test]
    fn derivative_matches_finite_difference(
        e in arb_expr(),
        x in 0.3f64..2.0,
        a in 0.3f64..2.0,
        b in 0.3f64..2.0,
    ) {
        // min() is only piecewise differentiable; the deriv module
        // rejects it, which is also correct behaviour — skip such draws.
        let d = match lawsdb_expr::deriv::differentiate(&e, "x") {
            Ok(d) => d,
            Err(_) => return Ok(()),
        };
        let h = 1e-6;
        let eval_at = |xv: f64| {
            let mut bind = Bindings::new();
            bind.set("x", xv);
            bind.set("a", a);
            bind.set("b", b);
            e.eval(&bind).unwrap()
        };
        let f_hi = eval_at(x + h);
        let f_lo = eval_at(x - h);
        let numeric = (f_hi - f_lo) / (2.0 * h);
        let mut bind = Bindings::new();
        bind.set("x", x);
        bind.set("a", a);
        bind.set("b", b);
        let symbolic = d.eval(&bind).unwrap();
        // Only check well-conditioned draws: smooth value, moderate
        // magnitude (division can create poles where FD is meaningless).
        if symbolic.is_finite()
            && numeric.is_finite()
            && symbolic.abs() < 1e4
            && f_hi.is_finite()
            && f_lo.is_finite()
        {
            prop_assert!(
                (symbolic - numeric).abs() <= 1e-3 * (1.0 + symbolic.abs().max(numeric.abs())),
                "{e}: d/dx symbolic {symbolic} vs numeric {numeric} at x={x}"
            );
        }
    }
}
