//! Errors for parsing, evaluating and differentiating model formulas.

use std::fmt;

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, ExprError>;

/// Errors produced by the formula language.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExprError {
    /// The lexer met a character it does not understand.
    UnexpectedChar {
        /// The offending character.
        ch: char,
        /// Byte offset in the source string.
        pos: usize,
    },
    /// A numeric literal failed to parse.
    BadNumber {
        /// The literal text.
        text: String,
        /// Byte offset in the source string.
        pos: usize,
    },
    /// The parser met an unexpected token.
    UnexpectedToken {
        /// Description of what was found.
        found: String,
        /// Description of what was expected.
        expected: &'static str,
        /// Byte offset in the source string.
        pos: usize,
    },
    /// Input ended mid-expression.
    UnexpectedEnd {
        /// Description of what was expected.
        expected: &'static str,
    },
    /// A function was called with the wrong number of arguments.
    WrongArity {
        /// Function name.
        func: &'static str,
        /// Arity the function requires.
        expected: usize,
        /// Arity supplied.
        got: usize,
    },
    /// An unknown function name was called.
    UnknownFunction {
        /// The name as written.
        name: String,
    },
    /// Evaluation met a symbol with no binding.
    UnboundSymbol {
        /// The symbol name.
        name: String,
    },
    /// A formula (`response ~ body`) was expected but no `~` was found,
    /// or the response side is not a bare identifier.
    MalformedFormula {
        /// Explanation.
        reason: &'static str,
    },
    /// The expression cannot be differentiated (e.g. comparisons or
    /// boolean connectives in the model body).
    NotDifferentiable {
        /// The construct that blocked differentiation.
        construct: &'static str,
    },
    /// Batched evaluation received columns of unequal length.
    LengthMismatch {
        /// First column length seen.
        expected: usize,
        /// Conflicting column length.
        got: usize,
        /// Symbol whose column conflicted.
        symbol: String,
    },
}

impl fmt::Display for ExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExprError::UnexpectedChar { ch, pos } => {
                write!(f, "unexpected character {ch:?} at byte {pos}")
            }
            ExprError::BadNumber { text, pos } => {
                write!(f, "malformed number {text:?} at byte {pos}")
            }
            ExprError::UnexpectedToken { found, expected, pos } => {
                write!(f, "expected {expected}, found {found} at byte {pos}")
            }
            ExprError::UnexpectedEnd { expected } => {
                write!(f, "unexpected end of input, expected {expected}")
            }
            ExprError::WrongArity { func, expected, got } => {
                write!(f, "function {func} takes {expected} argument(s), got {got}")
            }
            ExprError::UnknownFunction { name } => write!(f, "unknown function {name:?}"),
            ExprError::UnboundSymbol { name } => write!(f, "symbol {name:?} has no binding"),
            ExprError::MalformedFormula { reason } => write!(f, "malformed formula: {reason}"),
            ExprError::NotDifferentiable { construct } => {
                write!(f, "cannot differentiate through {construct}")
            }
            ExprError::LengthMismatch { expected, got, symbol } => write!(
                f,
                "column {symbol:?} has length {got}, expected {expected} in batched evaluation"
            ),
        }
    }
}

impl std::error::Error for ExprError {}
