//! # lawsdb-expr
//!
//! The model-formula language of LawsDB.
//!
//! Section 3 of *"Capturing the Laws of (Data) Nature"* makes no
//! restriction on the class of user models: "they consist of two parts,
//! an arbitrary function of the input variables and various constant but
//! unknown parameters". This crate is that arbitrary function:
//!
//! * a small expression **AST** ([`Expr`]) with arithmetic, powers and
//!   the elementary functions scientists actually write (`exp`, `ln`,
//!   `sqrt`, trigonometry, …) plus comparison/boolean operators for
//!   *legal-parameter-combination* filters (Section 4.2);
//! * a **parser** for model formulas such as
//!   `"intensity ~ p * nu ^ alpha"` (R-style `response ~ body`);
//! * a scalar and a **vectorized, compiled** evaluator
//!   ([`compile::CompiledExpr`]) — stack-based bytecode executed over
//!   column batches, so that model-backed "zero-IO" scans are genuinely
//!   CPU-bound and fast;
//! * **symbolic differentiation** ([`deriv::differentiate`]) — the
//!   Gauss-Newton and Levenberg-Marquardt fitters need the Jacobian
//!   `∂r/∂βⱼ` of the residual in the unknown parameters, and symbolic
//!   derivatives are both faster and more accurate than finite
//!   differences (ablation in the benchmark suite);
//! * a **simplifier** (constant folding and algebraic identities) that
//!   keeps derived expressions small.
//!
//! Symbols are resolved late: an identifier is a *variable* when it names
//! a column of the fitted table and a *parameter* otherwise. The
//! [`Formula`] type records that split once a schema is known.

pub mod ast;
pub mod compile;
pub mod deriv;
pub mod error;
pub mod eval;
pub mod parser;
pub mod simplify;
pub mod token;

pub use ast::{Expr, Func};
pub use compile::CompiledExpr;
pub use error::{ExprError, Result};
pub use eval::Bindings;
pub use parser::{parse_expr, parse_formula, Formula};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_power_law() {
        // The paper's LOFAR model: I = p * nu^alpha.
        let f = parse_formula("intensity ~ p * nu ^ alpha").unwrap();
        assert_eq!(f.response, "intensity");
        let split = f.split_symbols(&["intensity", "nu"]);
        assert_eq!(split.variables, vec!["nu".to_string()]);
        assert_eq!(split.parameters, vec!["alpha".to_string(), "p".to_string()]);

        let mut b = Bindings::new();
        b.set("p", 2.0);
        b.set("nu", 0.14);
        b.set("alpha", -0.7);
        let v = f.rhs.eval(&b).unwrap();
        assert!((v - 2.0 * 0.14_f64.powf(-0.7)).abs() < 1e-12);
    }

    #[test]
    fn derivative_of_power_law_wrt_alpha() {
        // d/dalpha (p * nu^alpha) = p * nu^alpha * ln(nu)
        let e = parse_expr("p * nu ^ alpha").unwrap();
        let d = deriv::differentiate(&e, "alpha").unwrap();
        let mut b = Bindings::new();
        b.set("p", 3.0);
        b.set("nu", 0.5);
        b.set("alpha", 1.5);
        let got = d.eval(&b).unwrap();
        let want = 3.0 * 0.5_f64.powf(1.5) * 0.5_f64.ln();
        assert!((got - want).abs() < 1e-12);
    }
}
