//! Lexer for the model-formula language.

use crate::error::{ExprError, Result};

/// One lexical token, tagged with its byte offset for error reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// Byte offset of the first character in the source.
    pub pos: usize,
}

/// Token kinds of the formula language.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Floating-point or integer literal.
    Number(f64),
    /// Identifier: variable, parameter, or function name.
    Ident(String),
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `^` — exponentiation, right-associative.
    Caret,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `~` — formula separator (`response ~ body`).
    Tilde,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==` (also accepts a single `=` for user convenience).
    EqEq,
    /// `!=`
    Ne,
    /// `&&` (also accepts `&`).
    AndAnd,
    /// `||` (also accepts `|`).
    OrOr,
    /// `!`
    Bang,
}

impl TokenKind {
    /// Human-readable description used by parser error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Number(n) => format!("number {n}"),
            TokenKind::Ident(s) => format!("identifier {s:?}"),
            other => format!("{other:?}"),
        }
    }
}

/// Tokenize a source string.
pub fn tokenize(src: &str) -> Result<Vec<Token>> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
            }
            '+' => {
                out.push(Token { kind: TokenKind::Plus, pos: start });
                i += 1;
            }
            '-' => {
                out.push(Token { kind: TokenKind::Minus, pos: start });
                i += 1;
            }
            '*' => {
                out.push(Token { kind: TokenKind::Star, pos: start });
                i += 1;
            }
            '/' => {
                out.push(Token { kind: TokenKind::Slash, pos: start });
                i += 1;
            }
            '^' => {
                out.push(Token { kind: TokenKind::Caret, pos: start });
                i += 1;
            }
            '(' => {
                out.push(Token { kind: TokenKind::LParen, pos: start });
                i += 1;
            }
            ')' => {
                out.push(Token { kind: TokenKind::RParen, pos: start });
                i += 1;
            }
            ',' => {
                out.push(Token { kind: TokenKind::Comma, pos: start });
                i += 1;
            }
            '~' => {
                out.push(Token { kind: TokenKind::Tilde, pos: start });
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token { kind: TokenKind::Le, pos: start });
                    i += 2;
                } else {
                    out.push(Token { kind: TokenKind::Lt, pos: start });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token { kind: TokenKind::Ge, pos: start });
                    i += 2;
                } else {
                    out.push(Token { kind: TokenKind::Gt, pos: start });
                    i += 1;
                }
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token { kind: TokenKind::EqEq, pos: start });
                    i += 2;
                } else {
                    // Accept a lone `=` as equality, the way filter
                    // predicates are usually written in SQL.
                    out.push(Token { kind: TokenKind::EqEq, pos: start });
                    i += 1;
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token { kind: TokenKind::Ne, pos: start });
                    i += 2;
                } else {
                    out.push(Token { kind: TokenKind::Bang, pos: start });
                    i += 1;
                }
            }
            '&' => {
                i += if bytes.get(i + 1) == Some(&b'&') { 2 } else { 1 };
                out.push(Token { kind: TokenKind::AndAnd, pos: start });
            }
            '|' => {
                i += if bytes.get(i + 1) == Some(&b'|') { 2 } else { 1 };
                out.push(Token { kind: TokenKind::OrOr, pos: start });
            }
            '0'..='9' | '.' => {
                let mut j = i;
                let mut seen_e = false;
                while j < bytes.len() {
                    let d = bytes[j] as char;
                    let is_num_char = d.is_ascii_digit()
                        || d == '.'
                        || d == 'e'
                        || d == 'E'
                        || ((d == '+' || d == '-')
                            && seen_e
                            && (bytes[j - 1] == b'e' || bytes[j - 1] == b'E'));
                    if !is_num_char {
                        break;
                    }
                    if d == 'e' || d == 'E' {
                        if seen_e {
                            break;
                        }
                        // Only treat as exponent when followed by digit/sign.
                        match bytes.get(j + 1) {
                            Some(b'0'..=b'9') | Some(b'+') | Some(b'-') => seen_e = true,
                            _ => break,
                        }
                    }
                    j += 1;
                }
                let text = &src[i..j];
                let val: f64 = text
                    .parse()
                    .map_err(|_| ExprError::BadNumber { text: text.to_string(), pos: start })?;
                out.push(Token { kind: TokenKind::Number(val), pos: start });
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut j = i;
                while j < bytes.len() {
                    let d = bytes[j] as char;
                    if d.is_ascii_alphanumeric() || d == '_' || d == '.' {
                        j += 1;
                    } else {
                        break;
                    }
                }
                out.push(Token { kind: TokenKind::Ident(src[i..j].to_string()), pos: start });
                i = j;
            }
            other => return Err(ExprError::UnexpectedChar { ch: other, pos: start }),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn tokenizes_power_law() {
        assert_eq!(
            kinds("p * nu ^ alpha"),
            vec![
                TokenKind::Ident("p".into()),
                TokenKind::Star,
                TokenKind::Ident("nu".into()),
                TokenKind::Caret,
                TokenKind::Ident("alpha".into()),
            ]
        );
    }

    #[test]
    fn tokenizes_scientific_notation() {
        assert_eq!(kinds("1.5e-3"), vec![TokenKind::Number(1.5e-3)]);
        assert_eq!(kinds("2E4"), vec![TokenKind::Number(2e4)]);
        assert_eq!(kinds(".5"), vec![TokenKind::Number(0.5)]);
    }

    #[test]
    fn e_not_followed_by_digit_is_identifier_boundary() {
        // "2e" should lex as number 2 then identifier e.
        assert_eq!(kinds("2e"), vec![TokenKind::Number(2.0), TokenKind::Ident("e".into())]);
    }

    #[test]
    fn tokenizes_comparisons_and_logic() {
        assert_eq!(
            kinds("a >= 1 && b != 2 || !c"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ge,
                TokenKind::Number(1.0),
                TokenKind::AndAnd,
                TokenKind::Ident("b".into()),
                TokenKind::Ne,
                TokenKind::Number(2.0),
                TokenKind::OrOr,
                TokenKind::Bang,
                TokenKind::Ident("c".into()),
            ]
        );
    }

    #[test]
    fn single_equals_is_equality() {
        assert_eq!(kinds("x = 3"), kinds("x == 3"));
    }

    #[test]
    fn tilde_and_dotted_identifiers() {
        assert_eq!(
            kinds("y ~ t.x"),
            vec![TokenKind::Ident("y".into()), TokenKind::Tilde, TokenKind::Ident("t.x".into())]
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(tokenize("a # b"), Err(ExprError::UnexpectedChar { ch: '#', pos: 2 })));
    }

    #[test]
    fn positions_are_byte_offsets() {
        let toks = tokenize("ab + cd").unwrap();
        assert_eq!(toks[0].pos, 0);
        assert_eq!(toks[1].pos, 3);
        assert_eq!(toks[2].pos, 5);
    }
}
