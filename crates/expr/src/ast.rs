//! Expression AST for user models and legal-domain filters.

use std::fmt;

/// Built-in elementary functions.
///
/// This set covers the model vocabulary surveyed in the paper's future
/// work ("survey scientific fields and their models"): exponentials and
/// logarithms (growth/decay laws, power laws after log-transform),
/// trigonometry (periodic signals — pulsars in the LOFAR use case),
/// and numeric utilities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Func {
    /// Natural exponential.
    Exp,
    /// Natural logarithm.
    Ln,
    /// Base-10 logarithm.
    Log10,
    /// Square root.
    Sqrt,
    /// Sine.
    Sin,
    /// Cosine.
    Cos,
    /// Tangent.
    Tan,
    /// Absolute value.
    Abs,
    /// Two-argument minimum.
    Min,
    /// Two-argument maximum.
    Max,
    /// Floor.
    Floor,
    /// Ceiling.
    Ceil,
}

impl Func {
    /// Number of arguments the function takes.
    pub fn arity(self) -> usize {
        match self {
            Func::Min | Func::Max => 2,
            _ => 1,
        }
    }

    /// Name as written in formulas.
    pub fn name(self) -> &'static str {
        match self {
            Func::Exp => "exp",
            Func::Ln => "ln",
            Func::Log10 => "log10",
            Func::Sqrt => "sqrt",
            Func::Sin => "sin",
            Func::Cos => "cos",
            Func::Tan => "tan",
            Func::Abs => "abs",
            Func::Min => "min",
            Func::Max => "max",
            Func::Floor => "floor",
            Func::Ceil => "ceil",
        }
    }

    /// Look a function up by source name; `log` is accepted as an alias
    /// for the natural logarithm, matching R.
    pub fn by_name(name: &str) -> Option<Func> {
        Some(match name {
            "exp" => Func::Exp,
            "ln" | "log" => Func::Ln,
            "log10" => Func::Log10,
            "sqrt" => Func::Sqrt,
            "sin" => Func::Sin,
            "cos" => Func::Cos,
            "tan" => Func::Tan,
            "abs" => Func::Abs,
            "min" => Func::Min,
            "max" => Func::Max,
            "floor" => Func::Floor,
            "ceil" => Func::Ceil,
            _ => return None,
        })
    }

    /// Apply to scalar arguments. `args` length must equal [`Func::arity`].
    #[inline]
    pub fn apply(self, args: &[f64]) -> f64 {
        match self {
            Func::Exp => args[0].exp(),
            Func::Ln => args[0].ln(),
            Func::Log10 => args[0].log10(),
            Func::Sqrt => args[0].sqrt(),
            Func::Sin => args[0].sin(),
            Func::Cos => args[0].cos(),
            Func::Tan => args[0].tan(),
            Func::Abs => args[0].abs(),
            Func::Min => args[0].min(args[1]),
            Func::Max => args[0].max(args[1]),
            Func::Floor => args[0].floor(),
            Func::Ceil => args[0].ceil(),
        }
    }
}

/// Binary comparison operators (used in legal-domain filters and query
/// predicates, not differentiable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

impl CmpOp {
    /// Evaluate the comparison on two scalars, returning 1.0/0.0.
    #[inline]
    pub fn apply(self, a: f64, b: f64) -> f64 {
        let t = match self {
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
        };
        if t {
            1.0
        } else {
            0.0
        }
    }

    /// Source representation.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
        }
    }
}

/// An expression tree.
///
/// Truth values are represented as `f64` 0.0/1.0 so that filters and
/// models share one evaluator; `And`/`Or` treat any non-zero as true.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Numeric literal.
    Num(f64),
    /// Symbol — a data variable or a model parameter; which one is
    /// decided when the formula is bound against a table schema.
    Sym(String),
    /// Addition.
    Add(Box<Expr>, Box<Expr>),
    /// Subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// Multiplication.
    Mul(Box<Expr>, Box<Expr>),
    /// Division.
    Div(Box<Expr>, Box<Expr>),
    /// Exponentiation (right-associative `^`).
    Pow(Box<Expr>, Box<Expr>),
    /// Unary negation.
    Neg(Box<Expr>),
    /// Function call.
    Call(Func, Vec<Expr>),
    /// Comparison; evaluates to 0.0/1.0.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Logical conjunction (non-zero is true).
    And(Box<Expr>, Box<Expr>),
    /// Logical disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
}

impl Expr {
    /// Convenience constructor for a literal.
    pub fn num(v: f64) -> Expr {
        Expr::Num(v)
    }

    /// Convenience constructor for a symbol.
    pub fn sym(name: impl Into<String>) -> Expr {
        Expr::Sym(name.into())
    }

    /// Collect the distinct symbol names used in this expression, sorted.
    pub fn symbols(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let Expr::Sym(s) = e {
                if !out.contains(s) {
                    out.push(s.clone());
                }
            }
        });
        out.sort();
        out
    }

    /// Pre-order traversal calling `f` on every node.
    pub fn walk(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Num(_) | Expr::Sym(_) => {}
            Expr::Neg(a) | Expr::Not(a) => a.walk(f),
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Div(a, b)
            | Expr::Pow(a, b)
            | Expr::And(a, b)
            | Expr::Or(a, b)
            | Expr::Cmp(_, a, b) => {
                a.walk(f);
                b.walk(f);
            }
            Expr::Call(_, args) => {
                for a in args {
                    a.walk(f);
                }
            }
        }
    }

    /// Number of nodes in the tree (used to bound simplifier growth and
    /// reported by catalog statistics).
    pub fn node_count(&self) -> usize {
        let mut n = 0;
        self.walk(&mut |_| n += 1);
        n
    }

    /// Replace every occurrence of symbol `name` by `replacement`.
    pub fn substitute(&self, name: &str, replacement: &Expr) -> Expr {
        match self {
            Expr::Num(v) => Expr::Num(*v),
            Expr::Sym(s) => {
                if s == name {
                    replacement.clone()
                } else {
                    Expr::Sym(s.clone())
                }
            }
            Expr::Neg(a) => Expr::Neg(Box::new(a.substitute(name, replacement))),
            Expr::Not(a) => Expr::Not(Box::new(a.substitute(name, replacement))),
            Expr::Add(a, b) => Expr::Add(
                Box::new(a.substitute(name, replacement)),
                Box::new(b.substitute(name, replacement)),
            ),
            Expr::Sub(a, b) => Expr::Sub(
                Box::new(a.substitute(name, replacement)),
                Box::new(b.substitute(name, replacement)),
            ),
            Expr::Mul(a, b) => Expr::Mul(
                Box::new(a.substitute(name, replacement)),
                Box::new(b.substitute(name, replacement)),
            ),
            Expr::Div(a, b) => Expr::Div(
                Box::new(a.substitute(name, replacement)),
                Box::new(b.substitute(name, replacement)),
            ),
            Expr::Pow(a, b) => Expr::Pow(
                Box::new(a.substitute(name, replacement)),
                Box::new(b.substitute(name, replacement)),
            ),
            Expr::And(a, b) => Expr::And(
                Box::new(a.substitute(name, replacement)),
                Box::new(b.substitute(name, replacement)),
            ),
            Expr::Or(a, b) => Expr::Or(
                Box::new(a.substitute(name, replacement)),
                Box::new(b.substitute(name, replacement)),
            ),
            Expr::Cmp(op, a, b) => Expr::Cmp(
                *op,
                Box::new(a.substitute(name, replacement)),
                Box::new(b.substitute(name, replacement)),
            ),
            Expr::Call(func, args) => Expr::Call(
                *func,
                args.iter().map(|a| a.substitute(name, replacement)).collect(),
            ),
        }
    }

    /// True when the expression contains the given symbol.
    pub fn contains_symbol(&self, name: &str) -> bool {
        let mut found = false;
        self.walk(&mut |e| {
            if let Expr::Sym(s) = e {
                if s == name {
                    found = true;
                }
            }
        });
        found
    }

    /// True when the expression is a plain constant.
    pub fn as_const(&self) -> Option<f64> {
        match self {
            Expr::Num(v) => Some(*v),
            _ => None,
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Fully parenthesized rendering: unambiguous and re-parseable,
        // which is what the model catalog stores ("store the models in
        // their source code form inside the database").
        match self {
            Expr::Num(v) => write!(f, "{v}"),
            Expr::Sym(s) => write!(f, "{s}"),
            Expr::Add(a, b) => write!(f, "({a} + {b})"),
            Expr::Sub(a, b) => write!(f, "({a} - {b})"),
            Expr::Mul(a, b) => write!(f, "({a} * {b})"),
            Expr::Div(a, b) => write!(f, "({a} / {b})"),
            Expr::Pow(a, b) => write!(f, "({a} ^ {b})"),
            Expr::Neg(a) => write!(f, "(-{a})"),
            Expr::Not(a) => write!(f, "(!{a})"),
            Expr::And(a, b) => write!(f, "({a} && {b})"),
            Expr::Or(a, b) => write!(f, "({a} || {b})"),
            Expr::Cmp(op, a, b) => write!(f, "({a} {} {b})", op.symbol()),
            Expr::Call(func, args) => {
                write!(f, "{}(", func.name())?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbols_are_sorted_and_deduped() {
        let e = Expr::Mul(
            Box::new(Expr::sym("p")),
            Box::new(Expr::Pow(Box::new(Expr::sym("nu")), Box::new(Expr::sym("alpha")))),
        );
        assert_eq!(e.symbols(), vec!["alpha", "nu", "p"]);
    }

    #[test]
    fn substitute_replaces_all_occurrences() {
        let e = Expr::Add(Box::new(Expr::sym("x")), Box::new(Expr::sym("x")));
        let s = e.substitute("x", &Expr::num(2.0));
        assert_eq!(s, Expr::Add(Box::new(Expr::num(2.0)), Box::new(Expr::num(2.0))));
    }

    #[test]
    fn display_roundtrips_through_parser() {
        let e = Expr::Mul(
            Box::new(Expr::sym("p")),
            Box::new(Expr::Pow(Box::new(Expr::sym("nu")), Box::new(Expr::sym("alpha")))),
        );
        let printed = e.to_string();
        let reparsed = crate::parser::parse_expr(&printed).unwrap();
        assert_eq!(reparsed, e);
    }

    #[test]
    fn func_lookup_and_arity() {
        assert_eq!(Func::by_name("log"), Some(Func::Ln));
        assert_eq!(Func::by_name("nope"), None);
        assert_eq!(Func::Min.arity(), 2);
        assert_eq!(Func::Exp.arity(), 1);
        assert_eq!(Func::Max.apply(&[1.0, 3.0]), 3.0);
    }

    #[test]
    fn cmp_ops_return_indicator_values() {
        assert_eq!(CmpOp::Lt.apply(1.0, 2.0), 1.0);
        assert_eq!(CmpOp::Ge.apply(1.0, 2.0), 0.0);
        assert_eq!(CmpOp::Ne.apply(1.0, 1.0), 0.0);
    }

    #[test]
    fn node_count_counts_all_nodes() {
        let e = crate::parser::parse_expr("a + b * c").unwrap();
        assert_eq!(e.node_count(), 5);
    }

    #[test]
    fn contains_symbol_finds_nested() {
        let e = crate::parser::parse_expr("exp(a * ln(b))").unwrap();
        assert!(e.contains_symbol("b"));
        assert!(!e.contains_symbol("c"));
    }
}
