//! Vectorized bytecode compilation of expressions.
//!
//! Model-backed query answering evaluates one model body over millions of
//! reconstructed rows (the paper's "zero-IO scan" turns an IO-bound scan
//! into a CPU-bound recomputation, Section 4.1). A per-row tree walk with
//! name lookups would dominate that CPU cost, so expressions are compiled
//! once into a flat postfix program whose operands are *slot indices*
//! resolved at compile time, and then executed over column batches with a
//! reusable stack of `Vec<f64>` registers.

use crate::ast::{CmpOp, Expr, Func};
use crate::error::{ExprError, Result};

/// One bytecode instruction. Operands live on an implicit value stack of
/// whole column vectors.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Op {
    /// Push a constant, broadcast over the batch.
    Const(f64),
    /// Push the column bound to slot *i* (batched input).
    LoadCol(u16),
    /// Push the scalar bound to slot *i*, broadcast (fitted parameters).
    LoadScalar(u16),
    Add,
    Sub,
    Mul,
    Div,
    Pow,
    Neg,
    Not,
    And,
    Or,
    Cmp(CmpOp),
    Call1(Func),
    Call2(Func),
}

/// A compiled expression: postfix program plus the symbol→slot map.
///
/// Symbols are split at compile time into *column* slots (vary per row)
/// and *scalar* slots (constant across the batch — the fitted
/// parameters). The split is supplied by the caller, because only the
/// schema knows which identifiers are columns.
#[derive(Debug, Clone)]
pub struct CompiledExpr {
    ops: Vec<Op>,
    /// Column symbol names in slot order.
    columns: Vec<String>,
    /// Scalar symbol names in slot order.
    scalars: Vec<String>,
    /// Maximum stack depth, pre-computed so execution never reallocates.
    max_depth: usize,
}

impl CompiledExpr {
    /// Compile `expr`, treating the names in `column_syms` as batched
    /// columns and every other symbol as a broadcast scalar.
    pub fn compile(expr: &Expr, column_syms: &[&str]) -> Result<CompiledExpr> {
        let mut columns: Vec<String> = Vec::new();
        let mut scalars: Vec<String> = Vec::new();
        for s in expr.symbols() {
            if column_syms.contains(&s.as_str()) {
                columns.push(s);
            } else {
                scalars.push(s);
            }
        }
        let mut ops = Vec::with_capacity(expr.node_count());
        emit(expr, &columns, &scalars, &mut ops)?;
        let max_depth = stack_depth(&ops);
        Ok(CompiledExpr { ops, columns, scalars, max_depth })
    }

    /// Column symbol names, in the order `eval_batch` expects them.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Scalar symbol names, in the order `eval_batch` expects them.
    pub fn scalars(&self) -> &[String] {
        &self.scalars
    }

    /// Evaluate over a batch.
    ///
    /// `cols[i]` is the data for `self.columns()[i]`; all columns must
    /// share one length. `scalars[i]` is the value for
    /// `self.scalars()[i]`. Returns one output value per row.
    pub fn eval_batch(&self, cols: &[&[f64]], scalars: &[f64]) -> Result<Vec<f64>> {
        let n = self.batch_len(cols, scalars)?;
        let mut stack = ExecStack::new(self.max_depth, n);
        self.run(cols, scalars, n, &mut stack)?;
        Ok(stack.pop_final())
    }

    /// Evaluate into a caller-provided stack, letting hot loops reuse
    /// buffers across calls. Returns the result by value (the top
    /// register is swapped out, not copied).
    pub fn eval_batch_with(
        &self,
        cols: &[&[f64]],
        scalars: &[f64],
        stack: &mut ExecStack,
    ) -> Result<Vec<f64>> {
        let n = self.batch_len(cols, scalars)?;
        stack.reset(self.max_depth, n);
        self.run(cols, scalars, n, stack)?;
        Ok(stack.pop_final())
    }

    fn batch_len(&self, cols: &[&[f64]], scalars: &[f64]) -> Result<usize> {
        if cols.len() != self.columns.len() {
            return Err(ExprError::LengthMismatch {
                expected: self.columns.len(),
                got: cols.len(),
                symbol: "<column count>".to_string(),
            });
        }
        if scalars.len() != self.scalars.len() {
            return Err(ExprError::LengthMismatch {
                expected: self.scalars.len(),
                got: scalars.len(),
                symbol: "<scalar count>".to_string(),
            });
        }
        let n = cols.first().map_or(1, |c| c.len());
        for (i, c) in cols.iter().enumerate() {
            if c.len() != n {
                return Err(ExprError::LengthMismatch {
                    expected: n,
                    got: c.len(),
                    symbol: self.columns[i].clone(),
                });
            }
        }
        Ok(n)
    }

    fn run(&self, cols: &[&[f64]], scalars: &[f64], n: usize, stack: &mut ExecStack) -> Result<()> {
        for op in &self.ops {
            match *op {
                Op::Const(v) => stack.push_fill(v, n),
                Op::LoadScalar(i) => stack.push_fill(scalars[i as usize], n),
                Op::LoadCol(i) => stack.push_copy(cols[i as usize]),
                Op::Add => stack.binary(|a, b| a + b),
                Op::Sub => stack.binary(|a, b| a - b),
                Op::Mul => stack.binary(|a, b| a * b),
                Op::Div => stack.binary(|a, b| a / b),
                Op::Pow => stack.binary(f64::powf),
                Op::Neg => stack.unary(|a| -a),
                Op::Not => stack.unary(|a| if a != 0.0 { 0.0 } else { 1.0 }),
                Op::And => {
                    stack.binary(|a, b| if a != 0.0 && b != 0.0 { 1.0 } else { 0.0 })
                }
                Op::Or => stack.binary(|a, b| if a != 0.0 || b != 0.0 { 1.0 } else { 0.0 }),
                Op::Cmp(c) => stack.binary(move |a, b| c.apply(a, b)),
                Op::Call1(f) => stack.unary(move |a| f.apply(&[a])),
                Op::Call2(f) => stack.binary(move |a, b| f.apply(&[a, b])),
            }
        }
        Ok(())
    }
}

/// Reusable execution stack of column registers.
#[derive(Debug, Default)]
pub struct ExecStack {
    regs: Vec<Vec<f64>>,
    top: usize,
}

impl ExecStack {
    fn new(depth: usize, n: usize) -> ExecStack {
        let mut s = ExecStack::default();
        s.reset(depth, n);
        s
    }

    fn reset(&mut self, depth: usize, n: usize) {
        self.top = 0;
        while self.regs.len() < depth {
            self.regs.push(Vec::new());
        }
        for r in &mut self.regs {
            // Resize up front so push paths are plain writes.
            r.clear();
            r.resize(n, 0.0);
        }
    }

    #[inline]
    fn push_fill(&mut self, v: f64, n: usize) {
        let reg = &mut self.regs[self.top];
        reg.clear();
        reg.resize(n, v);
        self.top += 1;
    }

    #[inline]
    fn push_copy(&mut self, src: &[f64]) {
        let reg = &mut self.regs[self.top];
        reg.clear();
        reg.extend_from_slice(src);
        self.top += 1;
    }

    #[inline]
    fn unary(&mut self, f: impl Fn(f64) -> f64) {
        let reg = &mut self.regs[self.top - 1];
        for v in reg.iter_mut() {
            *v = f(*v);
        }
    }

    #[inline]
    fn binary(&mut self, f: impl Fn(f64, f64) -> f64) {
        // Stack layout: ... a b  →  ... f(a, b)
        let (head, tail) = self.regs.split_at_mut(self.top - 1);
        let a = &mut head[self.top - 2];
        let b = &tail[0];
        for (x, &y) in a.iter_mut().zip(b.iter()) {
            *x = f(*x, y);
        }
        self.top -= 1;
    }

    fn pop_final(&mut self) -> Vec<f64> {
        debug_assert_eq!(self.top, 1, "program must leave exactly one value");
        self.top = 0;
        std::mem::take(&mut self.regs[0])
    }
}

fn emit(expr: &Expr, columns: &[String], scalars: &[String], ops: &mut Vec<Op>) -> Result<()> {
    match expr {
        Expr::Num(v) => ops.push(Op::Const(*v)),
        Expr::Sym(s) => {
            if let Some(i) = columns.iter().position(|c| c == s) {
                ops.push(Op::LoadCol(i as u16));
            } else if let Some(i) = scalars.iter().position(|c| c == s) {
                ops.push(Op::LoadScalar(i as u16));
            } else {
                return Err(ExprError::UnboundSymbol { name: s.clone() });
            }
        }
        Expr::Add(a, b) => {
            emit(a, columns, scalars, ops)?;
            emit(b, columns, scalars, ops)?;
            ops.push(Op::Add);
        }
        Expr::Sub(a, b) => {
            emit(a, columns, scalars, ops)?;
            emit(b, columns, scalars, ops)?;
            ops.push(Op::Sub);
        }
        Expr::Mul(a, b) => {
            emit(a, columns, scalars, ops)?;
            emit(b, columns, scalars, ops)?;
            ops.push(Op::Mul);
        }
        Expr::Div(a, b) => {
            emit(a, columns, scalars, ops)?;
            emit(b, columns, scalars, ops)?;
            ops.push(Op::Div);
        }
        Expr::Pow(a, b) => {
            emit(a, columns, scalars, ops)?;
            emit(b, columns, scalars, ops)?;
            ops.push(Op::Pow);
        }
        Expr::Neg(a) => {
            emit(a, columns, scalars, ops)?;
            ops.push(Op::Neg);
        }
        Expr::Not(a) => {
            emit(a, columns, scalars, ops)?;
            ops.push(Op::Not);
        }
        Expr::And(a, b) => {
            emit(a, columns, scalars, ops)?;
            emit(b, columns, scalars, ops)?;
            ops.push(Op::And);
        }
        Expr::Or(a, b) => {
            emit(a, columns, scalars, ops)?;
            emit(b, columns, scalars, ops)?;
            ops.push(Op::Or);
        }
        Expr::Cmp(op, a, b) => {
            emit(a, columns, scalars, ops)?;
            emit(b, columns, scalars, ops)?;
            ops.push(Op::Cmp(*op));
        }
        Expr::Call(f, args) => {
            for a in args {
                emit(a, columns, scalars, ops)?;
            }
            ops.push(if f.arity() == 1 { Op::Call1(*f) } else { Op::Call2(*f) });
        }
    }
    Ok(())
}

/// Compute the maximum stack depth of a postfix program.
fn stack_depth(ops: &[Op]) -> usize {
    let mut depth = 0usize;
    let mut max = 0usize;
    for op in ops {
        match op {
            Op::Const(_) | Op::LoadCol(_) | Op::LoadScalar(_) => {
                depth += 1;
                max = max.max(depth);
            }
            Op::Neg | Op::Not | Op::Call1(_) => {}
            _ => depth -= 1, // all binary ops consume one
        }
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Bindings;
    use crate::parser::parse_expr;

    fn compile(src: &str, cols: &[&str]) -> CompiledExpr {
        CompiledExpr::compile(&parse_expr(src).unwrap(), cols).unwrap()
    }

    #[test]
    fn batch_matches_scalar_eval() {
        let src = "p * nu ^ alpha + ln(nu) / 2";
        let ce = compile(src, &["nu"]);
        let e = parse_expr(src).unwrap();
        let nus = [0.12, 0.15, 0.16, 0.18];
        // scalar slots sorted: [alpha, p]
        assert_eq!(ce.scalars(), &["alpha".to_string(), "p".to_string()]);
        let out = ce.eval_batch(&[&nus], &[-0.7, 2.0]).unwrap();
        for (i, &nu) in nus.iter().enumerate() {
            let b: Bindings =
                [("p", 2.0), ("alpha", -0.7), ("nu", nu)].into_iter().collect();
            assert!((out[i] - e.eval(&b).unwrap()).abs() < 1e-15);
        }
    }

    #[test]
    fn constant_expression_broadcasts_to_len_one() {
        let ce = compile("2 + 3", &[]);
        assert_eq!(ce.eval_batch(&[], &[]).unwrap(), vec![5.0]);
    }

    #[test]
    fn length_mismatch_is_rejected() {
        let ce = compile("a + b", &["a", "b"]);
        let a = [1.0, 2.0];
        let b = [1.0];
        assert!(matches!(
            ce.eval_batch(&[&a, &b], &[]),
            Err(ExprError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn wrong_scalar_count_is_rejected() {
        let ce = compile("a * k", &["a"]);
        let a = [1.0];
        assert!(ce.eval_batch(&[&a], &[]).is_err());
        assert!(ce.eval_batch(&[&a], &[2.0]).is_ok());
    }

    #[test]
    fn comparison_produces_indicator_column() {
        let ce = compile("x > 1.5", &["x"]);
        let x = [1.0, 2.0, 1.5, 7.0];
        assert_eq!(ce.eval_batch(&[&x], &[]).unwrap(), vec![0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn stack_reuse_across_batches() {
        let ce = compile("sin(x) * cos(x)", &["x"]);
        let mut stack = ExecStack::default();
        for n in [1usize, 7, 256] {
            let xs: Vec<f64> = (0..n).map(|i| i as f64 * 0.1).collect();
            let out = ce.eval_batch_with(&[&xs], &[], &mut stack).unwrap();
            assert_eq!(out.len(), n);
            for (o, x) in out.iter().zip(&xs) {
                assert!((o - x.sin() * x.cos()).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn deep_expression_has_correct_depth() {
        // ((((1+2)+3)+4)+5) needs depth 2; 1+(2+(3+(4+5))) needs depth 5.
        let left = compile("1+2+3+4+5", &[]);
        assert_eq!(left.max_depth, 2);
        let right = compile("1+(2+(3+(4+5)))", &[]);
        assert_eq!(right.max_depth, 5);
        assert_eq!(left.eval_batch(&[], &[]).unwrap(), vec![15.0]);
        assert_eq!(right.eval_batch(&[], &[]).unwrap(), vec![15.0]);
    }

    #[test]
    fn two_arg_function_in_bytecode() {
        let ce = compile("max(x, 0)", &["x"]);
        let x = [-1.0, 2.0];
        assert_eq!(ce.eval_batch(&[&x], &[]).unwrap(), vec![0.0, 2.0]);
    }
}
