//! Recursive-descent parser for model formulas and filter expressions.
//!
//! Grammar (lowest to highest precedence):
//!
//! ```text
//! formula    := ident '~' or_expr
//! or_expr    := and_expr ( '||' and_expr )*
//! and_expr   := cmp_expr ( '&&' cmp_expr )*
//! cmp_expr   := add_expr ( ('<'|'<='|'>'|'>='|'=='|'!=') add_expr )?
//! add_expr   := mul_expr ( ('+'|'-') mul_expr )*
//! mul_expr   := unary ( ('*'|'/') unary )*
//! unary      := ('-'|'!') unary | pow
//! pow        := atom ( '^' unary )?          // right-associative
//! atom       := number | ident | ident '(' args ')' | '(' or_expr ')'
//! ```

use crate::ast::{CmpOp, Expr, Func};
use crate::error::{ExprError, Result};
use crate::token::{tokenize, Token, TokenKind};

/// A parsed model formula `response ~ body`.
#[derive(Debug, Clone, PartialEq)]
pub struct Formula {
    /// Name of the observed output column.
    pub response: String,
    /// Model body — function of variables and parameters.
    pub rhs: Expr,
    /// Original source text (stored verbatim in the model catalog).
    pub source: String,
}

/// The variable/parameter split of a formula's symbols against a known
/// set of column names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymbolSplit {
    /// Symbols that name table columns — the model's input variables.
    pub variables: Vec<String>,
    /// Remaining symbols — the unknown parameters to fit.
    pub parameters: Vec<String>,
}

impl Formula {
    /// Split the body's symbols into variables (present in `columns`)
    /// and parameters (everything else), per Section 3: "an arbitrary
    /// function of the input variables and various constant but unknown
    /// parameters". Both lists come out sorted.
    pub fn split_symbols(&self, columns: &[&str]) -> SymbolSplit {
        let mut variables = Vec::new();
        let mut parameters = Vec::new();
        for s in self.rhs.symbols() {
            if columns.contains(&s.as_str()) {
                variables.push(s);
            } else {
                parameters.push(s);
            }
        }
        SymbolSplit { variables, parameters }
    }
}

/// Parse a full formula of the form `response ~ body`.
pub fn parse_formula(src: &str) -> Result<Formula> {
    let tokens = tokenize(src)?;
    let tilde_at = tokens
        .iter()
        .position(|t| t.kind == TokenKind::Tilde)
        .ok_or(ExprError::MalformedFormula { reason: "missing '~' separator" })?;
    if tilde_at != 1 {
        return Err(ExprError::MalformedFormula {
            reason: "response side must be a single identifier",
        });
    }
    let response = match &tokens[0].kind {
        TokenKind::Ident(name) => name.clone(),
        _ => {
            return Err(ExprError::MalformedFormula {
                reason: "response side must be a single identifier",
            })
        }
    };
    let mut p = Parser { tokens: &tokens[tilde_at + 1..], pos: 0 };
    let rhs = p.parse_or()?;
    p.expect_end()?;
    Ok(Formula { response, rhs, source: src.trim().to_string() })
}

/// Parse a bare expression (model body or filter predicate).
pub fn parse_expr(src: &str) -> Result<Expr> {
    let tokens = tokenize(src)?;
    let mut p = Parser { tokens: &tokens, pos: 0 };
    let e = p.parse_or()?;
    p.expect_end()?;
    Ok(e)
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn peek_pos(&self) -> usize {
        self.tokens.get(self.pos).map_or(usize::MAX, |t| t.pos)
    }

    fn bump(&mut self) -> Option<&Token> {
        let t = self.tokens.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, kind: &TokenKind, expected: &'static str) -> Result<()> {
        match self.peek() {
            Some(k) if k == kind => {
                self.pos += 1;
                Ok(())
            }
            Some(k) => Err(ExprError::UnexpectedToken {
                found: k.describe(),
                expected,
                pos: self.peek_pos(),
            }),
            None => Err(ExprError::UnexpectedEnd { expected }),
        }
    }

    fn expect_end(&self) -> Result<()> {
        match self.peek() {
            None => Ok(()),
            Some(k) => Err(ExprError::UnexpectedToken {
                found: k.describe(),
                expected: "end of input",
                pos: self.peek_pos(),
            }),
        }
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_and()?;
        while self.peek() == Some(&TokenKind::OrOr) {
            self.pos += 1;
            let rhs = self.parse_and()?;
            lhs = Expr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_cmp()?;
        while self.peek() == Some(&TokenKind::AndAnd) {
            self.pos += 1;
            let rhs = self.parse_cmp()?;
            lhs = Expr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_cmp(&mut self) -> Result<Expr> {
        let lhs = self.parse_add()?;
        let op = match self.peek() {
            Some(TokenKind::Lt) => CmpOp::Lt,
            Some(TokenKind::Le) => CmpOp::Le,
            Some(TokenKind::Gt) => CmpOp::Gt,
            Some(TokenKind::Ge) => CmpOp::Ge,
            Some(TokenKind::EqEq) => CmpOp::Eq,
            Some(TokenKind::Ne) => CmpOp::Ne,
            _ => return Ok(lhs),
        };
        self.pos += 1;
        let rhs = self.parse_add()?;
        Ok(Expr::Cmp(op, Box::new(lhs), Box::new(rhs)))
    }

    fn parse_add(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_mul()?;
        loop {
            match self.peek() {
                Some(TokenKind::Plus) => {
                    self.pos += 1;
                    let rhs = self.parse_mul()?;
                    lhs = Expr::Add(Box::new(lhs), Box::new(rhs));
                }
                Some(TokenKind::Minus) => {
                    self.pos += 1;
                    let rhs = self.parse_mul()?;
                    lhs = Expr::Sub(Box::new(lhs), Box::new(rhs));
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn parse_mul(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_unary()?;
        loop {
            match self.peek() {
                Some(TokenKind::Star) => {
                    self.pos += 1;
                    let rhs = self.parse_unary()?;
                    lhs = Expr::Mul(Box::new(lhs), Box::new(rhs));
                }
                Some(TokenKind::Slash) => {
                    self.pos += 1;
                    let rhs = self.parse_unary()?;
                    lhs = Expr::Div(Box::new(lhs), Box::new(rhs));
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        match self.peek() {
            Some(TokenKind::Minus) => {
                self.pos += 1;
                let inner = self.parse_unary()?;
                // Fold a negated literal into a negative literal so that
                // display → parse round-trips structurally (`-0.5` is
                // Num(-0.5), not Neg(Num(0.5))). Applies only when the
                // operand is *exactly* a literal; `-2 ^ 2` still parses
                // as -(2^2) because `^` binds inside parse_unary first.
                if let Expr::Num(v) = inner {
                    return Ok(Expr::Num(-v));
                }
                Ok(Expr::Neg(Box::new(inner)))
            }
            Some(TokenKind::Bang) => {
                self.pos += 1;
                let inner = self.parse_unary()?;
                Ok(Expr::Not(Box::new(inner)))
            }
            _ => self.parse_pow(),
        }
    }

    fn parse_pow(&mut self) -> Result<Expr> {
        let base = self.parse_atom()?;
        if self.peek() == Some(&TokenKind::Caret) {
            self.pos += 1;
            // Right-associative: `a^b^c` = `a^(b^c)`; exponent may carry
            // a unary minus: `nu ^ -alpha`.
            let exponent = self.parse_unary()?;
            return Ok(Expr::Pow(Box::new(base), Box::new(exponent)));
        }
        Ok(base)
    }

    fn parse_atom(&mut self) -> Result<Expr> {
        let pos = self.peek_pos();
        match self.bump().map(|t| t.kind.clone()) {
            Some(TokenKind::Number(v)) => Ok(Expr::Num(v)),
            Some(TokenKind::Ident(name)) => {
                if self.peek() == Some(&TokenKind::LParen) {
                    self.pos += 1;
                    let mut args = Vec::new();
                    if self.peek() != Some(&TokenKind::RParen) {
                        loop {
                            args.push(self.parse_or()?);
                            if self.peek() == Some(&TokenKind::Comma) {
                                self.pos += 1;
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(&TokenKind::RParen, "')'")?;
                    let func = Func::by_name(&name)
                        .ok_or_else(|| ExprError::UnknownFunction { name: name.clone() })?;
                    if args.len() != func.arity() {
                        return Err(ExprError::WrongArity {
                            func: func.name(),
                            expected: func.arity(),
                            got: args.len(),
                        });
                    }
                    Ok(Expr::Call(func, args))
                } else {
                    Ok(Expr::Sym(name))
                }
            }
            Some(TokenKind::LParen) => {
                let e = self.parse_or()?;
                self.expect(&TokenKind::RParen, "')'")?;
                Ok(e)
            }
            Some(k) => Err(ExprError::UnexpectedToken {
                found: k.describe(),
                expected: "number, identifier or '('",
                pos,
            }),
            None => Err(ExprError::UnexpectedEnd { expected: "number, identifier or '('" }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(src: &str, pairs: &[(&str, f64)]) -> f64 {
        let e = parse_expr(src).unwrap();
        let mut b = crate::eval::Bindings::new();
        for (k, v) in pairs {
            b.set(k, *v);
        }
        e.eval(&b).unwrap()
    }

    #[test]
    fn precedence_mul_over_add() {
        assert_eq!(eval("1 + 2 * 3", &[]), 7.0);
        assert_eq!(eval("(1 + 2) * 3", &[]), 9.0);
    }

    #[test]
    fn pow_is_right_associative_and_binds_tighter_than_mul() {
        assert_eq!(eval("2 ^ 3 ^ 2", &[]), 512.0);
        assert_eq!(eval("2 * 3 ^ 2", &[]), 18.0);
    }

    #[test]
    fn unary_minus_in_exponent() {
        assert!((eval("2 ^ -1", &[]) - 0.5).abs() < 1e-15);
        // -2^2 parses as -(2^2) like in R and Python.
        assert_eq!(eval("-2 ^ 2", &[]), -4.0);
    }

    #[test]
    fn function_calls_and_arity_checking() {
        assert!((eval("exp(ln(5))", &[]) - 5.0).abs() < 1e-12);
        assert_eq!(eval("max(2, min(3, 4))", &[]), 3.0);
        assert!(matches!(parse_expr("exp(1, 2)"), Err(ExprError::WrongArity { .. })));
        assert!(matches!(parse_expr("frob(1)"), Err(ExprError::UnknownFunction { .. })));
    }

    #[test]
    fn comparison_and_logic() {
        assert_eq!(eval("1 < 2 && 3 > 2", &[]), 1.0);
        assert_eq!(eval("1 < 2 && 3 < 2", &[]), 0.0);
        assert_eq!(eval("1 > 2 || 3 > 2", &[]), 1.0);
        assert_eq!(eval("!(1 > 2)", &[]), 1.0);
        assert_eq!(eval("x >= 0.12 && x <= 0.18", &[("x", 0.15)]), 1.0);
    }

    #[test]
    fn formula_parsing() {
        let f = parse_formula("intensity ~ p * nu ^ alpha").unwrap();
        assert_eq!(f.response, "intensity");
        assert_eq!(f.source, "intensity ~ p * nu ^ alpha");
        let split = f.split_symbols(&["nu", "intensity"]);
        assert_eq!(split.variables, vec!["nu"]);
        assert_eq!(split.parameters, vec!["alpha", "p"]);
    }

    #[test]
    fn formula_requires_simple_response() {
        assert!(matches!(parse_formula("a + b ~ c"), Err(ExprError::MalformedFormula { .. })));
        assert!(matches!(parse_formula("a + b"), Err(ExprError::MalformedFormula { .. })));
        assert!(matches!(parse_formula("1 ~ c"), Err(ExprError::MalformedFormula { .. })));
    }

    #[test]
    fn trailing_tokens_are_rejected() {
        assert!(matches!(parse_expr("1 + 2 3"), Err(ExprError::UnexpectedToken { .. })));
        assert!(matches!(parse_expr("(1 + 2"), Err(ExprError::UnexpectedEnd { .. })));
    }

    #[test]
    fn deeply_nested_parens() {
        assert_eq!(eval("((((1))))", &[]), 1.0);
    }

    #[test]
    fn linear_model_formula() {
        // y = b0 + b1*x — the "simpler case of linear models".
        let f = parse_formula("y ~ b0 + b1 * x").unwrap();
        let split = f.split_symbols(&["x", "y"]);
        assert_eq!(split.parameters, vec!["b0", "b1"]);
        assert_eq!(split.variables, vec!["x"]);
    }
}
