//! Symbolic differentiation of model bodies.
//!
//! The Gauss-Newton iteration in Section 3 of the paper needs the
//! Jacobian `Jr = ∂rᵢ(β)/∂βⱼ` of the residual functions in the model
//! parameters. Because residuals are `observed − model(β, x)`, it is
//! enough to differentiate the model body symbolically with respect to
//! each parameter; the fitter negates the result.
//!
//! Compared with finite differences (also implemented, in `lawsdb-fit`,
//! for the ablation benchmark), symbolic Jacobians avoid both the extra
//! model evaluations and the step-size/accuracy trade-off.

use crate::ast::{Expr, Func};
use crate::error::{ExprError, Result};
use crate::simplify::simplify;

/// Differentiate `expr` with respect to symbol `wrt` and simplify the
/// result.
///
/// Fails with [`ExprError::NotDifferentiable`] when the path to `wrt`
/// crosses a construct without a derivative (comparisons, boolean
/// connectives, `floor`/`ceil`, or `abs`/`min`/`max`, which are only
/// piecewise differentiable and deliberately rejected to keep fitting
/// honest).
pub fn differentiate(expr: &Expr, wrt: &str) -> Result<Expr> {
    Ok(simplify(&d(expr, wrt)?))
}

/// Gradient with respect to several symbols at once.
pub fn gradient(expr: &Expr, wrt: &[&str]) -> Result<Vec<Expr>> {
    wrt.iter().map(|w| differentiate(expr, w)).collect()
}

fn d(e: &Expr, x: &str) -> Result<Expr> {
    // Subtrees not containing x differentiate to zero regardless of the
    // constructs they contain; checking first keeps e.g. a comparison in
    // an unrelated branch from poisoning the derivative.
    if !e.contains_symbol(x) {
        return Ok(Expr::Num(0.0));
    }
    Ok(match e {
        Expr::Num(_) => Expr::Num(0.0),
        Expr::Sym(s) => {
            if s == x {
                Expr::Num(1.0)
            } else {
                Expr::Num(0.0)
            }
        }
        Expr::Add(a, b) => Expr::Add(Box::new(d(a, x)?), Box::new(d(b, x)?)),
        Expr::Sub(a, b) => Expr::Sub(Box::new(d(a, x)?), Box::new(d(b, x)?)),
        Expr::Neg(a) => Expr::Neg(Box::new(d(a, x)?)),
        Expr::Mul(a, b) => {
            // Product rule: a'b + ab'
            Expr::Add(
                Box::new(Expr::Mul(Box::new(d(a, x)?), b.clone())),
                Box::new(Expr::Mul(a.clone(), Box::new(d(b, x)?))),
            )
        }
        Expr::Div(a, b) => {
            // Quotient rule: (a'b − ab') / b²
            Expr::Div(
                Box::new(Expr::Sub(
                    Box::new(Expr::Mul(Box::new(d(a, x)?), b.clone())),
                    Box::new(Expr::Mul(a.clone(), Box::new(d(b, x)?))),
                )),
                Box::new(Expr::Pow(b.clone(), Box::new(Expr::Num(2.0)))),
            )
        }
        Expr::Pow(a, b) => {
            let da = d(a, x)?;
            let db = d(b, x)?;
            let a_has = a.contains_symbol(x);
            let b_has = b.contains_symbol(x);
            match (a_has, b_has) {
                // u^c → c·u^(c−1)·u'
                (true, false) => Expr::Mul(
                    Box::new(Expr::Mul(
                        b.clone(),
                        Box::new(Expr::Pow(
                            a.clone(),
                            Box::new(Expr::Sub(b.clone(), Box::new(Expr::Num(1.0)))),
                        )),
                    )),
                    Box::new(da),
                ),
                // c^v → c^v·ln(c)·v' — exactly the spectral-index case
                // nu^alpha differentiated in alpha.
                (false, true) => Expr::Mul(
                    Box::new(Expr::Mul(
                        Box::new(e.clone()),
                        Box::new(Expr::Call(Func::Ln, vec![(**a).clone()])),
                    )),
                    Box::new(db),
                ),
                // u^v → u^v·(v'·ln u + v·u'/u)
                (true, true) => Expr::Mul(
                    Box::new(e.clone()),
                    Box::new(Expr::Add(
                        Box::new(Expr::Mul(
                            Box::new(db),
                            Box::new(Expr::Call(Func::Ln, vec![(**a).clone()])),
                        )),
                        Box::new(Expr::Div(
                            Box::new(Expr::Mul(b.clone(), Box::new(da))),
                            a.clone(),
                        )),
                    )),
                ),
                (false, false) => unreachable!("guarded by contains_symbol above"),
            }
        }
        Expr::Call(f, args) => {
            let u = &args[0];
            let du = d(u, x)?;
            let outer = match f {
                Func::Exp => Expr::Call(Func::Exp, vec![u.clone()]),
                Func::Ln => Expr::Div(Box::new(Expr::Num(1.0)), Box::new(u.clone())),
                Func::Log10 => Expr::Div(
                    Box::new(Expr::Num(std::f64::consts::LOG10_E)),
                    Box::new(u.clone()),
                ),
                Func::Sqrt => Expr::Div(
                    Box::new(Expr::Num(0.5)),
                    Box::new(Expr::Call(Func::Sqrt, vec![u.clone()])),
                ),
                Func::Sin => Expr::Call(Func::Cos, vec![u.clone()]),
                Func::Cos => Expr::Neg(Box::new(Expr::Call(Func::Sin, vec![u.clone()]))),
                Func::Tan => {
                    // sec² u = 1 / cos² u
                    Expr::Div(
                        Box::new(Expr::Num(1.0)),
                        Box::new(Expr::Pow(
                            Box::new(Expr::Call(Func::Cos, vec![u.clone()])),
                            Box::new(Expr::Num(2.0)),
                        )),
                    )
                }
                Func::Abs | Func::Min | Func::Max | Func::Floor | Func::Ceil => {
                    return Err(ExprError::NotDifferentiable { construct: f.name() })
                }
            };
            Expr::Mul(Box::new(outer), Box::new(du))
        }
        Expr::Cmp(..) => return Err(ExprError::NotDifferentiable { construct: "comparison" }),
        Expr::And(..) | Expr::Or(..) | Expr::Not(..) => {
            return Err(ExprError::NotDifferentiable { construct: "boolean operator" })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Bindings;
    use crate::parser::parse_expr;

    /// Central finite difference for cross-checking symbolic results.
    fn numeric_d(src: &str, wrt: &str, at: &[(&str, f64)]) -> f64 {
        let e = parse_expr(src).unwrap();
        let h = 1e-6;
        let mut lo: Bindings = at.iter().copied().collect();
        let mut hi: Bindings = at.iter().copied().collect();
        let x0 = lo.get(wrt).unwrap();
        lo.set(wrt, x0 - h);
        hi.set(wrt, x0 + h);
        (e.eval(&hi).unwrap() - e.eval(&lo).unwrap()) / (2.0 * h)
    }

    fn symbolic_d(src: &str, wrt: &str, at: &[(&str, f64)]) -> f64 {
        let e = parse_expr(src).unwrap();
        let de = differentiate(&e, wrt).unwrap();
        let b: Bindings = at.iter().copied().collect();
        de.eval(&b).unwrap()
    }

    fn check(src: &str, wrt: &str, at: &[(&str, f64)]) {
        let s = symbolic_d(src, wrt, at);
        let n = numeric_d(src, wrt, at);
        let scale = 1.0 + n.abs();
        assert!((s - n).abs() / scale < 1e-5, "{src} d/d{wrt}: symbolic {s} vs numeric {n}");
    }

    #[test]
    fn polynomial_rules() {
        check("3 * x ^ 2 + 2 * x + 1", "x", &[("x", 1.7)]);
        check("x ^ 5 - x ^ 3", "x", &[("x", 0.8)]);
    }

    #[test]
    fn power_law_in_both_arguments() {
        let at = [("p", 2.0), ("nu", 0.5), ("alpha", -0.7)];
        check("p * nu ^ alpha", "p", &at);
        check("p * nu ^ alpha", "alpha", &at);
        check("p * nu ^ alpha", "nu", &at);
    }

    #[test]
    fn general_power_u_pow_v() {
        check("x ^ x", "x", &[("x", 1.3)]);
    }

    #[test]
    fn transcendental_functions() {
        check("exp(2 * x)", "x", &[("x", 0.4)]);
        check("ln(x ^ 2 + 1)", "x", &[("x", 1.1)]);
        check("log10(x)", "x", &[("x", 3.0)]);
        check("sqrt(x + 1)", "x", &[("x", 2.0)]);
        check("sin(x) * cos(x)", "x", &[("x", 0.6)]);
        check("tan(x / 2)", "x", &[("x", 0.9)]);
    }

    #[test]
    fn quotient_rule() {
        check("x / (1 + x)", "x", &[("x", 2.5)]);
        check("(x ^ 2 + 1) / (x - 3)", "x", &[("x", 1.0)]);
    }

    #[test]
    fn derivative_wrt_absent_symbol_is_zero() {
        let e = parse_expr("a * b + sin(c)").unwrap();
        assert_eq!(differentiate(&e, "zz").unwrap(), Expr::Num(0.0));
    }

    #[test]
    fn unrelated_nondifferentiable_branch_is_fine() {
        // The comparison doesn't involve x, so d/dx succeeds.
        let e = parse_expr("x ^ 2 + (a > 1)").unwrap();
        let de = differentiate(&e, "x").unwrap();
        let b: Bindings = [("x", 3.0), ("a", 5.0)].into_iter().collect();
        assert!((de.eval(&b).unwrap() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn nondifferentiable_constructs_are_rejected() {
        for src in ["abs(x)", "min(x, 1)", "floor(x)", "x > 1", "(x > 1) && (x < 2)"] {
            let e = parse_expr(src).unwrap();
            assert!(
                matches!(differentiate(&e, "x"), Err(ExprError::NotDifferentiable { .. })),
                "{src} should be rejected"
            );
        }
    }

    #[test]
    fn gradient_returns_one_entry_per_parameter() {
        let e = parse_expr("p * nu ^ alpha").unwrap();
        let g = gradient(&e, &["p", "alpha"]).unwrap();
        assert_eq!(g.len(), 2);
        // dp is nu^alpha
        let b: Bindings = [("p", 2.0), ("nu", 0.5), ("alpha", -0.7)].into_iter().collect();
        assert!((g[0].eval(&b).unwrap() - 0.5_f64.powf(-0.7)).abs() < 1e-12);
    }

    #[test]
    fn derivatives_are_simplified() {
        // d/dx (x) = 1 exactly, not (1 * 1 + x * 0) etc.
        let e = parse_expr("x").unwrap();
        assert_eq!(differentiate(&e, "x").unwrap(), Expr::Num(1.0));
        let e = parse_expr("2 * x").unwrap();
        assert_eq!(differentiate(&e, "x").unwrap(), Expr::Num(2.0));
    }
}
