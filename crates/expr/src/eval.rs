//! Scalar (tree-walking) evaluation of expressions.
//!
//! The scalar evaluator is the reference semantics; the vectorized
//! bytecode evaluator in [`crate::compile`] must agree with it exactly
//! (there is a property test asserting this).

use crate::ast::Expr;
use crate::error::{ExprError, Result};

/// Symbol table mapping names to scalar values.
///
/// Small formulas bind a handful of symbols, so a sorted `Vec` beats a
/// `HashMap` here both in speed and in allocation count.
#[derive(Debug, Clone, Default)]
pub struct Bindings {
    entries: Vec<(String, f64)>,
}

impl Bindings {
    /// Empty binding set.
    pub fn new() -> Self {
        Bindings::default()
    }

    /// Bind `name` to `value`, replacing any previous binding.
    pub fn set(&mut self, name: &str, value: f64) {
        match self.entries.binary_search_by(|(k, _)| k.as_str().cmp(name)) {
            Ok(i) => self.entries[i].1 = value,
            Err(i) => self.entries.insert(i, (name.to_string(), value)),
        }
    }

    /// Look a binding up.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.entries
            .binary_search_by(|(k, _)| k.as_str().cmp(name))
            .ok()
            .map(|i| self.entries[i].1)
    }

    /// Number of bound symbols.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no symbols are bound.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), *v))
    }
}

impl<'a> FromIterator<(&'a str, f64)> for Bindings {
    fn from_iter<T: IntoIterator<Item = (&'a str, f64)>>(iter: T) -> Self {
        let mut b = Bindings::new();
        for (k, v) in iter {
            b.set(k, v);
        }
        b
    }
}

impl Expr {
    /// Evaluate the expression with the given bindings.
    ///
    /// Comparison and boolean nodes evaluate to 0.0/1.0. Unbound symbols
    /// are an error (the fitting layer always binds everything; the
    /// approximate-query layer relies on this error to detect missing
    /// parameter-space dimensions — Section 4.2's "parameter space
    /// enumeration" challenge).
    pub fn eval(&self, b: &Bindings) -> Result<f64> {
        Ok(match self {
            Expr::Num(v) => *v,
            Expr::Sym(s) => {
                b.get(s).ok_or_else(|| ExprError::UnboundSymbol { name: s.clone() })?
            }
            Expr::Add(x, y) => x.eval(b)? + y.eval(b)?,
            Expr::Sub(x, y) => x.eval(b)? - y.eval(b)?,
            Expr::Mul(x, y) => x.eval(b)? * y.eval(b)?,
            Expr::Div(x, y) => x.eval(b)? / y.eval(b)?,
            Expr::Pow(x, y) => x.eval(b)?.powf(y.eval(b)?),
            Expr::Neg(x) => -x.eval(b)?,
            Expr::Not(x) => {
                if x.eval(b)? != 0.0 {
                    0.0
                } else {
                    1.0
                }
            }
            Expr::And(x, y) => {
                // Short-circuit like a programming language would; filter
                // expressions may guard a division with a non-zero check.
                if x.eval(b)? != 0.0 && y.eval(b)? != 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Expr::Or(x, y) => {
                if x.eval(b)? != 0.0 || y.eval(b)? != 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Expr::Cmp(op, x, y) => op.apply(x.eval(b)?, y.eval(b)?),
            Expr::Call(func, args) => {
                // Functions have arity ≤ 2; avoid a Vec allocation.
                let a0 = args[0].eval(b)?;
                if func.arity() == 1 {
                    func.apply(&[a0])
                } else {
                    let a1 = args[1].eval(b)?;
                    func.apply(&[a0, a1])
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;

    #[test]
    fn bindings_insert_lookup_replace() {
        let mut b = Bindings::new();
        assert!(b.is_empty());
        b.set("beta", 1.0);
        b.set("alpha", 2.0);
        b.set("beta", 3.0);
        assert_eq!(b.len(), 2);
        assert_eq!(b.get("alpha"), Some(2.0));
        assert_eq!(b.get("beta"), Some(3.0));
        assert_eq!(b.get("gamma"), None);
        let names: Vec<&str> = b.iter().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["alpha", "beta"]); // sorted
    }

    #[test]
    fn unbound_symbol_is_an_error() {
        let e = parse_expr("x + 1").unwrap();
        let b = Bindings::new();
        assert!(matches!(e.eval(&b), Err(ExprError::UnboundSymbol { .. })));
    }

    #[test]
    fn division_by_zero_follows_ieee() {
        let e = parse_expr("1 / 0").unwrap();
        assert_eq!(e.eval(&Bindings::new()).unwrap(), f64::INFINITY);
        let e = parse_expr("0 / 0").unwrap();
        assert!(e.eval(&Bindings::new()).unwrap().is_nan());
    }

    #[test]
    fn short_circuit_and_skips_rhs_error() {
        // rhs has an unbound symbol but lhs is false → short-circuit
        // never touches it? Note: our And still evaluates lazily thanks
        // to `&&` in Rust.
        let e = parse_expr("0 && missing").unwrap();
        assert_eq!(e.eval(&Bindings::new()).unwrap(), 0.0);
        let e = parse_expr("1 || missing").unwrap();
        assert_eq!(e.eval(&Bindings::new()).unwrap(), 1.0);
    }

    #[test]
    fn power_law_evaluation() {
        let e = parse_expr("p * nu ^ alpha").unwrap();
        let b: Bindings = [("p", 0.0626), ("nu", 0.16), ("alpha", -0.718)].into_iter().collect();
        let want = 0.0626 * 0.16_f64.powf(-0.718);
        assert!((e.eval(&b).unwrap() - want).abs() < 1e-15);
    }

    #[test]
    fn from_iterator_builds_bindings() {
        let b: Bindings = [("x", 1.0), ("y", 2.0)].into_iter().collect();
        assert_eq!(b.get("y"), Some(2.0));
    }
}
