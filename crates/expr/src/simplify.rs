//! Algebraic simplification: constant folding plus the identity rules
//! that keep symbolic derivatives from exploding.
//!
//! The simplifier is deliberately conservative: only rewrites that are
//! valid for all finite inputs are applied (e.g. `x*1 → x`), with two
//! documented exceptions that follow the conventions of symbolic math
//! systems (`0*x → 0` and `x^0 → 1`, which differ from IEEE semantics
//! when `x` is NaN/∞ — acceptable because fitted model bodies are
//! evaluated on finite data and guards reject non-finite parameters).

use crate::ast::{Expr, Func};

/// Simplify an expression to a fixed point (bounded at 16 passes, which
/// is far beyond what any derivative produced in this workspace needs).
pub fn simplify(expr: &Expr) -> Expr {
    let mut cur = expr.clone();
    for _ in 0..16 {
        let next = simplify_once(&cur);
        if next == cur {
            return next;
        }
        cur = next;
    }
    cur
}

fn simplify_once(e: &Expr) -> Expr {
    match e {
        Expr::Num(_) | Expr::Sym(_) => e.clone(),
        Expr::Neg(a) => {
            let a = simplify_once(a);
            match a {
                Expr::Num(v) => Expr::Num(-v),
                // --x → x
                Expr::Neg(inner) => *inner,
                other => Expr::Neg(Box::new(other)),
            }
        }
        Expr::Not(a) => {
            let a = simplify_once(a);
            match a.as_const() {
                Some(v) => Expr::Num(if v != 0.0 { 0.0 } else { 1.0 }),
                None => Expr::Not(Box::new(a)),
            }
        }
        Expr::Add(a, b) => {
            let a = simplify_once(a);
            let b = simplify_once(b);
            match (a.as_const(), b.as_const()) {
                (Some(x), Some(y)) => Expr::Num(x + y),
                (Some(0.0), _) => b,
                (_, Some(0.0)) => a,
                _ => Expr::Add(Box::new(a), Box::new(b)),
            }
        }
        Expr::Sub(a, b) => {
            let a = simplify_once(a);
            let b = simplify_once(b);
            match (a.as_const(), b.as_const()) {
                (Some(x), Some(y)) => Expr::Num(x - y),
                (_, Some(0.0)) => a,
                (Some(0.0), _) => Expr::Neg(Box::new(b)),
                _ => {
                    if a == b {
                        Expr::Num(0.0)
                    } else {
                        Expr::Sub(Box::new(a), Box::new(b))
                    }
                }
            }
        }
        Expr::Mul(a, b) => {
            let a = simplify_once(a);
            let b = simplify_once(b);
            match (a.as_const(), b.as_const()) {
                (Some(x), Some(y)) => Expr::Num(x * y),
                // Convention: 0·x → 0 (see module docs).
                (Some(0.0), _) | (_, Some(0.0)) => Expr::Num(0.0),
                (Some(1.0), _) => b,
                (_, Some(1.0)) => a,
                (Some(-1.0), _) => Expr::Neg(Box::new(b)),
                (_, Some(-1.0)) => Expr::Neg(Box::new(a)),
                _ => Expr::Mul(Box::new(a), Box::new(b)),
            }
        }
        Expr::Div(a, b) => {
            let a = simplify_once(a);
            let b = simplify_once(b);
            match (a.as_const(), b.as_const()) {
                (Some(x), Some(y)) if y != 0.0 => Expr::Num(x / y),
                (Some(0.0), _) => Expr::Num(0.0),
                (_, Some(1.0)) => a,
                _ => {
                    if a == b && a.as_const().is_none() {
                        // x/x → 1 (valid away from x = 0; model bodies are
                        // evaluated on the legal domain).
                        Expr::Num(1.0)
                    } else {
                        Expr::Div(Box::new(a), Box::new(b))
                    }
                }
            }
        }
        Expr::Pow(a, b) => {
            let a = simplify_once(a);
            let b = simplify_once(b);
            match (a.as_const(), b.as_const()) {
                (Some(x), Some(y)) => Expr::Num(x.powf(y)),
                (_, Some(0.0)) => Expr::Num(1.0), // convention: x^0 → 1
                (_, Some(1.0)) => a,
                (Some(1.0), _) => Expr::Num(1.0),
                _ => Expr::Pow(Box::new(a), Box::new(b)),
            }
        }
        Expr::And(a, b) => {
            let a = simplify_once(a);
            let b = simplify_once(b);
            match (a.as_const(), b.as_const()) {
                (Some(x), Some(y)) => {
                    Expr::Num(if x != 0.0 && y != 0.0 { 1.0 } else { 0.0 })
                }
                (Some(0.0), _) | (_, Some(0.0)) => Expr::Num(0.0),
                (Some(_), None) => b, // non-zero constant: neutral
                (None, Some(_)) => a,
                _ => Expr::And(Box::new(a), Box::new(b)),
            }
        }
        Expr::Or(a, b) => {
            let a = simplify_once(a);
            let b = simplify_once(b);
            match (a.as_const(), b.as_const()) {
                (Some(x), Some(y)) => {
                    Expr::Num(if x != 0.0 || y != 0.0 { 1.0 } else { 0.0 })
                }
                (Some(0.0), None) => b,
                (None, Some(0.0)) => a,
                (Some(_), _) | (_, Some(_)) => Expr::Num(1.0),
                _ => Expr::Or(Box::new(a), Box::new(b)),
            }
        }
        Expr::Cmp(op, a, b) => {
            let a = simplify_once(a);
            let b = simplify_once(b);
            match (a.as_const(), b.as_const()) {
                (Some(x), Some(y)) => Expr::Num(op.apply(x, y)),
                _ => Expr::Cmp(*op, Box::new(a), Box::new(b)),
            }
        }
        Expr::Call(f, args) => {
            let args: Vec<Expr> = args.iter().map(simplify_once).collect();
            if let Some(consts) = args.iter().map(Expr::as_const).collect::<Option<Vec<f64>>>() {
                return Expr::Num(f.apply(&consts));
            }
            // ln(exp(x)) → x and exp(ln(x)) → x: these pairs appear
            // constantly in power-law derivatives.
            if args.len() == 1 {
                if let Expr::Call(inner_f, inner_args) = &args[0] {
                    match (f, inner_f) {
                        (Func::Ln, Func::Exp) | (Func::Exp, Func::Ln) => {
                            return inner_args[0].clone()
                        }
                        _ => {}
                    }
                }
            }
            Expr::Call(*f, args)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;

    fn s(src: &str) -> String {
        simplify(&parse_expr(src).unwrap()).to_string()
    }

    #[test]
    fn constant_folding() {
        assert_eq!(s("1 + 2 * 3"), "7");
        assert_eq!(s("2 ^ 10"), "1024");
        assert_eq!(s("ln(exp(1))"), "1");
    }

    #[test]
    fn additive_and_multiplicative_identities() {
        assert_eq!(s("x + 0"), "x");
        assert_eq!(s("0 + x"), "x");
        assert_eq!(s("x * 1"), "x");
        assert_eq!(s("x * 0"), "0");
        assert_eq!(s("x - 0"), "x");
        assert_eq!(s("x / 1"), "x");
        assert_eq!(s("0 / x"), "0");
    }

    #[test]
    fn power_identities() {
        assert_eq!(s("x ^ 0"), "1");
        assert_eq!(s("x ^ 1"), "x");
        assert_eq!(s("1 ^ x"), "1");
    }

    #[test]
    fn negation_rules() {
        assert_eq!(s("--x"), "x");
        assert_eq!(s("x * -1"), "(-x)");
        assert_eq!(s("0 - x"), "(-x)");
    }

    #[test]
    fn self_cancellation() {
        assert_eq!(s("x - x"), "0");
        assert_eq!(s("x / x"), "1");
    }

    #[test]
    fn inverse_function_pairs() {
        assert_eq!(s("ln(exp(y))"), "y");
        assert_eq!(s("exp(ln(y))"), "y");
    }

    #[test]
    fn boolean_simplification() {
        assert_eq!(s("1 && x > 0"), "(x > 0)");
        assert_eq!(s("0 && x > 0"), "0");
        assert_eq!(s("0 || x > 0"), "(x > 0)");
        assert_eq!(s("1 || x > 0"), "1");
        assert_eq!(s("!(1 > 2)"), "1");
    }

    #[test]
    fn simplification_preserves_value() {
        use crate::eval::Bindings;
        let sources = [
            "p * nu ^ alpha * 1 + 0",
            "(x + 0) * (1 * y) - 0",
            "exp(ln(x)) + x ^ 1 - x * 1",
            "min(x, y) * 1 + max(x, y) * 1",
        ];
        let b: Bindings = [("p", 2.0), ("nu", 0.5), ("alpha", -0.7), ("x", 3.0), ("y", 4.0)]
            .into_iter()
            .collect();
        for src in sources {
            let orig = parse_expr(src).unwrap();
            let simp = simplify(&orig);
            assert!(
                (orig.eval(&b).unwrap() - simp.eval(&b).unwrap()).abs() < 1e-12,
                "{src} changed value"
            );
            assert!(simp.node_count() <= orig.node_count(), "{src} grew");
        }
    }
}
