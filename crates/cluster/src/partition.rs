//! Table partitioning: contiguous range shards aligned to the morsel
//! grid, or hash shards on a group key.
//!
//! Alignment is what makes range sharding bit-identical: shard
//! boundaries fall on multiples of `lcm(morsel_rows, zone_rows)`, so a
//! shard's local morsels *are* the global morsels and its rebuilt zone
//! synopsis carries exactly the zone entries the global table's does
//! over the same rows (the build fold is the same row-order IEEE-754
//! sequence). Hash shards keep, per shard, the strictly increasing list
//! of original global row indices — the coordinator needs it to split
//! partials at global morsel boundaries and to reassemble rows in
//! global order.

use crate::{ClusterError, Result};
use lawsdb_query::group_key_hash;
use lawsdb_storage::zonemap::DEFAULT_ZONE_ROWS;
use lawsdb_storage::Table;

/// How rows map to shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionScheme {
    /// Contiguous row ranges, morsel-aligned.
    Range,
    /// Hash of the named group-key column.
    Hash {
        /// Column whose grouping-equivalent hash picks the shard.
        key: String,
    },
}

/// A shard's rows in terms of the original (global) table.
#[derive(Debug, Clone)]
pub enum RowAssignment {
    /// Global rows `[start, start + len)`.
    Contiguous {
        /// First global row of the shard.
        start: usize,
    },
    /// Strictly increasing original row index per local row.
    Sparse(Vec<usize>),
}

/// One shard's data: its slice of the table (synopsis rebuilt on the
/// global grid) plus the row assignment.
#[derive(Debug)]
pub struct ShardData {
    /// The shard's rows as a standalone table.
    pub table: Table,
    /// Where those rows sit in the global table.
    pub rows: RowAssignment,
}

/// The zone granularity the global table is mapped at (the minimum
/// across columns, which is also the grid `plan_agg_pushdown` folds at).
pub fn global_zone_rows(table: &Table) -> usize {
    table
        .synopsis()
        .and_then(|s| {
            table
                .schema()
                .fields()
                .iter()
                .filter_map(|f| s.column(&f.name).map(|z| z.zone_rows))
                .min()
        })
        .unwrap_or(DEFAULT_ZONE_ROWS)
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 { a } else { gcd(b, a % b) }
}

/// Least common multiple of the morsel and zone grids — the row quantum
/// range-shard boundaries must align to.
pub fn alignment_quantum(morsel_rows: usize, zone_rows: usize) -> usize {
    morsel_rows / gcd(morsel_rows, zone_rows) * zone_rows
}

/// Split `table` into `shards` partitions under `scheme`. Range shards
/// are balanced in whole alignment quanta (trailing shards may be
/// empty for small tables); hash shards scatter rows by the grouping
/// hash of the key column.
pub fn partition(
    table: &Table,
    scheme: &PartitionScheme,
    shards: usize,
    morsel_rows: usize,
) -> Result<Vec<ShardData>> {
    if shards == 0 {
        return Err(ClusterError::Unsupported {
            detail: "cluster needs at least one shard".to_string(),
        });
    }
    let zone_rows = global_zone_rows(table);
    match scheme {
        PartitionScheme::Range => {
            let quantum = alignment_quantum(morsel_rows, zone_rows);
            let rows = table.row_count();
            let units = rows.div_ceil(quantum);
            let mut out = Vec::with_capacity(shards);
            let mut unit = 0usize;
            for s in 0..shards {
                let count = units / shards + usize::from(s < units % shards);
                let start = (unit * quantum).min(rows);
                let len = ((unit + count) * quantum).min(rows) - start;
                unit += count;
                let mut t = table.slice(start, len)?;
                t.rebuild_synopsis_with(zone_rows);
                out.push(ShardData { table: t, rows: RowAssignment::Contiguous { start } });
            }
            Ok(out)
        }
        PartitionScheme::Hash { key } => {
            let col = table.column(key)?;
            let mut rowsets: Vec<Vec<usize>> = vec![Vec::new(); shards];
            for row in 0..table.row_count() {
                let h = group_key_hash(&col.value(row)?);
                rowsets[(h % shards as u64) as usize].push(row);
            }
            let mut out = Vec::with_capacity(shards);
            for rows in rowsets {
                let mut t = table.take(&rows)?;
                t.rebuild_synopsis_with(zone_rows);
                out.push(ShardData { table: t, rows: RowAssignment::Sparse(rows) });
            }
            Ok(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lawsdb_storage::TableBuilder;

    fn fixture(rows: usize) -> Table {
        let mut b = TableBuilder::new("t");
        b.add_i64("g", (0..rows as i64).map(|i| i % 5).collect());
        b.add_f64("v", (0..rows).map(|i| i as f64 * 0.25).collect());
        let mut t = b.build().unwrap();
        t.rebuild_synopsis_with(32);
        t
    }

    #[test]
    fn range_shards_are_aligned_and_cover_everything() {
        let t = fixture(1000);
        let parts = partition(&t, &PartitionScheme::Range, 3, 64).unwrap();
        assert_eq!(parts.len(), 3);
        let mut covered = 0;
        for p in &parts {
            let RowAssignment::Contiguous { start } = p.rows else { panic!("range shard") };
            assert_eq!(start % 64, 0, "aligned to lcm(64, 32) = 64");
            assert_eq!(start, covered);
            covered += p.table.row_count();
            // Synopsis rebuilt on the global grid.
            if p.table.row_count() > 0 {
                assert_eq!(p.table.synopsis().unwrap().column("v").unwrap().zone_rows, 32);
            }
        }
        assert_eq!(covered, 1000);
    }

    #[test]
    fn hash_shards_keep_groups_whole_and_rows_increasing() {
        let t = fixture(500);
        let parts = partition(&t, &PartitionScheme::Hash { key: "g".into() }, 4, 64).unwrap();
        let mut total = 0;
        let mut group_shard = std::collections::HashMap::new();
        for (si, p) in parts.iter().enumerate() {
            let RowAssignment::Sparse(rows) = &p.rows else { panic!("hash shard") };
            assert!(rows.windows(2).all(|w| w[0] < w[1]));
            total += rows.len();
            let g = p.table.column("g").unwrap();
            for r in 0..p.table.row_count() {
                let key = g.value(r).unwrap();
                let prev = group_shard.insert(format!("{key:?}"), si);
                assert!(prev.is_none_or(|s| s == si), "group split across shards");
            }
        }
        assert_eq!(total, 500);
    }

    #[test]
    fn tiny_tables_leave_trailing_shards_empty_without_panic() {
        let t = fixture(40);
        let parts = partition(&t, &PartitionScheme::Range, 4, 64).unwrap();
        assert_eq!(parts[0].table.row_count(), 40);
        assert!(parts[1..].iter().all(|p| p.table.row_count() == 0));
    }
}
