//! Deterministic replica health tracking.
//!
//! Counter-based, no wall clock: `fail_threshold` consecutive failures
//! mark a replica `Down`; a `Down` replica is skipped for `probe_after`
//! subsequent selections and then offered again as a probe (one
//! in-flight attempt — success restores `Up`, failure re-arms the
//! skip window). Every transition is a pure function of the observed
//! success/failure sequence, so crash-matrix runs reproduce the same
//! failover decisions from the same fault seed.

/// Health state of one replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaState {
    /// Serving.
    Up,
    /// Skipped until its probe window elapses.
    Down,
}

#[derive(Debug, Clone)]
struct Slot {
    state: ReplicaState,
    consecutive_failures: u32,
    skips_since_down: u32,
}

/// Per-(shard, replica) health matrix.
#[derive(Debug)]
pub struct HealthTracker {
    fail_threshold: u32,
    probe_after: u32,
    slots: Vec<Vec<Slot>>,
}

impl HealthTracker {
    /// A tracker for `shards × replicas`, all `Up`.
    pub fn new(shards: usize, replicas: usize, fail_threshold: u32, probe_after: u32) -> Self {
        HealthTracker {
            fail_threshold: fail_threshold.max(1),
            probe_after,
            slots: vec![
                vec![
                    Slot {
                        state: ReplicaState::Up,
                        consecutive_failures: 0,
                        skips_since_down: 0,
                    };
                    replicas
                ];
                shards
            ],
        }
    }

    /// Current state of one replica.
    pub fn state(&self, shard: usize, replica: usize) -> ReplicaState {
        self.slots[shard][replica].state
    }

    /// Replicas of `shard` currently `Up`.
    pub fn replicas_up(&self, shard: usize) -> usize {
        self.slots[shard].iter().filter(|s| s.state == ReplicaState::Up).count()
    }

    /// Should this replica be tried now? `Up` replicas always; `Down`
    /// replicas only once their probe window has elapsed (calling this
    /// on a `Down` replica advances the window — selection *is* the
    /// clock).
    pub fn try_now(&mut self, shard: usize, replica: usize) -> bool {
        let slot = &mut self.slots[shard][replica];
        match slot.state {
            ReplicaState::Up => true,
            ReplicaState::Down => {
                if slot.skips_since_down >= self.probe_after {
                    true
                } else {
                    slot.skips_since_down += 1;
                    false
                }
            }
        }
    }

    /// Record a successful operation: back to `Up`, counters cleared.
    pub fn record_ok(&mut self, shard: usize, replica: usize) {
        let slot = &mut self.slots[shard][replica];
        slot.state = ReplicaState::Up;
        slot.consecutive_failures = 0;
        slot.skips_since_down = 0;
    }

    /// Record a failed operation; crossing the consecutive-failure
    /// threshold marks the replica `Down` and re-arms its probe window.
    pub fn record_fail(&mut self, shard: usize, replica: usize) {
        let slot = &mut self.slots[shard][replica];
        slot.consecutive_failures += 1;
        if slot.consecutive_failures >= self.fail_threshold {
            slot.state = ReplicaState::Down;
            slot.skips_since_down = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_downs_and_probe_recovers() {
        let mut h = HealthTracker::new(1, 2, 3, 2);
        assert_eq!(h.state(0, 0), ReplicaState::Up);
        h.record_fail(0, 0);
        h.record_fail(0, 0);
        assert_eq!(h.state(0, 0), ReplicaState::Up, "below threshold");
        h.record_fail(0, 0);
        assert_eq!(h.state(0, 0), ReplicaState::Down);
        // Skipped twice, then probed.
        assert!(!h.try_now(0, 0));
        assert!(!h.try_now(0, 0));
        assert!(h.try_now(0, 0), "probe window elapsed");
        h.record_ok(0, 0);
        assert_eq!(h.state(0, 0), ReplicaState::Up);
        assert_eq!(h.replicas_up(0), 2);
    }

    #[test]
    fn failed_probe_rearms_the_window() {
        let mut h = HealthTracker::new(1, 1, 1, 1);
        h.record_fail(0, 0);
        assert_eq!(h.state(0, 0), ReplicaState::Down);
        assert!(!h.try_now(0, 0));
        assert!(h.try_now(0, 0));
        h.record_fail(0, 0);
        assert!(!h.try_now(0, 0), "failed probe re-arms the skip window");
    }
}
