//! One replica of one shard: a crash-safe [`DurableDb`] over a seeded
//! [`FaultyDevice`], plus the deterministic fault-arming machinery the
//! cluster crash matrix drives.
//!
//! Device faults are *read-path* faults here: the replica's table is
//! stored durably at creation, and queries only read. To arm a fault
//! that fires during a later fetch, the replica rebuilds its device
//! with a `crash_at` schedule positioned just past the ops a recovery
//! consumes — measured, not guessed, by probe recoveries on the same
//! device state (recovery is idempotent, so its op count is a constant
//! of the device image once it has run at least once).

use lawsdb_core::storage_mgr::DurableDb;
use lawsdb_storage::{FaultMode, FaultSchedule, FaultyDevice, SimulatedDevice, Table};

/// The query phase a coordinator-level failure is injected at.
/// Device-level faults always surface during `Fetch` (the only phase
/// that touches the device); `Execute` and `Gather` failures model a
/// replica dying after shipping rows but before / after computing its
/// partials.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Reading the shard's table from the replica's durable store.
    Fetch,
    /// Computing the shard's partial aggregates.
    Execute,
    /// Returning the partials to the coordinator.
    Gather,
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Phase::Fetch => write!(f, "fetch"),
            Phase::Execute => write!(f, "execute"),
            Phase::Gather => write!(f, "gather"),
        }
    }
}

/// Why a single replica attempt failed. Everything here is retryable on
/// another replica; deterministic query errors (bad SQL) never become a
/// `ReplicaError`.
#[derive(Debug)]
pub enum ReplicaError {
    /// The replica was administratively killed (total-loss scenarios).
    Killed,
    /// A coordinator-level failure injected at `phase`.
    Injected(Phase),
    /// The device faulted (or is crashed from an earlier fault).
    Device(String),
}

impl std::fmt::Display for ReplicaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplicaError::Killed => write!(f, "replica killed"),
            ReplicaError::Injected(p) => write!(f, "injected failure at {p}"),
            ReplicaError::Device(d) => write!(f, "device fault: {d}"),
        }
    }
}

/// Page size every replica device uses. Small on purpose: more pages
/// per table means more device ops, which gives `crash_at` schedules a
/// fine-grained op axis to land faults on.
pub const REPLICA_PAGE_SIZE: usize = 256;

/// One replica: its durable store, the table name it holds, and the
/// failure knobs the crash matrix turns.
pub struct Replica {
    /// `None` only transiently while re-arming the device.
    db: Option<DurableDb<FaultyDevice>>,
    table: String,
    killed: bool,
    fail_next: Option<Phase>,
}

impl Replica {
    /// Store `table` durably on a fresh fault-free device.
    pub fn create(table: &Table) -> crate::Result<Replica> {
        let device = FaultyDevice::new(SimulatedDevice::new(REPLICA_PAGE_SIZE), FaultSchedule::none());
        let mut db = DurableDb::new(device);
        db.recover().map_err(core_err)?;
        db.store_table(table).map_err(core_err)?;
        Ok(Replica {
            db: Some(db),
            table: table.name().to_string(),
            killed: false,
            fail_next: None,
        })
    }

    /// Read the shard's table. Fails if the replica is killed, a
    /// `Fetch` injection is pending, or the device faults.
    pub fn fetch(&mut self) -> Result<Table, ReplicaError> {
        if self.killed {
            return Err(ReplicaError::Killed);
        }
        if self.take_injection(Phase::Fetch) {
            return Err(ReplicaError::Injected(Phase::Fetch));
        }
        let db = self.db.as_ref().expect("replica device present");
        db.read_table(&self.table)
            .map_err(|e| ReplicaError::Device(e.to_string()))
    }

    /// Administratively kill the replica (every subsequent attempt
    /// fails until [`heal`](Replica::heal)).
    pub fn kill(&mut self) {
        self.killed = true;
    }

    /// Undo [`kill`](Replica::kill) and clear any armed device fault,
    /// so a health probe can succeed.
    pub fn heal(&mut self) -> crate::Result<()> {
        self.killed = false;
        self.fail_next = None;
        self.rebuild(FaultSchedule::none())
    }

    /// Arm a one-shot coordinator-level failure at `phase`.
    pub fn inject(&mut self, phase: Phase) {
        self.fail_next = Some(phase);
    }

    /// Consume a pending injection for `phase`, if any.
    pub fn take_injection(&mut self, phase: Phase) -> bool {
        if self.fail_next == Some(phase) {
            self.fail_next = None;
            true
        } else {
            false
        }
    }

    /// Did the armed device fault actually fire?
    pub fn fault_fired(&self) -> bool {
        self.db.as_ref().is_some_and(|db| db.device().fault_fired())
    }

    /// The op index of an armed-but-unfired fault, if any.
    pub fn unfired_fault(&self) -> Option<u64> {
        self.db.as_ref().and_then(|db| db.device().unfired_fault())
    }

    /// Device ops one fetch consumes right now (measured, so crash
    /// schedules can target the read path precisely).
    pub fn fetch_ops(&mut self) -> Result<u64, ReplicaError> {
        let before = self.db.as_ref().expect("replica device present").device().op_count();
        self.fetch()?;
        let after = self.db.as_ref().expect("replica device present").device().op_count();
        Ok(after - before)
    }

    /// Arm a device fault `op_offset` read ops into the *next* fetch.
    ///
    /// The dance: recovery must run on the rebuilt device before it can
    /// serve reads, and recovery itself consumes device ops — so the
    /// schedule's absolute op index is `recover_ops + op_offset`, where
    /// `recover_ops` is measured by two probe recoveries (the first
    /// settles the device into its post-recovery steady state, the
    /// second measures the steady-state cost, and the armed recovery is
    /// the third — identical to the second by idempotence).
    pub fn arm_read_fault(&mut self, mode: FaultMode, seed: u64, op_offset: u64) -> crate::Result<()> {
        let device = self.take_device();
        // Probe 1: settle.
        let mut db = DurableDb::new(FaultyDevice::new(device, FaultSchedule::none()));
        db.recover().map_err(core_err)?;
        let device = db.into_device().into_inner();
        // Probe 2: measure steady-state recovery cost.
        let mut db = DurableDb::new(FaultyDevice::new(device, FaultSchedule::none()));
        db.recover().map_err(core_err)?;
        let recover_ops = db.device().op_count();
        let device = db.into_device().into_inner();
        // Armed rebuild: the fault lands op_offset ops into post-recovery reads.
        let schedule = FaultSchedule::crash_at(recover_ops + op_offset, mode, seed);
        let mut db = DurableDb::new(FaultyDevice::new(device, schedule));
        db.recover().map_err(core_err)?;
        debug_assert!(
            !db.device().fault_fired(),
            "armed fault must not fire during the recovery prefix"
        );
        self.db = Some(db);
        Ok(())
    }

    fn rebuild(&mut self, schedule: FaultSchedule) -> crate::Result<()> {
        let device = self.take_device();
        let mut db = DurableDb::new(FaultyDevice::new(device, schedule));
        db.recover().map_err(core_err)?;
        self.db = Some(db);
        Ok(())
    }

    fn take_device(&mut self) -> SimulatedDevice {
        self.db
            .take()
            .expect("replica device present")
            .into_device()
            .into_inner()
    }
}

fn core_err(e: lawsdb_core::CoreError) -> crate::ClusterError {
    match e {
        lawsdb_core::CoreError::Storage(s) => crate::ClusterError::Storage(s),
        lawsdb_core::CoreError::Query(q) => crate::ClusterError::Query(q),
        other => crate::ClusterError::Unsupported { detail: other.to_string() },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lawsdb_storage::TableBuilder;

    fn fixture() -> Table {
        let mut b = TableBuilder::new("t");
        b.add_i64("g", (0..200).map(|i| i % 4).collect());
        b.add_f64("v", (0..200).map(|i| i as f64 * 0.5).collect());
        b.build().unwrap()
    }

    #[test]
    fn fetch_round_trips_and_kill_heal_works() {
        let t = fixture();
        let mut r = Replica::create(&t).unwrap();
        let got = r.fetch().unwrap();
        assert_eq!(got.row_count(), 200);
        r.kill();
        assert!(matches!(r.fetch(), Err(ReplicaError::Killed)));
        r.heal().unwrap();
        assert_eq!(r.fetch().unwrap().row_count(), 200);
    }

    #[test]
    fn injections_are_one_shot_and_phase_scoped() {
        let t = fixture();
        let mut r = Replica::create(&t).unwrap();
        r.inject(Phase::Execute);
        assert!(r.fetch().is_ok(), "execute injection must not trip fetch");
        assert!(r.take_injection(Phase::Execute));
        assert!(!r.take_injection(Phase::Execute), "one-shot");
        r.inject(Phase::Fetch);
        assert!(matches!(r.fetch(), Err(ReplicaError::Injected(Phase::Fetch))));
        assert!(r.fetch().is_ok(), "consumed");
    }

    #[test]
    fn armed_read_fault_fires_during_fetch_and_heals_away() {
        let t = fixture();
        let mut r = Replica::create(&t).unwrap();
        for mode in FaultMode::ALL {
            r.arm_read_fault(mode, 7, 1).unwrap();
            assert!(!r.fault_fired());
            let err = r.fetch();
            assert!(err.is_err(), "{mode:?}: armed fault must fail the fetch");
            assert!(r.fault_fired(), "{mode:?}: fault consumed by the fetch");
            // Crashed device: every later op fails too.
            assert!(r.fetch().is_err());
            r.heal().unwrap();
            assert_eq!(r.fetch().unwrap().row_count(), 200, "{mode:?}: heal restores reads");
        }
    }

    #[test]
    fn fault_beyond_the_read_window_stays_unfired() {
        let t = fixture();
        let mut r = Replica::create(&t).unwrap();
        let ops = r.fetch_ops().unwrap();
        r.arm_read_fault(FaultMode::IoError, 7, ops + 1_000).unwrap();
        assert_eq!(r.fetch().unwrap().row_count(), 200);
        assert!(!r.fault_fired());
        assert!(r.unfired_fault().is_some());
        r.heal().unwrap();
    }
}
