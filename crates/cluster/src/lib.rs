//! # lawsdb-cluster
//!
//! In-process sharded scatter-gather execution with health-checked
//! replica failover — the paper's models-as-data vision taken to
//! cluster shape. A table partitions into hash or range shards on the
//! group key; every shard is replicated N ways, each replica behind its
//! own crash-safe [`DurableDb`](lawsdb_core::DurableDb) on a seeded
//! [`FaultyDevice`](lawsdb_storage::FaultyDevice). The
//! [`Cluster`](coordinator::Cluster) coordinator scatters partial
//! aggregation to the shards and merges the partials in deterministic
//! global morsel order, so answers are **bit-identical** to the
//! unsharded engine at any shard count, replica choice, or thread count
//! (see `lawsdb_query::partial` for the merge-determinism argument).
//!
//! Robustness is the headline: a deterministic, counter-based
//! [`HealthTracker`](health::HealthTracker) drives automatic replica
//! failover; when *every* replica of a shard is down, the coordinator
//! degrades to the shard's captured model (within a configured residual
//! bound, surfaced as
//! [`DegradeReason::ShardModelFallback`](lawsdb_core::DegradeReason))
//! or returns a structured partial-result error — never a panic or a
//! hang. The cluster-level crash matrix in `tests/crash_matrix.rs`
//! exercises every (fault mode × shard × query phase) cell from
//! `LAWSDB_FAULT_SEED`.

pub mod coordinator;
pub mod health;
pub mod partition;
pub mod replica;

pub use coordinator::{Cluster, ClusterAnswer, ClusterConfig, Phase};
pub use health::{HealthTracker, ReplicaState};
pub use partition::{PartitionScheme, RowAssignment};

use lawsdb_query::QueryError;
use lawsdb_storage::StorageError;

/// Structured cluster-level failure. Queries against a degraded cluster
/// end here or in a degraded [`ClusterAnswer`] — never in a panic.
#[derive(Debug)]
pub enum ClusterError {
    /// The query shape is outside the cluster's dialect (joins, or a
    /// second table).
    Unsupported {
        /// What was asked for.
        detail: String,
    },
    /// Every replica of a shard failed and no model fallback was
    /// possible: the structured partial-result error.
    PartialResult {
        /// The shard whose data is missing from the answer.
        shard: usize,
        /// Why the last-resort path could not answer.
        detail: String,
    },
    /// Query-layer failure (parse, plan, or execution).
    Query(QueryError),
    /// Storage-layer failure outside any replica's fault envelope
    /// (partitioning, reassembly).
    Storage(StorageError),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Unsupported { detail } => {
                write!(f, "unsupported cluster query: {detail}")
            }
            ClusterError::PartialResult { shard, detail } => write!(
                f,
                "partial result: shard {shard} unavailable and not answerable from a model ({detail})"
            ),
            ClusterError::Query(e) => write!(f, "query error: {e}"),
            ClusterError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<QueryError> for ClusterError {
    fn from(e: QueryError) -> Self {
        ClusterError::Query(e)
    }
}

impl From<StorageError> for ClusterError {
    fn from(e: StorageError) -> Self {
        ClusterError::Storage(e)
    }
}

/// Crate-local result.
pub type Result<T> = std::result::Result<T, ClusterError>;
