//! The scatter-gather coordinator.
//!
//! A [`Cluster`] owns the shards, their replicas, the health matrix,
//! and the per-shard captured models. A query takes one of two routes:
//!
//! * **Scatter-gather** — for the aggregate pipeline shape
//!   `[LIMIT] [ORDER BY] AGG(SCAN | FILTER(SCAN))` over range shards,
//!   or over hash shards when the GROUP BY contains the hash key. Each
//!   shard computes per-global-morsel partial aggregates locally
//!   (`lawsdb_query::partial`); the coordinator merges them in global
//!   morsel order and assembles the answer — bit-identical to the
//!   unsharded engine by the argument in that module.
//! * **Gather-execute** — every other single-table shape: the
//!   coordinator fetches all shards, reassembles the global table in
//!   original row order (synopsis rebuilt on the global zone grid), and
//!   runs the engine on it. Trivially bit-identical.
//!
//! Joins are refused ([`ClusterError::Unsupported`]): shard-local joins
//! are not equivalent to global joins under either partitioning.
//!
//! Per-shard failures walk the replica list under the
//! [`HealthTracker`]'s direction; when every replica of a shard is
//! down, a hash-sharded aggregate within the model-soundness envelope
//! (AVG/MIN/MAX, no LIMIT, residual bound within
//! [`ClusterConfig::max_abs_residual`]) degrades to the shard's
//! captured model, surfaced as
//! [`DegradeReason::ShardModelFallback`]; anything else returns the
//! structured [`ClusterError::PartialResult`]. Never a panic, never a
//! hang.

use std::sync::Arc;
use std::time::Instant;

use lawsdb_approx::ApproxEngine;
use lawsdb_core::DegradeReason;
use lawsdb_fit::FitOptions;
use lawsdb_models::bridge::fit_table_grouped;
use lawsdb_models::ModelCatalog;
use lawsdb_obs::{fields, Counter, Gauge, Histogram, MetricsRegistry, ProfileContext};
use lawsdb_query::plan::AggSpec;
use lawsdb_query::sql::{AggFunc, OrderBy};
use lawsdb_query::{
    assemble_partials, execute_with, limit_rows, merge_shard_partials, parse_select,
    shard_partials_contiguous, shard_partials_sparse, sort_rows, ExecOptions, LogicalPlan,
    QueryError, ShardPartials,
};
use lawsdb_storage::{Catalog, FaultMode, Schema, Table, Value};
use parking_lot::Mutex;

use crate::health::{HealthTracker, ReplicaState};
use crate::partition::{self, PartitionScheme, RowAssignment};
use crate::replica::Replica;
pub use crate::replica::Phase;
use crate::{ClusterError, Result};

/// Cluster shape and policy knobs.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of shards.
    pub shards: usize,
    /// Replicas per shard (≥ 1).
    pub replicas: usize,
    /// How rows map to shards.
    pub scheme: PartitionScheme,
    /// Morsel size every query runs at. Fixed per cluster because range
    /// shard boundaries are aligned to it at partition time.
    pub morsel_rows: usize,
    /// Consecutive failures before a replica is marked `Down`.
    pub fail_threshold: u32,
    /// Selections a `Down` replica is skipped before being probed.
    pub probe_after: u32,
    /// Largest captured-model residual bound the coordinator will
    /// answer from when a whole shard is lost.
    pub max_abs_residual: f64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            shards: 4,
            replicas: 2,
            scheme: PartitionScheme::Range,
            morsel_rows: lawsdb_query::morsel::DEFAULT_MORSEL_ROWS,
            fail_threshold: 2,
            probe_after: 2,
            max_abs_residual: 1e-3,
        }
    }
}

/// A cluster query's answer plus its degradation record.
#[derive(Debug)]
pub struct ClusterAnswer {
    /// Result rows.
    pub table: Table,
    /// Base-table rows scanned across all shards (zero contribution
    /// from model-answered shards).
    pub rows_scanned: usize,
    /// Every degradation taken, in shard order.
    pub degraded: Vec<DegradeReason>,
    /// Did any shard answer from its model?
    pub approximate: bool,
    /// Worst ±bound over model-answered shards, when derivable.
    pub error_bound: Option<f64>,
}

struct ShardModel {
    engine: ApproxEngine,
    bound: Option<f64>,
}

struct Shard {
    rows: RowAssignment,
    row_count: usize,
    replicas: Vec<Mutex<Replica>>,
    model: Mutex<Option<ShardModel>>,
}

struct Metrics {
    shard_queries: Arc<Counter>,
    failovers: Arc<Counter>,
    replicas_down: Arc<Gauge>,
    model_fallbacks: Arc<Counter>,
    partial_results: Arc<Counter>,
    shard_up: Vec<Arc<Gauge>>,
    /// Whole-cluster-query latency; observed with the query id as an
    /// exemplar so `/stats` spikes link to flight-recorder traces.
    query_us: Arc<Histogram>,
}

/// The coordinator: shards, replicas, health, models, metrics.
pub struct Cluster {
    cfg: ClusterConfig,
    table_name: String,
    schema: Schema,
    zone_rows: usize,
    total_rows: usize,
    /// Zero-row table with the global schema — the seed for gather-path
    /// reassembly (and the answer shape when the table is empty).
    template: Table,
    shards: Vec<Shard>,
    health: Mutex<HealthTracker>,
    metrics: Metrics,
}

/// The scatter-gather-eligible plan shape.
struct AggShape {
    group_by: Vec<String>,
    aggs: Vec<AggSpec>,
    predicate: Option<lawsdb_query::ScalarExpr>,
    order: Vec<OrderBy>,
    limit: Option<usize>,
}

enum AttemptError {
    /// Retry on another replica.
    Replica(String),
    /// Deterministic failure — retrying elsewhere gives the same error.
    Fatal(ClusterError),
}

impl Cluster {
    /// Partition `table` under `cfg` and store every shard on
    /// `cfg.replicas` fresh durable replicas. Metrics register under
    /// `lawsdb_cluster_*` in `registry`.
    pub fn new(table: &Table, cfg: ClusterConfig, registry: &MetricsRegistry) -> Result<Cluster> {
        if cfg.replicas == 0 {
            return Err(ClusterError::Unsupported {
                detail: "a shard needs at least one replica".to_string(),
            });
        }
        let zone_rows = partition::global_zone_rows(table);
        let parts = partition::partition(table, &cfg.scheme, cfg.shards, cfg.morsel_rows)?;
        let mut shards = Vec::with_capacity(parts.len());
        for part in parts {
            let mut replicas = Vec::with_capacity(cfg.replicas);
            for _ in 0..cfg.replicas {
                replicas.push(Mutex::new(Replica::create(&part.table)?));
            }
            shards.push(Shard {
                rows: part.rows,
                row_count: part.table.row_count(),
                replicas,
                model: Mutex::new(None),
            });
        }
        let metrics = Metrics {
            shard_queries: registry.counter("lawsdb_cluster_shard_queries"),
            failovers: registry.counter("lawsdb_cluster_failovers"),
            replicas_down: registry.gauge("lawsdb_cluster_replicas_down"),
            model_fallbacks: registry.counter("lawsdb_cluster_model_fallbacks"),
            partial_results: registry.counter("lawsdb_cluster_partial_results"),
            shard_up: (0..cfg.shards)
                .map(|s| registry.gauge(&format!("lawsdb_cluster_shard_{s}_replicas_up")))
                .collect(),
            query_us: registry.histogram("lawsdb_cluster_query_us"),
        };
        for g in &metrics.shard_up {
            g.set(cfg.replicas as i64);
        }
        Ok(Cluster {
            health: Mutex::new(HealthTracker::new(
                cfg.shards,
                cfg.replicas,
                cfg.fail_threshold,
                cfg.probe_after,
            )),
            table_name: table.name().to_string(),
            schema: table.schema().clone(),
            zone_rows,
            total_rows: table.row_count(),
            template: table.slice(0, 0)?,
            shards,
            metrics,
            cfg,
        })
    }

    /// Fit one captured model per non-empty shard (`formula` grouped by
    /// `group`), so total shard loss can degrade to the model. The
    /// residual bound recorded at fit time gates the fallback.
    pub fn capture_models(
        &self,
        formula: &str,
        group: &str,
        options: &FitOptions,
        threads: usize,
    ) -> Result<()> {
        for s in 0..self.shards.len() {
            if self.shards[s].row_count == 0 {
                continue;
            }
            let table = self
                .fetch_shard(s, None)
                .map_err(|detail| ClusterError::PartialResult { shard: s, detail })?;
            let (model, _) = fit_table_grouped(&table, formula, group, options, threads)
                .map_err(|e| ClusterError::Unsupported {
                    detail: format!("model capture on shard {s}: {e}"),
                })?;
            let bound = model.max_abs_residual;
            let catalog = Arc::new(ModelCatalog::new());
            catalog.store(model);
            *self.shards[s].model.lock() = Some(ShardModel {
                engine: ApproxEngine::new(catalog),
                bound,
            });
        }
        Ok(())
    }

    /// Execute `sql` across the cluster. `opts.morsel_rows` is
    /// overridden by the cluster's configured morsel size (shard
    /// alignment depends on it); every other knob passes through.
    pub fn query(&self, sql: &str, opts: &ExecOptions) -> Result<ClusterAnswer> {
        let stmt = parse_select(sql)?;
        if stmt.join.is_some() {
            return Err(ClusterError::Unsupported {
                detail: "joins are not shard-local under either partitioning".to_string(),
            });
        }
        if !stmt.table.eq_ignore_ascii_case(&self.table_name) {
            return Err(ClusterError::Unsupported {
                detail: format!("table {:?} is not sharded here", stmt.table),
            });
        }
        let mut opts = opts.clone();
        opts.morsel_rows = self.cfg.morsel_rows;
        // The coordinator owns the profile context: cluster phase spans
        // (shard/fetch/execute/gather/merge) are opened here and the
        // engine's plan tree is re-attached underneath the execute
        // spans, so one tree covers the whole distributed query.
        let ctx = opts.profile.take();
        let plan = LogicalPlan::from_statement(&stmt)?;
        let started = Instant::now();
        let answer = match decompose(&plan) {
            Some(shape) if self.scatter_eligible(&shape) => {
                self.scatter_gather(sql, &shape, &opts, ctx.as_ref())
            }
            _ => self.gather_execute(sql, &opts, ctx.as_ref()),
        };
        self.metrics
            .query_us
            .observe_with_exemplar(started.elapsed().as_micros() as u64, opts.query_id);
        self.publish_health();
        answer
    }

    fn scatter_eligible(&self, shape: &AggShape) -> bool {
        match &self.cfg.scheme {
            PartitionScheme::Range => true,
            PartitionScheme::Hash { key } => {
                !shape.group_by.is_empty()
                    && shape.group_by.iter().any(|g| g.eq_ignore_ascii_case(key))
            }
        }
    }

    fn scatter_gather(
        &self,
        sql: &str,
        shape: &AggShape,
        opts: &ExecOptions,
        ctx: Option<&ProfileContext>,
    ) -> Result<ClusterAnswer> {
        let mut partials: Vec<ShardPartials> = Vec::new();
        let mut tables: Vec<Option<Table>> = (0..self.shards.len()).map(|_| None).collect();
        let mut degraded = Vec::new();
        let mut model_tables = Vec::new();
        let mut error_bound: Option<f64> = None;
        // `s` is a shard id addressing several parallel structures
        // (shards, tables, health, metrics), not an iteration over one.
        #[allow(clippy::needless_range_loop)]
        for s in 0..self.shards.len() {
            if self.shards[s].row_count == 0 {
                continue;
            }
            self.metrics.shard_queries.inc();
            let mut shard_span = ctx.map(|c| {
                let mut sp = c.span("cluster.shard");
                sp.field("shard", s as u64);
                sp
            });
            let shard_ctx = shard_span.as_ref().map(|sp| sp.child());
            match self.run_shard(s, shape, opts, shard_ctx.as_ref()) {
                Ok((table, sp)) => {
                    tables[s] = Some(table);
                    partials.push(sp);
                }
                Err(AttemptError::Fatal(e)) => return Err(e),
                Err(AttemptError::Replica(detail)) => match self.model_answer(s, shape, sql) {
                    Ok((mt, bound)) => {
                        self.metrics.model_fallbacks.inc();
                        error_bound = match (error_bound, bound) {
                            (Some(a), Some(b)) => Some(a.max(b)),
                            (a, b) => a.or(b),
                        };
                        if let Some(c) = &shard_ctx {
                            c.point(
                                "cluster.model_fallback",
                                fields![
                                    reason = "shard_model_fallback",
                                    bound = bound.unwrap_or(f64::NAN),
                                ],
                            );
                        }
                        if let Some(sp) = shard_span.as_mut() {
                            sp.field("degraded", "model");
                        }
                        degraded.push(DegradeReason::ShardModelFallback { shard: s, error_bound: bound });
                        model_tables.push(mt);
                    }
                    Err(reason) => {
                        self.metrics.partial_results.inc();
                        return Err(ClusterError::PartialResult {
                            shard: s,
                            detail: format!("{detail}; {reason}"),
                        });
                    }
                },
            }
        }
        let _merge_span = ctx.map(|c| c.span("cluster.merge"));
        let merged = merge_shard_partials(partials);
        let rows_scanned = merged.rows_scanned;
        let mut out = assemble_partials(
            &self.schema,
            &shape.group_by,
            &shape.aggs,
            merged,
            |row, col| self.key_value(&tables, row, col),
        )?;
        let approximate = !model_tables.is_empty();
        for mt in model_tables {
            out.append_rows(mt.columns())?;
        }
        if !shape.order.is_empty() {
            out = sort_rows(&out, &shape.order)?;
        }
        if let Some(n) = shape.limit {
            out = limit_rows(&out, n)?;
        }
        Ok(ClusterAnswer { table: out, rows_scanned, degraded, approximate, error_bound })
    }

    /// Resolve a group key value by global first-encounter row: find
    /// the owning shard, read from its fetched table.
    fn key_value(
        &self,
        tables: &[Option<Table>],
        row: usize,
        col: &str,
    ) -> lawsdb_query::Result<Value> {
        for (s, shard) in self.shards.iter().enumerate() {
            let local = match &shard.rows {
                RowAssignment::Contiguous { start } => {
                    if row < *start || row >= start + shard.row_count {
                        continue;
                    }
                    row - start
                }
                RowAssignment::Sparse(rows) => match rows.binary_search(&row) {
                    Ok(i) => i,
                    Err(_) => continue,
                },
            };
            let t = tables[s].as_ref().ok_or_else(|| QueryError::InvalidAggregate {
                reason: format!("group first-row {row} belongs to unanswered shard {s}"),
            })?;
            let c = t.column(col).map_err(QueryError::Storage)?;
            return c.value(local).map_err(QueryError::Storage);
        }
        Err(QueryError::InvalidAggregate { reason: format!("row {row} is in no shard") })
    }

    /// Walk the shard's replicas under health direction; first success
    /// wins. Every failed attempt followed by another is a failover,
    /// recorded both in metrics and — under a profile context — as a
    /// `cluster.failover` point in the trace.
    fn run_shard(
        &self,
        s: usize,
        shape: &AggShape,
        opts: &ExecOptions,
        ctx: Option<&ProfileContext>,
    ) -> std::result::Result<(Table, ShardPartials), AttemptError> {
        let mut last = format!("all {} replicas unavailable", self.cfg.replicas);
        let mut failed_before = false;
        for r in 0..self.cfg.replicas {
            let probing = self.health.lock().state(s, r) == ReplicaState::Down;
            if !self.health.lock().try_now(s, r) {
                continue;
            }
            if failed_before {
                self.metrics.failovers.inc();
                if let Some(c) = ctx {
                    c.point("cluster.failover", fields![replica = r as u64]);
                }
            }
            match self.attempt(s, r, shape, opts, ctx) {
                Ok(v) => {
                    self.health.lock().record_ok(s, r);
                    if probing {
                        if let Some(c) = ctx {
                            c.point(
                                "cluster.health.probe",
                                fields![replica = r as u64, outcome = "ok"],
                            );
                        }
                    }
                    return Ok(v);
                }
                Err(AttemptError::Replica(e)) => {
                    self.health.lock().record_fail(s, r);
                    if let Some(c) = ctx {
                        c.point(
                            if probing { "cluster.health.probe" } else { "cluster.attempt.fail" },
                            fields![replica = r as u64, error = e.clone()],
                        );
                    }
                    last = format!("replica {r}: {e}");
                    failed_before = true;
                }
                Err(fatal) => return Err(fatal),
            }
        }
        Err(AttemptError::Replica(last))
    }

    fn attempt(
        &self,
        s: usize,
        r: usize,
        shape: &AggShape,
        opts: &ExecOptions,
        ctx: Option<&ProfileContext>,
    ) -> std::result::Result<(Table, ShardPartials), AttemptError> {
        let mut rep = self.shards[s].replicas[r].lock();
        let table = {
            let mut span = ctx.map(|c| c.span("cluster.fetch"));
            if let Some(sp) = span.as_mut() {
                sp.field("replica", r as u64);
            }
            let mut table = rep.fetch().map_err(|e| AttemptError::Replica(e.to_string()))?;
            // The durable store rebuilds synopses on its own default
            // grid; re-map onto the global zone grid so the shard's
            // pruning and zone-aggregate decisions are exactly the
            // global engine's.
            table.rebuild_synopsis_with(self.zone_rows);
            if let Some(sp) = span.as_mut() {
                sp.field("rows", table.row_count() as u64);
            }
            table
        };
        if rep.take_injection(Phase::Execute) {
            return Err(AttemptError::Replica("injected failure at execute".to_string()));
        }
        let sp = {
            let span = ctx.map(|c| c.span("cluster.execute"));
            match &self.shards[s].rows {
                RowAssignment::Contiguous { start } => shard_partials_contiguous(
                    &table,
                    *start,
                    shape.predicate.as_ref(),
                    &shape.group_by,
                    &shape.aggs,
                    // Re-attach the engine's plan/morsel/zone spans under
                    // this shard's execute span.
                    &ExecOptions {
                        profile: span.as_ref().map(|sp| sp.child()),
                        ..opts.clone()
                    },
                ),
                RowAssignment::Sparse(rows) => shard_partials_sparse(
                    &table,
                    rows,
                    shape.predicate.as_ref(),
                    &shape.group_by,
                    &shape.aggs,
                    &ExecOptions {
                        profile: span.as_ref().map(|sp| sp.child()),
                        ..opts.clone()
                    },
                ),
            }
            // Execution errors are deterministic functions of the
            // shard's data — the same error would come back from every
            // replica.
            .map_err(|e| AttemptError::Fatal(ClusterError::Query(e)))?
        };
        {
            let _span = ctx.map(|c| c.span("cluster.gather"));
            if rep.take_injection(Phase::Gather) {
                return Err(AttemptError::Replica("injected failure at gather".to_string()));
            }
        }
        Ok((table, sp))
    }

    /// Fetch a shard's table with replica failover (gather path).
    fn fetch_shard(
        &self,
        s: usize,
        ctx: Option<&ProfileContext>,
    ) -> std::result::Result<Table, String> {
        let mut last = format!("all {} replicas unavailable", self.cfg.replicas);
        let mut failed_before = false;
        for r in 0..self.cfg.replicas {
            let probing = self.health.lock().state(s, r) == ReplicaState::Down;
            if !self.health.lock().try_now(s, r) {
                continue;
            }
            if failed_before {
                self.metrics.failovers.inc();
                if let Some(c) = ctx {
                    c.point("cluster.failover", fields![replica = r as u64]);
                }
            }
            let mut rep = self.shards[s].replicas[r].lock();
            let mut span = ctx.map(|c| c.span("cluster.fetch"));
            if let Some(sp) = span.as_mut() {
                sp.field("replica", r as u64);
            }
            match rep.fetch() {
                Ok(t) => {
                    if rep.take_injection(Phase::Gather) {
                        self.health.lock().record_fail(s, r);
                        drop(span);
                        if let Some(c) = ctx {
                            c.point(
                                if probing { "cluster.health.probe" } else { "cluster.attempt.fail" },
                                fields![replica = r as u64, error = "injected failure at gather"],
                            );
                        }
                        last = format!("replica {r}: injected failure at gather");
                        failed_before = true;
                        continue;
                    }
                    self.health.lock().record_ok(s, r);
                    if let Some(sp) = span.as_mut() {
                        sp.field("rows", t.row_count() as u64);
                    }
                    if probing {
                        drop(span);
                        if let Some(c) = ctx {
                            c.point(
                                "cluster.health.probe",
                                fields![replica = r as u64, outcome = "ok"],
                            );
                        }
                    }
                    return Ok(t);
                }
                Err(e) => {
                    self.health.lock().record_fail(s, r);
                    drop(span);
                    if let Some(c) = ctx {
                        c.point(
                            if probing { "cluster.health.probe" } else { "cluster.attempt.fail" },
                            fields![replica = r as u64, error = e.to_string()],
                        );
                    }
                    last = format!("replica {r}: {e}");
                    failed_before = true;
                }
            }
        }
        Err(last)
    }

    /// The gather-execute route: reassemble the global table in
    /// original row order and run the engine on it.
    fn gather_execute(
        &self,
        sql: &str,
        opts: &ExecOptions,
        ctx: Option<&ProfileContext>,
    ) -> Result<ClusterAnswer> {
        let mut fetched: Vec<(usize, Table)> = Vec::new();
        for s in 0..self.shards.len() {
            if self.shards[s].row_count == 0 {
                continue;
            }
            self.metrics.shard_queries.inc();
            let shard_span = ctx.map(|c| {
                let mut sp = c.span("cluster.shard");
                sp.field("shard", s as u64);
                sp
            });
            let shard_ctx = shard_span.as_ref().map(|sp| sp.child());
            let t = self.fetch_shard(s, shard_ctx.as_ref()).map_err(|detail| {
                self.metrics.partial_results.inc();
                ClusterError::PartialResult {
                    shard: s,
                    detail: format!("{detail}; raw rows have no model fallback"),
                }
            })?;
            fetched.push((s, t));
        }
        let gather_span = ctx.map(|c| c.span("cluster.gather"));
        let mut global = self.template.slice(0, 0)?;
        match &self.cfg.scheme {
            PartitionScheme::Range => {
                // Shards are ordered by start offset already.
                for (_, t) in &fetched {
                    global.append_rows(t.columns())?;
                }
            }
            PartitionScheme::Hash { .. } => {
                // Concatenate shard-major, then permute into original
                // row order.
                let mut pos = vec![0usize; self.total_rows];
                let mut offset = 0usize;
                for (s, t) in &fetched {
                    let RowAssignment::Sparse(rows) = &self.shards[*s].rows else {
                        unreachable!("hash shards carry sparse assignments")
                    };
                    for (local, orig) in rows.iter().enumerate() {
                        pos[*orig] = offset + local;
                    }
                    offset += t.row_count();
                    global.append_rows(t.columns())?;
                }
                global = global.take(&pos)?;
            }
        }
        global.rebuild_synopsis_with(self.zone_rows);
        let catalog = Catalog::new();
        catalog.register(global)?;
        drop(gather_span);
        let exec_span = ctx.map(|c| c.span("cluster.execute"));
        let run_opts = ExecOptions {
            profile: exec_span.as_ref().map(|sp| sp.child()),
            ..opts.clone()
        };
        let res = execute_with(&catalog, sql, &run_opts)?;
        drop(exec_span);
        Ok(ClusterAnswer {
            table: res.table,
            rows_scanned: res.rows_scanned,
            degraded: Vec::new(),
            approximate: false,
            error_bound: None,
        })
    }

    /// Answer a lost shard from its captured model, if sound:
    /// hash-partitioned (groups are shard-local, so model rows append
    /// disjointly), AVG/MIN/MAX only (reconstruction loses row
    /// multiplicity, so COUNT/SUM are out), no LIMIT (a per-shard
    /// LIMIT is not the global LIMIT), and the model's residual bound
    /// within policy.
    fn model_answer(
        &self,
        s: usize,
        shape: &AggShape,
        sql: &str,
    ) -> std::result::Result<(Table, Option<f64>), String> {
        if !matches!(self.cfg.scheme, PartitionScheme::Hash { .. }) {
            return Err(
                "range shards interleave groups, so a per-shard model cannot stand in".to_string()
            );
        }
        if shape.limit.is_some() {
            return Err("LIMIT cannot be applied per shard".to_string());
        }
        if let Some(bad) = shape
            .aggs
            .iter()
            .find(|a| !matches!(a.func, AggFunc::Avg | AggFunc::Min | AggFunc::Max))
        {
            return Err(format!(
                "{} is unsound from a reconstructed model (row multiplicity is lost)",
                bad.func.name()
            ));
        }
        let guard = self.shards[s].model.lock();
        let Some(model) = guard.as_ref() else {
            return Err("no captured model for the shard".to_string());
        };
        match model.bound {
            Some(b) if b <= self.cfg.max_abs_residual => {}
            other => {
                return Err(format!(
                    "model residual bound {other:?} exceeds max_abs_residual {}",
                    self.cfg.max_abs_residual
                ))
            }
        }
        let ans = model.engine.answer(sql).map_err(|e| format!("model cannot answer: {e}"))?;
        Ok((ans.table, ans.error_bound))
    }

    fn publish_health(&self) {
        let health = self.health.lock();
        let mut down_total = 0i64;
        for (s, g) in self.metrics.shard_up.iter().enumerate() {
            let up = health.replicas_up(s) as i64;
            g.set(up);
            down_total += self.cfg.replicas as i64 - up;
        }
        self.metrics.replicas_down.set(down_total);
    }

    // ------------------------------------------------- admin / test API

    /// Cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// The sharded table's name.
    pub fn table_name(&self) -> &str {
        &self.table_name
    }

    /// Rows held by shard `s`.
    pub fn shard_rows(&self, s: usize) -> usize {
        self.shards[s].row_count
    }

    /// Health state of one replica.
    pub fn replica_state(&self, s: usize, r: usize) -> ReplicaState {
        self.health.lock().state(s, r)
    }

    /// `Up` replicas of shard `s`.
    pub fn replicas_up(&self, s: usize) -> usize {
        self.health.lock().replicas_up(s)
    }

    /// Administratively kill one replica.
    pub fn kill_replica(&self, s: usize, r: usize) {
        self.shards[s].replicas[r].lock().kill();
    }

    /// Kill every replica of shard `s` (total shard loss).
    pub fn kill_shard(&self, s: usize) {
        for r in 0..self.cfg.replicas {
            self.kill_replica(s, r);
        }
    }

    /// Heal one replica (clears kill state and any armed fault).
    pub fn heal_replica(&self, s: usize, r: usize) -> Result<()> {
        self.shards[s].replicas[r].lock().heal()
    }

    /// Arm a one-shot coordinator-level failure at `phase`.
    pub fn inject_failure(&self, s: usize, r: usize, phase: Phase) {
        self.shards[s].replicas[r].lock().inject(phase);
    }

    /// Arm a device fault `op_offset` ops into the replica's next read.
    pub fn arm_read_fault(
        &self,
        s: usize,
        r: usize,
        mode: FaultMode,
        seed: u64,
        op_offset: u64,
    ) -> Result<()> {
        self.shards[s].replicas[r].lock().arm_read_fault(mode, seed, op_offset)
    }

    /// Did the replica's armed device fault fire?
    pub fn replica_fault_fired(&self, s: usize, r: usize) -> bool {
        self.shards[s].replicas[r].lock().fault_fired()
    }

    /// Device ops one shard fetch consumes on this replica.
    pub fn fetch_ops(&self, s: usize, r: usize) -> Result<u64> {
        self.shards[s].replicas[r].lock().fetch_ops().map_err(|e| {
            ClusterError::PartialResult { shard: s, detail: e.to_string() }
        })
    }
}

/// Peel `[Limit] [Sort] Aggregate(Scan | Filter(Scan))` off a plan.
fn decompose(plan: &LogicalPlan) -> Option<AggShape> {
    let mut limit = None;
    let mut order: Vec<OrderBy> = Vec::new();
    let mut p = plan;
    if let LogicalPlan::Limit { input, n } = p {
        limit = Some(*n);
        p = input;
    }
    if let LogicalPlan::Sort { input, keys } = p {
        order = keys.clone();
        p = input;
    }
    let LogicalPlan::Aggregate { input, group_by, aggs } = p else {
        return None;
    };
    let (predicate, source) = match input.as_ref() {
        LogicalPlan::Filter { input, predicate } => (Some(predicate.clone()), input.as_ref()),
        other => (None, other),
    };
    if !matches!(source, LogicalPlan::Scan { .. }) {
        return None;
    }
    Some(AggShape { group_by: group_by.clone(), aggs: aggs.clone(), predicate, order, limit })
}
