//! Property test for the cluster's headline claim: scatter-gather
//! partial-aggregate merging is **bit-identical** to the single-engine
//! answer — across random shard counts (1–8), hash vs range
//! partitioning, replica failure patterns, morsel sizes, and thread
//! counts. Float SUM/AVG are the hard cases (IEEE-754 addition is not
//! associative); exact bit comparison is the point, so results render
//! floats as their raw bit patterns.

use lawsdb_cluster::{Cluster, ClusterConfig, PartitionScheme};
use lawsdb_obs::MetricsRegistry;
use lawsdb_query::{execute_with, ExecOptions};
use lawsdb_storage::{Catalog, Table, TableBuilder, Value};
use proptest::prelude::*;

type Row = (i64, f64, u8);

fn build_table(rows: &[Row], zone_rows: usize) -> Table {
    let mut b = TableBuilder::new("t");
    b.add_i64("g", rows.iter().map(|r| r.0).collect());
    b.add_f64_opt(
        "v",
        rows.iter()
            .map(|r| match r.2 {
                0 => None,
                _ => Some(r.1),
            })
            .collect(),
    );
    let mut t = b.build().unwrap();
    t.rebuild_synopsis_with(zone_rows);
    t
}

/// Canonical rendering with floats as raw bits: equal strings ⇔ equal
/// bits, row order included.
fn render(t: &Table) -> String {
    let mut out = String::new();
    for f in t.schema().fields() {
        out.push_str(&format!("{}:{:?} ", f.name, f.data_type));
    }
    out.push('\n');
    for row in 0..t.row_count() {
        for c in t.columns() {
            match c.value(row).unwrap() {
                Value::Null => out.push_str("∅ "),
                Value::Int(i) => out.push_str(&format!("i{i} ")),
                Value::Float(x) => out.push_str(&format!("f{:016x} ", x.to_bits())),
                Value::Str(s) => out.push_str(&format!("s{s:?} ")),
                Value::Bool(b) => out.push_str(&format!("b{b} ")),
            }
        }
        out.push('\n');
    }
    out
}

fn queries(thr: f64) -> Vec<String> {
    vec![
        // Grouped, every aggregate — SUM float ordering is the acid test.
        "SELECT g, COUNT(*) AS n, SUM(v) AS s, AVG(v) AS m, MIN(v) AS lo, MAX(v) AS hi \
         FROM t GROUP BY g"
            .to_string(),
        // Filtered grouped aggregation.
        format!("SELECT g, SUM(v) AS s FROM t WHERE v > {thr} GROUP BY g"),
        // ORDER BY + LIMIT above the aggregate.
        "SELECT g, AVG(v) AS m FROM t GROUP BY g ORDER BY m DESC LIMIT 3".to_string(),
        // Global aggregates (no GROUP BY): scatter-gather on range
        // shards, gather-execute on hash shards — both must match.
        "SELECT COUNT(*) AS n, SUM(v) AS s, AVG(v) AS m FROM t".to_string(),
        format!("SELECT MIN(v) AS lo, MAX(v) AS hi FROM t WHERE v < {thr}"),
        // A non-aggregate shape takes the gather-execute route.
        format!("SELECT g, v FROM t WHERE v >= {thr} ORDER BY v LIMIT 7"),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 20, ..ProptestConfig::default() })]

    #[test]
    fn sharded_answers_are_bit_identical_to_the_engine(
        rows in prop::collection::vec((0i64..6, -100.0f64..100.0, 0u8..5), 1..300),
        shards in 1usize..9,
        hash in any::<bool>(),
        zone_rows in 4usize..40,
        morsel_rows in 4usize..96,
        threads in 1usize..4,
        thr in -60.0f64..60.0,
        kill_mask in 0u16..256,
    ) {
        let table = build_table(&rows, zone_rows);
        let catalog = Catalog::new();
        catalog.register(build_table(&rows, zone_rows)).unwrap();

        let scheme = if hash {
            PartitionScheme::Hash { key: "g".to_string() }
        } else {
            PartitionScheme::Range
        };
        let cfg = ClusterConfig {
            shards,
            replicas: 2,
            scheme,
            morsel_rows,
            fail_threshold: 1,
            probe_after: 0,
            ..ClusterConfig::default()
        };
        let registry = MetricsRegistry::new();
        let cluster = Cluster::new(&table, cfg, &registry).unwrap();
        // Random replica failure pattern: kill replica 0 of the masked
        // shards — every query must transparently fail over to replica
        // 1 and still produce the same bits.
        for s in 0..shards {
            if kill_mask & (1 << s) != 0 {
                cluster.kill_replica(s, 0);
            }
        }

        let opts = ExecOptions { threads, morsel_rows, ..ExecOptions::default() };
        for sql in queries(thr) {
            let engine = execute_with(&catalog, &sql, &opts).unwrap();
            let clustered = cluster.query(&sql, &opts).unwrap();
            prop_assert!(!clustered.approximate);
            prop_assert_eq!(
                render(&clustered.table),
                render(&engine.table),
                "bits diverged: {} (shards={}, hash={}, morsel={}, threads={})",
                sql, shards, hash, morsel_rows, threads
            );
        }
    }
}
