//! The cluster-level crash matrix: every (fault mode × shard × query
//! phase) cell, reproducible from `LAWSDB_FAULT_SEED`.
//!
//! Per cell, one replica of the target shard is broken — `Fetch` cells
//! arm a real device fault (the mode) at a seed-chosen op inside the
//! read window; `Execute`/`Gather` cells arm a coordinator-level
//! injection (device modes cannot fire there: those phases never touch
//! the device) — and the query must fail over and return **bit-identical**
//! answers. Total-loss cells kill every replica of a shard: an
//! AVG query degrades to the shard's captured model within the residual
//! bound, a SUM query returns the structured partial-result error.
//! Nothing ever panics or hangs.

use lawsdb_cluster::{Cluster, ClusterConfig, ClusterError, PartitionScheme, Phase};
use lawsdb_core::DegradeReason;
use lawsdb_obs::MetricsRegistry;
use lawsdb_query::{execute_with, ExecOptions};
use lawsdb_storage::{Catalog, FaultMode, Table, TableBuilder, Value};

fn seed() -> u64 {
    let s = lawsdb_core::resilience::fault_seed();
    println!("LAWSDB_FAULT_SEED = {s:#x} (set to reproduce)");
    s
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Noise-free power-law measurements (the paper's running example):
/// the per-shard fitted models reconstruct intensity essentially
/// exactly, which is what makes total-loss degradation sound.
fn lofar() -> Table {
    let freqs: [f64; 4] = [0.12, 0.15, 0.16, 0.18];
    let laws: [(f64, f64); 4] = [(2.0, -0.7), (0.5, -1.2), (1.0, 0.3), (3.0, -0.5)];
    let mut src = Vec::new();
    let mut nu = Vec::new();
    let mut intensity = Vec::new();
    for (s, &(p, a)) in laws.iter().enumerate() {
        for i in 0..40 {
            src.push(s as i64);
            nu.push(freqs[i % 4]);
            intensity.push(p * freqs[i % 4].powf(a));
        }
    }
    let mut b = TableBuilder::new("measurements");
    b.add_i64("source", src);
    b.add_f64("nu", nu);
    b.add_f64("intensity", intensity);
    let mut t = b.build().unwrap();
    t.rebuild_synopsis_with(16);
    t
}

fn cluster(table: &Table) -> (Cluster, MetricsRegistry) {
    let registry = MetricsRegistry::new();
    let cfg = ClusterConfig {
        shards: 3,
        replicas: 2,
        scheme: PartitionScheme::Hash { key: "source".to_string() },
        morsel_rows: 32,
        fail_threshold: 1,
        probe_after: 1,
        max_abs_residual: 1e-6,
    };
    let c = Cluster::new(table, cfg, &registry).unwrap();
    c.capture_models("intensity ~ p * nu ^ alpha", "source", &lawsdb_fit::FitOptions::default(), 2)
        .unwrap();
    (c, registry)
}

fn render(t: &Table) -> String {
    let mut out = String::new();
    for row in 0..t.row_count() {
        for c in t.columns() {
            match c.value(row).unwrap() {
                Value::Null => out.push_str("∅ "),
                Value::Int(i) => out.push_str(&format!("i{i} ")),
                Value::Float(x) => out.push_str(&format!("f{:016x} ", x.to_bits())),
                Value::Str(s) => out.push_str(&format!("s{s:?} ")),
                Value::Bool(b) => out.push_str(&format!("b{b} ")),
            }
        }
        out.push('\n');
    }
    out
}

const AVG_SQL: &str =
    "SELECT source, AVG(intensity) AS m FROM measurements GROUP BY source ORDER BY source";
const SUM_SQL: &str =
    "SELECT source, SUM(intensity) AS s FROM measurements GROUP BY source ORDER BY source";

/// Single-replica failure: every (mode × shard × phase) cell fails over
/// to the healthy replica and answers bit-identically.
#[test]
fn single_replica_failure_cells_are_bit_identical() {
    let mut state = seed();
    let table = lofar();
    let catalog = Catalog::new();
    catalog.register(lofar()).unwrap();
    let opts = ExecOptions { threads: 2, morsel_rows: 32, ..ExecOptions::default() };
    let baseline = render(&execute_with(&catalog, AVG_SQL, &opts).unwrap().table);

    let (cluster, registry) = cluster(&table);
    let mut cells = 0;
    for mode in FaultMode::ALL {
        for s in 0..cluster.config().shards {
            if cluster.shard_rows(s) == 0 {
                continue;
            }
            for phase in [Phase::Fetch, Phase::Execute, Phase::Gather] {
                let before = registry.snapshot().counter("lawsdb_cluster_failovers");
                match phase {
                    Phase::Fetch => {
                        // A real device fault, landing at a seed-chosen
                        // op inside the fetch's read window.
                        let window = cluster.fetch_ops(s, 0).unwrap();
                        let offset = splitmix64(&mut state) % window;
                        cluster.arm_read_fault(s, 0, mode, splitmix64(&mut state), offset).unwrap();
                    }
                    _ => cluster.inject_failure(s, 0, phase),
                }
                let ans = cluster.query(AVG_SQL, &opts).unwrap_or_else(|e| {
                    panic!("{mode:?}×shard{s}×{phase:?}: query failed: {e}")
                });
                assert!(!ans.approximate, "{mode:?}×shard{s}×{phase:?}: exact path expected");
                assert_eq!(
                    render(&ans.table),
                    baseline,
                    "{mode:?}×shard{s}×{phase:?}: bits diverged under failover"
                );
                let after = registry.snapshot().counter("lawsdb_cluster_failovers");
                assert!(after > before, "{mode:?}×shard{s}×{phase:?}: failover not counted");
                if phase == Phase::Fetch {
                    assert!(
                        cluster.replica_fault_fired(s, 0),
                        "{mode:?}×shard{s}: armed device fault never fired"
                    );
                }
                cluster.heal_replica(s, 0).unwrap();
                // Let the probe window elapse and the replica recover
                // to Up before the next cell re-breaks it.
                cluster.query(AVG_SQL, &opts).unwrap();
                cluster.query(AVG_SQL, &opts).unwrap();
                cells += 1;
            }
        }
    }
    println!("single-replica cells passed: {cells}");
    assert!(cells > 0);
}

/// Total shard loss: AVG degrades to the shard's captured model within
/// the residual bound; SUM (unsound from a reconstructed model) returns
/// the structured partial-result error. Never a panic, never a hang.
#[test]
fn total_shard_loss_degrades_soundly() {
    seed();
    let table = lofar();
    let catalog = Catalog::new();
    catalog.register(lofar()).unwrap();
    let opts = ExecOptions { threads: 2, morsel_rows: 32, ..ExecOptions::default() };
    let exact = execute_with(&catalog, AVG_SQL, &opts).unwrap().table;

    let (cluster, registry) = cluster(&table);
    for s in 0..cluster.config().shards {
        if cluster.shard_rows(s) == 0 {
            continue;
        }
        cluster.kill_shard(s);

        // AVG: answered, approximate, surfaced as a degrade reason.
        let ans = cluster.query(AVG_SQL, &opts).unwrap();
        assert!(ans.approximate, "shard {s}: fallback must be flagged approximate");
        assert!(
            ans.degraded
                .iter()
                .any(|d| matches!(d, DegradeReason::ShardModelFallback { shard, .. } if *shard == s)),
            "shard {s}: missing ShardModelFallback degrade reason"
        );
        assert_eq!(ans.table.row_count(), exact.row_count(), "shard {s}: all groups present");
        // Sound within the captured residual envelope: noise-free fits
        // reconstruct the response essentially exactly.
        let got = ans.table.column("m").unwrap();
        let want = exact.column("m").unwrap();
        for row in 0..exact.row_count() {
            let (Value::Float(a), Value::Float(b)) =
                (got.value(row).unwrap(), want.value(row).unwrap())
            else {
                panic!("AVG must be float")
            };
            assert!(
                (a - b).abs() <= 1e-6,
                "shard {s} row {row}: model answer {a} vs exact {b}"
            );
        }

        // SUM: refused with the structured error, not a wrong answer.
        match cluster.query(SUM_SQL, &opts) {
            Err(ClusterError::PartialResult { shard, detail }) => {
                assert_eq!(shard, s);
                assert!(detail.contains("SUM"), "detail should name the unsound aggregate: {detail}");
            }
            other => panic!("shard {s}: SUM under total loss must be PartialResult, got {other:?}"),
        }

        // Heal the shard for the next iteration.
        for r in 0..cluster.config().replicas {
            cluster.heal_replica(s, r).unwrap();
        }
        cluster.query(AVG_SQL, &opts).unwrap();
        cluster.query(AVG_SQL, &opts).unwrap();
    }
    let snap = registry.snapshot();
    assert!(snap.counter("lawsdb_cluster_model_fallbacks") >= 1);
    assert!(snap.counter("lawsdb_cluster_partial_results") >= 1);
}

/// The health tracker's probe cycle: a downed replica is skipped, then
/// probed, then restored to Up once it heals — all observable through
/// the per-shard gauges.
#[test]
fn health_probe_restores_a_healed_replica() {
    seed();
    let table = lofar();
    let (cluster, registry) = cluster(&table);
    let opts = ExecOptions { threads: 1, morsel_rows: 32, ..ExecOptions::default() };
    let s = (0..cluster.config().shards).find(|&s| cluster.shard_rows(s) > 0).unwrap();

    cluster.kill_replica(s, 0);
    cluster.query(AVG_SQL, &opts).unwrap();
    assert_eq!(cluster.replicas_up(s), 1, "failed replica marked Down");
    assert_eq!(
        registry.snapshot().gauge(&format!("lawsdb_cluster_shard_{s}_replicas_up")),
        1
    );
    assert!(registry.snapshot().gauge("lawsdb_cluster_replicas_down") >= 1);

    cluster.heal_replica(s, 0).unwrap();
    // First query skips the Down replica (probe window), the next
    // probes it successfully.
    cluster.query(AVG_SQL, &opts).unwrap();
    cluster.query(AVG_SQL, &opts).unwrap();
    assert_eq!(cluster.replicas_up(s), 2, "probe restored the healed replica");
    assert_eq!(registry.snapshot().gauge("lawsdb_cluster_replicas_down"), 0);
}
