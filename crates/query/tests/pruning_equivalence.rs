//! Property test for the tentpole soundness claim: synopsis-driven scan
//! pruning is observationally invisible. On random tables (with NULLs
//! and NaNs), random zone granularities, thread counts and predicates —
//! sargable, partially sargable, and unprunable — the pruned execution
//! returns exactly the rows and bits the exhaustive scan returns.

use lawsdb_query::{execute_with, ExecOptions};
use lawsdb_storage::{Catalog, TableBuilder};
use proptest::prelude::*;

/// One generated row: clustered key base, value, null/NaN marker.
type Row = (i64, f64, u8);

fn build_catalog(rows: &[Row], zone_rows: usize) -> Catalog {
    let c = Catalog::new();
    let mut b = TableBuilder::new("t");
    // Sort keys so zones get tight, disjoint-ish ranges — the regime
    // where pruning actually fires (random keys never refute a zone).
    let mut keys: Vec<i64> = rows.iter().map(|r| r.0).collect();
    keys.sort_unstable();
    b.add_i64("k", keys);
    b.add_f64_opt(
        "v",
        rows.iter()
            .map(|r| match r.2 {
                0 => None,
                1 => Some(f64::NAN),
                _ => Some(r.1),
            })
            .collect(),
    );
    let mut t = b.build().unwrap();
    t.rebuild_synopsis_with(zone_rows);
    c.register(t).unwrap();
    c
}

fn queries(thr: f64, key: i64) -> Vec<String> {
    vec![
        // Fully sargable: zones refuted by k alone.
        format!("SELECT k, v FROM t WHERE k < {key}"),
        format!("SELECT k, v FROM t WHERE k >= {key} AND v > {thr}"),
        format!("SELECT k FROM t WHERE k = {key}"),
        format!("SELECT k FROM t WHERE k != {key} AND k <= {}", key + 10),
        // Inexact: sargable conjunct + residual OR (no AcceptAll).
        format!("SELECT k, v FROM t WHERE k > {key} AND (v < {thr} OR v > {})", thr + 5.0),
        // Unprunable shapes must still run (and match) untouched.
        format!("SELECT k, v FROM t WHERE NOT (k < {key})"),
        format!("SELECT k + 1 AS k1 FROM t WHERE k * 2 < {key}"),
        // Aggregates over pruned scans.
        format!(
            "SELECT COUNT(*) AS n, COUNT(v) AS nv, SUM(v) AS s, AVG(v) AS m, \
             MIN(v) AS lo, MAX(v) AS hi FROM t WHERE k BETWEEN {key} AND {}",
            key + 17
        ),
        format!("SELECT COUNT(*) AS n FROM t WHERE v >= {thr}"),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn pruned_scan_is_bit_identical_to_exhaustive_scan(
        rows in prop::collection::vec((0i64..64, -100.0f64..100.0, 0u8..8), 0..300),
        thr in -90.0f64..90.0,
        key in 0i64..64,
        zone_rows in 1usize..48,
        morsel_rows in 1usize..80,
        par in any::<bool>(),
    ) {
        let catalog = build_catalog(&rows, zone_rows);
        let threads = if par { 4 } else { 1 };
        let pruned = ExecOptions { threads, morsel_rows, ..ExecOptions::default() };
        let baseline =
            ExecOptions { threads, morsel_rows, ..ExecOptions::unpruned() };
        for sql in queries(thr, key) {
            let a = execute_with(&catalog, &sql, &pruned).unwrap();
            let b = execute_with(&catalog, &sql, &baseline).unwrap();
            prop_assert_eq!(a.rows_scanned, b.rows_scanned, "rows_scanned: {}", sql);
            prop_assert_eq!(a.table.row_count(), b.table.row_count(), "row count: {}", sql);
            prop_assert_eq!(a.table.schema().names(), b.table.schema().names());
            for i in 0..a.table.row_count() {
                // Debug rendering keeps NaN cells comparable (NaN !=
                // NaN under PartialEq, but the bits must match).
                prop_assert_eq!(
                    format!("{:?}", a.table.row(i).unwrap()),
                    format!("{:?}", b.table.row(i).unwrap()),
                    "row {} of {}",
                    i,
                    sql
                );
            }
        }
    }
}
