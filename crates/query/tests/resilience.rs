//! The resilience matrix: every failure mode the runtime guards
//! against, each cell ending in a *structured* error or a
//! degraded-but-correct answer — never a process abort.
//!
//! | cell | failure | expected outcome |
//! |------|---------|------------------|
//! | 1 | deadline expires mid-scan | `QueryError::Timeout` |
//! | 2 | cancel mid-query | `QueryError::Cancelled` within one morsel |
//! | 3 | materialization over memory budget | `QueryError::MemoryExceeded` |
//! | 4 | panicking kernel | `QueryError::WorkerPanic`, sibling query unharmed |
//! | 5 | transient device fault | retries recover; exhausted → structured error |
//! | 6 | quarantined page | answered from the covering model, within its bound |
//!
//! Seeded cells print `LAWSDB_FAULT_SEED=<seed>`; re-running with that
//! variable set reproduces the exact scenario.

use lawsdb_query::{
    execute_with, morsel::parallel_morsels, CancelToken, ExecOptions, Governor, QueryError,
    ResourceBudget,
};
use lawsdb_storage::{
    BlockDevice, Catalog, FaultMode, FaultSchedule, FaultyDevice, RetryPolicy, RetryingDevice,
    SimulatedDevice, StorageError, TableBuilder,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

fn seed() -> u64 {
    let s = lawsdb_core::resilience::fault_seed();
    println!("LAWSDB_FAULT_SEED={s}");
    s
}

fn points_catalog(n: usize) -> Catalog {
    let c = Catalog::new();
    let mut b = TableBuilder::new("t");
    b.add_i64("g", (0..n).map(|i| (i % 5) as i64).collect());
    b.add_f64("v", (0..n).map(|i| (i as f64) * 0.5 - 100.0).collect());
    c.register(b.build().unwrap()).unwrap();
    c
}

// ---- cell 1: timeout --------------------------------------------------

#[test]
fn deadline_expires_mid_scan() {
    let catalog = points_catalog(50_000);
    let opts = ExecOptions {
        budget: ResourceBudget::unlimited().with_deadline(Duration::ZERO),
        ..ExecOptions::default()
    };
    let err = execute_with(&catalog, "SELECT g, SUM(v) AS s FROM t GROUP BY g", &opts)
        .unwrap_err();
    match err {
        QueryError::Timeout { budget_ms, .. } => assert_eq!(budget_ms, 0),
        other => panic!("expected Timeout, got {other}"),
    }
    // The same query under no budget completes — the governor, not the
    // data, produced the error.
    assert!(execute_with(
        &catalog,
        "SELECT g, SUM(v) AS s FROM t GROUP BY g",
        &ExecOptions::default()
    )
    .is_ok());
}

// ---- cell 2: cancellation --------------------------------------------

#[test]
fn cancel_before_execution_rejects_immediately() {
    let catalog = points_catalog(10_000);
    let token = CancelToken::new();
    token.cancel();
    let opts = ExecOptions { cancel: Some(token), ..ExecOptions::default() };
    let err =
        execute_with(&catalog, "SELECT g, SUM(v) AS s FROM t GROUP BY g", &opts).unwrap_err();
    assert!(matches!(err, QueryError::Cancelled), "{err}");
}

#[test]
fn cancel_mid_query_stops_within_one_morsel() {
    // Serial execution checks the governor before every morsel, so a
    // cancel raised *inside* morsel k must stop the query before
    // morsel k+1 runs — cancellation latency is one morsel, exactly.
    let token = CancelToken::new();
    let opts = ExecOptions {
        threads: 1,
        morsel_rows: 10,
        governor: Governor::arm(ResourceBudget::unlimited(), Some(token.clone())),
        cancel: Some(token.clone()),
        ..ExecOptions::default()
    };
    let executed = AtomicUsize::new(0);
    let err = parallel_morsels(100, &opts, |offset, _len| {
        executed.fetch_add(1, Ordering::Relaxed);
        token.cancel();
        Ok(offset)
    })
    .unwrap_err();
    assert!(matches!(err, QueryError::Cancelled), "{err}");
    assert_eq!(executed.load(Ordering::Relaxed), 1, "no morsel may start after the cancel");
}

// ---- cell 3: memory budget -------------------------------------------

#[test]
fn memory_budget_rejects_oversized_materialization() {
    let catalog = points_catalog(10_000); // ~160 KiB of column data
    let tight = ExecOptions {
        budget: ResourceBudget::unlimited().with_memory_bytes(4 * 1024),
        ..ExecOptions::default()
    };
    // A pure scan shares the stored buffers — zero-copy is never
    // charged, so even a tight budget admits it.
    let ok = execute_with(&catalog, "SELECT * FROM t", &tight);
    assert!(ok.is_ok(), "zero-copy scans must not be charged: {:?}", ok.err());
    // A filter that keeps every row must materialize ~160 KiB > 4 KiB.
    let err = execute_with(&catalog, "SELECT g, v FROM t WHERE v > -1e18", &tight).unwrap_err();
    match err {
        QueryError::MemoryExceeded { used, budget } => {
            assert!(used > budget, "{used} must exceed {budget}")
        }
        other => panic!("expected MemoryExceeded, got {other}"),
    }
}

#[test]
fn row_budget_rejects_oversized_scans() {
    let catalog = points_catalog(10_000);
    let opts = ExecOptions {
        budget: ResourceBudget::unlimited().with_max_rows(100),
        ..ExecOptions::default()
    };
    let err = execute_with(&catalog, "SELECT * FROM t", &opts).unwrap_err();
    assert!(matches!(err, QueryError::RowLimitExceeded { budget: 100, .. }), "{err}");
}

// ---- cell 4: panic isolation -----------------------------------------

#[test]
fn panicking_kernel_yields_an_error_while_a_sibling_query_completes() {
    // A sibling query starts first and runs concurrently on its own
    // catalog; the panicking kernel must not take it down.
    let sibling = std::thread::spawn(|| {
        let catalog = points_catalog(5_000);
        let opts = ExecOptions { threads: 2, morsel_rows: 256, ..ExecOptions::default() };
        execute_with(&catalog, "SELECT g, SUM(v) AS s FROM t GROUP BY g", &opts)
            .map(|r| r.table.row_count())
    });
    let opts = ExecOptions { threads: 4, morsel_rows: 8, ..ExecOptions::default() };
    let err = parallel_morsels(100, &opts, |offset, _len| {
        if offset == 48 {
            panic!("kernel bug at offset {offset}");
        }
        Ok(offset)
    })
    .unwrap_err();
    match err {
        QueryError::WorkerPanic { detail, offset } => {
            assert!(detail.contains("kernel bug"), "{detail}");
            assert_eq!(offset, 48);
        }
        other => panic!("expected WorkerPanic, got {other}"),
    }
    // The sibling finished with the right answer: 5 groups.
    assert_eq!(sibling.join().expect("sibling must not be poisoned").unwrap(), 5);
}

// ---- cell 5: transient faults + retry --------------------------------

#[test]
fn transient_fault_recovers_under_retry() {
    let seed = seed();
    let mut inner = SimulatedDevice::new(128);
    let p = inner.allocate();
    inner.write_page(p, b"resilient payload").unwrap();
    let d = RetryingDevice::new(
        FaultyDevice::new(inner, FaultSchedule::crash_at(0, FaultMode::Transient, seed)),
        RetryPolicy::default_reads(),
    );
    let page = d.read_page_owned(p).expect("retry must ride out the transient run");
    assert_eq!(&page[..17], b"resilient payload");
    let s = d.retry_stats();
    assert_eq!(s.recovered, 1);
    assert!((1..=3).contains(&s.retries), "worst transient run is 3 failures: {s:?}");
    assert!(d.inner().fault_fired());
    assert!(!d.inner().is_crashed(), "a transient fault heals");
}

#[test]
fn exhausted_retries_surface_a_structured_error() {
    let seed = seed();
    let mut inner = SimulatedDevice::new(128);
    let p = inner.allocate();
    inner.write_page(p, b"resilient payload").unwrap();
    // A *crashing* IO fault fails every attempt; the bounded budget
    // must end in a structured error, not a hang.
    let d = RetryingDevice::new(
        FaultyDevice::new(inner, FaultSchedule::crash_at(0, FaultMode::IoError, seed)),
        RetryPolicy::default_reads(),
    );
    let err = d.read_page_owned(p).unwrap_err();
    assert!(matches!(err, StorageError::Io { op: "read", .. }), "{err}");
    let s = d.retry_stats();
    assert_eq!(s.read_attempts as u32, RetryPolicy::default_reads().max_attempts);
    assert_eq!(s.exhausted, 1);
}

// ---- cell 6: quarantined page answered from the model -----------------

#[test]
fn quarantined_page_is_answered_from_the_model() {
    use lawsdb_core::DurableDb;
    use lawsdb_models::bridge::fit_table_grouped;
    use lawsdb_models::ModelCatalog;

    let seed = seed();
    // Noise-free power-law data: the fitted model reconstructs the
    // response column essentially exactly.
    let freqs: [f64; 4] = [0.12, 0.15, 0.16, 0.18];
    let laws: [(f64, f64); 4] = [(2.0, -0.7), (0.5, -1.2), (1.0, 0.3), (3.0, -0.5)];
    let mut src = Vec::new();
    let mut nu = Vec::new();
    let mut intensity = Vec::new();
    for (s, &(p, a)) in laws.iter().enumerate() {
        for i in 0..40 {
            src.push(s as i64);
            nu.push(freqs[i % 4]);
            intensity.push(p * freqs[i % 4].powf(a));
        }
    }
    let mut b = TableBuilder::new("measurements");
    b.add_i64("source", src);
    b.add_f64("nu", nu);
    b.add_f64("intensity", intensity);
    let table = b.build().unwrap();

    let models = ModelCatalog::new();
    models.store(
        fit_table_grouped(
            &table,
            "intensity ~ p * nu ^ alpha",
            "source",
            &lawsdb_fit::FitOptions::default(),
            2,
        )
        .unwrap()
        .0,
    );

    // Store durably, corrupt a seeded byte of the intensity column's
    // extent, reopen.
    let mut db = DurableDb::new(SimulatedDevice::new(256));
    db.recover().unwrap();
    db.store_table(&table).unwrap();
    let (start, _len) = db.column_pages("measurements", 2).unwrap();
    let mut dev = db.into_device();
    dev.poke_page(start).unwrap()[(seed % 256) as usize] ^= 1 << (seed % 8);
    let mut db = DurableDb::new(dev);
    db.recover().unwrap();
    assert!(db.read_table("measurements").is_err(), "corruption must be detected");

    // The resilient read re-derives the column from the model…
    let (salvaged, reasons) = db.read_table_resilient("measurements", &models).unwrap();
    assert_eq!(reasons.len(), 1, "{reasons:?}");

    // …and SQL over the salvaged table answers within the model bound.
    let catalog = Catalog::new();
    catalog.register(salvaged).unwrap();
    let r = execute_with(
        &catalog,
        "SELECT intensity FROM measurements WHERE source = 0 AND nu = 0.15",
        &ExecOptions::default(),
    )
    .unwrap();
    let got = r.table.column("intensity").unwrap().f64_data().unwrap()[0];
    assert!(
        (got - 2.0 * 0.15_f64.powf(-0.7)).abs() < 1e-6,
        "reconstructed answer drifted: {got}"
    );
}
