//! Parallel scans over a paged table must charge each page miss
//! exactly once, no matter how many worker threads run.
//!
//! The paper's zero-IO argument only holds if the exact-scan baseline
//! is honestly accounted: if concurrent morsels double-charged page
//! reads (or cache hits leaked into the device counters), the measured
//! IO advantage of model-backed answers would be inflated. This test
//! pins the invariant across thread counts, with bit-identical scan
//! results as a side condition.

use lawsdb_query::morsel::{parallel_morsels, ExecOptions};
use lawsdb_storage::pager::Pager;
use lawsdb_storage::TableBuilder;
use std::sync::Mutex;

const ROWS: usize = 2000;

fn stored_pager() -> Pager {
    let mut pager = Pager::new(128, 4096);
    let mut b = TableBuilder::new("t");
    b.add_i64("id", (0..ROWS as i64).collect());
    b.add_f64("v", (0..ROWS).map(|i| (i as f64).sqrt()).collect());
    pager.store_table(&b.build().unwrap()).unwrap();
    pager
}

/// Scan column `v` morsel by morsel through a shared pager, returning
/// the per-morsel sums in morsel order.
fn parallel_scan(pager: &Mutex<Pager>, threads: usize) -> Vec<f64> {
    let opts = ExecOptions { threads, morsel_rows: 64, ..ExecOptions::default() };
    parallel_morsels(ROWS, &opts, |offset, len| {
        // Each morsel pulls the column through the pager (and its page
        // cache) exactly like the exact-scan execution path.
        let col = pager.lock().unwrap().read_column("t", "v")?;
        let data = col.f64_data().expect("f64 column");
        Ok(data[offset..offset + len].iter().sum::<f64>())
    })
    .unwrap()
}

#[test]
fn page_misses_are_charged_once_regardless_of_thread_count() {
    let mut reference: Option<(u64, Vec<f64>)> = None;
    for threads in [1, 2, 4, 8] {
        let pager = stored_pager();
        let v_pages = pager.paged_table("t").unwrap().extents[1].pages.len() as u64;
        let pager = Mutex::new(pager);
        pager.lock().unwrap().reset();
        let sums = parallel_scan(&pager, threads);
        let stats = pager.lock().unwrap().stats();
        // The invariant: every page of the scanned column missed
        // exactly once; all later touches were cache hits.
        assert_eq!(
            stats.pages_read, v_pages,
            "{threads} threads: device reads must equal column pages"
        );
        let morsels = ROWS.div_ceil(64) as u64;
        assert_eq!(
            stats.cache_hits,
            (morsels - 1) * v_pages,
            "{threads} threads: repeat touches must be cache hits"
        );
        assert_eq!(stats.pages_written, 0, "{threads} threads: scans never write");
        // Results are bit-identical across thread counts.
        let bits: Vec<u64> = sums.iter().map(|s| s.to_bits()).collect();
        match &reference {
            None => reference = Some((stats.pages_read, bits.iter().map(|&b| f64::from_bits(b)).collect())),
            Some((ref_reads, ref_sums)) => {
                assert_eq!(stats.pages_read, *ref_reads, "{threads} threads");
                let ref_bits: Vec<u64> = ref_sums.iter().map(|s| s.to_bits()).collect();
                assert_eq!(bits, ref_bits, "{threads} threads: sums drifted");
            }
        }
    }
}

#[test]
fn warm_rescans_add_no_device_reads() {
    let pager = Mutex::new(stored_pager());
    pager.lock().unwrap().reset();
    parallel_scan(&pager, 4);
    let cold = pager.lock().unwrap().stats();
    parallel_scan(&pager, 4);
    let warm = pager.lock().unwrap().stats();
    assert_eq!(warm.pages_read, cold.pages_read, "second pass is pure cache");
    assert!(warm.cache_hits > cold.cache_hits);
}
