//! Property test: morsel-parallel execution is observationally
//! identical to serial execution — same rows, same values (bit-exact
//! floats, since partials merge in morsel order), same `rows_scanned` —
//! on random tables and a spread of plan shapes.

use lawsdb_query::{execute_with, ExecOptions};
use lawsdb_storage::{Catalog, TableBuilder};
use proptest::prelude::*;

/// One generated row: group key, value, and a null marker (0 → NULL).
type Row = (i64, f64, u8);

fn build_catalog(rows: &[Row]) -> Catalog {
    let c = Catalog::new();
    let mut b = TableBuilder::new("t");
    b.add_i64("g", rows.iter().map(|r| r.0).collect());
    b.add_f64_opt(
        "v",
        rows.iter().map(|r| if r.2 == 0 { None } else { Some(r.1) }).collect(),
    );
    c.register(b.build().unwrap()).unwrap();
    c
}

fn queries(thr: f64, key: i64) -> Vec<String> {
    vec![
        format!("SELECT g, v FROM t WHERE v > {thr}"),
        format!("SELECT g, v FROM t WHERE NOT (v > {thr}) OR g = {key}"),
        "SELECT g, COUNT(*) AS n, COUNT(v) AS nv, SUM(v) AS s, AVG(v) AS m, \
         MIN(v) AS lo, MAX(v) AS hi FROM t GROUP BY g"
            .to_string(),
        format!("SELECT COUNT(*) AS n, SUM(v) AS s FROM t WHERE g = {key} AND v < {thr}"),
        format!("SELECT v * 2 + g AS x FROM t WHERE v BETWEEN {} AND {}", thr - 25.0, thr + 25.0),
        "SELECT DISTINCT g FROM t ORDER BY g".to_string(),
        format!("SELECT g, v FROM t WHERE v >= {thr} ORDER BY v DESC LIMIT 7"),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn parallel_matches_serial_exactly(
        rows in prop::collection::vec((0i64..5, -100.0f64..100.0, 0u8..8), 0..200),
        thr in -90.0f64..90.0,
        key in 0i64..5,
        morsel_rows in 1usize..40,
    ) {
        let catalog = build_catalog(&rows);
        // Same morsel decomposition, different worker counts: merging
        // in morsel order must make the output bit-identical.
        let serial = ExecOptions { threads: 1, morsel_rows, ..ExecOptions::default() };
        let parallel = ExecOptions { threads: 4, morsel_rows, ..ExecOptions::default() };
        for sql in queries(thr, key) {
            let a = execute_with(&catalog, &sql, &serial).unwrap();
            let b = execute_with(&catalog, &sql, &parallel).unwrap();
            prop_assert_eq!(a.rows_scanned, b.rows_scanned, "rows_scanned: {}", sql);
            prop_assert_eq!(a.table.row_count(), b.table.row_count(), "row count: {}", sql);
            prop_assert_eq!(a.table.schema().names(), b.table.schema().names());
            for i in 0..a.table.row_count() {
                prop_assert_eq!(
                    a.table.row(i).unwrap(),
                    b.table.row(i).unwrap(),
                    "row {} of {}",
                    i,
                    sql
                );
            }
        }
    }
}
