//! Property test for the aggregate-pushdown soundness claim: answering
//! global aggregates from materialized zone synopses is observationally
//! invisible. On random tables — with NULLs, NaNs, per-zone all-NULL
//! stretches and constant zones — random zone granularities, morsel
//! sizes and thread counts, the pushed execution returns bit-identical
//! answers to the exhaustive unpruned scan, while actually exercising
//! the synopsis path (`zones_agg_synopsis > 0` on accepted workloads).

use lawsdb_query::{execute_with, ExecOptions, ScanStatsCollector};
use lawsdb_storage::{Catalog, TableBuilder};
use proptest::prelude::*;
use std::sync::Arc;

/// One generated row: clustered key base, value, shape marker.
type Row = (i64, f64, u8);

/// Build a table whose `v` column carries NULLs, NaNs, all-NULL zones
/// and constant zones — the degenerate shapes the synopsis must encode
/// faithfully (count present, sums absent, min/max untouched).
fn build_catalog(rows: &[Row], zone_rows: usize) -> Catalog {
    let c = Catalog::new();
    let mut b = TableBuilder::new("t");
    let mut keys: Vec<i64> = rows.iter().map(|r| r.0).collect();
    keys.sort_unstable();
    b.add_i64("k", keys);
    b.add_f64_opt(
        "v",
        rows.iter()
            .enumerate()
            .map(|(i, r)| {
                let zone = i / zone_rows.max(1);
                match zone % 5 {
                    // Every third zone-quintet starts with an all-NULL
                    // zone and follows with a constant zone.
                    0 => None,
                    1 => Some(7.5),
                    _ => match r.2 {
                        0 => None,
                        1 => Some(f64::NAN),
                        _ => Some(r.1),
                    },
                }
            })
            .collect(),
    );
    let mut t = b.build().unwrap();
    t.rebuild_synopsis_with(zone_rows);
    c.register(t).unwrap();
    c
}

fn queries(key: i64) -> Vec<String> {
    vec![
        // No filter: every zone answers from its materialized partial.
        "SELECT COUNT(*) AS n, COUNT(v) AS nv, SUM(v) AS s, AVG(v) AS m, \
         MIN(v) AS lo, MAX(v) AS hi, SUM(k) AS sk, MIN(k) AS klo, MAX(k) AS khi FROM t"
            .to_string(),
        // Range filters: interior zones push, boundary zones fuse.
        format!(
            "SELECT COUNT(*) AS n, SUM(v) AS s, MIN(v) AS lo, MAX(v) AS hi \
             FROM t WHERE k < {key}"
        ),
        format!("SELECT COUNT(*) AS n, SUM(k) AS sk FROM t WHERE k >= {key}"),
        format!(
            "SELECT MIN(v) AS lo, MAX(v) AS hi, COUNT(v) AS nv \
             FROM t WHERE k BETWEEN {key} AND {}",
            key + 13
        ),
        // Residual (unsargable on v): Eval zones run the fused kernel.
        format!("SELECT COUNT(*) AS n, SUM(v) AS s FROM t WHERE v > {}.5", key % 50),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn pushed_aggregates_are_bit_identical_to_exhaustive_scans(
        rows in prop::collection::vec((0i64..64, -100.0f64..100.0, 0u8..8), 0..300),
        key in 0i64..64,
        zone_rows in 1usize..48,
        morsel_rows in 1usize..80,
        par in any::<bool>(),
    ) {
        let catalog = build_catalog(&rows, zone_rows);
        let threads = if par { 4 } else { 1 };
        let sink = Arc::new(ScanStatsCollector::default());
        let pushed = ExecOptions {
            threads,
            morsel_rows,
            stats: Some(sink.clone()),
            ..ExecOptions::default()
        };
        let baseline = ExecOptions { threads, morsel_rows, ..ExecOptions::unpruned() };
        for sql in queries(key) {
            let a = execute_with(&catalog, &sql, &pushed).unwrap();
            let b = execute_with(&catalog, &sql, &baseline).unwrap();
            prop_assert_eq!(a.table.row_count(), b.table.row_count(), "row count: {}", sql);
            for i in 0..a.table.row_count() {
                // Debug rendering keeps NaN cells comparable (NaN !=
                // NaN under PartialEq, but the bits must match).
                prop_assert_eq!(
                    format!("{:?}", a.table.row(i).unwrap()),
                    format!("{:?}", b.table.row(i).unwrap()),
                    "row {} of {}",
                    i,
                    sql
                );
            }
        }
        // Tiny morsels clip every unit (the fallback is the fused
        // kernel, still bit-identical — asserted above). With default
        // morsel sizing, the unfiltered aggregate over a non-empty
        // table must actually take the synopsis path.
        if !rows.is_empty() {
            let aligned = Arc::new(ScanStatsCollector::default());
            let opts = ExecOptions { stats: Some(aligned.clone()), ..ExecOptions::default() };
            execute_with(&catalog, &queries(key)[0], &opts).unwrap();
            let snap = aligned.snapshot();
            prop_assert!(
                snap.zones_agg_synopsis > 0,
                "expected pushed zones on the unfiltered aggregate, got {:?}",
                snap
            );
            prop_assert_eq!(snap.pages_total, 0, "pushed aggregate plans no pages");
        }
    }
}
