//! Property test for the cost-based planner's soundness claim: lowering
//! through the physical layer — per-zone access costing, cost-based
//! conjunct reordering, LIMIT 0 elision — is observationally invisible.
//! On random tables (with NULLs and NaNs), random zone granularities,
//! morsel sizes and thread counts, the physical plan's execution returns
//! exactly the rows and bits the heuristic logical plan returns.
//!
//! Reordering is safe because Kleene (SQL 3VL) AND is commutative and
//! associative, and only truth bits ever select rows; this test is the
//! executable form of that argument.

use lawsdb_query::{
    execute_plan_with, execute_physical_with, optimize::optimize, parse_select, plan_physical,
    CostConstants, ExecOptions, LogicalPlan,
};
use lawsdb_storage::{Catalog, TableBuilder};
use proptest::prelude::*;

/// One generated row: clustered key base, value, null/NaN marker.
type Row = (i64, f64, u8);

fn build_catalog(rows: &[Row], zone_rows: usize) -> Catalog {
    let c = Catalog::new();
    let mut b = TableBuilder::new("t");
    // Sorted keys give zones tight ranges, so access-path costing sees
    // a mix of skipped, accepted and evaluated zones.
    let mut keys: Vec<i64> = rows.iter().map(|r| r.0).collect();
    keys.sort_unstable();
    b.add_i64("k", keys);
    b.add_f64_opt(
        "v",
        rows.iter()
            .map(|r| match r.2 {
                0 => None,
                1 => Some(f64::NAN),
                _ => Some(r.1),
            })
            .collect(),
    );
    let mut t = b.build().unwrap();
    t.rebuild_synopsis_with(zone_rows);
    c.register(t).unwrap();
    c
}

fn queries(thr: f64, key: i64) -> Vec<String> {
    vec![
        // Multi-conjunct shapes where the cost model reorders: a wide
        // key range (low selectivity) ANDed with narrower ones.
        format!("SELECT k, v FROM t WHERE k < {} AND k < {key} AND v > {thr}", key + 40),
        format!("SELECT k, v FROM t WHERE v <= {thr} AND k >= {key} AND k != {}", key + 3),
        format!("SELECT k FROM t WHERE k <= {} AND k = {key}", key + 20),
        // Residual ORs and NaN-aware negation ride along unreordered.
        format!("SELECT k, v FROM t WHERE k > {key} AND (v < {thr} OR v > {})", thr + 5.0),
        format!("SELECT k, v FROM t WHERE NOT (v < {thr}) AND k BETWEEN {key} AND {}", key + 25),
        // Aggregates over reordered filters (fused accumulate path).
        format!(
            "SELECT COUNT(*) AS n, SUM(v) AS s, MIN(v) AS lo, MAX(v) AS hi \
             FROM t WHERE v > {thr} AND k < {key} AND k >= {}",
            key - 30
        ),
        format!(
            "SELECT k, COUNT(*) AS n FROM t WHERE k < {key} AND v != {thr} \
             GROUP BY k ORDER BY k DESC LIMIT 7"
        ),
        // LIMIT 0 elision: schema must survive, zero rows must come out.
        format!("SELECT k, v FROM t WHERE k < {key} LIMIT 0"),
        "SELECT COUNT(*) AS n FROM t LIMIT 0".to_string(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn physical_plan_is_bit_identical_to_heuristic_plan(
        rows in prop::collection::vec((0i64..64, -100.0f64..100.0, 0u8..8), 0..300),
        thr in -90.0f64..90.0,
        key in 0i64..64,
        zone_rows in 1usize..48,
        morsel_rows in 1usize..80,
        par in any::<bool>(),
    ) {
        let catalog = build_catalog(&rows, zone_rows);
        let threads = if par { 4 } else { 1 };
        let opts = ExecOptions { threads, morsel_rows, ..ExecOptions::default() };
        for sql in queries(thr, key) {
            let stmt = parse_select(&sql).unwrap();
            let heuristic = optimize(&LogicalPlan::from_statement(&stmt).unwrap());
            let physical = plan_physical(&catalog, &heuristic, &CostConstants::default());
            let a = execute_physical_with(&catalog, &physical, &opts).unwrap();
            let b = execute_plan_with(&catalog, &heuristic, &opts).unwrap();
            // Reordering never changes which zones are pruned (same
            // conjunct set), so even the IO accounting must agree.
            prop_assert_eq!(a.rows_scanned, b.rows_scanned, "rows_scanned: {}", sql);
            prop_assert_eq!(a.table.row_count(), b.table.row_count(), "row count: {}", sql);
            prop_assert_eq!(a.table.schema().names(), b.table.schema().names());
            for i in 0..a.table.row_count() {
                // Debug rendering keeps NaN cells comparable (NaN !=
                // NaN under PartialEq, but the bits must match).
                prop_assert_eq!(
                    format!("{:?}", a.table.row(i).unwrap()),
                    format!("{:?}", b.table.row(i).unwrap()),
                    "row {} of {}",
                    i,
                    sql
                );
            }
        }
    }
}
