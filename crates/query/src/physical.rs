//! Logical→physical planning.
//!
//! The heuristic optimizer ([`crate::optimize`]) rewrites the logical
//! tree; this pass then prices it. For every node it derives an
//! [`Estimate`] (output cardinality + cumulative cost in µs) from
//! zonemap selectivity statistics and the per-operator constants in
//! [`CostConstants`], and for `Filter`-over-`Scan` pipelines it
//! additionally:
//!
//! - walks the table synopsis zone-by-zone to build an [`AccessPlan`]
//!   (how many zones will be skipped outright, answered wholesale from
//!   compressed-domain bounds, or evaluated row-at-a-time), pricing
//!   exact page scans against the accept/skip paths the pruner exposes;
//! - reorders AND-connected conjuncts most-selective-first (stable on
//!   ties), so the executor's short-circuit evaluation drops rows as
//!   early as possible. SQL `AND` is Kleene: commutative and
//!   associative over `(truth, known)` masks, so any reordering is
//!   result-preserving — `tests/optimizer_equivalence.rs` pins this.
//!
//! The physical tree lowers back to a [`LogicalPlan`] for execution
//! (`to_logical`), renders estimate-annotated EXPLAIN lines, and is the
//! unit cached by [`crate::plan_cache::PlanCache`].

use crate::cost::CostConstants;
use crate::error::Result;
use crate::exec::{execute_plan_with, QueryResult};
use crate::morsel::ExecOptions;
use crate::plan::{AggSpec, LogicalPlan};
use crate::pruning::{PruningConjunct, PruningPredicate, ScanStats, ZoneDecision};
use crate::sexpr::ScalarExpr;
use crate::sql::OrderBy;
use lawsdb_storage::zonemap::ZoneSource;
use lawsdb_storage::Catalog;

/// Selectivity assumed for conjuncts the synopsis cannot estimate
/// (non-sargable residuals, unknown columns).
pub const DEFAULT_SELECTIVITY: f64 = 0.25;

/// Cardinality and cumulative cost estimate for one physical node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Estimated output rows.
    pub rows: f64,
    /// Estimated cumulative cost (this node plus its inputs), µs.
    pub cost_us: f64,
}

impl Estimate {
    fn zero() -> Estimate {
        Estimate { rows: 0.0, cost_us: 0.0 }
    }
}

/// Zone-level access path for a pruned scan, computed at plan time by
/// replaying [`PruningPredicate::plan_range`] against the synopsis.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AccessPlan {
    /// Zone-aligned chunks the executor will evaluate row-at-a-time.
    pub zones_eval: usize,
    /// Chunks taken wholesale from compressed-domain bounds.
    pub zones_accept: usize,
    /// Chunks skipped by exact write-time zone maps.
    pub zones_skip_data: usize,
    /// Chunks skipped by model-derived bounds.
    pub zones_skip_model: usize,
    /// Rows inside Eval chunks.
    pub rows_eval: usize,
    /// Rows inside AcceptAll chunks.
    pub rows_accept: usize,
    /// Rows never touched at all.
    pub rows_skipped: usize,
}

impl AccessPlan {
    /// Total zone-aligned chunks consulted.
    pub fn zones_total(&self) -> usize {
        self.zones_eval + self.zones_accept + self.zones_skip_data + self.zones_skip_model
    }

    /// Compact render folded into the EXPLAIN Pruning line.
    fn describe(&self) -> String {
        format!(
            "zones[eval={} accept={} skip={}]",
            self.zones_eval,
            self.zones_accept,
            self.zones_skip_data + self.zones_skip_model
        )
    }
}

/// Plan-time estimate of the zone-aggregate pushdown path: for eligible
/// global aggregates, zones the pruner accepts wholesale answer from
/// their materialized [`ZoneAgg`](lawsdb_storage::zonemap::ZoneAgg)
/// partials (constant work per zone, zero page reads) while residual
/// `Eval` zones run the fused filter+aggregate kernel.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ZoneAggPath {
    /// Unit granularity the executor folds at.
    pub grid: usize,
    /// Units expected to substitute materialized partials.
    pub zones_pushed: usize,
    /// Rows expected to run the fused scan kernel instead.
    pub rows_fused: usize,
}

impl ZoneAggPath {
    /// Compact render appended to the EXPLAIN Aggregate line.
    fn describe(&self) -> String {
        format!("zone_agg[push={} fused_rows={}]", self.zones_pushed, self.rows_fused)
    }
}

/// One node of the physical plan: the logical operator plus its
/// estimate, and for filters the chosen conjunct order + access path.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysicalNode {
    /// Base-table page scan.
    Scan {
        /// Table name.
        table: String,
        /// Columns to materialize, or `None` for all.
        projection: Option<Vec<String>>,
        /// Estimate.
        est: Estimate,
    },
    /// Statically-empty scan (`LIMIT 0` elision); zero IO, zero cost.
    EmptyScan {
        /// Table name.
        table: String,
        /// Columns to materialize, or `None` for all.
        projection: Option<Vec<String>>,
        /// Estimate.
        est: Estimate,
    },
    /// Inner hash equi-join.
    Join {
        /// Left input.
        left: Box<PhysicalNode>,
        /// Right input.
        right: Box<PhysicalNode>,
        /// Key column on the left input.
        left_col: String,
        /// Key column on the right input.
        right_col: String,
        /// Estimate.
        est: Estimate,
    },
    /// Row filter with cost-ordered conjuncts.
    Filter {
        /// Input node.
        input: Box<PhysicalNode>,
        /// Predicate with conjuncts in chosen evaluation order.
        predicate: ScalarExpr,
        /// Combined estimated selectivity of all conjuncts.
        selectivity: f64,
        /// Zone access path when the input is a base scan with a
        /// synopsis.
        access: Option<AccessPlan>,
        /// True when costing changed the conjunct order.
        reordered: bool,
        /// Estimate.
        est: Estimate,
    },
    /// Hash aggregation.
    Aggregate {
        /// Input node.
        input: Box<PhysicalNode>,
        /// Grouping columns.
        group_by: Vec<String>,
        /// Aggregates to compute.
        aggs: Vec<AggSpec>,
        /// Zone-aggregate pushdown path, when the query shape and the
        /// scanned table's synopsis make one available.
        zone_agg: Option<ZoneAggPath>,
        /// Estimate.
        est: Estimate,
    },
    /// Projection.
    Project {
        /// Input node.
        input: Box<PhysicalNode>,
        /// `(expression, output name)` pairs.
        exprs: Vec<(ScalarExpr, String)>,
        /// `SELECT *`?
        star: bool,
        /// Estimate.
        est: Estimate,
    },
    /// Duplicate elimination.
    Distinct {
        /// Input node.
        input: Box<PhysicalNode>,
        /// Estimate.
        est: Estimate,
    },
    /// Sort.
    Sort {
        /// Input node.
        input: Box<PhysicalNode>,
        /// Sort keys.
        keys: Vec<OrderBy>,
        /// Estimate.
        est: Estimate,
    },
    /// Row cap.
    Limit {
        /// Input node.
        input: Box<PhysicalNode>,
        /// Row cap.
        n: usize,
        /// Estimate.
        est: Estimate,
    },
}

impl PhysicalNode {
    /// This node's estimate.
    pub fn estimate(&self) -> Estimate {
        match self {
            PhysicalNode::Scan { est, .. }
            | PhysicalNode::EmptyScan { est, .. }
            | PhysicalNode::Join { est, .. }
            | PhysicalNode::Filter { est, .. }
            | PhysicalNode::Aggregate { est, .. }
            | PhysicalNode::Project { est, .. }
            | PhysicalNode::Distinct { est, .. }
            | PhysicalNode::Sort { est, .. }
            | PhysicalNode::Limit { est, .. } => *est,
        }
    }

    /// Lower back to the logical operator tree the executor runs.
    pub fn to_logical(&self) -> LogicalPlan {
        match self {
            PhysicalNode::Scan { table, projection, .. } => {
                LogicalPlan::Scan { table: table.clone(), projection: projection.clone() }
            }
            PhysicalNode::EmptyScan { table, projection, .. } => {
                LogicalPlan::EmptyScan { table: table.clone(), projection: projection.clone() }
            }
            PhysicalNode::Join { left, right, left_col, right_col, .. } => LogicalPlan::Join {
                left: Box::new(left.to_logical()),
                right: Box::new(right.to_logical()),
                left_col: left_col.clone(),
                right_col: right_col.clone(),
            },
            PhysicalNode::Filter { input, predicate, .. } => LogicalPlan::Filter {
                input: Box::new(input.to_logical()),
                predicate: predicate.clone(),
            },
            PhysicalNode::Aggregate { input, group_by, aggs, .. } => LogicalPlan::Aggregate {
                input: Box::new(input.to_logical()),
                group_by: group_by.clone(),
                aggs: aggs.clone(),
            },
            PhysicalNode::Project { input, exprs, star, .. } => LogicalPlan::Project {
                input: Box::new(input.to_logical()),
                exprs: exprs.clone(),
                star: *star,
            },
            PhysicalNode::Distinct { input, .. } => {
                LogicalPlan::Distinct { input: Box::new(input.to_logical()) }
            }
            PhysicalNode::Sort { input, keys, .. } => {
                LogicalPlan::Sort { input: Box::new(input.to_logical()), keys: keys.clone() }
            }
            PhysicalNode::Limit { input, n, .. } => {
                LogicalPlan::Limit { input: Box::new(input.to_logical()), n: *n }
            }
        }
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        let est = self.estimate();
        let ann = format!(" · est_rows={:.0} est_cost={:.1}us", est.rows, est.cost_us);
        match self {
            PhysicalNode::Scan { table, projection, .. } => {
                let cols = match projection {
                    None => "*".to_string(),
                    Some(cols) => cols.join(", "),
                };
                out.push_str(&format!("{pad}Scan {table} [{cols}]{ann}\n"));
            }
            PhysicalNode::EmptyScan { table, projection, .. } => {
                let cols = match projection {
                    None => "*".to_string(),
                    Some(cols) => cols.join(", "),
                };
                out.push_str(&format!("{pad}EmptyScan {table} [{cols}]{ann}\n"));
            }
            PhysicalNode::Join { left, right, left_col, right_col, .. } => {
                out.push_str(&format!("{pad}Join on {left_col} = {right_col}{ann}\n"));
                left.explain_into(out, depth + 1);
                right.explain_into(out, depth + 1);
            }
            PhysicalNode::Filter { input, predicate, selectivity, access, reordered, .. } => {
                out.push_str(&format!(
                    "{pad}Filter {predicate}{ann} sel={selectivity:.3}{}\n",
                    if *reordered { " (reordered)" } else { "" }
                ));
                // Mirror the logical EXPLAIN's Pruning line, annotated
                // with the planned zone access path. Appended, never
                // restructured: consumers index EXPLAIN output by line.
                if matches!(&**input, PhysicalNode::Scan { .. }) {
                    if let Some(p) = PruningPredicate::extract(predicate) {
                        let zones = match access {
                            Some(a) => format!(" {}", a.describe()),
                            None => String::new(),
                        };
                        out.push_str(&format!(
                            "{pad}  Pruning [{}]{}{zones}\n",
                            p.describe(),
                            if p.exact { " (exact)" } else { "" }
                        ));
                    }
                }
                input.explain_into(out, depth + 1);
            }
            PhysicalNode::Aggregate { input, group_by, aggs, zone_agg, .. } => {
                let aggs: Vec<String> = aggs.iter().map(|a| a.name.clone()).collect();
                // The pushdown path is appended to the Aggregate line,
                // never emitted as its own line: consumers index
                // EXPLAIN output by line.
                let push = match zone_agg {
                    Some(z) => format!(" {}", z.describe()),
                    None => String::new(),
                };
                out.push_str(&format!(
                    "{pad}Aggregate group_by=[{}] aggs=[{}]{ann}{push}\n",
                    group_by.join(", "),
                    aggs.join(", ")
                ));
                input.explain_into(out, depth + 1);
            }
            PhysicalNode::Project { input, exprs, star, .. } => {
                let mut items: Vec<String> = Vec::new();
                if *star {
                    items.push("*".to_string());
                }
                items.extend(exprs.iter().map(|(e, n)| format!("{e} AS {n}")));
                out.push_str(&format!("{pad}Project [{}]{ann}\n", items.join(", ")));
                input.explain_into(out, depth + 1);
            }
            PhysicalNode::Distinct { input, .. } => {
                out.push_str(&format!("{pad}Distinct{ann}\n"));
                input.explain_into(out, depth + 1);
            }
            PhysicalNode::Sort { input, keys, .. } => {
                let keys: Vec<String> = keys
                    .iter()
                    .map(|k| format!("{}{}", k.column, if k.desc { " DESC" } else { "" }))
                    .collect();
                out.push_str(&format!("{pad}Sort [{}]{ann}\n", keys.join(", ")));
                input.explain_into(out, depth + 1);
            }
            PhysicalNode::Limit { input, n, .. } => {
                out.push_str(&format!("{pad}Limit {n}{ann}\n"));
                input.explain_into(out, depth + 1);
            }
        }
    }
}

/// A costed physical plan, ready to execute or cache.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysicalPlan {
    /// Root physical node.
    pub root: PhysicalNode,
    /// Pre-lowered logical tree (what the executor actually runs),
    /// computed once so cached plans do not re-lower per query.
    lowered: LogicalPlan,
}

impl PhysicalPlan {
    /// The root node's estimate.
    pub fn root_estimate(&self) -> Estimate {
        self.root.estimate()
    }

    /// The logical tree this plan lowers to.
    pub fn logical(&self) -> &LogicalPlan {
        &self.lowered
    }

    /// EXPLAIN text: the logical plan shape with ` · est_rows=… `
    /// `est_cost=…` annotations appended to every line.
    pub fn explain(&self) -> String {
        let mut s = String::new();
        self.root.explain_into(&mut s, 0);
        s
    }
}

/// Price a (heuristically optimized) logical plan against the catalog's
/// current statistics. Infallible by design: unknown tables or missing
/// synopses degrade to default estimates, never to planning errors —
/// execution reports those.
pub fn plan_physical(catalog: &Catalog, plan: &LogicalPlan, consts: &CostConstants) -> PhysicalPlan {
    let root = plan_node(catalog, plan, consts);
    let lowered = root.to_logical();
    PhysicalPlan { root, lowered }
}

/// Execute a physical plan. Estimates ride along into the profile (one
/// `plan.estimate` point) so `explain_analyze` can show estimated vs
/// actual cost side by side.
pub fn execute_physical_with(
    catalog: &Catalog,
    plan: &PhysicalPlan,
    opts: &ExecOptions,
) -> Result<QueryResult> {
    if let Some(ctx) = &opts.profile {
        let est = plan.root_estimate();
        ctx.point(
            "plan.estimate",
            vec![
                ("est_rows", (est.rows.max(0.0).round() as u64).into()),
                ("est_cost_us", (est.cost_us.max(0.0).round() as u64).into()),
            ],
        );
    }
    execute_plan_with(catalog, plan.logical(), opts)
}

fn plan_node(catalog: &Catalog, plan: &LogicalPlan, consts: &CostConstants) -> PhysicalNode {
    match plan {
        LogicalPlan::Scan { table, projection } => {
            let rows = catalog.get(table).map(|t| t.row_count()).unwrap_or(0) as f64;
            PhysicalNode::Scan {
                table: table.clone(),
                projection: projection.clone(),
                est: Estimate { rows, cost_us: rows * consts.scan_tuple_us },
            }
        }
        LogicalPlan::EmptyScan { table, projection } => PhysicalNode::EmptyScan {
            table: table.clone(),
            projection: projection.clone(),
            est: Estimate::zero(),
        },
        LogicalPlan::Join { left, right, left_col, right_col } => {
            let l = plan_node(catalog, left, consts);
            let r = plan_node(catalog, right, consts);
            let (le, re) = (l.estimate(), r.estimate());
            // Equi-join proxy: at most one match per probe row.
            let rows = le.rows.min(re.rows);
            let cost_us = le.cost_us
                + re.cost_us
                + (le.rows + re.rows) * consts.agg_tuple_us
                + rows * consts.accept_tuple_us;
            PhysicalNode::Join {
                left: Box::new(l),
                right: Box::new(r),
                left_col: left_col.clone(),
                right_col: right_col.clone(),
                est: Estimate { rows, cost_us },
            }
        }
        LogicalPlan::Filter { input, predicate } => plan_filter(catalog, input, predicate, consts),
        LogicalPlan::Aggregate { input, group_by, aggs } => {
            let i = plan_node(catalog, input, consts);
            let ie = i.estimate();
            let rows =
                if group_by.is_empty() { 1.0 } else { ie.rows.sqrt().ceil().max(1.0) };
            let zone_agg = plan_zone_agg(catalog, &i, group_by, aggs);
            let n_aggs = aggs.len().max(1) as f64;
            // Price zone-aggregate vs row-scan per zone: pushed units
            // cost one constant fold each; only fused-kernel rows pay
            // per-row aggregation. A bare scan under a fully pushed
            // aggregate is elided entirely (the paper's zero-IO path),
            // so its cost drops out; a filtered input keeps its pruned
            // scan cost since Eval zones still materialize.
            let cost_us = match (&zone_agg, &i) {
                (Some(z), PhysicalNode::Scan { .. }) => {
                    z.zones_pushed as f64 * consts.agg_zone_fold_us
                        + z.rows_fused as f64 * n_aggs * consts.agg_tuple_us
                }
                (Some(z), _) => {
                    ie.cost_us
                        + z.zones_pushed as f64 * consts.agg_zone_fold_us
                        + z.rows_fused as f64 * n_aggs * consts.agg_tuple_us
                }
                (None, _) => ie.cost_us + ie.rows * n_aggs * consts.agg_tuple_us,
            };
            PhysicalNode::Aggregate {
                input: Box::new(i),
                group_by: group_by.clone(),
                aggs: aggs.clone(),
                zone_agg,
                est: Estimate { rows, cost_us },
            }
        }
        LogicalPlan::Project { input, exprs, star } => {
            let i = plan_node(catalog, input, consts);
            let ie = i.estimate();
            let cost_us = ie.cost_us + ie.rows * exprs.len() as f64 * consts.eval_tuple_us;
            PhysicalNode::Project {
                input: Box::new(i),
                exprs: exprs.clone(),
                star: *star,
                est: Estimate { rows: ie.rows, cost_us },
            }
        }
        LogicalPlan::Distinct { input } => {
            let i = plan_node(catalog, input, consts);
            let ie = i.estimate();
            PhysicalNode::Distinct {
                input: Box::new(i),
                est: Estimate {
                    rows: ie.rows.sqrt().ceil().max(1.0).min(ie.rows.max(1.0)),
                    cost_us: ie.cost_us + ie.rows * consts.agg_tuple_us,
                },
            }
        }
        LogicalPlan::Sort { input, keys } => {
            let i = plan_node(catalog, input, consts);
            let ie = i.estimate();
            let cost_us =
                ie.cost_us + ie.rows * (ie.rows + 2.0).log2() * consts.sort_tuple_us;
            PhysicalNode::Sort {
                input: Box::new(i),
                keys: keys.clone(),
                est: Estimate { rows: ie.rows, cost_us },
            }
        }
        LogicalPlan::Limit { input, n } => {
            let i = plan_node(catalog, input, consts);
            let ie = i.estimate();
            let rows = ie.rows.min(*n as f64);
            PhysicalNode::Limit {
                input: Box::new(i),
                n: *n,
                est: Estimate { rows, cost_us: ie.cost_us + rows * consts.accept_tuple_us },
            }
        }
    }
}

/// One AND-connected conjunct with its costing metadata.
struct ConjunctInfo {
    expr: ScalarExpr,
    /// Present when the conjunct alone is an exact sargable comparison.
    sargable: Option<PruningConjunct>,
    /// Estimated selectivity (DEFAULT_SELECTIVITY when unknowable).
    selectivity: f64,
    /// Position in the original predicate (stable tie-break).
    index: usize,
}

fn plan_filter(
    catalog: &Catalog,
    input: &LogicalPlan,
    predicate: &ScalarExpr,
    consts: &CostConstants,
) -> PhysicalNode {
    let phys_input = plan_node(catalog, input, consts);
    let ie = phys_input.estimate();

    // Synopsis of the base table, when the filter sits on a scan.
    let scanned = match input {
        LogicalPlan::Scan { table, .. } => catalog.get(table).ok(),
        _ => None,
    };
    let synopsis = scanned.as_ref().and_then(|t| t.synopsis());

    // Decompose, estimate, and order the conjuncts.
    let mut infos: Vec<ConjunctInfo> = predicate
        .conjuncts()
        .into_iter()
        .enumerate()
        .map(|(index, expr)| {
            let sargable = PruningPredicate::extract(expr)
                .filter(|p| p.exact && p.conjuncts.len() == 1)
                .map(|p| p.conjuncts.into_iter().next().expect("len checked"));
            let selectivity = sargable
                .as_ref()
                .and_then(|c| {
                    synopsis.and_then(|s| s.estimate_selectivity(&c.column, c.op, c.rhs))
                })
                .unwrap_or(DEFAULT_SELECTIVITY);
            ConjunctInfo { expr: expr.clone(), sargable, selectivity, index }
        })
        .collect();
    // Most-selective sargable conjuncts first; residuals (which cannot
    // prune and tend to be arithmetic-heavy) keep their original order
    // at the back. Kleene AND makes any order result-identical.
    infos.sort_by(|a, b| {
        match (a.sargable.is_some(), b.sargable.is_some()) {
            (true, false) => std::cmp::Ordering::Less,
            (false, true) => std::cmp::Ordering::Greater,
            (false, false) => a.index.cmp(&b.index),
            (true, true) => a
                .selectivity
                .partial_cmp(&b.selectivity)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.index.cmp(&b.index)),
        }
    });
    let reordered = infos.windows(2).any(|w| w[0].index > w[1].index);
    let combined_sel: f64 = infos.iter().map(|c| c.selectivity).product();

    // Rebuild the predicate left-deep in the chosen order: the executor
    // evaluates conjuncts left to right with short-circuiting.
    let ordered: Vec<ScalarExpr> = infos.iter().map(|c| c.expr.clone()).collect();
    let predicate = and_chain(ordered);

    // Per-zone access path + cost, when the synopsis can prune.
    let mut access = None;
    let mut cost_us = ie.cost_us + ie.rows * infos.len() as f64 * consts.eval_tuple_us;
    if let (Some(table), Some(syn)) = (&scanned, synopsis) {
        if let Some(pruner) = PruningPredicate::extract(&predicate) {
            let a = access_plan(&pruner, syn, table.row_count());
            // Eval zones pay materialize + short-circuit conjunct
            // evaluation (conjunct i only sees rows surviving 0..i);
            // accept zones pay a gather; skipped zones pay nothing.
            let mut eval_per_row = 0.0;
            let mut alive = 1.0;
            for c in &infos {
                eval_per_row += alive * consts.eval_tuple_us;
                alive *= c.selectivity;
            }
            cost_us = a.zones_total() as f64 * consts.zone_decide_us
                + a.rows_accept as f64 * consts.accept_tuple_us
                + a.rows_eval as f64 * (consts.scan_tuple_us + eval_per_row);
            access = Some(a);
        }
    }

    PhysicalNode::Filter {
        input: Box::new(phys_input),
        predicate,
        selectivity: combined_sel,
        access,
        reordered,
        est: Estimate { rows: (ie.rows * combined_sel).max(0.0), cost_us },
    }
}

/// Replay the pruner over the whole table to see which zones each
/// access path gets (throwaway stats; the executor re-counts at run
/// time).
fn access_plan(
    pruner: &PruningPredicate,
    synopsis: &lawsdb_storage::TableSynopsis,
    row_count: usize,
) -> AccessPlan {
    let mut stats = ScanStats::default();
    let zone_rows = pruner.grid(synopsis);
    let mut a = AccessPlan::default();
    for (_, len, decision) in pruner.plan_range(synopsis, zone_rows, 0, row_count, &mut stats) {
        // plan_range coalesces adjacent same-decision chunks; recover
        // the zone count from the chunk length.
        let zones = len.div_ceil(zone_rows).max(1);
        match decision {
            ZoneDecision::Eval => {
                a.zones_eval += zones;
                a.rows_eval += len;
            }
            ZoneDecision::AcceptAll => {
                a.zones_accept += zones;
                a.rows_accept += len;
            }
            ZoneDecision::Skip(ZoneSource::Data) => {
                a.zones_skip_data += zones;
                a.rows_skipped += len;
            }
            ZoneDecision::Skip(ZoneSource::Model) => {
                a.zones_skip_model += zones;
                a.rows_skipped += len;
            }
        }
    }
    a
}

/// Price the zone-aggregate pushdown path for a global aggregate whose
/// input is a base scan (optionally filtered). Eligibility is decided
/// by [`crate::exec::agg_pushdown_grid`] — the executor's own rule — so
/// the planner never advertises a path execution won't take.
fn plan_zone_agg(
    catalog: &Catalog,
    input: &PhysicalNode,
    group_by: &[String],
    aggs: &[AggSpec],
) -> Option<ZoneAggPath> {
    let (table, predicate, access) = match input {
        PhysicalNode::Scan { table, .. } => (table, None, None),
        PhysicalNode::Filter { input, predicate, access, .. } => match &**input {
            PhysicalNode::Scan { table, .. } => (table, Some(predicate), *access),
            _ => return None,
        },
        _ => return None,
    };
    let t = catalog.get(table).ok()?;
    let grid = crate::exec::agg_pushdown_grid(&t, predicate, group_by, aggs)?;
    let path = match (predicate, access) {
        // No filter: every unit answers from its materialized partial.
        (None, _) => ZoneAggPath {
            grid,
            zones_pushed: t.row_count().div_ceil(grid.max(1)),
            rows_fused: 0,
        },
        // Pruned filter: accepted rows push, Eval rows run the fused
        // kernel, skipped rows vanish.
        (Some(_), Some(a)) => ZoneAggPath {
            grid,
            zones_pushed: a.rows_accept.div_ceil(grid.max(1)),
            rows_fused: a.rows_eval,
        },
        // Unsargable filter: same grammar, but every unit scans.
        (Some(_), None) => {
            ZoneAggPath { grid, zones_pushed: 0, rows_fused: t.row_count() }
        }
    };
    Some(path)
}

/// Left-deep AND chain over `exprs` (len ≥ 1).
fn and_chain(mut exprs: Vec<ScalarExpr>) -> ScalarExpr {
    let mut it = exprs.drain(..);
    let first = it.next().expect("predicate has at least one conjunct");
    it.fold(first, |acc, e| ScalarExpr::And(Box::new(acc), Box::new(e)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimize::optimize;
    use crate::plan::LogicalPlan;
    use crate::sql::parse_select;
    use lawsdb_storage::TableBuilder;

    /// 512-row table: `k` increasing (tight zones), `u` uniform noise
    /// (useless zones), zone granularity 64.
    fn zoned_catalog() -> Catalog {
        let catalog = Catalog::new();
        let mut b = TableBuilder::new("t");
        b.add_i64("k", (0..512).collect());
        b.add_f64("u", (0..512).map(|i| ((i * 37) % 100) as f64).collect());
        let mut table = b.build().unwrap();
        table.rebuild_synopsis_with(64);
        catalog.register(table).unwrap();
        catalog
    }

    fn physical_for(catalog: &Catalog, sql: &str) -> PhysicalPlan {
        let stmt = parse_select(sql).unwrap();
        let plan = optimize(&LogicalPlan::from_statement(&stmt).unwrap());
        plan_physical(catalog, &plan, &CostConstants::default())
    }

    fn find_filter(node: &PhysicalNode) -> Option<&PhysicalNode> {
        match node {
            PhysicalNode::Filter { .. } => Some(node),
            PhysicalNode::Scan { .. } | PhysicalNode::EmptyScan { .. } => None,
            PhysicalNode::Join { left, right, .. } => {
                find_filter(left).or_else(|| find_filter(right))
            }
            PhysicalNode::Aggregate { input, .. }
            | PhysicalNode::Project { input, .. }
            | PhysicalNode::Distinct { input, .. }
            | PhysicalNode::Sort { input, .. }
            | PhysicalNode::Limit { input, .. } => find_filter(input),
        }
    }

    #[test]
    fn selective_conjunct_moves_first() {
        let catalog = zoned_catalog();
        // `k < 8` keeps ~8/512 rows; `k < 400` keeps ~400/512. The
        // cost-based order flips them.
        let plan = physical_for(&catalog, "SELECT k FROM t WHERE k < 400 AND k < 8");
        let Some(PhysicalNode::Filter { predicate, reordered, .. }) = find_filter(&plan.root)
        else {
            panic!("no filter in plan");
        };
        assert!(*reordered, "expected conjunct reorder");
        assert_eq!(format!("{predicate}"), "((k < 8) AND (k < 400))");
    }

    #[test]
    fn already_ordered_conjuncts_stay_put() {
        let catalog = zoned_catalog();
        let plan = physical_for(&catalog, "SELECT k FROM t WHERE k < 8 AND k < 400");
        let Some(PhysicalNode::Filter { predicate, reordered, .. }) = find_filter(&plan.root)
        else {
            panic!("no filter in plan");
        };
        assert!(!*reordered);
        assert_eq!(format!("{predicate}"), "((k < 8) AND (k < 400))");
    }

    #[test]
    fn access_plan_counts_skipped_zones() {
        let catalog = zoned_catalog();
        // k < 50 cuts into the first of 8 zones (Eval); the other 7
        // zones have min >= 64 and are refuted outright.
        let plan = physical_for(&catalog, "SELECT k FROM t WHERE k < 50");
        let Some(PhysicalNode::Filter { access, est, .. }) = find_filter(&plan.root) else {
            panic!("no filter in plan");
        };
        let a = access.expect("synopsis present, expected an access plan");
        assert_eq!(a.zones_total(), 8);
        assert_eq!(a.zones_eval, 1);
        assert_eq!(a.zones_skip_data, 7);
        assert_eq!(a.rows_skipped, 448);
        // Cardinality estimate should land near the true 64 rows.
        assert!(est.rows > 32.0 && est.rows < 128.0, "est.rows = {}", est.rows);
    }

    #[test]
    fn pruned_scan_costs_less_than_full_eval() {
        let catalog = zoned_catalog();
        let pruned = physical_for(&catalog, "SELECT k FROM t WHERE k < 50");
        // `u` zones are useless (full-range noise): every zone evals.
        let full = physical_for(&catalog, "SELECT k FROM t WHERE u < 12.0");
        assert!(
            pruned.root_estimate().cost_us < full.root_estimate().cost_us,
            "pruned {} vs full {}",
            pruned.root_estimate().cost_us,
            full.root_estimate().cost_us
        );
    }

    #[test]
    fn explain_annotates_every_line_and_keeps_shape() {
        let catalog = zoned_catalog();
        let plan = physical_for(
            &catalog,
            "SELECT k, COUNT(*) FROM t WHERE k < 50 GROUP BY k ORDER BY k LIMIT 5",
        );
        let text = plan.explain();
        let lines: Vec<&str> = text.lines().map(|l| l.trim_start()).collect();
        assert!(lines[0].starts_with("Limit"));
        assert!(lines[1].starts_with("Sort"));
        assert!(lines[2].starts_with("Aggregate"));
        assert!(lines[3].starts_with("Filter"));
        assert!(lines[4].starts_with("Pruning [k < 50] (exact)"));
        assert!(lines[4].contains("zones[eval=1 accept=0 skip=7]"));
        assert!(lines[5].starts_with("Scan"));
        for (i, line) in lines.iter().enumerate().take(4) {
            assert!(line.contains("est_rows="), "line {i} missing estimate: {line}");
            assert!(line.contains("est_cost="), "line {i} missing estimate: {line}");
        }
    }

    #[test]
    fn zone_aggregate_path_prices_and_annotates_eligible_aggregates() {
        let catalog = zoned_catalog();
        // Unfiltered global aggregate: every zone answers from its
        // materialized partial, the scan is elided entirely.
        let plan = physical_for(&catalog, "SELECT COUNT(*), SUM(k) FROM t");
        let PhysicalNode::Aggregate { zone_agg, est, .. } = &plan.root else {
            panic!("expected Aggregate root, got {:?}", plan.root);
        };
        let z = zone_agg.expect("eligible aggregate gets a zone_agg path");
        assert_eq!(z.zones_pushed, 8);
        assert_eq!(z.rows_fused, 0);
        assert!(plan.explain().contains("zone_agg[push=8 fused_rows=0]"), "{}", plan.explain());
        // 8 constant-time folds price far below a 512-row scan+agg.
        let consts = CostConstants::default();
        assert!(est.cost_us < 512.0 * consts.scan_tuple_us, "cost {}", est.cost_us);

        // Range filter: interior zones push, the boundary zone fuses.
        let plan = physical_for(&catalog, "SELECT SUM(k) FROM t WHERE k < 100");
        let PhysicalNode::Aggregate { zone_agg, .. } = &plan.root else {
            panic!("expected Aggregate root");
        };
        let z = zone_agg.expect("filtered aggregate still eligible");
        assert_eq!(z.zones_pushed, 1, "zone 0 accepted wholesale by k < 100");
        assert_eq!(z.rows_fused, 64, "zone 1 straddles the bound");

        // GROUP BY keeps the scan grammar: no pushdown advertised.
        let plan = physical_for(&catalog, "SELECT k, COUNT(*) FROM t GROUP BY k");
        fn find_agg(n: &PhysicalNode) -> Option<&Option<ZoneAggPath>> {
            match n {
                PhysicalNode::Aggregate { zone_agg, .. } => Some(zone_agg),
                PhysicalNode::Project { input, .. }
                | PhysicalNode::Sort { input, .. }
                | PhysicalNode::Limit { input, .. }
                | PhysicalNode::Distinct { input, .. }
                | PhysicalNode::Filter { input, .. } => find_agg(input),
                _ => None,
            }
        }
        assert_eq!(find_agg(&plan.root), Some(&None));
    }

    #[test]
    fn lowering_round_trips_through_the_executor() {
        let catalog = zoned_catalog();
        let sql = "SELECT k FROM t WHERE k < 8 AND u < 50.0";
        let stmt = parse_select(sql).unwrap();
        let logical = optimize(&LogicalPlan::from_statement(&stmt).unwrap());
        let plan = plan_physical(&catalog, &logical, &CostConstants::default());
        let opts = ExecOptions::default();
        let a = execute_physical_with(&catalog, &plan, &opts).unwrap();
        let b = crate::exec::execute_plan_with(&catalog, &logical, &opts).unwrap();
        assert_eq!(a.table.row_count(), b.table.row_count());
        assert_eq!(a.rows_scanned, b.rows_scanned);
    }

    #[test]
    fn unknown_table_degrades_to_zero_estimates() {
        let catalog = Catalog::new();
        let plan = physical_for(&catalog, "SELECT x FROM nope WHERE x > 1");
        assert_eq!(plan.root_estimate().rows, 0.0);
    }
}
