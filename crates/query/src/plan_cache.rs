//! Physical plan cache keyed on `(normalized query, stats epoch)`.
//!
//! A cached plan embeds cardinality estimates and a zone access path,
//! both functions of the catalog statistics it was planned against. The
//! cache therefore stores the *stats epoch* alongside each plan — a
//! counter the table catalog and model catalog bump on every mutation
//! (appends, refits, demotions) — and a lookup only hits when the
//! caller's epoch matches. A mismatch evicts the stale entry and counts
//! as a miss, so invalidation needs no broadcast: epoch drift IS the
//! invalidation signal.
//!
//! Hit/miss totals are exported as `lawsdb_query_plan_cache_hit` /
//! `lawsdb_query_plan_cache_miss`, and every entry dropped before its
//! natural replacement — stale-epoch eviction on lookup, capacity
//! pressure on insert — as `lawsdb_query_plan_cache_evictions`.

use crate::physical::PhysicalPlan;
use crate::sql::SelectStatement;
use lawsdb_obs::{Counter, MetricsRegistry};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Entries kept before stale-epoch eviction (and, failing that, a full
/// clear) makes room.
const DEFAULT_CAPACITY: usize = 256;

/// Canonical cache key text for a parsed statement: the AST's `Debug`
/// rendering, which normalizes whitespace, case of keywords, and
/// literal spelling differences that parse identically.
pub fn normalize_statement(stmt: &SelectStatement) -> String {
    format!("{stmt:?}")
}

struct CachedPlan {
    epoch: u64,
    plan: Arc<PhysicalPlan>,
}

/// Thread-safe plan cache with epoch-checked lookups.
pub struct PlanCache {
    inner: Mutex<HashMap<String, CachedPlan>>,
    capacity: usize,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    evictions: Arc<Counter>,
}

impl PlanCache {
    /// Cache whose hit/miss counters live in `registry`.
    pub fn for_registry(registry: &MetricsRegistry) -> PlanCache {
        PlanCache {
            inner: Mutex::new(HashMap::new()),
            capacity: DEFAULT_CAPACITY,
            hits: registry.counter("lawsdb_query_plan_cache_hit"),
            misses: registry.counter("lawsdb_query_plan_cache_miss"),
            evictions: registry.counter("lawsdb_query_plan_cache_evictions"),
        }
    }

    /// Standalone cache with private counters (tests, tools).
    pub fn new() -> PlanCache {
        PlanCache::for_registry(&MetricsRegistry::new())
    }

    /// Look up a plan for `key` valid at `epoch`. A present entry built
    /// against a different epoch is evicted and counted as a miss.
    pub fn get(&self, key: &str, epoch: u64) -> Option<Arc<PhysicalPlan>> {
        let mut guard = self.inner.lock();
        match guard.get(key) {
            Some(c) if c.epoch == epoch => {
                let plan = Arc::clone(&c.plan);
                drop(guard);
                self.hits.inc();
                Some(plan)
            }
            Some(_) => {
                guard.remove(key);
                drop(guard);
                self.evictions.inc();
                self.misses.inc();
                None
            }
            None => {
                drop(guard);
                self.misses.inc();
                None
            }
        }
    }

    /// Insert a plan built at `epoch`. When full, entries from other
    /// epochs are dropped first (they can never hit again once the
    /// catalog has moved on); if every entry is current, the cache is
    /// cleared — planning is cheap relative to scanning, and a full
    /// current-epoch cache means the working set outgrew it anyway.
    pub fn put(&self, key: String, epoch: u64, plan: Arc<PhysicalPlan>) {
        let mut guard = self.inner.lock();
        if guard.len() >= self.capacity && !guard.contains_key(&key) {
            let before = guard.len();
            guard.retain(|_, c| c.epoch == epoch);
            if guard.len() >= self.capacity {
                guard.clear();
            }
            let dropped = (before - guard.len()) as u64;
            if dropped > 0 {
                self.evictions.add(dropped);
            }
        }
        guard.insert(key, CachedPlan { epoch, plan });
    }

    /// Cached entries.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Drop every entry (counters are preserved).
    pub fn clear(&self) {
        self.inner.lock().clear();
    }

    /// Total lookups answered from cache.
    pub fn hit_count(&self) -> u64 {
        self.hits.get()
    }

    /// Total lookups that had to plan.
    pub fn miss_count(&self) -> u64 {
        self.misses.get()
    }

    /// Total entries dropped by stale-epoch or capacity eviction
    /// (explicit `clear()` calls are not counted).
    pub fn eviction_count(&self) -> u64 {
        self.evictions.get()
    }
}

impl Default for PlanCache {
    fn default() -> PlanCache {
        PlanCache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostConstants;
    use crate::physical::plan_physical;
    use crate::plan::LogicalPlan;
    use crate::sql::parse_select;
    use lawsdb_storage::{Catalog, TableBuilder};

    fn plan_for(sql: &str) -> Arc<PhysicalPlan> {
        let catalog = Catalog::new();
        let mut b = TableBuilder::new("t");
        b.add_i64("x", vec![1, 2, 3]);
        catalog.register(b.build().unwrap()).unwrap();
        let stmt = parse_select(sql).unwrap();
        let logical = LogicalPlan::from_statement(&stmt).unwrap();
        Arc::new(plan_physical(&catalog, &logical, &CostConstants::default()))
    }

    #[test]
    fn hit_requires_matching_epoch() {
        let cache = PlanCache::new();
        let plan = plan_for("SELECT x FROM t");
        cache.put("q".into(), 7, Arc::clone(&plan));
        assert!(cache.get("q", 7).is_some());
        assert!(cache.get("q", 8).is_none(), "stale epoch must miss");
        // The stale entry was evicted, not retried.
        assert!(cache.is_empty());
        assert_eq!(cache.hit_count(), 1);
        assert_eq!(cache.miss_count(), 1);
        assert_eq!(cache.eviction_count(), 1, "stale-epoch removal counts as eviction");
    }

    #[test]
    fn normalization_unifies_spelling_variants() {
        let a = normalize_statement(&parse_select("SELECT x FROM t WHERE x > 1").unwrap());
        let b =
            normalize_statement(&parse_select("select  x  from t where x > 1.0").unwrap());
        assert_eq!(a, b);
        let c = normalize_statement(&parse_select("SELECT x FROM t WHERE x > 2").unwrap());
        assert_ne!(a, c);
    }

    #[test]
    fn eviction_prefers_stale_epochs() {
        let cache = PlanCache::new();
        let plan = plan_for("SELECT x FROM t");
        for i in 0..DEFAULT_CAPACITY {
            cache.put(format!("old{i}"), 1, Arc::clone(&plan));
        }
        assert_eq!(cache.len(), DEFAULT_CAPACITY);
        cache.put("new".into(), 2, Arc::clone(&plan));
        // All epoch-1 entries were dropped to admit the epoch-2 plan.
        assert_eq!(cache.len(), 1);
        assert!(cache.get("new", 2).is_some());
        assert_eq!(cache.eviction_count(), DEFAULT_CAPACITY as u64);
    }

    #[test]
    fn counters_export_through_a_registry() {
        let registry = MetricsRegistry::new();
        let cache = PlanCache::for_registry(&registry);
        let plan = plan_for("SELECT x FROM t");
        cache.put("q".into(), 1, plan);
        cache.get("q", 1);
        cache.get("absent", 1);
        cache.get("q", 2); // stale epoch: miss + eviction
        let text = registry.snapshot().render_prometheus();
        assert!(text.contains("lawsdb_query_plan_cache_hit 1"), "{text}");
        assert!(text.contains("lawsdb_query_plan_cache_miss 2"), "{text}");
        assert!(text.contains("lawsdb_query_plan_cache_evictions 1"), "{text}");
    }
}
