//! Logical query plans.

use crate::error::{QueryError, Result};
use crate::sexpr::ScalarExpr;
use crate::sql::{AggFunc, OrderBy, SelectItem, SelectStatement};

/// One aggregate output: function, argument (None = `COUNT(*)`), output
/// column name.
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    /// Aggregate function.
    pub func: AggFunc,
    /// Argument expression (`None` means `*`).
    pub arg: Option<ScalarExpr>,
    /// Output column name.
    pub name: String,
}

/// A logical plan node. The tree shape is the textbook pipeline:
/// `Scan → [Join] → [Filter] → [Aggregate | Project] → [Sort] → [Limit]`.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Base-table scan. `projection = None` reads every column;
    /// the optimizer narrows it to the referenced set.
    Scan {
        /// Table name.
        table: String,
        /// Columns to materialize, or `None` for all.
        projection: Option<Vec<String>>,
    },
    /// A scan statically known to produce no rows (`LIMIT 0` elision):
    /// same schema as the base table, but the executor performs no IO
    /// and charges no budget for it.
    EmptyScan {
        /// Table name (kept for schema resolution).
        table: String,
        /// Columns to materialize, or `None` for all.
        projection: Option<Vec<String>>,
    },
    /// Inner hash equi-join.
    Join {
        /// Left (FROM) input.
        left: Box<LogicalPlan>,
        /// Right (JOIN) input.
        right: Box<LogicalPlan>,
        /// Key column on the left input.
        left_col: String,
        /// Key column on the right input.
        right_col: String,
    },
    /// Row filter.
    Filter {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Predicate (SQL three-valued: keep only TRUE rows).
        predicate: ScalarExpr,
    },
    /// Hash aggregation; with `group_by` empty, one output row.
    Aggregate {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Grouping columns.
        group_by: Vec<String>,
        /// Aggregates to compute.
        aggs: Vec<AggSpec>,
    },
    /// Projection of scalar expressions. `star` keeps all input
    /// columns (then appends the explicit expressions, if any).
    Project {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// `(expression, output name)` pairs.
        exprs: Vec<(ScalarExpr, String)>,
        /// `SELECT *`?
        star: bool,
    },
    /// Duplicate elimination over the input's full row.
    Distinct {
        /// Input plan.
        input: Box<LogicalPlan>,
    },
    /// Sort by one or more keys.
    Sort {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Sort keys in priority order.
        keys: Vec<OrderBy>,
    },
    /// Keep only the first `n` rows.
    Limit {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Row cap.
        n: usize,
    },
}

impl LogicalPlan {
    /// Build a plan from a parsed statement.
    pub fn from_statement(stmt: &SelectStatement) -> Result<LogicalPlan> {
        let mut plan = LogicalPlan::Scan { table: stmt.table.clone(), projection: None };
        if let Some(join) = &stmt.join {
            plan = LogicalPlan::Join {
                left: Box::new(plan),
                right: Box::new(LogicalPlan::Scan {
                    table: join.table.clone(),
                    projection: None,
                }),
                left_col: join.left_col.clone(),
                right_col: join.right_col.clone(),
            };
        }
        if let Some(pred) = &stmt.predicate {
            plan = LogicalPlan::Filter { input: Box::new(plan), predicate: pred.clone() };
        }

        let has_agg = stmt.items.iter().any(|i| matches!(i, SelectItem::Agg { .. }));
        if has_agg || !stmt.group_by.is_empty() {
            let mut aggs = Vec::new();
            for item in &stmt.items {
                match item {
                    SelectItem::Agg { func, arg, .. } => aggs.push(AggSpec {
                        func: *func,
                        arg: arg.clone(),
                        name: item.output_name(),
                    }),
                    SelectItem::Expr { expr, .. } => {
                        // Bare expressions must be grouping columns.
                        match expr {
                            ScalarExpr::Column(c) if stmt.group_by.contains(c) => {}
                            other => {
                                return Err(QueryError::InvalidAggregate {
                                    reason: format!(
                                        "{other} is neither aggregated nor in GROUP BY"
                                    ),
                                })
                            }
                        }
                    }
                    SelectItem::Star => {
                        return Err(QueryError::InvalidAggregate {
                            reason: "SELECT * cannot be combined with aggregates".to_string(),
                        })
                    }
                }
            }
            plan = LogicalPlan::Aggregate {
                input: Box::new(plan),
                group_by: stmt.group_by.clone(),
                aggs,
            };
        } else {
            let star = stmt.items.iter().any(|i| matches!(i, SelectItem::Star));
            let mut exprs = Vec::new();
            for item in &stmt.items {
                if let SelectItem::Expr { expr, .. } = item {
                    exprs.push((expr.clone(), item.output_name()));
                }
            }
            if !(star && exprs.is_empty()) {
                plan = LogicalPlan::Project { input: Box::new(plan), exprs, star };
            }
        }

        if stmt.distinct {
            plan = LogicalPlan::Distinct { input: Box::new(plan) };
        }
        if !stmt.order_by.is_empty() {
            plan = LogicalPlan::Sort { input: Box::new(plan), keys: stmt.order_by.clone() };
        }
        if let Some(n) = stmt.limit {
            plan = LogicalPlan::Limit { input: Box::new(plan), n };
        }
        Ok(plan)
    }

    /// All column names this plan references above its scans (used by
    /// projection pruning).
    pub fn referenced_columns(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_columns(&self, out: &mut Vec<String>) {
        match self {
            LogicalPlan::Scan { .. } | LogicalPlan::EmptyScan { .. } => {}
            LogicalPlan::Join { left, right, left_col, right_col } => {
                out.push(left_col.clone());
                out.push(right_col.clone());
                left.collect_columns(out);
                right.collect_columns(out);
            }
            LogicalPlan::Filter { input, predicate } => {
                out.extend(predicate.columns());
                input.collect_columns(out);
            }
            LogicalPlan::Aggregate { input, group_by, aggs } => {
                out.extend(group_by.iter().cloned());
                for a in aggs {
                    if let Some(e) = &a.arg {
                        out.extend(e.columns());
                    }
                }
                input.collect_columns(out);
            }
            LogicalPlan::Project { input, exprs, .. } => {
                for (e, _) in exprs {
                    out.extend(e.columns());
                }
                input.collect_columns(out);
            }
            LogicalPlan::Sort { input, keys } => {
                out.extend(keys.iter().map(|k| k.column.clone()));
                input.collect_columns(out);
            }
            LogicalPlan::Distinct { input } => input.collect_columns(out),
            LogicalPlan::Limit { input, .. } => input.collect_columns(out),
        }
    }

    /// Pretty-print the plan tree (EXPLAIN-style, one node per line).
    pub fn explain(&self) -> String {
        let mut s = String::new();
        self.explain_into(&mut s, 0);
        s
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        match self {
            LogicalPlan::Scan { table, projection } => {
                match projection {
                    None => out.push_str(&format!("{pad}Scan {table} [*]\n")),
                    Some(cols) => {
                        out.push_str(&format!("{pad}Scan {table} [{}]\n", cols.join(", ")))
                    }
                }
            }
            LogicalPlan::EmptyScan { table, projection } => {
                match projection {
                    None => out.push_str(&format!("{pad}EmptyScan {table} [*]\n")),
                    Some(cols) => {
                        out.push_str(&format!("{pad}EmptyScan {table} [{}]\n", cols.join(", ")))
                    }
                }
            }
            LogicalPlan::Join { left, right, left_col, right_col } => {
                out.push_str(&format!("{pad}Join on {left_col} = {right_col}\n"));
                left.explain_into(out, depth + 1);
                right.explain_into(out, depth + 1);
            }
            LogicalPlan::Filter { input, predicate } => {
                out.push_str(&format!("{pad}Filter {predicate}\n"));
                // Surface what the executor will be able to prune: the
                // sargable conjuncts a scan below this filter checks
                // against zone maps before any IO.
                if matches!(&**input, LogicalPlan::Scan { .. }) {
                    if let Some(p) = crate::pruning::PruningPredicate::extract(predicate) {
                        out.push_str(&format!(
                            "{pad}  Pruning [{}]{}\n",
                            p.describe(),
                            if p.exact { " (exact)" } else { "" }
                        ));
                    }
                }
                input.explain_into(out, depth + 1);
            }
            LogicalPlan::Aggregate { input, group_by, aggs } => {
                let aggs: Vec<String> = aggs.iter().map(|a| a.name.clone()).collect();
                out.push_str(&format!(
                    "{pad}Aggregate group_by=[{}] aggs=[{}]\n",
                    group_by.join(", "),
                    aggs.join(", ")
                ));
                input.explain_into(out, depth + 1);
            }
            LogicalPlan::Project { input, exprs, star } => {
                let mut items: Vec<String> = Vec::new();
                if *star {
                    items.push("*".to_string());
                }
                items.extend(exprs.iter().map(|(e, n)| format!("{e} AS {n}")));
                out.push_str(&format!("{pad}Project [{}]\n", items.join(", ")));
                input.explain_into(out, depth + 1);
            }
            LogicalPlan::Sort { input, keys } => {
                let keys: Vec<String> = keys
                    .iter()
                    .map(|k| format!("{}{}", k.column, if k.desc { " DESC" } else { "" }))
                    .collect();
                out.push_str(&format!("{pad}Sort [{}]\n", keys.join(", ")));
                input.explain_into(out, depth + 1);
            }
            LogicalPlan::Distinct { input } => {
                out.push_str(&format!("{pad}Distinct\n"));
                input.explain_into(out, depth + 1);
            }
            LogicalPlan::Limit { input, n } => {
                out.push_str(&format!("{pad}Limit {n}\n"));
                input.explain_into(out, depth + 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::parse_select;

    #[test]
    fn plan_shape_for_full_query() {
        let stmt = parse_select(
            "SELECT source, AVG(intensity) FROM m WHERE nu = 0.14 \
             GROUP BY source ORDER BY source LIMIT 5",
        )
        .unwrap();
        let plan = LogicalPlan::from_statement(&stmt).unwrap();
        let text = plan.explain();
        let lines: Vec<&str> = text.lines().map(|l| l.trim_start()).collect();
        assert!(lines[0].starts_with("Limit"));
        assert!(lines[1].starts_with("Sort"));
        assert!(lines[2].starts_with("Aggregate"));
        assert!(lines[3].starts_with("Filter"));
        assert!(lines[4].starts_with("Pruning [nu = 0.14] (exact)"));
        assert!(lines[5].starts_with("Scan"));
    }

    #[test]
    fn bare_column_outside_group_by_rejected() {
        let stmt = parse_select("SELECT intensity, COUNT(*) FROM m GROUP BY source").unwrap();
        assert!(matches!(
            LogicalPlan::from_statement(&stmt),
            Err(QueryError::InvalidAggregate { .. })
        ));
    }

    #[test]
    fn star_with_aggregate_rejected() {
        let stmt = parse_select("SELECT *, COUNT(*) FROM m").unwrap();
        assert!(LogicalPlan::from_statement(&stmt).is_err());
    }

    #[test]
    fn referenced_columns_cover_all_clauses() {
        let stmt = parse_select(
            "SELECT a + b AS s FROM t WHERE c > 1 ORDER BY d",
        )
        .unwrap();
        let plan = LogicalPlan::from_statement(&stmt).unwrap();
        assert_eq!(plan.referenced_columns(), vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn select_star_is_a_bare_scan_pipeline() {
        let stmt = parse_select("SELECT * FROM t").unwrap();
        let plan = LogicalPlan::from_statement(&stmt).unwrap();
        assert!(matches!(plan, LogicalPlan::Scan { .. }));
    }
}
