//! Per-operator cost constants and the adaptive feedback loop.
//!
//! The physical planner ([`crate::physical`]) prices candidate access
//! paths in microseconds using a handful of per-tuple constants. The
//! defaults below are deliberately conservative ballpark figures; what
//! makes them honest is the *feedback loop*: every profiled query run
//! produces a [`QueryProfile`] whose morsel leaves record `(rows,
//! duration_us)` pairs per operator, and [`CostModel::observe_profile`]
//! folds those observations into the constants with an exponential
//! moving average. Calibration is deterministic (plain f64 EMA, fixed
//! alpha, observations applied in profile preorder) and **off by
//! default** so `MockClock`-driven tests keep stable plans.

use lawsdb_obs::{ProfileTreeNode, QueryProfile};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicBool, Ordering};

/// EMA smoothing factor for observed per-tuple timings.
const EMA_ALPHA: f64 = 0.3;

/// Per-operator cost constants, all in microseconds per unit.
///
/// A copy of this struct is taken at plan time so a plan is costed
/// against one consistent snapshot even while feedback is updating the
/// shared [`CostModel`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostConstants {
    /// Materialising one row out of column storage into a scan chunk.
    pub scan_tuple_us: f64,
    /// Evaluating one predicate conjunct on one row (vectorized kernel).
    pub eval_tuple_us: f64,
    /// Gathering one row from a zone the synopsis accepted wholesale.
    pub accept_tuple_us: f64,
    /// Consulting the zonemap/model synopsis for one zone.
    pub zone_decide_us: f64,
    /// Reconstructing one tuple from a model (approximate path): the
    /// scalar enumeration/prediction machinery, orders of magnitude
    /// heavier per row than the vectorized scan kernels.
    pub reconstruct_tuple_us: f64,
    /// Fixed overhead of one model-path answer: catalog lookup,
    /// coverage match, and the engine's post-hoc freshness check
    /// (which samples base rows and re-predicts them).
    pub model_answer_us: f64,
    /// Folding one row into an aggregate accumulator.
    pub agg_tuple_us: f64,
    /// Folding one zone's materialized aggregate partial
    /// ([`ZoneAgg`](lawsdb_storage::zonemap::ZoneAgg)) into the
    /// accumulator — constant work per zone, independent of zone rows.
    pub agg_zone_fold_us: f64,
    /// One compare-and-move in a sort.
    pub sort_tuple_us: f64,
}

impl Default for CostConstants {
    fn default() -> CostConstants {
        CostConstants {
            scan_tuple_us: 0.004,
            eval_tuple_us: 0.002,
            accept_tuple_us: 0.001,
            zone_decide_us: 0.15,
            reconstruct_tuple_us: 1.5,
            model_answer_us: 40.0,
            agg_tuple_us: 0.004,
            agg_zone_fold_us: 0.02,
            sort_tuple_us: 0.010,
        }
    }
}

impl CostConstants {
    /// Estimated cost of answering from the model catalog instead of
    /// base data: reconstruct `tuples` rows plus the fixed per-answer
    /// fee. The model path is zero-IO but *not* free — it wins when the
    /// scan is large and the reconstructed result is small, and the
    /// constants are deliberately calibrated so tiny in-memory scans
    /// keep beating it.
    pub fn model_answer_cost_us(&self, tuples: f64) -> f64 {
        self.model_answer_us + tuples.max(0.0) * self.reconstruct_tuple_us
    }
}

/// Shared, thread-safe cost model with optional profile feedback.
///
/// `constants()` hands out a snapshot; `observe_profile` walks a
/// finished [`QueryProfile`] and EMA-updates the per-tuple constants
/// from observed span timings. Feedback starts disabled so plans stay
/// deterministic unless the adaptive loop is explicitly armed.
#[derive(Debug, Default)]
pub struct CostModel {
    constants: RwLock<CostConstants>,
    feedback: AtomicBool,
}

impl CostModel {
    pub fn new() -> CostModel {
        CostModel::default()
    }

    /// Snapshot of the current constants.
    pub fn constants(&self) -> CostConstants {
        *self.constants.read()
    }

    /// Arm or disarm the adaptive feedback loop (off by default).
    pub fn set_feedback(&self, enabled: bool) {
        self.feedback.store(enabled, Ordering::Release);
    }

    /// True when `observe_profile` is folding observations in.
    pub fn feedback_enabled(&self) -> bool {
        self.feedback.load(Ordering::Acquire)
    }

    /// Calibrate constants from one query's profile tree.
    ///
    /// Observations used, all as `duration_us / rows`:
    /// - `morsel` leaves under `plan.filter` spans → `eval_tuple_us`
    /// - `morsel` leaves under `plan.aggregate` spans → `agg_tuple_us`
    /// - `plan.scan` spans (`rows_out`) → `scan_tuple_us`
    /// - `plan.sort` spans (`rows_out`) → `sort_tuple_us`
    ///
    /// No-op while feedback is disabled. Zero-row or unfinished spans
    /// are skipped; they carry no per-tuple signal.
    pub fn observe_profile(&self, profile: &QueryProfile) {
        if !self.feedback_enabled() {
            return;
        }
        let mut c = self.constants.write();
        for node in profile.find("plan.filter") {
            for (rows, us) in morsel_samples(node) {
                ema(&mut c.eval_tuple_us, us / rows);
            }
        }
        for node in profile.find("plan.aggregate") {
            for (rows, us) in morsel_samples(node) {
                ema(&mut c.agg_tuple_us, us / rows);
            }
        }
        for node in profile.find("plan.scan") {
            if let Some((rows, us)) = span_sample(node) {
                ema(&mut c.scan_tuple_us, us / rows);
            }
        }
        for node in profile.find("plan.sort") {
            if let Some((rows, us)) = span_sample(node) {
                ema(&mut c.sort_tuple_us, us / rows);
            }
        }
    }
}

fn ema(slot: &mut f64, observed: f64) {
    if observed.is_finite() && observed >= 0.0 {
        *slot += EMA_ALPHA * (observed - *slot);
    }
}

/// `(rows, duration_us)` for every successful non-empty morsel leaf
/// under `node`, in deterministic preorder.
fn morsel_samples(node: &ProfileTreeNode) -> Vec<(f64, f64)> {
    node.find("morsel")
        .into_iter()
        .filter_map(|m| {
            let rows = m.field("rows").and_then(|v| v.as_u64())?;
            let us = m.field("duration_us").and_then(|v| v.as_u64())?;
            if rows == 0 {
                return None;
            }
            Some((rows as f64, us as f64))
        })
        .collect()
}

/// `(rows_out, duration_us)` for a finished plan span, if non-empty.
fn span_sample(node: &ProfileTreeNode) -> Option<(f64, f64)> {
    let rows = node.field("rows_out").and_then(|v| v.as_u64())?;
    let us = node.duration_us?;
    if rows == 0 {
        return None;
    }
    Some((rows as f64, us as f64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lawsdb_obs::{MockClock, ProfileCollector};
    use std::sync::Arc;

    fn profile_with_filter_morsel(rows: u64, us: u64) -> QueryProfile {
        let clock = Arc::new(MockClock::new(0));
        let collector = ProfileCollector::with_clock(clock);
        let ctx = collector.context();
        {
            let span = ctx.span("plan.filter");
            let child = span.child();
            child.leaf("morsel", 0, vec![("rows", rows.into()), ("duration_us", us.into())]);
        }
        collector.build("query")
    }

    #[test]
    fn feedback_is_off_by_default() {
        let model = CostModel::new();
        let before = model.constants();
        model.observe_profile(&profile_with_filter_morsel(1000, 8000));
        assert_eq!(model.constants(), before);
    }

    #[test]
    fn observed_timings_pull_constants_toward_measurements() {
        let model = CostModel::new();
        model.set_feedback(true);
        let before = model.constants();
        // 8000us over 1000 rows = 8us/row, far above the default.
        model.observe_profile(&profile_with_filter_morsel(1000, 8000));
        let after = model.constants();
        assert!(after.eval_tuple_us > before.eval_tuple_us);
        // Deterministic EMA: old + 0.3 * (obs - old).
        let expected = before.eval_tuple_us + 0.3 * (8.0 - before.eval_tuple_us);
        assert!((after.eval_tuple_us - expected).abs() < 1e-12);
        // Unrelated constants untouched.
        assert_eq!(after.agg_tuple_us, before.agg_tuple_us);
        assert_eq!(after.scan_tuple_us, before.scan_tuple_us);
    }

    #[test]
    fn repeated_observations_converge() {
        let model = CostModel::new();
        model.set_feedback(true);
        for _ in 0..64 {
            model.observe_profile(&profile_with_filter_morsel(100, 500));
        }
        // 500us / 100 rows = 5us/row target.
        assert!((model.constants().eval_tuple_us - 5.0).abs() < 1e-6);
    }

    #[test]
    fn zero_row_spans_are_ignored() {
        let model = CostModel::new();
        model.set_feedback(true);
        let before = model.constants();
        model.observe_profile(&profile_with_filter_morsel(0, 100));
        assert_eq!(model.constants(), before);
    }

    #[test]
    fn model_answer_cost_scales_with_tuples() {
        let c = CostConstants::default();
        assert!(c.model_answer_cost_us(1000.0) > c.model_answer_cost_us(10.0));
        assert!(c.model_answer_cost_us(0.0) > 0.0);
    }
}
