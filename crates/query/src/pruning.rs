//! Synopsis-driven scan pruning.
//!
//! The optimizer hands the executor a [`PruningPredicate`] — the
//! sargable conjuncts of a filter (`col <op> literal`, AND-connected at
//! the top level). Before a morsel worker materializes or evaluates
//! anything, it consults the scanned table's
//! [`lawsdb_storage::TableSynopsis`]: a zone whose bounds refute any
//! single conjunct cannot contain a qualifying row (`FALSE AND x` is
//! FALSE in SQL three-valued logic, even when `x` is UNKNOWN), so the
//! whole zone is skipped with zero IO and zero predicate evaluations.
//!
//! Soundness rests on the zone-map NULL/NaN policy: bounds exclude NULL
//! and NaN rows, which is safe exactly because no comparison operator
//! evaluates TRUE for a NULL or NaN operand — a skipped zone never
//! loses a row the filter would have kept.
//!
//! Three tiers share this path (see DESIGN.md §10): exact write-time
//! zones ([`ZoneSource::Data`]), model-derived `prediction ± residual`
//! zones ([`ZoneSource::Model`]), and constant zones whose single
//! comparison decides every row at once (the in-memory analogue of the
//! compressed-domain kernels in `lawsdb_storage::compress`).

use crate::sexpr::ScalarExpr;
use lawsdb_expr::ast::CmpOp;
use lawsdb_obs::{Counter, MetricsRegistry};
use lawsdb_storage::zonemap::{PredOp, TableSynopsis, ZoneSource};
use std::sync::Arc;

/// Per-query scan-pruning counters, in zones (the pruning granule:
/// [`lawsdb_storage::DEFAULT_ZONE_ROWS`] rows, one or more pager pages).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Zones the scans covered before pruning.
    pub pages_total: usize,
    /// Zones skipped by exact write-time zone maps.
    pub pages_pruned_zonemap: usize,
    /// Zones skipped by model-derived `prediction ± residual` bounds.
    pub pages_pruned_model: usize,
    /// Zones answered wholesale from the synopsis (constant zones, or
    /// non-constant zones whose interval plus NULL/NaN-freedom
    /// certificate proves every row satisfies the predicate — see
    /// [`lawsdb_storage::zonemap::ZoneEntry::satisfies_all`]) or a
    /// compressed-domain kernel, without per-row predicate evaluation.
    pub pages_compressed_eval: usize,
    /// Zones whose aggregate partials were folded straight out of the
    /// materialized zone synopsis: zero page reads, zero per-row work.
    pub zones_agg_synopsis: usize,
}

impl ScanStats {
    /// Counters in `self` minus `earlier` (per-query deltas from a
    /// shared collector).
    pub fn since(&self, earlier: &ScanStats) -> ScanStats {
        ScanStats {
            pages_total: self.pages_total - earlier.pages_total,
            pages_pruned_zonemap: self.pages_pruned_zonemap - earlier.pages_pruned_zonemap,
            pages_pruned_model: self.pages_pruned_model - earlier.pages_pruned_model,
            pages_compressed_eval: self.pages_compressed_eval - earlier.pages_compressed_eval,
            zones_agg_synopsis: self.zones_agg_synopsis - earlier.zones_agg_synopsis,
        }
    }

    /// Zones skipped by either pruning tier.
    pub fn pages_pruned(&self) -> usize {
        self.pages_pruned_zonemap + self.pages_pruned_model
    }
}

/// Thread-safe accumulator the morsel workers write into; shareable
/// across queries via [`crate::morsel::ExecOptions::stats`].
///
/// Since the observability refactor this is a thin view over
/// [`lawsdb_obs`] registry counters (`lawsdb_query_pages_*`): bind one
/// to an engine's registry with [`ScanStatsCollector::for_registry`]
/// and the same numbers are readable both per-query (via
/// [`ScanStats::since`] deltas) and DB-wide (via the registry's
/// Prometheus/JSON exposition) — one source of truth. The
/// `Default` collector registers into a private registry and behaves
/// exactly like the old standalone atomics.
#[derive(Debug)]
pub struct ScanStatsCollector {
    total: Arc<Counter>,
    zonemap: Arc<Counter>,
    model: Arc<Counter>,
    compressed: Arc<Counter>,
    agg_synopsis: Arc<Counter>,
}

impl Default for ScanStatsCollector {
    fn default() -> ScanStatsCollector {
        ScanStatsCollector::for_registry(&MetricsRegistry::new())
    }
}

impl ScanStatsCollector {
    /// A collector whose counters live in `registry` under the
    /// `lawsdb_query_pages_*` names.
    pub fn for_registry(registry: &MetricsRegistry) -> ScanStatsCollector {
        ScanStatsCollector {
            total: registry.counter("lawsdb_query_pages_total"),
            zonemap: registry.counter("lawsdb_query_pages_pruned_zonemap"),
            model: registry.counter("lawsdb_query_pages_pruned_model"),
            compressed: registry.counter("lawsdb_query_pages_compressed_eval"),
            agg_synopsis: registry.counter("lawsdb_query_zones_agg_synopsis"),
        }
    }

    /// Fold one worker's counters in.
    pub fn add(&self, s: &ScanStats) {
        self.total.add(s.pages_total as u64);
        self.zonemap.add(s.pages_pruned_zonemap as u64);
        self.model.add(s.pages_pruned_model as u64);
        self.compressed.add(s.pages_compressed_eval as u64);
        self.agg_synopsis.add(s.zones_agg_synopsis as u64);
    }

    /// Current totals.
    pub fn snapshot(&self) -> ScanStats {
        ScanStats {
            pages_total: self.total.get() as usize,
            pages_pruned_zonemap: self.zonemap.get() as usize,
            pages_pruned_model: self.model.get() as usize,
            pages_compressed_eval: self.compressed.get() as usize,
            zones_agg_synopsis: self.agg_synopsis.get() as usize,
        }
    }
}

/// One sargable conjunct: `column <op> rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct PruningConjunct {
    /// Column name (as it appears in the scanned table's schema).
    pub column: String,
    /// Comparison operator, column on the left.
    pub op: PredOp,
    /// Literal right-hand side.
    pub rhs: f64,
}

/// The sargable subset of a filter predicate, usable against zone maps.
#[derive(Debug, Clone, PartialEq)]
pub struct PruningPredicate {
    /// AND-connected conjuncts; a zone refuting any one is skippable.
    pub conjuncts: Vec<PruningConjunct>,
    /// True when the conjuncts ARE the whole filter (no residual OR/NOT
    /// or non-sargable subtree). Only then can a zone that *satisfies*
    /// every conjunct accept all its rows without per-row evaluation.
    pub exact: bool,
}

fn pred_op(op: CmpOp) -> PredOp {
    match op {
        CmpOp::Lt => PredOp::Lt,
        CmpOp::Le => PredOp::Le,
        CmpOp::Gt => PredOp::Gt,
        CmpOp::Ge => PredOp::Ge,
        CmpOp::Eq => PredOp::Eq,
        CmpOp::Ne => PredOp::Ne,
    }
}

/// `a <op> b` with operands swapped: `5 < x` ≡ `x > 5`.
fn flip(op: PredOp) -> PredOp {
    match op {
        PredOp::Lt => PredOp::Gt,
        PredOp::Le => PredOp::Ge,
        PredOp::Gt => PredOp::Lt,
        PredOp::Ge => PredOp::Le,
        PredOp::Eq => PredOp::Eq,
        PredOp::Ne => PredOp::Ne,
    }
}

/// What the synopsis says about one zone of the scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZoneDecision {
    /// Some conjunct is unsatisfiable over the zone: skip it entirely.
    Skip(ZoneSource),
    /// Every conjunct provably holds for every row (`exact` predicates
    /// only): constant zones decide with one comparison, and
    /// non-constant data zones qualify when their interval plus the
    /// aggregate synopsis' NULL/NaN-freedom certificate proves
    /// whole-zone satisfaction. Take all rows without evaluating —
    /// and aggregate queries fold such zones straight from their
    /// materialized partials, reading nothing at all.
    AcceptAll,
    /// Bounds are inconclusive: evaluate the predicate per row.
    Eval,
}

impl PruningPredicate {
    /// Extract the sargable conjuncts of a (schema-normalized) filter
    /// expression. Returns `None` when nothing is sargable — OR and NOT
    /// subtrees are not descended, and only `col <op> number` /
    /// `number <op> col` shapes qualify.
    pub fn extract(expr: &ScalarExpr) -> Option<PruningPredicate> {
        let mut conjuncts = Vec::new();
        let exact = collect(expr, &mut conjuncts);
        if conjuncts.is_empty() {
            None
        } else {
            Some(PruningPredicate { conjuncts, exact })
        }
    }

    /// Chunking granularity for [`Self::plan_range`]: the finest
    /// `zone_rows` among the referenced columns that actually have
    /// zones (falling back to [`lawsdb_storage::DEFAULT_ZONE_ROWS`]),
    /// so decisions are exact per zone.
    pub fn grid(&self, synopsis: &TableSynopsis) -> usize {
        self.conjuncts
            .iter()
            .filter_map(|c| synopsis.column(&c.column).map(|z| z.zone_rows))
            .min()
            .unwrap_or(lawsdb_storage::DEFAULT_ZONE_ROWS)
    }

    /// Decide one zone-aligned row range (callers pass ranges that do
    /// not straddle a zone boundary of `zone_rows`).
    pub fn decide(&self, synopsis: &TableSynopsis, offset: usize, len: usize) -> ZoneDecision {
        for c in &self.conjuncts {
            if let Some(z) = synopsis.column(&c.column) {
                if !z.range_may_match(offset, len, c.op, c.rhs) {
                    return ZoneDecision::Skip(z.source);
                }
            }
        }
        if self.exact && !self.conjuncts.is_empty() {
            let all_decided = self.conjuncts.iter().all(|c| {
                synopsis.column(&c.column).is_some_and(|z| {
                    let zones = z.zones_for(offset, len);
                    !zones.is_empty()
                        && zones.clone().all(|zi| {
                            z.entries[zi].decides_all(c.op, c.rhs) == Some(true)
                                || z.entries[zi].satisfies_all(c.op, c.rhs)
                        })
                })
            });
            if all_decided {
                return ZoneDecision::AcceptAll;
            }
        }
        ZoneDecision::Eval
    }

    /// Split `[offset, offset + len)` into zone-aligned chunks with
    /// their decisions, bumping `stats` as it goes. Adjacent chunks
    /// with the same decision coalesce, so an unprunable scan costs one
    /// slice, exactly like the pre-pruning executor.
    pub fn plan_range(
        &self,
        synopsis: &TableSynopsis,
        zone_rows: usize,
        offset: usize,
        len: usize,
        stats: &mut ScanStats,
    ) -> Vec<(usize, usize, ZoneDecision)> {
        let mut out: Vec<(usize, usize, ZoneDecision)> = Vec::new();
        let end = offset + len;
        let mut pos = offset;
        while pos < end {
            let chunk_end = ((pos / zone_rows + 1) * zone_rows).min(end);
            let clen = chunk_end - pos;
            stats.pages_total += 1;
            let d = self.decide(synopsis, pos, clen);
            match d {
                ZoneDecision::Skip(ZoneSource::Data) => stats.pages_pruned_zonemap += 1,
                ZoneDecision::Skip(ZoneSource::Model) => stats.pages_pruned_model += 1,
                ZoneDecision::AcceptAll => stats.pages_compressed_eval += 1,
                ZoneDecision::Eval => {}
            }
            match out.last_mut() {
                Some((_, l, prev)) if *prev == d => *l += clen,
                _ => out.push((pos, clen, d)),
            }
            pos = chunk_end;
        }
        out
    }

    /// Render for EXPLAIN: `nu <= 0.14 AND intensity > 3`.
    pub fn describe(&self) -> String {
        let parts: Vec<String> = self
            .conjuncts
            .iter()
            .map(|c| {
                let op = match c.op {
                    PredOp::Lt => "<",
                    PredOp::Le => "<=",
                    PredOp::Gt => ">",
                    PredOp::Ge => ">=",
                    PredOp::Eq => "=",
                    PredOp::Ne => "!=",
                };
                format!("{} {op} {}", c.column, c.rhs)
            })
            .collect();
        parts.join(" AND ")
    }
}

/// Walk top-level AND structure; returns true when the whole subtree
/// was captured as conjuncts (no residual predicate remains).
fn collect(expr: &ScalarExpr, out: &mut Vec<PruningConjunct>) -> bool {
    match expr {
        ScalarExpr::And(a, b) => {
            // Order matters for `exact`: both sides must be fully
            // captured, and && must not short-circuit the recursion.
            let ea = collect(a, out);
            let eb = collect(b, out);
            ea && eb
        }
        ScalarExpr::Cmp(op, a, b) => match (&**a, &**b) {
            (ScalarExpr::Column(c), ScalarExpr::Number(n)) => {
                out.push(PruningConjunct { column: c.clone(), op: pred_op(*op), rhs: *n });
                true
            }
            (ScalarExpr::Number(n), ScalarExpr::Column(c)) => {
                out.push(PruningConjunct {
                    column: c.clone(),
                    op: flip(pred_op(*op)),
                    rhs: *n,
                });
                true
            }
            _ => false,
        },
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lawsdb_storage::zonemap::ColumnZones;
    use lawsdb_storage::Column;

    fn cmp(op: CmpOp, col: &str, n: f64) -> ScalarExpr {
        ScalarExpr::Cmp(
            op,
            Box::new(ScalarExpr::Column(col.into())),
            Box::new(ScalarExpr::Number(n)),
        )
    }

    #[test]
    fn extracts_top_level_conjuncts() {
        let e = ScalarExpr::And(
            Box::new(cmp(CmpOp::Gt, "a", 5.0)),
            Box::new(cmp(CmpOp::Eq, "b", 1.0)),
        );
        let p = PruningPredicate::extract(&e).unwrap();
        assert_eq!(p.conjuncts.len(), 2);
        assert!(p.exact);
        assert_eq!(p.describe(), "a > 5 AND b = 1");
    }

    #[test]
    fn flipped_literal_comparison_normalizes() {
        // 5 < a  ≡  a > 5
        let e = ScalarExpr::Cmp(
            CmpOp::Lt,
            Box::new(ScalarExpr::Number(5.0)),
            Box::new(ScalarExpr::Column("a".into())),
        );
        let p = PruningPredicate::extract(&e).unwrap();
        assert_eq!(p.conjuncts[0].op, PredOp::Gt);
        assert_eq!(p.conjuncts[0].rhs, 5.0);
    }

    #[test]
    fn or_subtrees_are_not_sargable_but_and_siblings_are() {
        let or = ScalarExpr::Or(
            Box::new(cmp(CmpOp::Gt, "a", 1.0)),
            Box::new(cmp(CmpOp::Lt, "a", -1.0)),
        );
        assert!(PruningPredicate::extract(&or).is_none());
        let e = ScalarExpr::And(Box::new(cmp(CmpOp::Eq, "b", 2.0)), Box::new(or));
        let p = PruningPredicate::extract(&e).unwrap();
        assert_eq!(p.conjuncts.len(), 1);
        assert!(!p.exact, "OR residue must disable accept-all");
    }

    #[test]
    fn decide_skips_refuted_zones_and_accepts_constant_zones() {
        // 8 rows, zone_rows=4: zone 0 = all 1s (constant), zone 1 = 5..9.
        let col = Column::from_i64(vec![1, 1, 1, 1, 5, 6, 7, 8]);
        let zones = ColumnZones::build(&col, 4).unwrap();
        let mut syn = TableSynopsis::new();
        syn.insert("a", zones);
        let p = PruningPredicate::extract(&cmp(CmpOp::Eq, "a", 1.0)).unwrap();
        assert_eq!(p.decide(&syn, 0, 4), ZoneDecision::AcceptAll);
        assert_eq!(p.decide(&syn, 4, 4), ZoneDecision::Skip(ZoneSource::Data));
        let p2 = PruningPredicate::extract(&cmp(CmpOp::Gt, "a", 6.0)).unwrap();
        assert_eq!(p2.decide(&syn, 4, 4), ZoneDecision::Eval);
    }

    #[test]
    fn unknown_columns_never_prune() {
        let syn = TableSynopsis::new();
        let p = PruningPredicate::extract(&cmp(CmpOp::Eq, "missing", 1.0)).unwrap();
        assert_eq!(p.decide(&syn, 0, 100), ZoneDecision::Eval);
    }

    #[test]
    fn plan_range_coalesces_and_counts() {
        // 12 rows, zone_rows=4: zones [1s][2s][3s]; predicate a = 2.
        let col = Column::from_i64(vec![1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3]);
        let zones = ColumnZones::build(&col, 4).unwrap();
        let mut syn = TableSynopsis::new();
        syn.insert("a", zones);
        let p = PruningPredicate::extract(&cmp(CmpOp::Eq, "a", 2.0)).unwrap();
        let mut stats = ScanStats::default();
        let chunks = p.plan_range(&syn, 4, 0, 12, &mut stats);
        assert_eq!(
            chunks,
            vec![
                (0, 4, ZoneDecision::Skip(ZoneSource::Data)),
                (4, 4, ZoneDecision::AcceptAll),
                (8, 4, ZoneDecision::Skip(ZoneSource::Data)),
            ]
        );
        assert_eq!(stats.pages_total, 3);
        assert_eq!(stats.pages_pruned_zonemap, 2);
        assert_eq!(stats.pages_compressed_eval, 1);
        // Unaligned sub-range: decisions still per zone-aligned chunk.
        let mut s2 = ScanStats::default();
        let chunks = p.plan_range(&syn, 4, 2, 8, &mut s2);
        assert_eq!(chunks.len(), 3);
        assert_eq!(s2.pages_total, 3);
    }

    #[test]
    fn collector_accumulates_across_threads() {
        let c = std::sync::Arc::new(ScanStatsCollector::default());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    c.add(&ScanStats {
                        pages_total: 10,
                        pages_pruned_zonemap: 3,
                        pages_pruned_model: 2,
                        pages_compressed_eval: 1,
                        zones_agg_synopsis: 5,
                    })
                });
            }
        });
        let snap = c.snapshot();
        assert_eq!(snap.pages_total, 40);
        assert_eq!(snap.pages_pruned(), 20);
        assert_eq!(snap.pages_compressed_eval, 4);
        assert_eq!(snap.zones_agg_synopsis, 20);
    }

    #[test]
    fn interval_proofs_accept_non_constant_zones() {
        // Zone 0 holds 1..=4, zone 1 holds 5..=8 — neither constant.
        let col = Column::from_i64(vec![1, 2, 3, 4, 5, 6, 7, 8]);
        let mut syn = TableSynopsis::new();
        syn.insert("a", ColumnZones::build(&col, 4).unwrap());
        // a >= 5: zone 1's min proves every row qualifies.
        let p = PruningPredicate::extract(&cmp(CmpOp::Ge, "a", 5.0)).unwrap();
        assert_eq!(p.decide(&syn, 4, 4), ZoneDecision::AcceptAll);
        assert_eq!(p.decide(&syn, 0, 4), ZoneDecision::Skip(ZoneSource::Data));
        // a >= 3 splits zone 0: bounds can't certify, so per-row eval.
        let p2 = PruningPredicate::extract(&cmp(CmpOp::Ge, "a", 3.0)).unwrap();
        assert_eq!(p2.decide(&syn, 0, 4), ZoneDecision::Eval);
        // A NULL poisons the certificate: the NULL row fails `>=`.
        let nullable = Column::from_i64_opt(vec![Some(5), Some(6), None, Some(8)]);
        let mut syn2 = TableSynopsis::new();
        syn2.insert("a", ColumnZones::build(&nullable, 4).unwrap());
        assert_eq!(p.decide(&syn2, 0, 4), ZoneDecision::Eval);
        // Inexact predicates (OR residue) never accept wholesale.
        let mut inexact = p.clone();
        inexact.exact = false;
        assert_eq!(inexact.decide(&syn, 4, 4), ZoneDecision::Eval);
    }
}
