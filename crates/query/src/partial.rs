//! Shard-side partial aggregation and coordinator-side merge for the
//! sharded scatter-gather execution layer (`lawsdb-cluster`).
//!
//! The single-engine aggregate pipeline folds one [`GroupPartial`] per
//! morsel and merges them in morsel order — that merge order is the
//! whole bit-identity story for floating-point `SUM`/`AVG` (IEEE-754
//! addition is not associative, so `(a+b)+(c+d)` and `((a+b)+c)+d`
//! differ in the last ulp). A sharded execution is bit-identical to the
//! unsharded engine exactly when it reproduces the same per-morsel
//! partials and merges them in the same global morsel order:
//!
//! * **Contiguous (range) shards** aligned to a multiple of
//!   `morsel_rows` run the engine's own pipeline locally; their
//!   per-morsel partials *are* the global ones, shifted by the shard's
//!   start row ([`shard_partials_contiguous`]).
//! * **Sparse (hash) shards** carry the original global row index of
//!   every local row. Each contiguous run of local rows falling inside
//!   one global morsel accumulates into its own cell
//!   ([`shard_partials_sparse`]); because a hash shard holds *all* rows
//!   of each of its groups, the per-group fold order matches the global
//!   scan. This requires a non-empty GROUP BY whose groups are wholly
//!   shard-local (partitioning hashed on a group key); global
//!   aggregates over sparse shards must gather rows instead.
//!
//! [`merge_shard_partials`] merges all cells in global morsel order
//! (stable within a morsel, which only matters for disjoint groups) and
//! then orders groups by ascending first-occurrence row — precisely the
//! first-encounter order a serial scan of the global table produces.

use crate::error::{QueryError, Result};
use crate::exec::{
    accumulate_morsel, aggregate_partials, column_from_values, mark_nulls, merge_partials,
    normalize_expr, normalize_name, prepare_agg_args, sort, Accumulator, GroupPartial, KeyPart,
};
use crate::morsel::ExecOptions;
use crate::plan::AggSpec;
use lawsdb_obs::fields;
use crate::sexpr::ScalarExpr;
use crate::sql::OrderBy;
use lawsdb_storage::{Column, DataType, Field, Schema, Table, Value};

/// Opaque per-morsel partial aggregates of one shard, keyed by *global*
/// morsel index and carrying *global* first-occurrence rows.
#[derive(Debug)]
pub struct ShardPartials {
    cells: Vec<(usize, GroupPartial)>,
    /// Base-table rows this shard scanned to produce the partials.
    pub rows_scanned: usize,
}

/// Partial-aggregate a contiguous (range) shard whose rows are the
/// global rows `[start, start + shard.row_count())`. `start` must be a
/// multiple of `opts.morsel_rows` so shard-local morsels coincide with
/// global morsels. Runs the engine's own pipeline grammars (zone-unit
/// pushdown included, when the shard table carries a synopsis on the
/// same grid as the global table).
pub fn shard_partials_contiguous(
    shard: &Table,
    start: usize,
    predicate: Option<&ScalarExpr>,
    group_by: &[String],
    aggs: &[AggSpec],
    opts: &ExecOptions,
) -> Result<ShardPartials> {
    if !start.is_multiple_of(opts.morsel_rows) {
        return Err(QueryError::InvalidAggregate {
            reason: format!(
                "shard start {start} is not aligned to morsel_rows {}",
                opts.morsel_rows
            ),
        });
    }
    let predicate = predicate.map(|p| normalize_expr(p, shard.schema())).transpose()?;
    let (_, parts) = aggregate_partials(shard, predicate.as_ref(), group_by, aggs, opts)?;
    let base = start / opts.morsel_rows;
    let cells = parts
        .into_iter()
        .enumerate()
        .map(|(i, mut p)| {
            for r in &mut p.first_rows {
                *r += start;
            }
            (base + i, p)
        })
        .collect();
    Ok(ShardPartials { cells, rows_scanned: shard.row_count() })
}

/// Partial-aggregate a sparse (hash) shard. `orig_rows[i]` is the
/// global row index of the shard's local row `i` and must be strictly
/// increasing (a hash partition built by one scan of the global table
/// is). Each run of local rows inside one global morsel folds into its
/// own cell, so per-group accumulation reproduces the global engine's
/// morsel boundaries exactly.
///
/// Requires a non-empty GROUP BY: the bit-identity argument needs every
/// group wholly inside one shard, which only the partition key
/// guarantees. Route global aggregates through the gather path instead.
///
/// Morsel geometry comes from `opts.morsel_rows`; an active
/// `opts.profile` context records one `morsel` leaf per folded run, so
/// a distributed trace shows the same execution grammar the single
/// engine's profile does.
pub fn shard_partials_sparse(
    shard: &Table,
    orig_rows: &[usize],
    predicate: Option<&ScalarExpr>,
    group_by: &[String],
    aggs: &[AggSpec],
    opts: &ExecOptions,
) -> Result<ShardPartials> {
    let morsel_rows = opts.morsel_rows;
    if group_by.is_empty() {
        return Err(QueryError::InvalidAggregate {
            reason: "sparse shard partials need a GROUP BY; gather rows for global aggregates"
                .to_string(),
        });
    }
    if orig_rows.len() != shard.row_count() {
        return Err(QueryError::InvalidAggregate {
            reason: format!(
                "row map covers {} rows but shard has {}",
                orig_rows.len(),
                shard.row_count()
            ),
        });
    }
    debug_assert!(orig_rows.windows(2).all(|w| w[0] < w[1]), "row map must be increasing");
    let predicate = predicate.map(|p| normalize_expr(p, shard.schema())).transpose()?;
    let group_by: Vec<String> = group_by
        .iter()
        .map(|g| normalize_name(shard.schema(), g))
        .collect::<Result<_>>()?;
    let args = prepare_agg_args(shard, aggs)?;
    let mut cells = Vec::new();
    let mut i = 0;
    while i < orig_rows.len() {
        let morsel = orig_rows[i] / morsel_rows;
        let mut j = i + 1;
        while j < orig_rows.len() && orig_rows[j] / morsel_rows == morsel {
            j += 1;
        }
        let run = shard.slice(i, j - i)?;
        let mut p =
            accumulate_morsel(&run, i, predicate.as_ref(), &group_by, &args, aggs.len())?;
        for r in &mut p.first_rows {
            *r = orig_rows[*r];
        }
        if let Some(ctx) = &opts.profile {
            ctx.leaf("morsel", morsel as u64, fields![rows = (j - i) as u64]);
        }
        cells.push((morsel, p));
        i = j;
    }
    Ok(ShardPartials { cells, rows_scanned: shard.row_count() })
}

/// Merged global group state, groups ordered by ascending first-occurrence
/// row (the single engine's output order).
pub struct MergedPartials {
    part: GroupPartial,
    /// Total base-table rows scanned across every shard.
    pub rows_scanned: usize,
}

impl MergedPartials {
    /// Number of distinct groups.
    pub fn group_count(&self) -> usize {
        self.part.keys.len()
    }

    /// Global first-occurrence row of each group, in output order.
    pub fn first_rows(&self) -> &[usize] {
        &self.part.first_rows
    }
}

/// Merge shard partials in deterministic global order: cells sort
/// stably by global morsel index (shard submission order breaks ties,
/// which only interleaves disjoint groups), fold via the engine's
/// morsel-order merge, then order groups by ascending first row.
pub fn merge_shard_partials(shards: Vec<ShardPartials>) -> MergedPartials {
    let mut rows_scanned = 0;
    let mut cells: Vec<(usize, GroupPartial)> = Vec::new();
    for s in shards {
        rows_scanned += s.rows_scanned;
        cells.extend(s.cells);
    }
    cells.sort_by_key(|(m, _)| *m);
    let merged = merge_partials(cells.into_iter().map(|(_, p)| p).collect());
    let mut idx: Vec<usize> = (0..merged.keys.len()).collect();
    idx.sort_by_key(|&i| merged.first_rows[i]);
    let mut part =
        GroupPartial { keys: Vec::new(), first_rows: Vec::new(), accs: Vec::new() };
    let mut keys: Vec<Option<Vec<KeyPart>>> = merged.keys.into_iter().map(Some).collect();
    let mut accs: Vec<Option<Vec<Accumulator>>> = merged.accs.into_iter().map(Some).collect();
    for i in idx {
        part.keys.push(keys[i].take().expect("each group reordered once"));
        part.first_rows.push(merged.first_rows[i]);
        part.accs.push(accs[i].take().expect("each group reordered once"));
    }
    MergedPartials { part, rows_scanned }
}

/// Assemble the merged groups into the engine-shaped result table:
/// group key columns (typed per the global `schema`) in declared order,
/// then one column per aggregate. `key_value(row, column)` resolves a
/// group key value at a *global* row — the coordinator maps the row back
/// to its owning shard, since no global table exists to gather from.
pub fn assemble_partials(
    schema: &Schema,
    group_by: &[String],
    aggs: &[AggSpec],
    merged: MergedPartials,
    mut key_value: impl FnMut(usize, &str) -> Result<Value>,
) -> Result<Table> {
    let group_by: Vec<String> = group_by
        .iter()
        .map(|g| normalize_name(schema, g))
        .collect::<Result<_>>()?;
    let mut part = merged.part;
    // Global aggregate over an empty input still yields one row.
    if group_by.is_empty() && part.accs.is_empty() {
        part.first_rows.push(usize::MAX);
        part.accs.push(vec![Accumulator::new(); aggs.len()]);
    }
    let mut fields = Vec::new();
    let mut cols = Vec::new();
    for g in &group_by {
        let idx = schema
            .index_of(g)
            .ok_or_else(|| QueryError::UnknownColumn { name: g.clone() })?;
        let dtype = schema.fields()[idx].data_type;
        let values: Vec<Value> = part
            .first_rows
            .iter()
            .map(|&r| key_value(r, g))
            .collect::<Result<_>>()?;
        fields.push(Field { name: g.clone(), data_type: dtype, nullable: true });
        cols.push(column_from_typed(dtype, &values));
    }
    for (ai, a) in aggs.iter().enumerate() {
        let values: Vec<Value> = part.accs.iter().map(|g| g[ai].finish(a.func)).collect();
        let col = column_from_values(&values);
        fields.push(Field::nullable(a.name.clone(), col.data_type()));
        cols.push(col);
    }
    Ok(Table::new("result", Schema::new(fields), cols)?)
}

/// Build a column of a known type from dynamic values — the same shape
/// `Column::take` over the source column would produce, so assembled
/// key columns match the single engine's bit for bit.
fn column_from_typed(dtype: DataType, values: &[Value]) -> Column {
    match dtype {
        DataType::Int64 => Column::from_i64_opt(values.iter().map(|v| v.as_i64()).collect()),
        DataType::Float64 => {
            let mut col = Column::from_f64_opt(values.iter().map(|v| v.as_f64()).collect());
            mark_nulls(&mut col, values);
            col
        }
        DataType::Str => {
            let data: Vec<String> =
                values.iter().map(|v| v.as_str().unwrap_or("").to_string()).collect();
            let mut col = Column::from_str(data);
            mark_nulls(&mut col, values);
            col
        }
        DataType::Bool => {
            let data: Vec<bool> =
                values.iter().map(|v| matches!(v, Value::Bool(true))).collect();
            let mut col = Column::from_bool(&data);
            mark_nulls(&mut col, values);
            col
        }
    }
}

/// The engine's ORDER BY (NULLs last, stable), exposed for the
/// coordinator's final sort over the assembled table.
pub fn sort_rows(t: &Table, keys: &[OrderBy]) -> Result<Table> {
    sort(t, keys)
}

/// The engine's LIMIT: the first `n` rows.
pub fn limit_rows(t: &Table, n: usize) -> Result<Table> {
    let keep: Vec<usize> = (0..t.row_count().min(n)).collect();
    Ok(t.take(&keep)?)
}

/// Stable hash of a value under the engine's *grouping* equivalence
/// (integral floats coerce to integers, exactly like GROUP BY), for
/// hash partitioning on a group key. FNV-1a, deterministic across runs
/// and platforms.
pub fn group_key_hash(v: &Value) -> u64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    match KeyPart::from_value(v) {
        KeyPart::Null => eat(&[0]),
        KeyPart::Int(i) => {
            eat(&[1]);
            eat(&i.to_le_bytes());
        }
        KeyPart::Float(bits) => {
            eat(&[2]);
            eat(&bits.to_le_bytes());
        }
        KeyPart::Str(s) => {
            eat(&[3]);
            eat(s.as_bytes());
        }
        KeyPart::Bool(b) => eat(&[4, b as u8]),
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute_with;
    use crate::plan::LogicalPlan;
    use crate::sql::parse_select;
    use lawsdb_storage::{Catalog, TableBuilder};

    fn fixture(rows: usize) -> Table {
        let mut b = TableBuilder::new("t");
        let mut g = Vec::new();
        let mut v = Vec::new();
        let mut state = 0x5DEECE66Du64;
        for i in 0..rows {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            g.push((i % 7) as i64);
            v.push(((state >> 11) as f64 / (1u64 << 53) as f64) * 2000.0 - 1000.0 + 0.1);
        }
        b.add_i64("g", g);
        b.add_f64("v", v);
        let mut t = b.build().unwrap();
        t.rebuild_synopsis_with(16);
        t
    }

    fn agg_parts(sql: &str) -> (Vec<String>, Vec<AggSpec>, Option<ScalarExpr>) {
        let stmt = parse_select(sql).unwrap();
        let mut plan = LogicalPlan::from_statement(&stmt).unwrap();
        loop {
            match plan {
                LogicalPlan::Aggregate { input, group_by, aggs } => {
                    let pred = match *input {
                        LogicalPlan::Filter { predicate, .. } => Some(predicate),
                        _ => None,
                    };
                    return (group_by, aggs, pred);
                }
                LogicalPlan::Sort { input, .. } | LogicalPlan::Limit { input, .. } => {
                    plan = *input;
                }
                other => panic!("not an aggregate shape: {other:?}"),
            }
        }
    }

    fn bits(t: &Table) -> Vec<Vec<String>> {
        (0..t.row_count())
            .map(|r| {
                t.row(r)
                    .unwrap()
                    .iter()
                    .map(|v| match v {
                        Value::Float(f) => format!("f{:016x}", f.to_bits()),
                        other => format!("{other:?}"),
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn contiguous_shards_merge_bit_identically() {
        let t = fixture(500);
        let catalog = Catalog::new();
        let t = catalog.register(t).unwrap();
        let opts = ExecOptions { threads: 2, morsel_rows: 64, ..ExecOptions::default() };
        for sql in [
            "SELECT g, SUM(v), COUNT(*) FROM t GROUP BY g",
            "SELECT SUM(v), AVG(v), MIN(v), MAX(v) FROM t",
            "SELECT g, AVG(v) FROM t WHERE v > 0.0 GROUP BY g",
        ] {
            let expect = execute_with(&catalog, sql, &opts).unwrap();
            let (group_by, aggs, pred) = agg_parts(sql);
            // Three shards split at morsel-aligned rows 0/128/320.
            let splits = [(0usize, 128usize), (128, 192), (320, 180)];
            let mut shards = Vec::new();
            for (start, len) in splits {
                let mut s = t.slice(start, len).unwrap();
                s.rebuild_synopsis_with(16);
                shards.push(
                    shard_partials_contiguous(&s, start, pred.as_ref(), &group_by, &aggs, &opts)
                        .unwrap(),
                );
            }
            let merged = merge_shard_partials(shards);
            let got = assemble_partials(t.schema(), &group_by, &aggs, merged, |row, col| {
                Ok(t.column(col).unwrap().value(row).unwrap())
            })
            .unwrap();
            assert_eq!(bits(&got), bits(&expect.table), "{sql}");
        }
    }

    #[test]
    fn sparse_shards_merge_bit_identically() {
        let t = fixture(400);
        let catalog = Catalog::new();
        let t = catalog.register(t).unwrap();
        let opts = ExecOptions { threads: 1, morsel_rows: 32, ..ExecOptions::default() };
        for sql in [
            "SELECT g, SUM(v), COUNT(*), MIN(v) FROM t GROUP BY g",
            "SELECT g, AVG(v) FROM t WHERE v > -200.0 GROUP BY g",
        ] {
            let expect = execute_with(&catalog, sql, &opts).unwrap();
            let (group_by, aggs, pred) = agg_parts(sql);
            // Hash-partition rows on g into 3 shards.
            let n_shards = 3;
            let mut rowsets: Vec<Vec<usize>> = vec![Vec::new(); n_shards];
            let gcol = t.column("g").unwrap();
            for row in 0..t.row_count() {
                let h = group_key_hash(&gcol.value(row).unwrap());
                rowsets[(h % n_shards as u64) as usize].push(row);
            }
            let mut shards = Vec::new();
            for rows in &rowsets {
                let s = t.take(rows).unwrap();
                shards.push(
                    shard_partials_sparse(&s, rows, pred.as_ref(), &group_by, &aggs, &opts)
                        .unwrap(),
                );
            }
            let merged = merge_shard_partials(shards);
            let got = assemble_partials(t.schema(), &group_by, &aggs, merged, |row, col| {
                Ok(t.column(col).unwrap().value(row).unwrap())
            })
            .unwrap();
            assert_eq!(bits(&got), bits(&expect.table), "{sql}");
        }
    }

    #[test]
    fn sparse_global_aggregates_are_refused() {
        let t = fixture(40);
        let (group_by, aggs, _) = agg_parts("SELECT SUM(v) FROM t");
        let rows: Vec<usize> = (0..40).collect();
        let opts = ExecOptions { threads: 1, morsel_rows: 32, ..ExecOptions::default() };
        let err =
            shard_partials_sparse(&t, &rows, None, &group_by, &aggs, &opts).unwrap_err();
        assert!(matches!(err, QueryError::InvalidAggregate { .. }));
    }

    #[test]
    fn grouping_hash_coerces_integral_floats() {
        assert_eq!(group_key_hash(&Value::Float(2.0)), group_key_hash(&Value::Int(2)));
        assert_eq!(group_key_hash(&Value::Float(-0.0)), group_key_hash(&Value::Int(0)));
        assert_ne!(group_key_hash(&Value::Int(1)), group_key_hash(&Value::Int(2)));
    }
}
