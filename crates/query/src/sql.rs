//! SQL lexer and parser for the supported SELECT subset.

use crate::error::{QueryError, Result};
use crate::sexpr::{ArithOp, ScalarExpr};
use lawsdb_expr::ast::CmpOp;

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT`
    Count,
    /// `SUM`
    Sum,
    /// `AVG`
    Avg,
    /// `MIN`
    Min,
    /// `MAX`
    Max,
}

impl AggFunc {
    /// SQL name.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }

    fn by_name(s: &str) -> Option<AggFunc> {
        Some(match s.to_ascii_uppercase().as_str() {
            "COUNT" => AggFunc::Count,
            "SUM" => AggFunc::Sum,
            "AVG" => AggFunc::Avg,
            "MIN" => AggFunc::Min,
            "MAX" => AggFunc::Max,
            _ => return None,
        })
    }
}

/// One item in the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Star,
    /// A scalar expression with optional alias.
    Expr {
        /// The expression.
        expr: ScalarExpr,
        /// `AS alias`, if given.
        alias: Option<String>,
    },
    /// An aggregate call; `arg = None` means `COUNT(*)`.
    Agg {
        /// Which aggregate.
        func: AggFunc,
        /// Argument expression, or `None` for `*`.
        arg: Option<ScalarExpr>,
        /// `AS alias`, if given.
        alias: Option<String>,
    },
}

impl SelectItem {
    /// Output column name: alias, or a derived name.
    pub fn output_name(&self) -> String {
        match self {
            SelectItem::Star => "*".to_string(),
            SelectItem::Expr { expr, alias } => {
                alias.clone().unwrap_or_else(|| match expr {
                    ScalarExpr::Column(c) => c.clone(),
                    other => other.to_string(),
                })
            }
            SelectItem::Agg { func, arg, alias } => alias.clone().unwrap_or_else(|| {
                match arg {
                    None => format!("{}(*)", func.name().to_ascii_lowercase()),
                    Some(e) => format!("{}({})", func.name().to_ascii_lowercase(), e),
                }
            }),
        }
    }
}

/// A sort key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderBy {
    /// Column (or output alias) to sort by.
    pub column: String,
    /// Sort descending?
    pub desc: bool,
}

/// An `INNER JOIN other ON left_col = right_col` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinClause {
    /// Right-side table.
    pub table: String,
    /// Join key on the left (FROM) table.
    pub left_col: String,
    /// Join key on the right (JOIN) table.
    pub right_col: String,
}

/// A parsed SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStatement {
    /// `SELECT DISTINCT`?
    pub distinct: bool,
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// FROM table.
    pub table: String,
    /// Optional single inner equi-join.
    pub join: Option<JoinClause>,
    /// WHERE predicate.
    pub predicate: Option<ScalarExpr>,
    /// GROUP BY columns.
    pub group_by: Vec<String>,
    /// ORDER BY keys.
    pub order_by: Vec<OrderBy>,
    /// LIMIT row count.
    pub limit: Option<usize>,
}

// ---------------------------------------------------------------- lexer

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Number(f64),
    Str(String),
    Star,
    Comma,
    LParen,
    RParen,
    Plus,
    Minus,
    Slash,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    Dot,
}

/// Sink that stamps every pushed token with the byte offset of the
/// source position it began at.
struct PushAt<'a> {
    out: &'a mut Vec<(Tok, usize)>,
    at: usize,
}

impl PushAt<'_> {
    fn push(&mut self, t: Tok) {
        self.out.push((t, self.at));
    }
}

/// Tokens paired with the byte offset where each begins, so parse
/// errors can point at the offending spot in the source text.
fn lex(src: &str) -> Result<Vec<(Tok, usize)>> {
    let b = src.as_bytes();
    let mut out: Vec<(Tok, usize)> = Vec::new();
    let mut i = 0;
    while i < b.len() {
        let c = b[i] as char;
        // Every arm pushes at most one token that starts at `i`.
        let mut out = PushAt { out: &mut out, at: i };
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            ',' => {
                out.push(Tok::Comma);
                i += 1;
            }
            '(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            '*' => {
                out.push(Tok::Star);
                i += 1;
            }
            '+' => {
                out.push(Tok::Plus);
                i += 1;
            }
            '-' => {
                out.push(Tok::Minus);
                i += 1;
            }
            '/' => {
                out.push(Tok::Slash);
                i += 1;
            }
            '.' if i + 1 < b.len() && !(b[i + 1] as char).is_ascii_digit() => {
                out.push(Tok::Dot);
                i += 1;
            }
            '=' => {
                out.push(Tok::Eq);
                i += 1;
            }
            '<' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push(Tok::Le);
                    i += 2;
                } else if b.get(i + 1) == Some(&b'>') {
                    out.push(Tok::Ne);
                    i += 2;
                } else {
                    out.push(Tok::Lt);
                    i += 1;
                }
            }
            '>' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push(Tok::Ge);
                    i += 2;
                } else {
                    out.push(Tok::Gt);
                    i += 1;
                }
            }
            '!' if b.get(i + 1) == Some(&b'=') => {
                out.push(Tok::Ne);
                i += 2;
            }
            '\'' => {
                let mut j = i + 1;
                let mut s = String::new();
                loop {
                    match b.get(j) {
                        None => {
                            return Err(QueryError::Lex {
                                detail: "unterminated string literal".to_string(),
                                pos: i,
                            })
                        }
                        Some(b'\'') => {
                            // '' escapes a quote.
                            if b.get(j + 1) == Some(&b'\'') {
                                s.push('\'');
                                j += 2;
                            } else {
                                j += 1;
                                break;
                            }
                        }
                        Some(&ch) => {
                            s.push(ch as char);
                            j += 1;
                        }
                    }
                }
                out.push(Tok::Str(s));
                i = j;
            }
            '0'..='9' | '.' => {
                let start = i;
                let mut j = i;
                let mut seen_e = false;
                while j < b.len() {
                    let d = b[j] as char;
                    let ok = d.is_ascii_digit()
                        || d == '.'
                        || d == 'e'
                        || d == 'E'
                        || ((d == '+' || d == '-')
                            && seen_e
                            && (b[j - 1] == b'e' || b[j - 1] == b'E'));
                    if !ok {
                        break;
                    }
                    if d == 'e' || d == 'E' {
                        match b.get(j + 1) {
                            Some(b'0'..=b'9') | Some(b'+') | Some(b'-') => seen_e = true,
                            _ => break,
                        }
                    }
                    j += 1;
                }
                let text = &src[start..j];
                let v: f64 = text.parse().map_err(|_| QueryError::Lex {
                    detail: format!("bad number {text:?}"),
                    pos: start,
                })?;
                out.push(Tok::Number(v));
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == '"' => {
                // Double-quoted identifiers pass through verbatim.
                if c == '"' {
                    let mut j = i + 1;
                    while j < b.len() && b[j] != b'"' {
                        j += 1;
                    }
                    if j == b.len() {
                        return Err(QueryError::Lex {
                            detail: "unterminated quoted identifier".to_string(),
                            pos: i,
                        });
                    }
                    out.push(Tok::Ident(src[i + 1..j].to_string()));
                    i = j + 1;
                } else {
                    let start = i;
                    let mut j = i;
                    while j < b.len() {
                        let d = b[j] as char;
                        if d.is_ascii_alphanumeric() || d == '_' {
                            j += 1;
                        } else {
                            break;
                        }
                    }
                    out.push(Tok::Ident(src[start..j].to_string()));
                    i = j;
                }
            }
            ';' => i += 1, // trailing semicolons are harmless
            other => {
                return Err(QueryError::Lex {
                    detail: format!("unexpected character {other:?}"),
                    pos: i,
                })
            }
        }
    }
    Ok(out)
}

// --------------------------------------------------------------- parser

struct P {
    toks: Vec<(Tok, usize)>,
    pos: usize,
}

impl P {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    /// Byte offset of the token the parser is looking at (`None` at
    /// end of input).
    fn peek_pos(&self) -> Option<usize> {
        self.toks.get(self.pos).map(|(_, at)| *at)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, expected: &str) -> Result<T> {
        Err(QueryError::Parse {
            expected: expected.to_string(),
            found: self
                .peek()
                .map(|t| format!("{t:?}"))
                .unwrap_or_else(|| "end of input".to_string()),
            pos: self.peek_pos(),
        })
    }

    /// Consume a keyword (case-insensitive); false if not present.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if let Some(Tok::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            self.err(&format!("keyword {kw}"))
        }
    }

    fn expect(&mut self, t: &Tok, what: &str) -> Result<()> {
        if self.peek() == Some(t) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(what)
        }
    }

    fn ident(&mut self) -> Result<String> {
        if let Some(Tok::Ident(s)) = self.peek() {
            let s = s.clone();
            self.pos += 1;
            Ok(s)
        } else {
            // Not consumed, so the error points at the offending token
            // (or reports end of input — `bump` would rewind onto the
            // previous token here and misattribute the position).
            self.err("identifier")
        }
    }

    /// Identifier with optional `table.` qualifier; qualifiers are
    /// stripped (single-table and explicitly-joined queries only).
    fn column_name(&mut self) -> Result<String> {
        let first = self.ident()?;
        if self.peek() == Some(&Tok::Dot) {
            self.pos += 1;
            let col = self.ident()?;
            Ok(format!("{first}.{col}"))
        } else {
            Ok(first)
        }
    }

    fn is_keyword(s: &str) -> bool {
        const KWS: [&str; 17] = [
            "SELECT", "FROM", "WHERE", "GROUP", "ORDER", "BY", "LIMIT", "AND", "OR", "NOT",
            "AS", "ASC", "DESC", "BETWEEN", "JOIN", "ON", "DISTINCT",
        ];
        KWS.iter().any(|k| s.eq_ignore_ascii_case(k))
    }

    // expr := or
    fn expr(&mut self) -> Result<ScalarExpr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<ScalarExpr> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw("OR") {
            let rhs = self.and_expr()?;
            lhs = ScalarExpr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<ScalarExpr> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw("AND") {
            let rhs = self.not_expr()?;
            lhs = ScalarExpr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<ScalarExpr> {
        if self.eat_kw("NOT") {
            let inner = self.not_expr()?;
            return Ok(ScalarExpr::Not(Box::new(inner)));
        }
        self.cmp_expr()
    }

    fn cmp_expr(&mut self) -> Result<ScalarExpr> {
        let lhs = self.add_expr()?;
        if self.eat_kw("BETWEEN") {
            let lo = self.add_expr()?;
            self.expect_kw("AND")?;
            let hi = self.add_expr()?;
            return Ok(ScalarExpr::And(
                Box::new(ScalarExpr::Cmp(CmpOp::Ge, Box::new(lhs.clone()), Box::new(lo))),
                Box::new(ScalarExpr::Cmp(CmpOp::Le, Box::new(lhs), Box::new(hi))),
            ));
        }
        let op = match self.peek() {
            Some(Tok::Lt) => CmpOp::Lt,
            Some(Tok::Le) => CmpOp::Le,
            Some(Tok::Gt) => CmpOp::Gt,
            Some(Tok::Ge) => CmpOp::Ge,
            Some(Tok::Eq) => CmpOp::Eq,
            Some(Tok::Ne) => CmpOp::Ne,
            _ => return Ok(lhs),
        };
        self.pos += 1;
        let rhs = self.add_expr()?;
        Ok(ScalarExpr::Cmp(op, Box::new(lhs), Box::new(rhs)))
    }

    fn add_expr(&mut self) -> Result<ScalarExpr> {
        let mut lhs = self.mul_expr()?;
        loop {
            match self.peek() {
                Some(Tok::Plus) => {
                    self.pos += 1;
                    let rhs = self.mul_expr()?;
                    lhs = ScalarExpr::Arith(ArithOp::Add, Box::new(lhs), Box::new(rhs));
                }
                Some(Tok::Minus) => {
                    self.pos += 1;
                    let rhs = self.mul_expr()?;
                    lhs = ScalarExpr::Arith(ArithOp::Sub, Box::new(lhs), Box::new(rhs));
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn mul_expr(&mut self) -> Result<ScalarExpr> {
        let mut lhs = self.unary_expr()?;
        loop {
            match self.peek() {
                Some(Tok::Star) => {
                    self.pos += 1;
                    let rhs = self.unary_expr()?;
                    lhs = ScalarExpr::Arith(ArithOp::Mul, Box::new(lhs), Box::new(rhs));
                }
                Some(Tok::Slash) => {
                    self.pos += 1;
                    let rhs = self.unary_expr()?;
                    lhs = ScalarExpr::Arith(ArithOp::Div, Box::new(lhs), Box::new(rhs));
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn unary_expr(&mut self) -> Result<ScalarExpr> {
        if self.peek() == Some(&Tok::Minus) {
            self.pos += 1;
            let inner = self.unary_expr()?;
            return Ok(ScalarExpr::Neg(Box::new(inner)));
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<ScalarExpr> {
        match self.peek().cloned() {
            Some(Tok::Number(v)) => {
                self.pos += 1;
                Ok(ScalarExpr::Number(v))
            }
            Some(Tok::Str(s)) => {
                self.pos += 1;
                Ok(ScalarExpr::Str(s))
            }
            Some(Tok::LParen) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect(&Tok::RParen, "')'")?;
                Ok(e)
            }
            Some(Tok::Ident(s)) if !Self::is_keyword(&s) => {
                let name = self.column_name()?;
                Ok(ScalarExpr::Column(name))
            }
            _ => self.err("expression"),
        }
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        if self.peek() == Some(&Tok::Star) {
            self.pos += 1;
            return Ok(SelectItem::Star);
        }
        // Aggregate call?
        if let Some(Tok::Ident(name)) = self.peek().cloned() {
            if let Some(func) = AggFunc::by_name(&name) {
                if self.toks.get(self.pos + 1).map(|(t, _)| t) == Some(&Tok::LParen) {
                    self.pos += 2;
                    let arg = if self.peek() == Some(&Tok::Star) {
                        self.pos += 1;
                        None
                    } else {
                        Some(self.expr()?)
                    };
                    self.expect(&Tok::RParen, "')'")?;
                    if arg.is_none() && func != AggFunc::Count {
                        return Err(QueryError::InvalidAggregate {
                            reason: format!("{}(*) is only valid for COUNT", func.name()),
                        });
                    }
                    let alias = self.optional_alias()?;
                    return Ok(SelectItem::Agg { func, arg, alias });
                }
            }
        }
        let expr = self.expr()?;
        let alias = self.optional_alias()?;
        Ok(SelectItem::Expr { expr, alias })
    }

    fn optional_alias(&mut self) -> Result<Option<String>> {
        if self.eat_kw("AS") {
            return Ok(Some(self.ident()?));
        }
        Ok(None)
    }
}

/// Parse one SELECT statement.
pub fn parse_select(sql: &str) -> Result<SelectStatement> {
    let toks = lex(sql)?;
    let mut p = P { toks, pos: 0 };
    p.expect_kw("SELECT")?;
    let distinct = p.eat_kw("DISTINCT");
    let mut items = vec![p.select_item()?];
    while p.peek() == Some(&Tok::Comma) {
        p.pos += 1;
        items.push(p.select_item()?);
    }
    p.expect_kw("FROM")?;
    let table = p.ident()?;

    let mut join = None;
    if p.eat_kw("INNER") {
        p.expect_kw("JOIN")?;
        join = Some(parse_join(&mut p)?);
    } else if p.eat_kw("JOIN") {
        join = Some(parse_join(&mut p)?);
    }

    let predicate = if p.eat_kw("WHERE") { Some(p.expr()?) } else { None };

    let mut group_by = Vec::new();
    if p.eat_kw("GROUP") {
        p.expect_kw("BY")?;
        group_by.push(p.column_name()?);
        while p.peek() == Some(&Tok::Comma) {
            p.pos += 1;
            group_by.push(p.column_name()?);
        }
    }

    let mut order_by = Vec::new();
    if p.eat_kw("ORDER") {
        p.expect_kw("BY")?;
        loop {
            let column = p.column_name()?;
            let desc = if p.eat_kw("DESC") {
                true
            } else {
                p.eat_kw("ASC");
                false
            };
            order_by.push(OrderBy { column, desc });
            if p.peek() == Some(&Tok::Comma) {
                p.pos += 1;
            } else {
                break;
            }
        }
    }

    let limit = if p.eat_kw("LIMIT") {
        match p.bump() {
            Some(Tok::Number(v)) if v >= 0.0 && v.fract() == 0.0 => Some(v as usize),
            _ => return p.err("non-negative integer LIMIT"),
        }
    } else {
        None
    };

    if p.peek().is_some() {
        return p.err("end of statement");
    }
    Ok(SelectStatement { distinct, items, table, join, predicate, group_by, order_by, limit })
}

fn parse_join(p: &mut P) -> Result<JoinClause> {
    let table = p.ident()?;
    p.expect_kw("ON")?;
    let a = p.column_name()?;
    p.expect(&Tok::Eq, "'=' in join condition")?;
    let b = p.column_name()?;
    Ok(JoinClause { table, left_col: a, right_col: b })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_query_one() {
        let s = parse_select(
            "SELECT intensity FROM measurements WHERE source = 42 AND wavelength = 0.14;",
        )
        .unwrap();
        assert_eq!(s.table, "measurements");
        assert_eq!(s.items.len(), 1);
        assert!(s.predicate.is_some());
        assert_eq!(
            s.predicate.unwrap().to_string(),
            "((source == 42) AND (wavelength == 0.14))"
        );
    }

    #[test]
    fn parses_aggregates_and_grouping() {
        let s = parse_select(
            "SELECT source, COUNT(*), AVG(intensity) AS mean_i FROM m GROUP BY source \
             ORDER BY source DESC LIMIT 10",
        )
        .unwrap();
        assert_eq!(s.group_by, vec!["source"]);
        assert_eq!(s.order_by, vec![OrderBy { column: "source".to_string(), desc: true }]);
        assert_eq!(s.limit, Some(10));
        match &s.items[1] {
            SelectItem::Agg { func: AggFunc::Count, arg: None, .. } => {}
            other => panic!("expected COUNT(*), got {other:?}"),
        }
        assert_eq!(s.items[2].output_name(), "mean_i");
    }

    #[test]
    fn between_desugars() {
        let s = parse_select("SELECT * FROM t WHERE x BETWEEN 1 AND 2").unwrap();
        assert_eq!(s.predicate.unwrap().to_string(), "((x >= 1) AND (x <= 2))");
    }

    #[test]
    fn string_literals_and_escapes() {
        let s = parse_select("SELECT * FROM t WHERE name = 'O''Brien'").unwrap();
        assert_eq!(s.predicate.unwrap().to_string(), "(name == 'O'Brien')");
    }

    #[test]
    fn join_clause() {
        let s = parse_select(
            "SELECT a, b FROM t JOIN u ON t.k = u.k WHERE b > 1",
        )
        .unwrap();
        let j = s.join.unwrap();
        assert_eq!(j.table, "u");
        assert_eq!(j.left_col, "t.k");
        assert_eq!(j.right_col, "u.k");
    }

    #[test]
    fn arithmetic_precedence() {
        let s = parse_select("SELECT a + b * 2 FROM t").unwrap();
        match &s.items[0] {
            SelectItem::Expr { expr, .. } => {
                assert_eq!(expr.to_string(), "(a + (b * 2))");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn count_star_only_for_count() {
        assert!(matches!(
            parse_select("SELECT SUM(*) FROM t"),
            Err(QueryError::InvalidAggregate { .. })
        ));
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_select("SELECT FROM t").is_err());
        assert!(parse_select("SELECT a").is_err());
        assert!(parse_select("SELECT a FROM t WHERE").is_err());
        assert!(parse_select("SELECT a FROM t LIMIT -1").is_err());
        assert!(parse_select("SELECT a FROM t garbage").is_err());
        assert!(parse_select("SELECT a FROM t WHERE s = 'unterminated").is_err());
    }

    #[test]
    fn parse_errors_carry_positions() {
        // `>` begins at byte 22 of the source text.
        let err = parse_select("SELECT a FROM t WHERE >").unwrap_err();
        match &err {
            QueryError::Parse { pos: Some(p), .. } => assert_eq!(*p, 22),
            other => panic!("expected positioned parse error, got {other:?}"),
        }
        assert!(err.to_string().contains("at byte 22"), "{err}");
        // Running off the end of the input has no position to point at.
        let err = parse_select("SELECT a FROM").unwrap_err();
        assert!(matches!(&err, QueryError::Parse { pos: None, .. }), "{err:?}");
        assert!(err.to_string().contains("end of input"), "{err}");
    }

    #[test]
    fn not_and_or_precedence() {
        let s = parse_select("SELECT * FROM t WHERE NOT a = 1 AND b = 2 OR c = 3").unwrap();
        // NOT binds tighter than AND, AND tighter than OR.
        assert_eq!(
            s.predicate.unwrap().to_string(),
            "(((NOT (a == 1)) AND (b == 2)) OR (c == 3))"
        );
    }

    #[test]
    fn quoted_identifier() {
        let s = parse_select("SELECT \"weird name\" FROM t").unwrap();
        match &s.items[0] {
            SelectItem::Expr { expr: ScalarExpr::Column(c), .. } => {
                assert_eq!(c, "weird name")
            }
            other => panic!("{other:?}"),
        }
    }
}
