//! # lawsdb-query
//!
//! Relational query processing for LawsDB: a SQL subset, a logical plan,
//! a rule-based optimizer and a vectorized executor over the columnar
//! storage engine.
//!
//! The paper's Section 2 poses two concrete SQL queries against the
//! LOFAR measurements table:
//!
//! ```sql
//! SELECT intensity FROM measurements
//!  WHERE source = 42 AND wavelength = 0.14;
//!
//! SELECT source, intensity FROM measurements
//!  WHERE wavelength = 0.14 AND intensity > 3.0;
//! ```
//!
//! This crate answers them *exactly* (the baseline every approximate
//! answer is judged against) and exposes the plan structure that the
//! approximate engine in `lawsdb-approx` rewrites against captured
//! models. The executor counts the base-table rows it touches —
//! [`QueryResult::rows_scanned`] — which is the denominator of every
//! "zero-IO" claim.
//!
//! Supported SQL: `SELECT [DISTINCT]` with expressions and aggregates
//! (`COUNT(*)`, `COUNT/SUM/AVG/MIN/MAX(expr)`), `FROM` a single table,
//! optional single `INNER JOIN … ON a = b`, `WHERE` with arithmetic,
//! comparisons, `AND`/`OR`/`NOT` and `BETWEEN`, `GROUP BY`, `ORDER BY
//! … [ASC|DESC]`, `LIMIT`.

// `!(x > y)` guards are NaN-aware in predicate evaluation.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
// User-facing paths must return structured `QueryError`s, never panic;
// tests are exempt (unwrap on known-good fixtures is idiomatic there).
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod cost;
pub mod error;
pub mod exec;
pub mod governor;
pub mod morsel;
pub mod optimize;
pub mod partial;
pub mod physical;
pub mod plan;
pub mod plan_cache;
pub mod pruning;
pub mod sexpr;
pub mod sql;

pub use cost::{CostConstants, CostModel};
pub use error::{QueryError, Result};
pub use exec::{
    execute, execute_plan, execute_plan_profiled, execute_plan_with, execute_profiled,
    execute_with, QueryResult,
};
pub use lawsdb_obs::{ProfileCollector, ProfileContext, QueryProfile};
pub use governor::{CancelToken, Governor, ResourceBudget};
pub use morsel::ExecOptions;
pub use partial::{
    assemble_partials, group_key_hash, limit_rows, merge_shard_partials,
    shard_partials_contiguous, shard_partials_sparse, sort_rows, MergedPartials, ShardPartials,
};
pub use physical::{execute_physical_with, plan_physical, AccessPlan, Estimate, PhysicalPlan};
pub use plan::LogicalPlan;
pub use plan_cache::{normalize_statement, PlanCache};
pub use pruning::{PruningPredicate, ScanStats, ScanStatsCollector, ZoneDecision};
pub use sexpr::{PredMask, ScalarExpr};
pub use sql::parse_select;

#[cfg(test)]
mod tests {
    use super::*;
    use lawsdb_storage::{Catalog, TableBuilder, Value};

    fn catalog() -> Catalog {
        let c = Catalog::new();
        let mut b = TableBuilder::new("measurements");
        b.add_i64("source", vec![42, 42, 7, 7, 42]);
        b.add_f64("wavelength", vec![0.14, 0.15, 0.14, 0.15, 0.14]);
        b.add_f64("intensity", vec![3.2, 2.9, 4.0, 1.0, 2.8]);
        c.register(b.build().unwrap()).unwrap();
        c
    }

    #[test]
    fn paper_query_one() {
        let c = catalog();
        let r = execute(
            &c,
            "SELECT intensity FROM measurements WHERE source = 42 AND wavelength = 0.14",
        )
        .unwrap();
        assert_eq!(r.table.row_count(), 2);
        let vals = r.table.column("intensity").unwrap().f64_data().unwrap().to_vec();
        assert_eq!(vals, vec![3.2, 2.8]);
        assert_eq!(r.rows_scanned, 5);
    }

    #[test]
    fn paper_query_two() {
        let c = catalog();
        let r = execute(
            &c,
            "SELECT source, intensity FROM measurements \
             WHERE wavelength = 0.14 AND intensity > 3.0",
        )
        .unwrap();
        assert_eq!(r.table.row_count(), 2);
        assert_eq!(r.table.row(0).unwrap()[0], Value::Int(42));
        assert_eq!(r.table.row(1).unwrap()[0], Value::Int(7));
    }
}
