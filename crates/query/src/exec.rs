//! Vectorized, morsel-parallel plan execution.
//!
//! The executor recognizes `Scan → Filter → Aggregate` pipeline shapes
//! and runs them morsel-at-a-time on a scoped worker pool (see
//! [`crate::morsel`]); per-morsel partial states merge in morsel order,
//! so results are bit-identical for any thread count. Every other plan
//! node runs serially on its (possibly parallel-computed) input.

use crate::error::{QueryError, Result};
use crate::governor::Governor;
use crate::morsel::{morsel_ranges, parallel_morsels, ExecOptions};
use crate::optimize::optimize;
use crate::plan::{AggSpec, LogicalPlan};
use crate::pruning::{PruningPredicate, ScanStats, ScanStatsCollector, ZoneDecision};
use crate::sexpr::{PredMask, ScalarExpr};
use crate::sql::{parse_select, AggFunc, OrderBy};
use lawsdb_obs::{fields, ProfileCollector, ProfileContext, QueryProfile};
use lawsdb_storage::schema::{DataType, Field, Schema};
use lawsdb_storage::zonemap::{ColumnZones, ZoneSource};
use lawsdb_storage::{Catalog, Column, Table, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// Result of executing a query: the output table plus the exact number
/// of base-table rows the executor materialized.
///
/// `rows_scanned` is the paper's currency — the approximate engine's
/// whole point is answering with `rows_scanned == 0`. It deliberately
/// keeps its pre-pruning meaning (rows the scans covered); the zones
/// that pruning actually skipped are reported in `scan_stats`.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Output rows.
    pub table: Table,
    /// Base-table rows materialized by scans.
    pub rows_scanned: usize,
    /// Zone-level pruning counters for this query.
    pub scan_stats: ScanStats,
    /// `EXPLAIN ANALYZE`-style execution profile. Attached only by the
    /// profiled entry points ([`execute_profiled`],
    /// [`execute_plan_profiled`]); `None` on the plain paths, which pay
    /// one untaken branch per instrumentation site.
    pub profile: Option<QueryProfile>,
}

/// Parse, plan, optimize and execute a SELECT statement with default
/// [`ExecOptions`] (one worker per available core).
pub fn execute(catalog: &Catalog, sql: &str) -> Result<QueryResult> {
    execute_with(catalog, sql, &ExecOptions::default())
}

/// Parse, plan, optimize and execute a SELECT statement with explicit
/// execution options.
pub fn execute_with(catalog: &Catalog, sql: &str, opts: &ExecOptions) -> Result<QueryResult> {
    let stmt = parse_select(sql)?;
    let plan = LogicalPlan::from_statement(&stmt)?;
    let plan = optimize(&plan);
    execute_plan_with(catalog, &plan, opts)
}

/// Execute an already-built logical plan with default options.
pub fn execute_plan(catalog: &Catalog, plan: &LogicalPlan) -> Result<QueryResult> {
    execute_plan_with(catalog, plan, &ExecOptions::default())
}

/// Execute an already-built logical plan with explicit options.
pub fn execute_plan_with(
    catalog: &Catalog,
    plan: &LogicalPlan,
    opts: &ExecOptions,
) -> Result<QueryResult> {
    // Always collect pruning stats; a caller-supplied collector keeps
    // accumulating across queries, so report this query as a delta.
    let collector: Arc<ScanStatsCollector> = opts.stats.clone().unwrap_or_default();
    let before = collector.snapshot();
    // Arm the governor *here* so the deadline clock measures this
    // query; `arm` returns None for unlimited budgets, keeping the
    // common unbudgeted path free of governor checks entirely.
    let opts = ExecOptions {
        stats: Some(collector.clone()),
        governor: Governor::arm(opts.budget, opts.cancel.clone()),
        ..opts.clone()
    };
    // Admission check: plans that never reach a morsel boundary (a
    // bare zero-copy scan) must still honour an already-cancelled
    // token or an already-expired deadline.
    opts.governor_check()?;
    let mut scanned = 0usize;
    let table = exec(catalog, plan, &mut scanned, &opts)?;
    let scan_stats = collector.snapshot().since(&before);
    if let Some(ctx) = &opts.profile {
        ctx.point(
            "scan.stats",
            fields![
                pages_total = scan_stats.pages_total,
                pruned_zonemap = scan_stats.pages_pruned_zonemap,
                pruned_model = scan_stats.pages_pruned_model,
                compressed_eval = scan_stats.pages_compressed_eval,
                zones_agg_synopsis = scan_stats.zones_agg_synopsis,
            ],
        );
        if let Some(g) = &opts.governor {
            ctx.point(
                "governor.summary",
                fields![
                    rows_admitted = g.rows_admitted(),
                    memory_used = g.memory_used(),
                ],
            );
        }
    }
    Ok(QueryResult { table, rows_scanned: scanned, scan_stats, profile: None })
}

/// [`execute_with`], plus an attached [`QueryProfile`]: the SQL-string
/// entry point behind the session's `EXPLAIN ANALYZE`.
pub fn execute_profiled(
    catalog: &Catalog,
    sql: &str,
    opts: &ExecOptions,
) -> Result<QueryResult> {
    let stmt = parse_select(sql)?;
    let plan = LogicalPlan::from_statement(&stmt)?;
    let plan = optimize(&plan);
    execute_plan_profiled(catalog, &plan, opts)
}

/// Execute a plan with a fresh [`ProfileCollector`] and attach the
/// assembled profile tree to the result. Callers that record their own
/// points around the query (the resilient ladder) instead create a
/// collector themselves, set [`ExecOptions::profile`] from it, and call
/// [`execute_plan_with`] directly.
pub fn execute_plan_profiled(
    catalog: &Catalog,
    plan: &LogicalPlan,
    opts: &ExecOptions,
) -> Result<QueryResult> {
    let collector = ProfileCollector::new();
    let opts = ExecOptions { profile: Some(collector.context()), ..opts.clone() };
    let mut r = execute_plan_with(catalog, plan, &opts)?;
    r.profile = Some(collector.build("query"));
    Ok(r)
}

/// Materialize a base-table scan: zero-copy clone/projection plus the
/// `rows_scanned` accounting. `scanned` is bumped by the full table row
/// count *before* any filter runs, identically on the serial and
/// parallel paths.
fn scan_table(
    catalog: &Catalog,
    table: &str,
    projection: &Option<Vec<String>>,
    scanned: &mut usize,
    opts: &ExecOptions,
) -> Result<Table> {
    let t = catalog.get(table)?;
    *scanned += t.row_count();
    // Rows are charged at scan admission, before any filter runs; the
    // scan itself is zero-copy and charges no memory.
    opts.charge_rows(t.row_count())?;
    match projection {
        None => Ok((*t).clone()),
        Some(cols) => {
            // The optimizer prunes without schema knowledge, so a
            // join plan lists both tables' columns at each scan;
            // keep only the ones this table actually has. Truly
            // unknown names surface later as UnknownColumn when
            // an expression references them.
            let names: Vec<&str> = cols
                .iter()
                .map(String::as_str)
                .filter(|n| t.schema().index_of(n).is_some())
                .collect();
            if names.is_empty() {
                Ok((*t).clone())
            } else {
                Ok(t.project(&names)?)
            }
        }
    }
}

/// Dotted span name for a plan node (DESIGN.md §12 taxonomy).
fn plan_node_name(plan: &LogicalPlan) -> &'static str {
    match plan {
        LogicalPlan::Scan { .. } => "plan.scan",
        LogicalPlan::EmptyScan { .. } => "plan.scan.empty",
        LogicalPlan::Join { .. } => "plan.join",
        LogicalPlan::Filter { .. } => "plan.filter",
        LogicalPlan::Aggregate { .. } => "plan.aggregate",
        LogicalPlan::Project { .. } => "plan.project",
        LogicalPlan::Sort { .. } => "plan.sort",
        LogicalPlan::Distinct { .. } => "plan.distinct",
        LogicalPlan::Limit { .. } => "plan.limit",
    }
}

/// Execute one plan node, wrapped in a profile span when a sink is set.
/// The span's child context becomes the options' profile for everything
/// the node does — recursive input execution, morsel leaves, zone
/// points — so the profile tree mirrors the plan tree.
fn exec(
    catalog: &Catalog,
    plan: &LogicalPlan,
    scanned: &mut usize,
    opts: &ExecOptions,
) -> Result<Table> {
    let Some(ctx) = &opts.profile else {
        return exec_node(catalog, plan, scanned, opts);
    };
    let mut span = ctx.span(plan_node_name(plan));
    let child = ExecOptions { profile: Some(span.child()), ..opts.clone() };
    let r = exec_node(catalog, plan, scanned, &child);
    match &r {
        Ok(t) => span.field("rows_out", t.row_count() as u64),
        Err(e) => span.field("error", e.to_string()),
    }
    r
}

fn exec_node(
    catalog: &Catalog,
    plan: &LogicalPlan,
    scanned: &mut usize,
    opts: &ExecOptions,
) -> Result<Table> {
    match plan {
        LogicalPlan::Scan { table, projection } => {
            scan_table(catalog, table, projection, scanned, opts)
        }
        LogicalPlan::EmptyScan { table, projection } => {
            // Statically empty (`LIMIT 0` elision): resolve the schema
            // like a scan, but touch zero rows and charge nothing.
            let t = catalog.get(table)?;
            let t = match projection {
                None => (*t).clone(),
                Some(cols) => {
                    let names: Vec<&str> = cols
                        .iter()
                        .map(String::as_str)
                        .filter(|n| t.schema().index_of(n).is_some())
                        .collect();
                    if names.is_empty() { (*t).clone() } else { t.project(&names)? }
                }
            };
            Ok(t.take(&[])?)
        }
        LogicalPlan::Join { left, right, left_col, right_col } => {
            let lt = exec(catalog, left, scanned, opts)?;
            let rt = exec(catalog, right, scanned, opts)?;
            hash_join(&lt, &rt, left_col, right_col, opts)
        }
        LogicalPlan::Filter { input, predicate } => {
            let t = exec(catalog, input, scanned, opts)?;
            let predicate = normalize_expr(predicate, t.schema())?;
            parallel_filter(&t, &predicate, opts)
        }
        LogicalPlan::Aggregate { input, group_by, aggs } => {
            // Pipeline shape Aggregate(Filter?(Scan)): fuse the filter
            // into the per-morsel aggregation instead of materializing
            // the filtered table.
            if let Some((table, projection, predicate)) = scan_pipeline(input) {
                let t = scan_table(catalog, table, projection, scanned, opts)?;
                let predicate =
                    predicate.map(|p| normalize_expr(p, t.schema())).transpose()?;
                return aggregate_pipeline(&t, predicate.as_ref(), group_by, aggs, opts);
            }
            let t = exec(catalog, input, scanned, opts)?;
            aggregate(&t, group_by, aggs)
        }
        LogicalPlan::Project { input, exprs, star } => {
            let t = exec(catalog, input, scanned, opts)?;
            let mut fields = Vec::new();
            let mut cols = Vec::new();
            if *star {
                for (f, c) in t.schema().fields().iter().zip(t.columns()) {
                    fields.push(f.clone());
                    cols.push(c.clone());
                }
            }
            for (e, name) in exprs {
                let e = normalize_expr(e, t.schema())?;
                let col = parallel_eval_batch(&e, &t, opts)?;
                fields.push(Field::nullable(name.clone(), col.data_type()));
                cols.push(col);
            }
            Ok(Table::new("result", Schema::new(fields), cols)?)
        }
        LogicalPlan::Sort { input, keys } => {
            let t = exec(catalog, input, scanned, opts)?;
            // Sorting gathers every input row into a fresh table.
            charge_take(opts, &t, t.row_count())?;
            sort(&t, keys)
        }
        LogicalPlan::Distinct { input } => {
            let t = exec(catalog, input, scanned, opts)?;
            let mut seen: std::collections::HashSet<Vec<KeyPart>> =
                std::collections::HashSet::new();
            let mut keep = Vec::new();
            for row in 0..t.row_count() {
                let key: Vec<KeyPart> = t
                    .row(row)?
                    .iter()
                    .map(KeyPart::from_value)
                    .collect();
                if seen.insert(key) {
                    keep.push(row);
                }
            }
            charge_take(opts, &t, keep.len())?;
            Ok(t.take(&keep)?)
        }
        LogicalPlan::Limit { input, n } => {
            let t = exec(catalog, input, scanned, opts)?;
            let keep: Vec<usize> = (0..t.row_count().min(*n)).collect();
            charge_take(opts, &t, keep.len())?;
            Ok(t.take(&keep)?)
        }
    }
}

/// Heap bytes a column holds (fixed-width types exactly; strings by
/// content length plus the per-`String` header).
fn column_bytes(c: &Column) -> usize {
    match c {
        Column::Int64 { data, .. } => data.len() * 8,
        Column::Float64 { data, .. } => data.len() * 8,
        Column::Bool { data, .. } => data.len().div_ceil(8),
        Column::Str { data, .. } => data
            .iter()
            .map(|s| s.len() + std::mem::size_of::<String>())
            .sum(),
    }
}

/// Charge a pending `take(rows)` materialization of `t` against the
/// memory budget *before* allocating it, using `t`'s average row width.
/// Conservative by construction: the estimate is what the output will
/// actually occupy for fixed-width columns, and the content average for
/// strings.
fn charge_take(opts: &ExecOptions, t: &Table, rows: usize) -> Result<()> {
    if opts.governor.is_none() || rows == 0 || t.row_count() == 0 {
        return Ok(());
    }
    let table_bytes: usize = t.columns().iter().map(column_bytes).sum();
    opts.charge_memory(table_bytes / t.row_count() * rows)
}

/// A recognized morselizable pipeline tail: `(table, projection,
/// predicate)`.
type ScanPipeline<'p> = (&'p str, &'p Option<Vec<String>>, Option<&'p ScalarExpr>);

/// Recognize a morselizable pipeline tail: a bare `Scan`, or
/// `Filter(Scan)`.
fn scan_pipeline(plan: &LogicalPlan) -> Option<ScanPipeline<'_>> {
    match plan {
        LogicalPlan::Scan { table, projection } => Some((table, projection, None)),
        LogicalPlan::Filter { input, predicate } => match &**input {
            LogicalPlan::Scan { table, projection } => {
                Some((table, projection, Some(predicate)))
            }
            _ => None,
        },
        _ => None,
    }
}

/// Record one pruning-decision leaf per zone-aligned chunk, attributed
/// to the synopsis tier that decided it (`skip_zonemap` = write-time
/// data zones, `skip_model` = model-derived bounds, `accept_all` =
/// constant-zone compressed-domain acceptance). Leaves index by chunk
/// offset, so sibling order is worker-schedule-independent.
fn profile_zones(ctx: Option<&ProfileContext>, chunks: &[(usize, usize, ZoneDecision)]) {
    let Some(ctx) = ctx else { return };
    for &(o, l, d) in chunks {
        let decision = match d {
            ZoneDecision::Skip(ZoneSource::Data) => "skip_zonemap",
            ZoneDecision::Skip(ZoneSource::Model) => "skip_model",
            ZoneDecision::AcceptAll => "accept_all",
            ZoneDecision::Eval => "eval",
        };
        ctx.leaf("zone", o as u64, fields![rows = l, decision]);
    }
}

/// Morsel-parallel filter: each worker evaluates the predicate mask on
/// a zero-copy slice and reports offset-adjusted global row indices;
/// concatenating them in morsel order reproduces the serial selection
/// exactly, and a single `take` materializes the output.
///
/// When the input table carries a synopsis and the predicate has
/// sargable conjuncts, each worker first splits its morsel into
/// zone-aligned chunks: refuted zones are skipped without touching a
/// value, constant zones that satisfy the whole predicate accept every
/// row without evaluation, and only inconclusive chunks fall through to
/// per-row `eval_mask`. Pruning never changes the kept row set (skipped
/// zones provably hold no TRUE rows), so output is bit-identical to the
/// unpruned path.
fn parallel_filter(t: &Table, predicate: &ScalarExpr, opts: &ExecOptions) -> Result<Table> {
    let pruner = if opts.pruning { PruningPredicate::extract(predicate) } else { None };
    let conjuncts = predicate.conjuncts();
    let locals = match (&pruner, t.synopsis()) {
        (Some(pruner), Some(synopsis)) => {
            parallel_morsels(t.row_count(), opts, |offset, len| {
                let mut stats = ScanStats::default();
                let chunks =
                    pruner.plan_range(synopsis, pruner.grid(synopsis), offset, len, &mut stats);
                profile_zones(opts.profile.as_ref(), &chunks);
                let mut keep = Vec::new();
                for (o, l, d) in chunks {
                    match d {
                        ZoneDecision::Skip(_) => {}
                        ZoneDecision::AcceptAll => keep.extend(o..o + l),
                        ZoneDecision::Eval => {
                            let m = t.slice(o, l)?;
                            let mask = eval_conjuncts_mask(&conjuncts, &m)?;
                            keep.extend(
                                mask.selected_indices().into_iter().map(|i| o + i),
                            );
                        }
                    }
                }
                if let Some(c) = &opts.stats {
                    c.add(&stats);
                }
                Ok(keep)
            })?
        }
        _ => parallel_morsels(t.row_count(), opts, |offset, len| {
            let m = t.slice(offset, len)?;
            let mask = eval_conjuncts_mask(&conjuncts, &m)?;
            Ok(mask
                .selected_indices()
                .into_iter()
                .map(|i| offset + i)
                .collect::<Vec<usize>>())
        })?,
    };
    let keep: Vec<usize> = locals.concat();
    charge_take(opts, t, keep.len())?;
    Ok(t.take(&keep)?)
}

/// Evaluate AND-connected conjuncts left to right, short-circuiting
/// once no row can still pass. The fold reproduces
/// `predicate.eval_mask` bit for bit: `PredMask::and` is Kleene AND,
/// which is associative, and once the running truth mask is empty the
/// final truth mask is empty no matter what the remaining conjuncts
/// say — and only truth bits select rows. The planner orders the
/// conjuncts most-selective-first so this early-out fires often.
fn eval_conjuncts_mask(conjuncts: &[&ScalarExpr], m: &Table) -> Result<PredMask> {
    let (first, rest) = conjuncts.split_first().expect("predicate has >= 1 conjunct");
    let mut mask = first.eval_mask(m)?;
    for c in rest {
        if mask.selected_count() == 0 {
            break;
        }
        mask = mask.and(&c.eval_mask(m)?);
    }
    Ok(mask)
}

/// Morsel-parallel projection: evaluate the expression per morsel and
/// stitch the partial columns back together in morsel order. Falls back
/// to a single whole-table evaluation when there is only one morsel.
fn parallel_eval_batch(e: &ScalarExpr, t: &Table, opts: &ExecOptions) -> Result<Column> {
    if morsel_ranges(t.row_count(), opts.morsel_rows).len() <= 1 {
        let col = e.eval_batch(t)?;
        opts.charge_memory(column_bytes(&col))?;
        return Ok(col);
    }
    let parts = parallel_morsels(t.row_count(), opts, |offset, len| {
        let m = t.slice(offset, len)?;
        let col = e.eval_batch(&m)?;
        // Projection output is materialized per morsel, so memory is
        // charged incrementally — an over-budget projection stops
        // mid-query instead of after the full column exists.
        opts.charge_memory(column_bytes(&col))?;
        Ok(col)
    })?;
    let mut parts = parts.into_iter();
    let Some(mut out) = parts.next() else {
        // Unreachable given the single-morsel guard above, but a
        // whole-table evaluation is the correct degenerate answer.
        return e.eval_batch(t);
    };
    for p in parts {
        out.append(&p)?;
    }
    Ok(out)
}

/// Resolve possibly-qualified column names against a schema: exact
/// match first, then `qualifier.name` → `name`, then `name` → any
/// single `x.name`.
pub(crate) fn normalize_name(schema: &Schema, name: &str) -> Result<String> {
    if schema.index_of(name).is_some() {
        return Ok(name.to_string());
    }
    if let Some((_, plain)) = name.split_once('.') {
        if schema.index_of(plain).is_some() {
            return Ok(plain.to_string());
        }
    }
    let suffix = format!(".{name}");
    let matches: Vec<&str> = schema
        .names()
        .into_iter()
        .filter(|n| n.ends_with(&suffix))
        .collect();
    match matches.as_slice() {
        [one] => Ok(one.to_string()),
        _ => Err(QueryError::UnknownColumn { name: name.to_string() }),
    }
}

pub(crate) fn normalize_expr(expr: &ScalarExpr, schema: &Schema) -> Result<ScalarExpr> {
    Ok(match expr {
        ScalarExpr::Column(c) => ScalarExpr::Column(normalize_name(schema, c)?),
        ScalarExpr::Number(_) | ScalarExpr::Str(_) => expr.clone(),
        ScalarExpr::Neg(a) => ScalarExpr::Neg(Box::new(normalize_expr(a, schema)?)),
        ScalarExpr::Not(a) => ScalarExpr::Not(Box::new(normalize_expr(a, schema)?)),
        ScalarExpr::Arith(op, a, b) => ScalarExpr::Arith(
            *op,
            Box::new(normalize_expr(a, schema)?),
            Box::new(normalize_expr(b, schema)?),
        ),
        ScalarExpr::Cmp(op, a, b) => ScalarExpr::Cmp(
            *op,
            Box::new(normalize_expr(a, schema)?),
            Box::new(normalize_expr(b, schema)?),
        ),
        ScalarExpr::And(a, b) => ScalarExpr::And(
            Box::new(normalize_expr(a, schema)?),
            Box::new(normalize_expr(b, schema)?),
        ),
        ScalarExpr::Or(a, b) => ScalarExpr::Or(
            Box::new(normalize_expr(a, schema)?),
            Box::new(normalize_expr(b, schema)?),
        ),
    })
}

// ------------------------------------------------------------- hashing

/// Hashable, comparable rendering of a group/join key value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) enum KeyPart {
    Null,
    Int(i64),
    /// Floats keyed by bit pattern (NaN groups with NaN; −0.0 ≠ 0.0 is
    /// acceptable for grouping).
    Float(u64),
    Str(String),
    Bool(bool),
}

impl KeyPart {
    pub(crate) fn from_value(v: &Value) -> KeyPart {
        match v {
            Value::Null => KeyPart::Null,
            Value::Int(i) => KeyPart::Int(*i),
            // Integral floats join/group with equal ints.
            Value::Float(f) if f.fract() == 0.0 && f.is_finite() && f.abs() < 9.0e18 => {
                KeyPart::Int(*f as i64)
            }
            Value::Float(f) => KeyPart::Float(f.to_bits()),
            Value::Str(s) => KeyPart::Str(s.clone()),
            Value::Bool(b) => KeyPart::Bool(*b),
        }
    }
}

fn hash_join(
    left: &Table,
    right: &Table,
    left_col: &str,
    right_col: &str,
    opts: &ExecOptions,
) -> Result<Table> {
    let lkey = normalize_name(left.schema(), left_col)
        .or_else(|_| normalize_name(right.schema(), left_col))?;
    let rkey = normalize_name(right.schema(), right_col)
        .or_else(|_| normalize_name(left.schema(), right_col))?;
    // Allow the user to write the join condition in either order.
    let (lkey, rkey) = if left.schema().index_of(&lkey).is_some() {
        (lkey, rkey)
    } else {
        (rkey, lkey)
    };
    let lcol = left.column(&lkey)?;
    let rcol = right.column(&rkey)?;

    // Build on the right side.
    let mut build: HashMap<KeyPart, Vec<usize>> = HashMap::new();
    for i in 0..right.row_count() {
        let v = rcol.value(i)?;
        if v.is_null() {
            continue; // NULL never joins
        }
        build.entry(KeyPart::from_value(&v)).or_default().push(i);
    }
    let mut lidx = Vec::new();
    let mut ridx = Vec::new();
    for i in 0..left.row_count() {
        let v = lcol.value(i)?;
        if v.is_null() {
            continue;
        }
        if let Some(rows) = build.get(&KeyPart::from_value(&v)) {
            for &r in rows {
                lidx.push(i);
                ridx.push(r);
            }
        }
    }

    // Join output is fully materialized (both sides gathered), so the
    // whole fan-out is charged before the gather allocates it.
    charge_take(opts, left, lidx.len())?;
    charge_take(opts, right, ridx.len())?;
    let lt = left.take(&lidx)?;
    let rt = right.take(&ridx)?;
    let mut fields = Vec::new();
    let mut cols = Vec::new();
    for (f, c) in lt.schema().fields().iter().zip(lt.columns()) {
        fields.push(f.clone());
        cols.push(c.clone());
    }
    for (f, c) in rt.schema().fields().iter().zip(rt.columns()) {
        let clash = lt.schema().index_of(&f.name).is_some();
        let name = if clash {
            format!("{}.{}", right.name(), f.name)
        } else {
            f.name.clone()
        };
        fields.push(Field { name, data_type: f.data_type, nullable: f.nullable });
        cols.push(c.clone());
    }
    Ok(Table::new("result", Schema::new(fields), cols)?)
}

// ----------------------------------------------------------- aggregate

#[derive(Debug, Clone)]
pub(crate) struct Accumulator {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    min_str: Option<String>,
    max_str: Option<String>,
}

impl Accumulator {
    pub(crate) fn new() -> Accumulator {
        Accumulator {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            min_str: None,
            max_str: None,
        }
    }

    fn add_num(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    fn add_str(&mut self, s: &str) {
        self.count += 1;
        if self.min_str.as_deref().is_none_or(|m| s < m) {
            self.min_str = Some(s.to_string());
        }
        if self.max_str.as_deref().is_none_or(|m| s > m) {
            self.max_str = Some(s.to_string());
        }
    }

    /// Combine with the accumulator of a later, disjoint row range.
    /// Merging per-morsel partials in morsel order reproduces the exact
    /// floating-point sum the single-threaded morselized pass computes.
    pub(crate) fn merge(&mut self, other: &Accumulator) {
        self.count += other.count;
        self.sum += other.sum;
        if other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
        if let Some(s) = &other.min_str {
            if self.min_str.as_deref().is_none_or(|m| s.as_str() < m) {
                self.min_str = Some(s.clone());
            }
        }
        if let Some(s) = &other.max_str {
            if self.max_str.as_deref().is_none_or(|m| s.as_str() > m) {
                self.max_str = Some(s.clone());
            }
        }
    }

    pub(crate) fn finish(&self, func: AggFunc) -> Value {
        match func {
            AggFunc::Count => Value::Int(self.count as i64),
            AggFunc::Sum => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum)
                }
            }
            AggFunc::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum / self.count as f64)
                }
            }
            AggFunc::Min => match &self.min_str {
                Some(s) => Value::Str(s.clone()),
                None if self.count > 0 => Value::Float(self.min),
                None => Value::Null,
            },
            AggFunc::Max => match &self.max_str {
                Some(s) => Value::Str(s.clone()),
                None if self.count > 0 => Value::Float(self.max),
                None => Value::Null,
            },
        }
    }
}

/// Aggregate argument plan: what to evaluate per morsel. Strings go
/// through the Value path (for MIN/MAX on strings).
pub(crate) enum AggArg {
    Star,
    Numeric(ScalarExpr),
    Strings(String),
}

/// Per-morsel evaluated argument data.
enum ArgData {
    Star,
    Numeric(Vec<Option<f64>>),
    Strings(Vec<Option<String>>),
}

/// Resolve aggregate argument expressions against the input schema and
/// reject invalid shapes (e.g. SUM over strings) before any morsel runs.
pub(crate) fn prepare_agg_args(t: &Table, aggs: &[AggSpec]) -> Result<Vec<AggArg>> {
    let mut args = Vec::with_capacity(aggs.len());
    for a in aggs {
        match &a.arg {
            None => args.push(AggArg::Star),
            Some(e) => {
                let e = normalize_expr(e, t.schema())?;
                // String column? Only a bare column can be stringy here.
                let stringy = matches!(
                    &e,
                    ScalarExpr::Column(c)
                        if t.column(c).map(|col| col.data_type() == DataType::Str).unwrap_or(false)
                );
                if stringy {
                    if !matches!(a.func, AggFunc::Min | AggFunc::Max | AggFunc::Count) {
                        return Err(QueryError::InvalidAggregate {
                            reason: format!("{} over a string column", a.func.name()),
                        });
                    }
                    let ScalarExpr::Column(c) = e else { unreachable!() };
                    args.push(AggArg::Strings(c));
                } else {
                    args.push(AggArg::Numeric(e));
                }
            }
        }
    }
    Ok(args)
}

/// Partial aggregation state of one morsel: groups in first-encounter
/// order, each with the global row index of its first row and one
/// accumulator per aggregate.
#[derive(Debug)]
pub(crate) struct GroupPartial {
    pub(crate) keys: Vec<Vec<KeyPart>>,
    pub(crate) first_rows: Vec<usize>,
    pub(crate) accs: Vec<Vec<Accumulator>>,
}

// ------------------------------------------------- aggregate pushdown

/// Zone-synopsis aggregate pushdown plan for one eligible query.
///
/// Eligible shapes are global (no GROUP BY) aggregates whose every
/// argument is `*` or a bare Int64/Float64 column carrying exact data
/// zones. For those, the pipeline switches to the *zone-unit grammar*:
/// each morsel splits at the `grid` into units, every unit folds into a
/// fresh accumulator, and unit partials merge in unit order (then
/// morsel order). Because the grammar is a function of the query and
/// the table — never of [`ExecOptions`] — the pruned and unpruned runs
/// produce the same partial structure, and a unit partial taken from
/// the materialized zone synopsis (built by the identical row-order
/// fold) substitutes bit-for-bit for the scanned one.
struct AggPushdown<'t> {
    /// Unit granularity: the finest `zone_rows` among the argument
    /// columns and the pruning predicate's columns, so units line up
    /// with both the synopsis zones and the pruner's chunk grid.
    grid: usize,
    /// One entry per aggregate argument.
    specs: Vec<PushSpec<'t>>,
}

/// How one aggregate argument participates in pushdown.
enum PushSpec<'t> {
    /// `COUNT(*)`: the unit's row count is the partial.
    Star,
    /// Bare numeric column with exact data zones.
    Column { name: String, zones: &'t ColumnZones },
}

/// Decide pushdown eligibility and the unit grid. Must depend only on
/// the table and the query (see [`AggPushdown`]); `opts.pruning` in
/// particular must not influence the result.
fn plan_agg_pushdown<'t>(
    t: &'t Table,
    predicate: Option<&ScalarExpr>,
    group_by: &[String],
    args: &[AggArg],
) -> Option<AggPushdown<'t>> {
    if !group_by.is_empty() {
        return None;
    }
    let synopsis = t.synopsis()?;
    let mut specs = Vec::with_capacity(args.len());
    let mut grid: Option<usize> = None;
    for a in args {
        match a {
            AggArg::Star => specs.push(PushSpec::Star),
            AggArg::Numeric(ScalarExpr::Column(c)) => {
                let zones = synopsis.column(c)?;
                // Bool columns aggregate through the 0/1 coercion path,
                // which the fused numeric kernel does not speak.
                let numeric = t
                    .column(c)
                    .map(|col| {
                        matches!(col.data_type(), DataType::Int64 | DataType::Float64)
                    })
                    .unwrap_or(false);
                if zones.source != ZoneSource::Data || !numeric {
                    return None;
                }
                grid = Some(grid.map_or(zones.zone_rows, |g| g.min(zones.zone_rows)));
                specs.push(PushSpec::Column { name: c.clone(), zones });
            }
            _ => return None,
        }
    }
    // Fold in the pruning predicate's grid unconditionally — the
    // unpruned baseline must chunk exactly like the pruned run plans.
    let pred_grid = predicate
        .and_then(PruningPredicate::extract)
        .map(|p| p.grid(synopsis));
    let grid = [grid, pred_grid]
        .into_iter()
        .flatten()
        .min()
        .unwrap_or(lawsdb_storage::DEFAULT_ZONE_ROWS);
    Some(AggPushdown { grid, specs })
}

/// Plan-time view of pushdown eligibility: the unit grid the executor
/// would fold at, or `None` when the query shape is not eligible. The
/// physical planner uses this to price the zone-aggregate access path
/// against the row scan with the *same* eligibility rule the executor
/// applies, so EXPLAIN never advertises a path execution won't take.
pub(crate) fn agg_pushdown_grid(
    t: &Table,
    predicate: Option<&ScalarExpr>,
    group_by: &[String],
    aggs: &[AggSpec],
) -> Option<usize> {
    let args = prepare_agg_args(t, aggs).ok()?;
    plan_agg_pushdown(t, predicate, group_by, &args).map(|p| p.grid)
}

/// Split `[offset, offset + len)` at multiples of `grid`.
fn grid_units(offset: usize, len: usize, grid: usize) -> impl Iterator<Item = (usize, usize)> {
    let end = offset + len;
    let mut pos = offset;
    std::iter::from_fn(move || {
        if pos >= end {
            return None;
        }
        let unit_end = ((pos / grid + 1) * grid).min(end);
        let unit = (pos, unit_end - pos);
        pos = unit_end;
        Some(unit)
    })
}

impl AggPushdown<'_> {
    /// The unit's partial folded straight from the materialized zone
    /// synopses — zero page reads, zero per-row work — or `None` when
    /// some argument lacks a usable partial for this exact unit (unit
    /// clipped by a morsel boundary, `zone_rows` coarser than the grid,
    /// or a legacy entry without `agg`); the caller scans instead.
    ///
    /// Only correct for accepted units: every row passes the filter, so
    /// the scan this substitutes would have created the global group
    /// (units are non-empty) and folded exactly these values in row
    /// order. All-NULL/NaN zones carry `count == 0` and no sums; the
    /// accumulator stays at `sum = 0.0, min = +inf, max = -inf`,
    /// contributing nothing — exactly like the scan.
    fn zone_partial(&self, offset: usize, len: usize) -> Option<GroupPartial> {
        let mut accs = Vec::with_capacity(self.specs.len());
        for spec in &self.specs {
            let mut acc = Accumulator::new();
            match spec {
                PushSpec::Star => acc.count = len as u64,
                PushSpec::Column { zones, .. } => {
                    if !offset.is_multiple_of(zones.zone_rows) {
                        return None;
                    }
                    let e = zones.entries.get(offset / zones.zone_rows)?;
                    if e.rows as usize != len {
                        return None;
                    }
                    let a = e.agg.as_ref()?;
                    acc.count = a.count as u64;
                    acc.sum = a.sum_f64.unwrap_or(0.0);
                    acc.min = e.min;
                    acc.max = e.max;
                }
            }
            accs.push(acc);
        }
        Some(GroupPartial {
            keys: vec![Vec::new()],
            first_rows: vec![offset],
            accs: vec![accs],
        })
    }

    /// Scan one unit with the fused filter+aggregate kernel: evaluate
    /// the selection mask once, then a single pass per column through
    /// [`lawsdb_storage::NumericAggState`] — no intermediate
    /// `Option<f64>` materialization. Folds run in row order with
    /// keep-first min/max, so the partial is bit-identical to both the
    /// accumulator scan and the build-time zone fold.
    fn scan_unit(
        &self,
        t: &Table,
        offset: usize,
        len: usize,
        predicate: Option<&ScalarExpr>,
    ) -> Result<GroupPartial> {
        let m = t.slice(offset, len)?;
        let mask = predicate
            .map(|p| eval_conjuncts_mask(&p.conjuncts(), &m))
            .transpose()?;
        let sel = mask.as_ref().map(|pm| pm.truth());
        let (passing, first) = match sel {
            Some(b) => (b.count_set(), b.iter_set().next().unwrap_or(0)),
            None => (len, 0),
        };
        if passing == 0 {
            return Ok(GroupPartial {
                keys: Vec::new(),
                first_rows: Vec::new(),
                accs: Vec::new(),
            });
        }
        let mut accs = Vec::with_capacity(self.specs.len());
        for spec in &self.specs {
            let mut acc = Accumulator::new();
            match spec {
                PushSpec::Star => acc.count = passing as u64,
                PushSpec::Column { name, .. } => {
                    let s = m.column(name)?.numeric_agg(sel)?;
                    acc.count = s.count;
                    acc.sum = s.sum;
                    acc.min = s.min.unwrap_or(f64::INFINITY);
                    acc.max = s.max.unwrap_or(f64::NEG_INFINITY);
                }
            }
            accs.push(acc);
        }
        Ok(GroupPartial {
            keys: vec![Vec::new()],
            first_rows: vec![offset + first],
            accs: vec![accs],
        })
    }
}

/// Running group-and-accumulate state for one morsel. Zone pruning
/// feeds a morsel to [`Self::accumulate`] in several row-range chunks;
/// sharing the accumulators across chunks keeps every floating-point
/// add in the exact order a single unchunked pass would perform it, so
/// pruned aggregates stay bit-identical to the exhaustive scan.
struct MorselAccumulator<'a> {
    group_by: &'a [String],
    args: &'a [AggArg],
    n_aggs: usize,
    groups: HashMap<Vec<KeyPart>, usize>,
    part: GroupPartial,
}

impl<'a> MorselAccumulator<'a> {
    fn new(group_by: &'a [String], args: &'a [AggArg], n_aggs: usize) -> Self {
        MorselAccumulator {
            group_by,
            args,
            n_aggs,
            groups: HashMap::new(),
            part: GroupPartial { keys: Vec::new(), first_rows: Vec::new(), accs: Vec::new() },
        }
    }

    fn finish(self) -> GroupPartial {
        self.part
    }
}

/// Group-and-accumulate one morsel (`m` is the zero-copy slice starting
/// at global row `offset`). The optional predicate mask is fused in:
/// only known-TRUE rows feed the accumulators.
pub(crate) fn accumulate_morsel(
    m: &Table,
    offset: usize,
    predicate: Option<&ScalarExpr>,
    group_by: &[String],
    args: &[AggArg],
    n_aggs: usize,
) -> Result<GroupPartial> {
    let mut acc = MorselAccumulator::new(group_by, args, n_aggs);
    acc.accumulate(m, offset, predicate)?;
    Ok(acc.finish())
}

impl MorselAccumulator<'_> {
    fn accumulate(
        &mut self,
        m: &Table,
        offset: usize,
        predicate: Option<&ScalarExpr>,
    ) -> Result<()> {
        let (group_by, args, n_aggs) = (self.group_by, self.args, self.n_aggs);
        let mask = predicate.map(|p| eval_conjuncts_mask(&p.conjuncts(), m)).transpose()?;
    let mut arg_data = Vec::with_capacity(args.len());
    for a in args {
        arg_data.push(match a {
            AggArg::Star => ArgData::Star,
            AggArg::Numeric(e) => ArgData::Numeric(e.eval_numeric(m)?),
            AggArg::Strings(c) => {
                let col = m.column(c)?;
                let mut vals = Vec::with_capacity(m.row_count());
                for i in 0..m.row_count() {
                    vals.push(match col.value(i)? {
                        Value::Str(s) => Some(s),
                        _ => None,
                    });
                }
                ArgData::Strings(vals)
            }
        });
    }
    let key_cols: Vec<&Column> = group_by
        .iter()
        .map(|g| m.column(g))
        .collect::<lawsdb_storage::Result<_>>()?;
    let (groups, part) = (&mut self.groups, &mut self.part);
    let global = group_by.is_empty();
    for row in 0..m.row_count() {
        if let Some(mask) = &mask {
            if !mask.truth().get(row) {
                continue;
            }
        }
        // Global aggregates (no GROUP BY) have exactly one group; skip
        // the per-row key materialization and hash probe — this is the
        // hot path for `SELECT COUNT/SUM/AVG(..) FROM t WHERE ..`.
        let gid = if global {
            if part.accs.is_empty() {
                part.keys.push(Vec::new());
                part.first_rows.push(offset + row);
                part.accs.push(vec![Accumulator::new(); n_aggs]);
            }
            0
        } else {
            let key: Vec<KeyPart> = key_cols
                .iter()
                .map(|c| c.value(row).map(|v| KeyPart::from_value(&v)))
                .collect::<lawsdb_storage::Result<_>>()?;
            match groups.get(&key) {
                Some(&g) => g,
                None => {
                    let g = part.keys.len();
                    groups.insert(key.clone(), g);
                    part.keys.push(key);
                    part.first_rows.push(offset + row);
                    part.accs.push(vec![Accumulator::new(); n_aggs]);
                    g
                }
            }
        };
        for (ai, data) in arg_data.iter().enumerate() {
            match data {
                ArgData::Star => part.accs[gid][ai].count += 1,
                ArgData::Numeric(vals) => {
                    if let Some(v) = vals[row] {
                        part.accs[gid][ai].add_num(v);
                    }
                }
                ArgData::Strings(vals) => {
                    if let Some(s) = &vals[row] {
                        part.accs[gid][ai].add_str(s);
                    }
                }
            }
        }
    }
    Ok(())
    }
}

/// Fold per-morsel partials, in morsel order, into one global state.
/// First-encounter group order is preserved: morsel 0's groups come
/// first, exactly as a serial pass over the same rows would see them.
pub(crate) fn merge_partials(parts: Vec<GroupPartial>) -> GroupPartial {
    let mut groups: HashMap<Vec<KeyPart>, usize> = HashMap::new();
    let mut out = GroupPartial { keys: Vec::new(), first_rows: Vec::new(), accs: Vec::new() };
    for part in parts {
        for ((key, first), accs) in
            part.keys.into_iter().zip(part.first_rows).zip(part.accs)
        {
            match groups.get(&key) {
                Some(&g) => {
                    for (mine, theirs) in out.accs[g].iter_mut().zip(&accs) {
                        mine.merge(theirs);
                    }
                }
                None => {
                    groups.insert(key.clone(), out.keys.len());
                    out.keys.push(key);
                    out.first_rows.push(first);
                    out.accs.push(accs);
                }
            }
        }
    }
    out
}

/// Assemble the output table from merged group state: group key columns
/// (gathered from each group's first row) in declared order, then one
/// column per aggregate.
fn assemble_aggregate(
    t: &Table,
    group_by: &[String],
    aggs: &[AggSpec],
    mut part: GroupPartial,
) -> Result<Table> {
    // Global aggregate over an empty input still yields one row.
    if group_by.is_empty() && part.accs.is_empty() {
        part.first_rows.push(usize::MAX);
        part.accs.push(vec![Accumulator::new(); aggs.len()]);
    }
    let mut fields = Vec::new();
    let mut cols = Vec::new();
    for g in group_by {
        let src = t.column(g)?;
        fields.push(Field {
            name: g.clone(),
            data_type: src.data_type(),
            nullable: true,
        });
        cols.push(src.take(&part.first_rows)?);
    }
    for (ai, a) in aggs.iter().enumerate() {
        let values: Vec<Value> = part.accs.iter().map(|g| g[ai].finish(a.func)).collect();
        let col = column_from_values(&values);
        fields.push(Field::nullable(a.name.clone(), col.data_type()));
        cols.push(col);
    }
    Ok(Table::new("result", Schema::new(fields), cols)?)
}

/// Morsel-parallel aggregation over a scanned table, with an optional
/// fused filter predicate.
///
/// Two accumulation grammars, chosen by [`plan_agg_pushdown`] from the
/// query shape and the table alone (never from `opts`):
///
/// * **Zone-unit grammar** (pushdown-eligible global aggregates): each
///   morsel splits at the synopsis grid; every unit folds into a fresh
///   accumulator and unit partials merge in unit order, then morsel
///   order. Accepted units substitute their materialized [`ZoneAgg`]
///   partials (`zones_agg_synopsis` counts them — zero page reads,
///   zero per-row work); `Eval` units run the fused vectorized
///   filter+aggregate kernel ([`AggPushdown::scan_unit`]); skipped
///   zones contribute nothing. The unpruned baseline scans the same
///   units with the same kernel, so answers stay bit-identical at any
///   thread count, morsel size, or pruning setting.
/// * **Shared-accumulator grammar** (grouped or non-bare-column
///   aggregates): one accumulator per morsel shared across the
///   surviving chunks, exactly as before — skipped zones hold no
///   predicate-TRUE rows, accept-all zones accumulate without
///   evaluating the mask, and merge order keeps sums bit-identical to
///   the unpruned plan.
///
/// [`ZoneAgg`]: lawsdb_storage::zonemap::ZoneAgg
fn aggregate_pipeline(
    t: &Table,
    predicate: Option<&ScalarExpr>,
    group_by: &[String],
    aggs: &[AggSpec],
    opts: &ExecOptions,
) -> Result<Table> {
    let (group_by, parts) = aggregate_partials(t, predicate, group_by, aggs, opts)?;
    assemble_aggregate(t, &group_by, aggs, merge_partials(parts))
}

/// The pipeline body of [`aggregate_pipeline`], stopping before the
/// final merge: normalized GROUP BY names plus one [`GroupPartial`] per
/// morsel, in morsel order. The sharded scatter-gather coordinator
/// (`crate::partial`) runs this per shard and merges the partials in
/// global morsel order, which is what keeps cluster answers bit-identical
/// to the single-engine fold.
pub(crate) fn aggregate_partials(
    t: &Table,
    predicate: Option<&ScalarExpr>,
    group_by: &[String],
    aggs: &[AggSpec],
    opts: &ExecOptions,
) -> Result<(Vec<String>, Vec<GroupPartial>)> {
    let group_by: Vec<String> = group_by
        .iter()
        .map(|g| normalize_name(t.schema(), g))
        .collect::<Result<_>>()?;
    let args = prepare_agg_args(t, aggs)?;
    let push = plan_agg_pushdown(t, predicate, &group_by, &args);
    let pruner = match (opts.pruning, predicate) {
        (true, Some(p)) => PruningPredicate::extract(p),
        _ => None,
    };
    let parts = match (&push, t.synopsis()) {
        (Some(push), Some(synopsis)) => {
            parallel_morsels(t.row_count(), opts, |offset, len| {
                let mut stats = ScanStats::default();
                let mut units: Vec<GroupPartial> = Vec::new();
                let accept = |o: usize,
                                  l: usize,
                                  stats: &mut ScanStats,
                                  units: &mut Vec<GroupPartial>|
                 -> Result<()> {
                    for (uo, ul) in grid_units(o, l, push.grid) {
                        match push.zone_partial(uo, ul) {
                            Some(p) => {
                                stats.zones_agg_synopsis += 1;
                                if let Some(ctx) = &opts.profile {
                                    ctx.leaf(
                                        "zone",
                                        uo as u64,
                                        fields![rows = ul, decision = "agg_synopsis"],
                                    );
                                }
                                units.push(p);
                            }
                            None => units.push(push.scan_unit(t, uo, ul, None)?),
                        }
                    }
                    Ok(())
                };
                match &pruner {
                    Some(pruner) => {
                        let chunks =
                            pruner.plan_range(synopsis, push.grid, offset, len, &mut stats);
                        profile_zones(opts.profile.as_ref(), &chunks);
                        for (o, l, d) in chunks {
                            match d {
                                ZoneDecision::Skip(_) => {}
                                ZoneDecision::AcceptAll => {
                                    accept(o, l, &mut stats, &mut units)?
                                }
                                ZoneDecision::Eval => {
                                    for (uo, ul) in grid_units(o, l, push.grid) {
                                        units.push(push.scan_unit(t, uo, ul, predicate)?);
                                    }
                                }
                            }
                        }
                    }
                    // No filter at all: every unit is trivially
                    // accepted — the aggregate answers from the
                    // synopsis without planning (or reading) any pages.
                    None if opts.pruning && predicate.is_none() => {
                        accept(offset, len, &mut stats, &mut units)?
                    }
                    // Unpruned baseline, or a filter with nothing
                    // sargable: scan every unit, same grammar.
                    None => {
                        for (uo, ul) in grid_units(offset, len, push.grid) {
                            units.push(push.scan_unit(t, uo, ul, predicate)?);
                        }
                    }
                }
                if let Some(c) = &opts.stats {
                    c.add(&stats);
                }
                Ok(merge_partials(units))
            })?
        }
        _ => match (&pruner, t.synopsis()) {
            (Some(pruner), Some(synopsis)) => {
                parallel_morsels(t.row_count(), opts, |offset, len| {
                    let mut stats = ScanStats::default();
                    let chunks = pruner.plan_range(
                        synopsis,
                        pruner.grid(synopsis),
                        offset,
                        len,
                        &mut stats,
                    );
                    profile_zones(opts.profile.as_ref(), &chunks);
                    // One shared accumulator for every surviving chunk,
                    // so the add order matches an unchunked pass over
                    // this morsel exactly (see [`MorselAccumulator`]).
                    let mut acc = MorselAccumulator::new(&group_by, &args, aggs.len());
                    for (o, l, d) in chunks {
                        let pred = match d {
                            ZoneDecision::Skip(_) => continue,
                            ZoneDecision::AcceptAll => None,
                            ZoneDecision::Eval => predicate,
                        };
                        acc.accumulate(&t.slice(o, l)?, o, pred)?;
                    }
                    if let Some(c) = &opts.stats {
                        c.add(&stats);
                    }
                    Ok(acc.finish())
                })?
            }
            _ => parallel_morsels(t.row_count(), opts, |offset, len| {
                let m = t.slice(offset, len)?;
                accumulate_morsel(&m, offset, predicate, &group_by, &args, aggs.len())
            })?,
        },
    };
    Ok((group_by, parts))
}

/// Aggregate an already-materialized input table (non-pipeline shapes:
/// joins, nested aggregates, ...). One morsel covering the whole table,
/// so this is the plain serial pass.
fn aggregate(t: &Table, group_by: &[String], aggs: &[AggSpec]) -> Result<Table> {
    aggregate_pipeline(
        t,
        None,
        group_by,
        aggs,
        &ExecOptions { threads: 1, morsel_rows: usize::MAX, ..ExecOptions::default() },
    )
}

/// Build a column from dynamic values, inferring the narrowest type.
pub fn column_from_values(values: &[Value]) -> Column {
    let mut saw_float = false;
    let mut saw_int = false;
    let mut saw_str = false;
    let mut saw_bool = false;
    for v in values {
        match v {
            Value::Float(_) => saw_float = true,
            Value::Int(_) => saw_int = true,
            Value::Str(_) => saw_str = true,
            Value::Bool(_) => saw_bool = true,
            Value::Null => {}
        }
    }
    if saw_str {
        let data: Vec<String> = values
            .iter()
            .map(|v| v.as_str().unwrap_or("").to_string())
            .collect();
        let mut col = Column::from_str(data);
        mark_nulls(&mut col, values);
        col
    } else if saw_float {
        let mut col =
            Column::from_f64_opt(values.iter().map(|v| v.as_f64()).collect());
        mark_nulls(&mut col, values);
        col
    } else if saw_int {
        Column::from_i64_opt(values.iter().map(|v| v.as_i64()).collect())
    } else if saw_bool {
        let data: Vec<bool> = values
            .iter()
            .map(|v| matches!(v, Value::Bool(true)))
            .collect();
        let mut col = Column::from_bool(&data);
        mark_nulls(&mut col, values);
        col
    } else {
        // All NULL.
        Column::from_f64_opt(vec![None; values.len()])
    }
}

pub(crate) fn mark_nulls(col: &mut Column, values: &[Value]) {
    let validity = match col {
        Column::Int64 { validity, .. }
        | Column::Float64 { validity, .. }
        | Column::Str { validity, .. }
        | Column::Bool { validity, .. } => validity,
    };
    for (i, v) in values.iter().enumerate() {
        if v.is_null() {
            validity.set(i, false);
        }
    }
}

// ---------------------------------------------------------------- sort

pub(crate) fn sort(t: &Table, keys: &[OrderBy]) -> Result<Table> {
    let mut resolved = Vec::with_capacity(keys.len());
    for k in keys {
        resolved.push((normalize_name(t.schema(), &k.column)?, k.desc));
    }
    let mut idx: Vec<usize> = (0..t.row_count()).collect();
    // Pre-fetch key values per row to avoid re-reading during comparison.
    let mut key_vals: Vec<Vec<Value>> = Vec::with_capacity(resolved.len());
    for (name, _) in &resolved {
        let col = t.column(name)?;
        let mut vals = Vec::with_capacity(t.row_count());
        for i in 0..t.row_count() {
            vals.push(col.value(i)?);
        }
        key_vals.push(vals);
    }
    idx.sort_by(|&a, &b| {
        for (ki, (_, desc)) in resolved.iter().enumerate() {
            let va = &key_vals[ki][a];
            let vb = &key_vals[ki][b];
            let ord = match (va.is_null(), vb.is_null()) {
                (true, true) => std::cmp::Ordering::Equal,
                // NULLs sort last regardless of direction.
                (true, false) => return std::cmp::Ordering::Greater,
                (false, true) => return std::cmp::Ordering::Less,
                (false, false) => {
                    va.sql_cmp(vb).unwrap_or(std::cmp::Ordering::Equal)
                }
            };
            let ord = if *desc { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(t.take(&idx)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lawsdb_storage::TableBuilder;

    fn catalog() -> Catalog {
        let c = Catalog::new();
        let mut b = TableBuilder::new("m");
        b.add_i64("source", vec![1, 1, 2, 2, 3]);
        b.add_f64("nu", vec![0.12, 0.15, 0.12, 0.15, 0.12]);
        b.add_f64_opt(
            "intensity",
            vec![Some(1.0), Some(2.0), Some(10.0), Some(20.0), None],
        );
        c.register(b.build().unwrap()).unwrap();

        let mut s = TableBuilder::new("sources");
        s.add_i64("id", vec![1, 2, 3]);
        s.add_str("kind", vec!["pulsar".into(), "quasar".into(), "star".into()]);
        c.register(s.build().unwrap()).unwrap();
        c
    }

    #[test]
    fn select_star() {
        let r = execute(&catalog(), "SELECT * FROM m").unwrap();
        assert_eq!(r.table.row_count(), 5);
        assert_eq!(r.table.schema().len(), 3);
        assert_eq!(r.rows_scanned, 5);
    }

    #[test]
    fn filter_with_nulls_drops_unknown() {
        let r = execute(&catalog(), "SELECT source FROM m WHERE intensity > 0").unwrap();
        // Row with NULL intensity is UNKNOWN → dropped.
        assert_eq!(r.table.row_count(), 4);
    }

    #[test]
    fn group_by_with_aggregates() {
        let r = execute(
            &catalog(),
            "SELECT source, COUNT(*) AS n, AVG(intensity) AS mean, SUM(intensity) AS tot, \
             MIN(intensity) AS lo, MAX(intensity) AS hi \
             FROM m GROUP BY source ORDER BY source",
        )
        .unwrap();
        assert_eq!(r.table.row_count(), 3);
        // Source 1: n=2, mean=1.5; source 3: count(*)=1 but all-NULL agg.
        assert_eq!(r.table.row(0).unwrap()[1], Value::Int(2));
        assert_eq!(r.table.row(0).unwrap()[2], Value::Float(1.5));
        assert_eq!(r.table.row(2).unwrap()[1], Value::Int(1));
        assert_eq!(r.table.row(2).unwrap()[2], Value::Null);
        assert_eq!(r.table.row(1).unwrap()[4], Value::Float(10.0));
        assert_eq!(r.table.row(1).unwrap()[5], Value::Float(20.0));
    }

    #[test]
    fn global_aggregate_on_empty_filter() {
        let r = execute(&catalog(), "SELECT COUNT(*) AS n, AVG(intensity) AS a FROM m WHERE source = 99")
            .unwrap();
        assert_eq!(r.table.row_count(), 1);
        assert_eq!(r.table.row(0).unwrap()[0], Value::Int(0));
        assert_eq!(r.table.row(0).unwrap()[1], Value::Null);
    }

    #[test]
    fn count_ignores_nulls_count_star_does_not() {
        let r = execute(
            &catalog(),
            "SELECT COUNT(*) AS all_rows, COUNT(intensity) AS with_i FROM m",
        )
        .unwrap();
        assert_eq!(r.table.row(0).unwrap()[0], Value::Int(5));
        assert_eq!(r.table.row(0).unwrap()[1], Value::Int(4));
    }

    #[test]
    fn order_by_desc_with_nulls_last() {
        let r = execute(&catalog(), "SELECT intensity FROM m ORDER BY intensity DESC").unwrap();
        let rows: Vec<Value> = (0..5).map(|i| r.table.row(i).unwrap()[0].clone()).collect();
        assert_eq!(
            rows,
            vec![
                Value::Float(20.0),
                Value::Float(10.0),
                Value::Float(2.0),
                Value::Float(1.0),
                Value::Null
            ]
        );
    }

    #[test]
    fn limit_caps_rows() {
        let r = execute(&catalog(), "SELECT * FROM m LIMIT 2").unwrap();
        assert_eq!(r.table.row_count(), 2);
        let r = execute(&catalog(), "SELECT * FROM m LIMIT 0").unwrap();
        assert_eq!(r.table.row_count(), 0);
    }

    #[test]
    fn limit_zero_elision_agrees_with_unoptimized_execution_and_scans_nothing() {
        let c = catalog();
        for sql in [
            "SELECT * FROM m LIMIT 0",
            "SELECT intensity FROM m WHERE source = 1 LIMIT 0",
            "SELECT COUNT(*) FROM m LIMIT 0",
            "SELECT source, AVG(intensity) FROM m GROUP BY source ORDER BY source LIMIT 0",
        ] {
            let stmt = parse_select(sql).unwrap();
            let raw = LogicalPlan::from_statement(&stmt).unwrap();
            // Optimized path: EmptyScan, zero IO.
            let opt = execute_with(&c, sql, &ExecOptions::default()).unwrap();
            // Unoptimized path: full scan, limit drops everything.
            let mut scanned = 0usize;
            let base =
                exec(&c, &raw, &mut scanned, &ExecOptions::default()).unwrap();
            assert_eq!(opt.table.row_count(), 0, "{sql}");
            assert_eq!(base.row_count(), 0, "{sql}");
            assert_eq!(
                opt.table.schema().names(),
                base.schema().names(),
                "schema must survive elision: {sql}"
            );
            assert_eq!(opt.rows_scanned, 0, "elided plan must do zero IO: {sql}");
            assert_eq!(scanned, 5, "unoptimized plan scans the table: {sql}");
        }
    }

    #[test]
    fn projection_expressions_and_aliases() {
        let r = execute(&catalog(), "SELECT intensity * 2 AS dbl FROM m WHERE source = 1").unwrap();
        assert_eq!(r.table.schema().names(), vec!["dbl"]);
        assert_eq!(r.table.row(0).unwrap()[0], Value::Float(2.0));
    }

    #[test]
    fn join_matches_and_renames() {
        let r = execute(
            &catalog(),
            "SELECT source, kind, intensity FROM m JOIN sources ON source = id \
             WHERE intensity > 5 ORDER BY intensity",
        )
        .unwrap();
        assert_eq!(r.table.row_count(), 2);
        assert_eq!(r.table.row(0).unwrap()[1], Value::Str("quasar".to_string()));
    }

    #[test]
    fn join_with_qualified_columns() {
        let r = execute(
            &catalog(),
            "SELECT m.source, sources.kind FROM m JOIN sources ON m.source = sources.id LIMIT 1",
        )
        .unwrap();
        assert_eq!(r.table.row_count(), 1);
    }

    #[test]
    fn string_aggregates_min_max() {
        let r = execute(&catalog(), "SELECT MIN(kind) AS lo, MAX(kind) AS hi FROM sources").unwrap();
        assert_eq!(r.table.row(0).unwrap()[0], Value::Str("pulsar".to_string()));
        assert_eq!(r.table.row(0).unwrap()[1], Value::Str("star".to_string()));
    }

    #[test]
    fn sum_over_string_rejected() {
        assert!(matches!(
            execute(&catalog(), "SELECT SUM(kind) FROM sources"),
            Err(QueryError::InvalidAggregate { .. })
        ));
    }

    #[test]
    fn unknown_column_reported() {
        assert!(matches!(
            execute(&catalog(), "SELECT zz FROM m"),
            Err(QueryError::UnknownColumn { .. })
        ));
        assert!(matches!(
            execute(&catalog(), "SELECT source FROM m WHERE zz = 1"),
            Err(QueryError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn unknown_table_reported() {
        assert!(execute(&catalog(), "SELECT a FROM nope").is_err());
    }

    #[test]
    fn rows_scanned_counts_join_inputs() {
        let r = execute(&catalog(), "SELECT source FROM m JOIN sources ON source = id").unwrap();
        assert_eq!(r.rows_scanned, 5 + 3);
    }

    #[test]
    fn column_from_values_inference() {
        let c = column_from_values(&[Value::Int(1), Value::Null, Value::Int(3)]);
        assert_eq!(c.data_type(), DataType::Int64);
        assert_eq!(c.null_count(), 1);
        let c = column_from_values(&[Value::Int(1), Value::Float(2.5)]);
        assert_eq!(c.data_type(), DataType::Float64);
        let c = column_from_values(&[Value::Null, Value::Null]);
        assert_eq!(c.null_count(), 2);
    }

    #[test]
    fn filter_keeps_only_known_true_rows() {
        // A NULL comparison is UNKNOWN, and NOT(UNKNOWN) is still
        // UNKNOWN: the NULL-intensity row satisfies neither the filter
        // nor its negation.
        let c = catalog();
        let pos = execute(&c, "SELECT source FROM m WHERE intensity > 5").unwrap();
        let neg = execute(&c, "SELECT source FROM m WHERE NOT (intensity > 5)").unwrap();
        assert_eq!(pos.table.row_count(), 2);
        assert_eq!(neg.table.row_count(), 2);
        assert_eq!(pos.table.row_count() + neg.table.row_count(), 4, "NULL row in neither");
    }

    #[test]
    fn rows_scanned_identical_serial_vs_parallel() {
        let c = catalog();
        let serial = ExecOptions { threads: 1, morsel_rows: 2, ..ExecOptions::default() };
        let parallel = ExecOptions { threads: 4, morsel_rows: 2, ..ExecOptions::default() };
        for sql in [
            "SELECT * FROM m",
            "SELECT source FROM m WHERE intensity > 5",
            "SELECT source, COUNT(*) AS n, SUM(intensity) AS s FROM m GROUP BY source",
            "SELECT AVG(intensity) AS a FROM m WHERE nu = 0.12",
            "SELECT source, kind FROM m JOIN sources ON source = id",
        ] {
            let a = execute_with(&c, sql, &serial).unwrap();
            let b = execute_with(&c, sql, &parallel).unwrap();
            assert_eq!(a.rows_scanned, b.rows_scanned, "{sql}");
            assert_eq!(a.table.row_count(), b.table.row_count(), "{sql}");
            for i in 0..a.table.row_count() {
                assert_eq!(a.table.row(i).unwrap(), b.table.row(i).unwrap(), "{sql} row {i}");
            }
        }
    }

    #[test]
    fn scan_shares_column_buffers_with_the_base_table() {
        // The acceptance bar for the zero-copy data plane: scanning
        // must hand out views of the stored buffers, never an O(N)
        // value copy.
        let c = catalog();
        let base = c.get("m").unwrap();
        let base_ptr = base.column("nu").unwrap().f64_data().unwrap().as_ptr();
        let r = execute(&c, "SELECT * FROM m").unwrap();
        let out_ptr = r.table.column("nu").unwrap().f64_data().unwrap().as_ptr();
        assert_eq!(base_ptr, out_ptr, "scan must not deep-copy column values");
    }

    #[test]
    fn group_by_float_column_groups_by_value() {
        let r = execute(
            &catalog(),
            "SELECT nu, COUNT(*) AS n FROM m GROUP BY nu ORDER BY nu",
        )
        .unwrap();
        assert_eq!(r.table.row_count(), 2);
        assert_eq!(r.table.row(0).unwrap()[1], Value::Int(3));
        assert_eq!(r.table.row(1).unwrap()[1], Value::Int(2));
    }
}

#[cfg(test)]
mod name_resolution_tests {
    use super::*;
    use lawsdb_storage::schema::{Field, Schema};

    #[test]
    fn ambiguous_suffix_is_rejected() {
        // Two qualified columns share the suffix `.k`: a bare `k` must
        // not silently pick one.
        let schema = Schema::new(vec![
            Field::new("t.k", DataType::Int64),
            Field::new("u.k", DataType::Int64),
        ]);
        assert!(matches!(
            normalize_name(&schema, "k"),
            Err(QueryError::UnknownColumn { .. })
        ));
        // Qualified references resolve exactly.
        assert_eq!(normalize_name(&schema, "t.k").unwrap(), "t.k");
    }

    #[test]
    fn qualifier_strips_to_plain_when_unique() {
        let schema = Schema::new(vec![Field::new("k", DataType::Int64)]);
        assert_eq!(normalize_name(&schema, "t.k").unwrap(), "k");
    }
}

#[cfg(test)]
mod distinct_tests {
    use super::*;
    use lawsdb_storage::TableBuilder;

    fn catalog() -> Catalog {
        let c = Catalog::new();
        let mut b = TableBuilder::new("t");
        b.add_i64("a", vec![1, 1, 2, 2, 2, 3]);
        b.add_str(
            "s",
            vec!["x".into(), "x".into(), "y".into(), "y".into(), "z".into(), "z".into()],
        );
        c.register(b.build().unwrap()).unwrap();
        c
    }

    #[test]
    fn distinct_single_column() {
        let r = execute(&catalog(), "SELECT DISTINCT a FROM t ORDER BY a").unwrap();
        assert_eq!(r.table.row_count(), 3);
        assert_eq!(r.table.column("a").unwrap().i64_data().unwrap(), &[1, 2, 3]);
    }

    #[test]
    fn distinct_multi_column_keeps_distinct_pairs() {
        let r = execute(&catalog(), "SELECT DISTINCT a, s FROM t ORDER BY a, s").unwrap();
        // Pairs: (1,x), (2,y), (2,z), (3,z).
        assert_eq!(r.table.row_count(), 4);
        assert_eq!(r.table.row(2).unwrap()[0], Value::Int(2));
        assert_eq!(r.table.row(2).unwrap()[1], Value::Str("z".to_string()));
    }

    #[test]
    fn distinct_star_dedups_full_rows() {
        let r = execute(&catalog(), "SELECT DISTINCT * FROM t").unwrap();
        assert_eq!(r.table.row_count(), 4);
    }

    #[test]
    fn distinct_respects_limit_after_dedup() {
        let r = execute(&catalog(), "SELECT DISTINCT a FROM t ORDER BY a DESC LIMIT 2").unwrap();
        assert_eq!(r.table.column("a").unwrap().i64_data().unwrap(), &[3, 2]);
    }

    #[test]
    fn non_distinct_unaffected() {
        let r = execute(&catalog(), "SELECT a FROM t").unwrap();
        assert_eq!(r.table.row_count(), 6);
    }
}

#[cfg(test)]
mod pruning_exec_tests {
    use super::*;
    use crate::morsel::ExecOptions;
    use lawsdb_storage::zonemap::ColumnZones;
    use lawsdb_storage::TableBuilder;

    /// 512 rows in 8 zones of 64: `k` strictly increasing (disjoint
    /// zone ranges), `g` constant per zone, `v` with NULLs and a NaN.
    fn zoned_catalog() -> Catalog {
        let n = 512usize;
        let mut b = TableBuilder::new("z");
        b.add_i64("k", (0..n as i64).collect());
        b.add_i64("g", (0..n as i64).map(|i| i / 64).collect());
        b.add_f64_opt(
            "v",
            (0..n)
                .map(|i| match i % 7 {
                    0 => None,
                    1 => Some(f64::NAN),
                    _ => Some(i as f64 / 3.0),
                })
                .collect(),
        );
        let mut t = b.build().unwrap();
        t.rebuild_synopsis_with(64);
        let c = Catalog::new();
        c.register(t).unwrap();
        c
    }

    /// Rows rendered through Debug so NaN compares equal to NaN (the
    /// bit-identity the equivalence tests assert includes NaN cells).
    fn rows(sql: &str, opts: &ExecOptions, c: &Catalog) -> (QueryResult, Vec<String>) {
        let r = execute_with(c, sql, opts).unwrap();
        let rows = (0..r.table.row_count())
            .map(|i| format!("{:?}", r.table.row(i).unwrap()))
            .collect();
        (r, rows)
    }

    #[test]
    fn zonemap_pruning_skips_refuted_zones_and_matches_baseline() {
        let c = zoned_catalog();
        let sql = "SELECT k, v FROM z WHERE k < 64";
        let (pruned, got) = rows(sql, &ExecOptions::default(), &c);
        let (baseline, want) = rows(sql, &ExecOptions::unpruned(), &c);
        assert_eq!(got, want);
        assert_eq!(pruned.rows_scanned, baseline.rows_scanned);
        // k < 64 refutes zones 1..8 outright; zone 0 needs evaluation.
        assert_eq!(pruned.scan_stats.pages_total, 8);
        assert_eq!(pruned.scan_stats.pages_pruned_zonemap, 7);
        assert_eq!(baseline.scan_stats, ScanStats::default());
    }

    #[test]
    fn constant_zone_with_exact_predicate_accepts_wholesale() {
        let c = zoned_catalog();
        let sql = "SELECT k FROM z WHERE g = 3";
        let (pruned, got) = rows(sql, &ExecOptions::default(), &c);
        let (_, want) = rows(sql, &ExecOptions::unpruned(), &c);
        assert_eq!(got, want);
        assert_eq!(pruned.table.row_count(), 64);
        // Zone 3 is constant g=3 with no NULLs: accepted without
        // per-row evaluation; the other 7 zones are refuted.
        assert_eq!(pruned.scan_stats.pages_pruned_zonemap, 7);
        assert_eq!(pruned.scan_stats.pages_compressed_eval, 1);
    }

    #[test]
    fn model_zones_prune_and_are_attributed_to_the_model_tier() {
        let n = 256usize;
        let mut b = TableBuilder::new("mt");
        b.add_f64("x", (0..n).map(|i| i as f64).collect());
        b.add_f64("y", (0..n).map(|i| 2.0 * i as f64).collect());
        let mut t = b.build().unwrap();
        t.rebuild_synopsis_with(64);
        // Model y ≈ 2x with max |residual| 0.5 replaces y's data zones.
        let preds: Vec<f64> = (0..n).map(|i| 2.0 * i as f64).collect();
        let t = t.with_model_zones("y", ColumnZones::from_model_bounds(&preds, 0.5, 64)).unwrap();
        let c = Catalog::new();
        c.register(t).unwrap();

        let sql = "SELECT x FROM mt WHERE y > 1000";
        let (pruned, got) = rows(sql, &ExecOptions::default(), &c);
        let (_, want) = rows(sql, &ExecOptions::unpruned(), &c);
        assert_eq!(got, want);
        // max(y) = 510, so y > 1000 is refuted everywhere — by the
        // model bounds, since they replaced the data zones.
        assert!(got.is_empty());
        assert_eq!(pruned.scan_stats.pages_pruned_model, 4);
        assert_eq!(pruned.scan_stats.pages_pruned_zonemap, 0);
    }

    #[test]
    fn aggregates_prune_and_match_baseline_bit_for_bit() {
        let c = zoned_catalog();
        let sql = "SELECT COUNT(*) AS n, SUM(v) AS s, AVG(v) AS a, MIN(v) AS lo, \
                   MAX(v) AS hi FROM z WHERE k >= 128 AND k < 256";
        let (pruned, got) = rows(sql, &ExecOptions::default(), &c);
        let (_, want) = rows(sql, &ExecOptions::unpruned(), &c);
        assert_eq!(got, want);
        assert!(pruned.scan_stats.pages_pruned_zonemap >= 6);
    }

    #[test]
    fn null_and_nan_rows_survive_pruning_identically() {
        let c = zoned_catalog();
        // v has NULLs (dropped as UNKNOWN) and NaNs (never > rhs);
        // zone bounds exclude both, so pruning must not change which
        // rows the predicate keeps.
        for sql in [
            "SELECT k FROM z WHERE v > 100",
            "SELECT k FROM z WHERE v <= 10 AND k < 200",
            "SELECT COUNT(*) AS n FROM z WHERE v >= 0",
        ] {
            let (_, got) = rows(sql, &ExecOptions::default(), &c);
            let (_, want) = rows(sql, &ExecOptions::unpruned(), &c);
            assert_eq!(got, want, "{sql}");
        }
    }

    #[test]
    fn shared_collector_accumulates_across_queries() {
        let c = zoned_catalog();
        let sink = Arc::new(ScanStatsCollector::default());
        let opts = ExecOptions { stats: Some(sink.clone()), ..ExecOptions::default() };
        let first = execute_with(&c, "SELECT k FROM z WHERE k < 64", &opts).unwrap();
        let second = execute_with(&c, "SELECT k FROM z WHERE k >= 448", &opts).unwrap();
        let total = sink.snapshot();
        assert_eq!(
            total.pages_total,
            first.scan_stats.pages_total + second.scan_stats.pages_total
        );
        assert_eq!(
            total.pages_pruned_zonemap,
            first.scan_stats.pages_pruned_zonemap + second.scan_stats.pages_pruned_zonemap
        );
    }

    #[test]
    fn profiled_run_attaches_a_plan_shaped_tree() {
        use lawsdb_obs::FieldValue;
        let c = zoned_catalog();
        let r = execute_profiled(
            &c,
            "SELECT k FROM z WHERE k < 64",
            &ExecOptions { threads: 4, morsel_rows: 128, ..ExecOptions::default() },
        )
        .unwrap();
        let p = r.profile.expect("profiled entry point attaches a tree");
        assert_eq!(p.root.name, "query");
        // Optimizer pushes the projection above Filter(Scan).
        assert!(!p.find("plan.filter").is_empty());
        assert!(!p.find("plan.scan").is_empty());
        // Per-morsel timing leaves, ordered by offset under the filter.
        let morsels = p.find("morsel");
        assert_eq!(morsels.len(), 4, "512 rows / 128-row morsels");
        let offsets: Vec<Option<u64>> = morsels.iter().map(|m| m.index).collect();
        assert_eq!(offsets, vec![Some(0), Some(128), Some(256), Some(384)]);
        // Zone decisions carry the pruning-tier attribution.
        let zones = p.find("zone");
        assert!(zones.iter().any(|z| {
            z.field("decision").and_then(FieldValue::as_str) == Some("skip_zonemap")
        }));
        // Per-query pruning totals are a root-level point.
        let stats = p.find("scan.stats");
        assert_eq!(stats.len(), 1);
        assert_eq!(
            stats[0].field("pruned_zonemap").and_then(FieldValue::as_u64),
            Some(7)
        );
    }

    #[test]
    fn profiled_run_records_governor_charges() {
        use crate::governor::ResourceBudget;
        use lawsdb_obs::FieldValue;
        let c = zoned_catalog();
        let opts = ExecOptions {
            budget: ResourceBudget { max_rows: Some(10_000), ..ResourceBudget::default() },
            ..ExecOptions::default()
        };
        let r = execute_profiled(&c, "SELECT k FROM z WHERE k < 64", &opts).unwrap();
        let p = r.profile.unwrap();
        let charges = p.find("governor.rows");
        assert_eq!(charges.len(), 1, "one admission charge per scan");
        assert_eq!(charges[0].field("rows").and_then(FieldValue::as_u64), Some(512));
        assert_eq!(charges[0].field("ok"), Some(&FieldValue::Bool(true)));
        let summary = p.find("governor.summary");
        assert_eq!(summary.len(), 1);
        assert_eq!(
            summary[0].field("rows_admitted").and_then(FieldValue::as_u64),
            Some(512)
        );
    }

    #[test]
    fn unfiltered_aggregates_answer_from_the_synopsis_without_io() {
        let c = zoned_catalog();
        let sql = "SELECT COUNT(*) AS n, COUNT(v) AS nv, SUM(v) AS s, AVG(v) AS a, \
                   MIN(v) AS lo, MAX(v) AS hi, SUM(k) AS sk FROM z";
        let (pushed, got) = rows(sql, &ExecOptions::default(), &c);
        let (baseline, want) = rows(sql, &ExecOptions::unpruned(), &c);
        assert_eq!(got, want, "pushed answers must be bit-identical");
        // Every one of the 8 zones substitutes its materialized
        // partial: no pages are planned, let alone read.
        assert_eq!(pushed.scan_stats.zones_agg_synopsis, 8);
        assert_eq!(pushed.scan_stats.pages_total, 0);
        assert_eq!(baseline.scan_stats.zones_agg_synopsis, 0);
    }

    #[test]
    fn range_filter_pushes_interior_zones_and_scans_none() {
        let c = zoned_catalog();
        // k is strictly increasing: zones 2–3 satisfy the whole
        // conjunction by their bounds alone (interval proof), the rest
        // are refuted. No Eval zones remain.
        let sql = "SELECT COUNT(*) AS n, SUM(v) AS s FROM z WHERE k >= 128 AND k < 256";
        let (pushed, got) = rows(sql, &ExecOptions::default(), &c);
        let (_, want) = rows(sql, &ExecOptions::unpruned(), &c);
        assert_eq!(got, want);
        assert_eq!(pushed.scan_stats.zones_agg_synopsis, 2);
        assert_eq!(pushed.scan_stats.pages_pruned_zonemap, 6);
    }

    #[test]
    fn pushdown_is_bit_identical_across_threads_and_morsel_sizes() {
        let c = zoned_catalog();
        // v's sums are float-inexact (i/3.0), so any merge-order drift
        // between the pushed and scanned paths would show in the bits.
        let sql = "SELECT SUM(v) AS s, AVG(v) AS a, MIN(v) AS lo, MAX(v) AS hi, \
                   SUM(k) AS sk FROM z";
        // Pushed == scanned at every configuration, including morsel
        // sizes that clip units at non-grid boundaries (96).
        for (threads, morsel_rows) in [(1, 64), (4, 128), (4, 96), (2, 512), (3, 100_000)] {
            let opts = ExecOptions { threads, morsel_rows, ..ExecOptions::default() };
            let (_, got) = rows(sql, &opts, &c);
            let opts = ExecOptions { threads, morsel_rows, ..ExecOptions::unpruned() };
            let (_, want) = rows(sql, &opts, &c);
            assert_eq!(got, want, "threads={threads} morsel_rows={morsel_rows}");
        }
        // Thread count never changes the merge structure: morsel
        // partials merge in morsel order whatever ran them.
        let one = ExecOptions { threads: 1, morsel_rows: 128, ..ExecOptions::default() };
        let four = ExecOptions { threads: 4, morsel_rows: 128, ..ExecOptions::default() };
        assert_eq!(rows(sql, &one, &c).1, rows(sql, &four, &c).1);
    }

    #[test]
    fn all_null_zones_push_their_counts_but_no_values() {
        let n = 192usize;
        let mut b = TableBuilder::new("holes");
        // Zone 1 (rows 64..128) is entirely NULL.
        b.add_f64_opt(
            "v",
            (0..n).map(|i| if (64..128).contains(&i) { None } else { Some(i as f64) }).collect(),
        );
        let mut t = b.build().unwrap();
        t.rebuild_synopsis_with(64);
        let c = Catalog::new();
        c.register(t).unwrap();
        let sql = "SELECT COUNT(*) AS n, COUNT(v) AS nv, SUM(v) AS s, \
                   MIN(v) AS lo, MAX(v) AS hi FROM holes";
        let (pushed, got) = rows(sql, &ExecOptions::default(), &c);
        let (_, want) = rows(sql, &ExecOptions::unpruned(), &c);
        assert_eq!(got, want);
        // The all-NULL zone still answers from its partial (count 0,
        // no sums): 3 of 3 zones pushed, zero pages planned.
        assert_eq!(pushed.scan_stats.zones_agg_synopsis, 3);
        assert_eq!(pushed.scan_stats.pages_total, 0);
        assert_eq!(got[0], "[Int(192), Int(128), Float(12224.0), Float(0.0), Float(191.0)]");
    }

    #[test]
    fn grouped_and_expression_aggregates_keep_the_scan_grammar() {
        let c = zoned_catalog();
        // GROUP BY and computed arguments are not pushdown-eligible;
        // they must keep answering correctly through the scan path.
        for sql in [
            "SELECT g, SUM(v) AS s FROM z GROUP BY g ORDER BY g",
            "SELECT SUM(k + 1) AS s FROM z",
        ] {
            let (r, got) = rows(sql, &ExecOptions::default(), &c);
            let (_, want) = rows(sql, &ExecOptions::unpruned(), &c);
            assert_eq!(got, want, "{sql}");
            assert_eq!(r.scan_stats.zones_agg_synopsis, 0, "{sql}");
        }
    }

    #[test]
    fn tables_without_synopsis_run_unpruned() {
        let c = Catalog::new();
        let mut b = TableBuilder::new("plain");
        b.add_i64("a", (0..100).collect());
        let mut t = b.build().unwrap();
        // slice() drops the synopsis; re-registering the slice gives a
        // synopsis-free table the executor must still handle.
        t = t.slice(0, 100).unwrap();
        assert!(t.synopsis().is_none());
        c.register(t).unwrap();
        let r = execute(&c, "SELECT a FROM plain WHERE a < 10").unwrap();
        assert_eq!(r.table.row_count(), 10);
        assert_eq!(r.scan_stats, ScanStats::default());
    }
}
