//! Vectorized plan execution.

use crate::error::{QueryError, Result};
use crate::optimize::optimize;
use crate::plan::{AggSpec, LogicalPlan};
use crate::sexpr::ScalarExpr;
use crate::sql::{parse_select, AggFunc, OrderBy};
use lawsdb_storage::schema::{DataType, Field, Schema};
use lawsdb_storage::{Catalog, Column, Table, Value};
use std::collections::HashMap;

/// Result of executing a query: the output table plus the exact number
/// of base-table rows the executor materialized.
///
/// `rows_scanned` is the paper's currency — the approximate engine's
/// whole point is answering with `rows_scanned == 0`.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Output rows.
    pub table: Table,
    /// Base-table rows materialized by scans.
    pub rows_scanned: usize,
}

/// Parse, plan, optimize and execute a SELECT statement.
pub fn execute(catalog: &Catalog, sql: &str) -> Result<QueryResult> {
    let stmt = parse_select(sql)?;
    let plan = LogicalPlan::from_statement(&stmt)?;
    let plan = optimize(&plan);
    execute_plan(catalog, &plan)
}

/// Execute an already-built logical plan.
pub fn execute_plan(catalog: &Catalog, plan: &LogicalPlan) -> Result<QueryResult> {
    let mut scanned = 0usize;
    let table = exec(catalog, plan, &mut scanned)?;
    Ok(QueryResult { table, rows_scanned: scanned })
}

fn exec(catalog: &Catalog, plan: &LogicalPlan, scanned: &mut usize) -> Result<Table> {
    match plan {
        LogicalPlan::Scan { table, projection } => {
            let t = catalog.get(table)?;
            *scanned += t.row_count();
            match projection {
                None => Ok((*t).clone()),
                Some(cols) => {
                    // The optimizer prunes without schema knowledge, so a
                    // join plan lists both tables' columns at each scan;
                    // keep only the ones this table actually has. Truly
                    // unknown names surface later as UnknownColumn when
                    // an expression references them.
                    let names: Vec<&str> = cols
                        .iter()
                        .map(String::as_str)
                        .filter(|n| t.schema().index_of(n).is_some())
                        .collect();
                    if names.is_empty() {
                        Ok((*t).clone())
                    } else {
                        Ok(t.project(&names)?)
                    }
                }
            }
        }
        LogicalPlan::Join { left, right, left_col, right_col } => {
            let lt = exec(catalog, left, scanned)?;
            let rt = exec(catalog, right, scanned)?;
            hash_join(&lt, &rt, left_col, right_col)
        }
        LogicalPlan::Filter { input, predicate } => {
            let t = exec(catalog, input, scanned)?;
            let predicate = normalize_expr(predicate, t.schema())?;
            let truth = predicate.eval_predicate(&t)?;
            let keep: Vec<usize> = truth
                .iter()
                .enumerate()
                .filter_map(|(i, t)| (*t == Some(true)).then_some(i))
                .collect();
            Ok(t.take(&keep)?)
        }
        LogicalPlan::Aggregate { input, group_by, aggs } => {
            let t = exec(catalog, input, scanned)?;
            aggregate(&t, group_by, aggs)
        }
        LogicalPlan::Project { input, exprs, star } => {
            let t = exec(catalog, input, scanned)?;
            let mut fields = Vec::new();
            let mut cols = Vec::new();
            if *star {
                for (f, c) in t.schema().fields().iter().zip(t.columns()) {
                    fields.push(f.clone());
                    cols.push(c.clone());
                }
            }
            for (e, name) in exprs {
                let e = normalize_expr(e, t.schema())?;
                let col = e.eval_batch(&t)?;
                fields.push(Field::nullable(name.clone(), col.data_type()));
                cols.push(col);
            }
            Ok(Table::new("result", Schema::new(fields), cols)?)
        }
        LogicalPlan::Sort { input, keys } => {
            let t = exec(catalog, input, scanned)?;
            sort(&t, keys)
        }
        LogicalPlan::Distinct { input } => {
            let t = exec(catalog, input, scanned)?;
            let mut seen: std::collections::HashSet<Vec<KeyPart>> =
                std::collections::HashSet::new();
            let mut keep = Vec::new();
            for row in 0..t.row_count() {
                let key: Vec<KeyPart> = t
                    .row(row)?
                    .iter()
                    .map(KeyPart::from_value)
                    .collect();
                if seen.insert(key) {
                    keep.push(row);
                }
            }
            Ok(t.take(&keep)?)
        }
        LogicalPlan::Limit { input, n } => {
            let t = exec(catalog, input, scanned)?;
            let keep: Vec<usize> = (0..t.row_count().min(*n)).collect();
            Ok(t.take(&keep)?)
        }
    }
}

/// Resolve possibly-qualified column names against a schema: exact
/// match first, then `qualifier.name` → `name`, then `name` → any
/// single `x.name`.
fn normalize_name(schema: &Schema, name: &str) -> Result<String> {
    if schema.index_of(name).is_some() {
        return Ok(name.to_string());
    }
    if let Some((_, plain)) = name.split_once('.') {
        if schema.index_of(plain).is_some() {
            return Ok(plain.to_string());
        }
    }
    let suffix = format!(".{name}");
    let matches: Vec<&str> = schema
        .names()
        .into_iter()
        .filter(|n| n.ends_with(&suffix))
        .collect();
    match matches.as_slice() {
        [one] => Ok(one.to_string()),
        _ => Err(QueryError::UnknownColumn { name: name.to_string() }),
    }
}

fn normalize_expr(expr: &ScalarExpr, schema: &Schema) -> Result<ScalarExpr> {
    Ok(match expr {
        ScalarExpr::Column(c) => ScalarExpr::Column(normalize_name(schema, c)?),
        ScalarExpr::Number(_) | ScalarExpr::Str(_) => expr.clone(),
        ScalarExpr::Neg(a) => ScalarExpr::Neg(Box::new(normalize_expr(a, schema)?)),
        ScalarExpr::Not(a) => ScalarExpr::Not(Box::new(normalize_expr(a, schema)?)),
        ScalarExpr::Arith(op, a, b) => ScalarExpr::Arith(
            *op,
            Box::new(normalize_expr(a, schema)?),
            Box::new(normalize_expr(b, schema)?),
        ),
        ScalarExpr::Cmp(op, a, b) => ScalarExpr::Cmp(
            *op,
            Box::new(normalize_expr(a, schema)?),
            Box::new(normalize_expr(b, schema)?),
        ),
        ScalarExpr::And(a, b) => ScalarExpr::And(
            Box::new(normalize_expr(a, schema)?),
            Box::new(normalize_expr(b, schema)?),
        ),
        ScalarExpr::Or(a, b) => ScalarExpr::Or(
            Box::new(normalize_expr(a, schema)?),
            Box::new(normalize_expr(b, schema)?),
        ),
    })
}

// ------------------------------------------------------------- hashing

/// Hashable, comparable rendering of a group/join key value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum KeyPart {
    Null,
    Int(i64),
    /// Floats keyed by bit pattern (NaN groups with NaN; −0.0 ≠ 0.0 is
    /// acceptable for grouping).
    Float(u64),
    Str(String),
    Bool(bool),
}

impl KeyPart {
    fn from_value(v: &Value) -> KeyPart {
        match v {
            Value::Null => KeyPart::Null,
            Value::Int(i) => KeyPart::Int(*i),
            // Integral floats join/group with equal ints.
            Value::Float(f) if f.fract() == 0.0 && f.is_finite() && f.abs() < 9.0e18 => {
                KeyPart::Int(*f as i64)
            }
            Value::Float(f) => KeyPart::Float(f.to_bits()),
            Value::Str(s) => KeyPart::Str(s.clone()),
            Value::Bool(b) => KeyPart::Bool(*b),
        }
    }
}

fn hash_join(left: &Table, right: &Table, left_col: &str, right_col: &str) -> Result<Table> {
    let lkey = normalize_name(left.schema(), left_col)
        .or_else(|_| normalize_name(right.schema(), left_col))?;
    let rkey = normalize_name(right.schema(), right_col)
        .or_else(|_| normalize_name(left.schema(), right_col))?;
    // Allow the user to write the join condition in either order.
    let (lkey, rkey) = if left.schema().index_of(&lkey).is_some() {
        (lkey, rkey)
    } else {
        (rkey, lkey)
    };
    let lcol = left.column(&lkey)?;
    let rcol = right.column(&rkey)?;

    // Build on the right side.
    let mut build: HashMap<KeyPart, Vec<usize>> = HashMap::new();
    for i in 0..right.row_count() {
        let v = rcol.value(i)?;
        if v.is_null() {
            continue; // NULL never joins
        }
        build.entry(KeyPart::from_value(&v)).or_default().push(i);
    }
    let mut lidx = Vec::new();
    let mut ridx = Vec::new();
    for i in 0..left.row_count() {
        let v = lcol.value(i)?;
        if v.is_null() {
            continue;
        }
        if let Some(rows) = build.get(&KeyPart::from_value(&v)) {
            for &r in rows {
                lidx.push(i);
                ridx.push(r);
            }
        }
    }

    let lt = left.take(&lidx)?;
    let rt = right.take(&ridx)?;
    let mut fields = Vec::new();
    let mut cols = Vec::new();
    for (f, c) in lt.schema().fields().iter().zip(lt.columns()) {
        fields.push(f.clone());
        cols.push(c.clone());
    }
    for (f, c) in rt.schema().fields().iter().zip(rt.columns()) {
        let clash = lt.schema().index_of(&f.name).is_some();
        let name = if clash {
            format!("{}.{}", right.name(), f.name)
        } else {
            f.name.clone()
        };
        fields.push(Field { name, data_type: f.data_type, nullable: f.nullable });
        cols.push(c.clone());
    }
    Ok(Table::new("result", Schema::new(fields), cols)?)
}

// ----------------------------------------------------------- aggregate

#[derive(Debug, Clone)]
struct Accumulator {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    min_str: Option<String>,
    max_str: Option<String>,
}

impl Accumulator {
    fn new() -> Accumulator {
        Accumulator {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            min_str: None,
            max_str: None,
        }
    }

    fn add_num(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    fn add_str(&mut self, s: &str) {
        self.count += 1;
        if self.min_str.as_deref().is_none_or(|m| s < m) {
            self.min_str = Some(s.to_string());
        }
        if self.max_str.as_deref().is_none_or(|m| s > m) {
            self.max_str = Some(s.to_string());
        }
    }

    fn finish(&self, func: AggFunc) -> Value {
        match func {
            AggFunc::Count => Value::Int(self.count as i64),
            AggFunc::Sum => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum)
                }
            }
            AggFunc::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum / self.count as f64)
                }
            }
            AggFunc::Min => match &self.min_str {
                Some(s) => Value::Str(s.clone()),
                None if self.count > 0 => Value::Float(self.min),
                None => Value::Null,
            },
            AggFunc::Max => match &self.max_str {
                Some(s) => Value::Str(s.clone()),
                None if self.count > 0 => Value::Float(self.max),
                None => Value::Null,
            },
        }
    }
}

fn aggregate(t: &Table, group_by: &[String], aggs: &[AggSpec]) -> Result<Table> {
    let group_by: Vec<String> = group_by
        .iter()
        .map(|g| normalize_name(t.schema(), g))
        .collect::<Result<_>>()?;
    // Pre-evaluate aggregate argument expressions once, vectorized.
    // Strings go through the Value path (for MIN/MAX on strings).
    enum ArgData {
        Star,
        Numeric(Vec<Option<f64>>),
        Strings(Vec<Option<String>>),
    }
    let mut arg_data = Vec::with_capacity(aggs.len());
    for a in aggs {
        match &a.arg {
            None => arg_data.push(ArgData::Star),
            Some(e) => {
                let e = normalize_expr(e, t.schema())?;
                // String column? Only a bare column can be stringy here.
                let stringy = matches!(
                    &e,
                    ScalarExpr::Column(c)
                        if t.column(c).map(|col| col.data_type() == DataType::Str).unwrap_or(false)
                );
                if stringy {
                    if !matches!(a.func, AggFunc::Min | AggFunc::Max | AggFunc::Count) {
                        return Err(QueryError::InvalidAggregate {
                            reason: format!("{} over a string column", a.func.name()),
                        });
                    }
                    let ScalarExpr::Column(c) = &e else { unreachable!() };
                    let col = t.column(c)?;
                    let mut vals = Vec::with_capacity(t.row_count());
                    for i in 0..t.row_count() {
                        vals.push(match col.value(i)? {
                            Value::Str(s) => Some(s),
                            _ => None,
                        });
                    }
                    arg_data.push(ArgData::Strings(vals));
                } else {
                    arg_data.push(ArgData::Numeric(e.eval_numeric(t)?));
                }
            }
        }
    }

    // Group rows.
    let key_cols: Vec<&Column> = group_by
        .iter()
        .map(|g| t.column(g))
        .collect::<lawsdb_storage::Result<_>>()?;
    let mut groups: HashMap<Vec<KeyPart>, usize> = HashMap::new();
    let mut group_rows: Vec<usize> = Vec::new(); // first row of each group
    let mut accs: Vec<Vec<Accumulator>> = Vec::new();
    for row in 0..t.row_count() {
        let key: Vec<KeyPart> = key_cols
            .iter()
            .map(|c| c.value(row).map(|v| KeyPart::from_value(&v)))
            .collect::<lawsdb_storage::Result<_>>()?;
        let gid = *groups.entry(key).or_insert_with(|| {
            group_rows.push(row);
            accs.push(vec![Accumulator::new(); aggs.len()]);
            accs.len() - 1
        });
        for (ai, data) in arg_data.iter().enumerate() {
            match data {
                ArgData::Star => accs[gid][ai].count += 1,
                ArgData::Numeric(vals) => {
                    if let Some(v) = vals[row] {
                        accs[gid][ai].add_num(v);
                    }
                }
                ArgData::Strings(vals) => {
                    if let Some(s) = &vals[row] {
                        accs[gid][ai].add_str(s);
                    }
                }
            }
        }
    }

    // Global aggregate over an empty input still yields one row.
    if group_by.is_empty() && accs.is_empty() {
        group_rows.push(usize::MAX);
        accs.push(vec![Accumulator::new(); aggs.len()]);
    }

    // Assemble output: group columns in declared order, then aggregates.
    let mut fields = Vec::new();
    let mut cols = Vec::new();
    for g in &group_by {
        let src = t.column(g)?;
        let rows: Vec<usize> = group_rows.clone();
        fields.push(Field {
            name: g.clone(),
            data_type: src.data_type(),
            nullable: true,
        });
        cols.push(src.take(&rows)?);
    }
    for (ai, a) in aggs.iter().enumerate() {
        let values: Vec<Value> = accs.iter().map(|g| g[ai].finish(a.func)).collect();
        let col = column_from_values(&values);
        fields.push(Field::nullable(a.name.clone(), col.data_type()));
        cols.push(col);
    }
    Ok(Table::new("result", Schema::new(fields), cols)?)
}

/// Build a column from dynamic values, inferring the narrowest type.
pub fn column_from_values(values: &[Value]) -> Column {
    let mut saw_float = false;
    let mut saw_int = false;
    let mut saw_str = false;
    let mut saw_bool = false;
    for v in values {
        match v {
            Value::Float(_) => saw_float = true,
            Value::Int(_) => saw_int = true,
            Value::Str(_) => saw_str = true,
            Value::Bool(_) => saw_bool = true,
            Value::Null => {}
        }
    }
    if saw_str {
        let data: Vec<String> = values
            .iter()
            .map(|v| v.as_str().unwrap_or("").to_string())
            .collect();
        let mut col = Column::from_str(data);
        mark_nulls(&mut col, values);
        col
    } else if saw_float || (saw_int && saw_float) {
        let mut col =
            Column::from_f64_opt(values.iter().map(|v| v.as_f64()).collect());
        mark_nulls(&mut col, values);
        col
    } else if saw_int {
        Column::from_i64_opt(values.iter().map(|v| v.as_i64()).collect())
    } else if saw_bool {
        let data: Vec<bool> = values
            .iter()
            .map(|v| matches!(v, Value::Bool(true)))
            .collect();
        let mut col = Column::from_bool(&data);
        mark_nulls(&mut col, values);
        col
    } else {
        // All NULL.
        Column::from_f64_opt(vec![None; values.len()])
    }
}

fn mark_nulls(col: &mut Column, values: &[Value]) {
    let validity = match col {
        Column::Int64 { validity, .. }
        | Column::Float64 { validity, .. }
        | Column::Str { validity, .. }
        | Column::Bool { validity, .. } => validity,
    };
    for (i, v) in values.iter().enumerate() {
        if v.is_null() {
            validity.set(i, false);
        }
    }
}

// ---------------------------------------------------------------- sort

fn sort(t: &Table, keys: &[OrderBy]) -> Result<Table> {
    let mut resolved = Vec::with_capacity(keys.len());
    for k in keys {
        resolved.push((normalize_name(t.schema(), &k.column)?, k.desc));
    }
    let mut idx: Vec<usize> = (0..t.row_count()).collect();
    // Pre-fetch key values per row to avoid re-reading during comparison.
    let mut key_vals: Vec<Vec<Value>> = Vec::with_capacity(resolved.len());
    for (name, _) in &resolved {
        let col = t.column(name)?;
        let mut vals = Vec::with_capacity(t.row_count());
        for i in 0..t.row_count() {
            vals.push(col.value(i)?);
        }
        key_vals.push(vals);
    }
    idx.sort_by(|&a, &b| {
        for (ki, (_, desc)) in resolved.iter().enumerate() {
            let va = &key_vals[ki][a];
            let vb = &key_vals[ki][b];
            let ord = match (va.is_null(), vb.is_null()) {
                (true, true) => std::cmp::Ordering::Equal,
                // NULLs sort last regardless of direction.
                (true, false) => return std::cmp::Ordering::Greater,
                (false, true) => return std::cmp::Ordering::Less,
                (false, false) => {
                    va.sql_cmp(vb).unwrap_or(std::cmp::Ordering::Equal)
                }
            };
            let ord = if *desc { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(t.take(&idx)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lawsdb_storage::TableBuilder;

    fn catalog() -> Catalog {
        let c = Catalog::new();
        let mut b = TableBuilder::new("m");
        b.add_i64("source", vec![1, 1, 2, 2, 3]);
        b.add_f64("nu", vec![0.12, 0.15, 0.12, 0.15, 0.12]);
        b.add_f64_opt(
            "intensity",
            vec![Some(1.0), Some(2.0), Some(10.0), Some(20.0), None],
        );
        c.register(b.build().unwrap()).unwrap();

        let mut s = TableBuilder::new("sources");
        s.add_i64("id", vec![1, 2, 3]);
        s.add_str("kind", vec!["pulsar".into(), "quasar".into(), "star".into()]);
        c.register(s.build().unwrap()).unwrap();
        c
    }

    #[test]
    fn select_star() {
        let r = execute(&catalog(), "SELECT * FROM m").unwrap();
        assert_eq!(r.table.row_count(), 5);
        assert_eq!(r.table.schema().len(), 3);
        assert_eq!(r.rows_scanned, 5);
    }

    #[test]
    fn filter_with_nulls_drops_unknown() {
        let r = execute(&catalog(), "SELECT source FROM m WHERE intensity > 0").unwrap();
        // Row with NULL intensity is UNKNOWN → dropped.
        assert_eq!(r.table.row_count(), 4);
    }

    #[test]
    fn group_by_with_aggregates() {
        let r = execute(
            &catalog(),
            "SELECT source, COUNT(*) AS n, AVG(intensity) AS mean, SUM(intensity) AS tot, \
             MIN(intensity) AS lo, MAX(intensity) AS hi \
             FROM m GROUP BY source ORDER BY source",
        )
        .unwrap();
        assert_eq!(r.table.row_count(), 3);
        // Source 1: n=2, mean=1.5; source 3: count(*)=1 but all-NULL agg.
        assert_eq!(r.table.row(0).unwrap()[1], Value::Int(2));
        assert_eq!(r.table.row(0).unwrap()[2], Value::Float(1.5));
        assert_eq!(r.table.row(2).unwrap()[1], Value::Int(1));
        assert_eq!(r.table.row(2).unwrap()[2], Value::Null);
        assert_eq!(r.table.row(1).unwrap()[4], Value::Float(10.0));
        assert_eq!(r.table.row(1).unwrap()[5], Value::Float(20.0));
    }

    #[test]
    fn global_aggregate_on_empty_filter() {
        let r = execute(&catalog(), "SELECT COUNT(*) AS n, AVG(intensity) AS a FROM m WHERE source = 99")
            .unwrap();
        assert_eq!(r.table.row_count(), 1);
        assert_eq!(r.table.row(0).unwrap()[0], Value::Int(0));
        assert_eq!(r.table.row(0).unwrap()[1], Value::Null);
    }

    #[test]
    fn count_ignores_nulls_count_star_does_not() {
        let r = execute(
            &catalog(),
            "SELECT COUNT(*) AS all_rows, COUNT(intensity) AS with_i FROM m",
        )
        .unwrap();
        assert_eq!(r.table.row(0).unwrap()[0], Value::Int(5));
        assert_eq!(r.table.row(0).unwrap()[1], Value::Int(4));
    }

    #[test]
    fn order_by_desc_with_nulls_last() {
        let r = execute(&catalog(), "SELECT intensity FROM m ORDER BY intensity DESC").unwrap();
        let rows: Vec<Value> = (0..5).map(|i| r.table.row(i).unwrap()[0].clone()).collect();
        assert_eq!(
            rows,
            vec![
                Value::Float(20.0),
                Value::Float(10.0),
                Value::Float(2.0),
                Value::Float(1.0),
                Value::Null
            ]
        );
    }

    #[test]
    fn limit_caps_rows() {
        let r = execute(&catalog(), "SELECT * FROM m LIMIT 2").unwrap();
        assert_eq!(r.table.row_count(), 2);
        let r = execute(&catalog(), "SELECT * FROM m LIMIT 0").unwrap();
        assert_eq!(r.table.row_count(), 0);
    }

    #[test]
    fn projection_expressions_and_aliases() {
        let r = execute(&catalog(), "SELECT intensity * 2 AS dbl FROM m WHERE source = 1").unwrap();
        assert_eq!(r.table.schema().names(), vec!["dbl"]);
        assert_eq!(r.table.row(0).unwrap()[0], Value::Float(2.0));
    }

    #[test]
    fn join_matches_and_renames() {
        let r = execute(
            &catalog(),
            "SELECT source, kind, intensity FROM m JOIN sources ON source = id \
             WHERE intensity > 5 ORDER BY intensity",
        )
        .unwrap();
        assert_eq!(r.table.row_count(), 2);
        assert_eq!(r.table.row(0).unwrap()[1], Value::Str("quasar".to_string()));
    }

    #[test]
    fn join_with_qualified_columns() {
        let r = execute(
            &catalog(),
            "SELECT m.source, sources.kind FROM m JOIN sources ON m.source = sources.id LIMIT 1",
        )
        .unwrap();
        assert_eq!(r.table.row_count(), 1);
    }

    #[test]
    fn string_aggregates_min_max() {
        let r = execute(&catalog(), "SELECT MIN(kind) AS lo, MAX(kind) AS hi FROM sources").unwrap();
        assert_eq!(r.table.row(0).unwrap()[0], Value::Str("pulsar".to_string()));
        assert_eq!(r.table.row(0).unwrap()[1], Value::Str("star".to_string()));
    }

    #[test]
    fn sum_over_string_rejected() {
        assert!(matches!(
            execute(&catalog(), "SELECT SUM(kind) FROM sources"),
            Err(QueryError::InvalidAggregate { .. })
        ));
    }

    #[test]
    fn unknown_column_reported() {
        assert!(matches!(
            execute(&catalog(), "SELECT zz FROM m"),
            Err(QueryError::UnknownColumn { .. })
        ));
        assert!(matches!(
            execute(&catalog(), "SELECT source FROM m WHERE zz = 1"),
            Err(QueryError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn unknown_table_reported() {
        assert!(execute(&catalog(), "SELECT a FROM nope").is_err());
    }

    #[test]
    fn rows_scanned_counts_join_inputs() {
        let r = execute(&catalog(), "SELECT source FROM m JOIN sources ON source = id").unwrap();
        assert_eq!(r.rows_scanned, 5 + 3);
    }

    #[test]
    fn column_from_values_inference() {
        let c = column_from_values(&[Value::Int(1), Value::Null, Value::Int(3)]);
        assert_eq!(c.data_type(), DataType::Int64);
        assert_eq!(c.null_count(), 1);
        let c = column_from_values(&[Value::Int(1), Value::Float(2.5)]);
        assert_eq!(c.data_type(), DataType::Float64);
        let c = column_from_values(&[Value::Null, Value::Null]);
        assert_eq!(c.null_count(), 2);
    }

    #[test]
    fn group_by_float_column_groups_by_value() {
        let r = execute(
            &catalog(),
            "SELECT nu, COUNT(*) AS n FROM m GROUP BY nu ORDER BY nu",
        )
        .unwrap();
        assert_eq!(r.table.row_count(), 2);
        assert_eq!(r.table.row(0).unwrap()[1], Value::Int(3));
        assert_eq!(r.table.row(1).unwrap()[1], Value::Int(2));
    }
}

#[cfg(test)]
mod name_resolution_tests {
    use super::*;
    use lawsdb_storage::schema::{Field, Schema};

    #[test]
    fn ambiguous_suffix_is_rejected() {
        // Two qualified columns share the suffix `.k`: a bare `k` must
        // not silently pick one.
        let schema = Schema::new(vec![
            Field::new("t.k", DataType::Int64),
            Field::new("u.k", DataType::Int64),
        ]);
        assert!(matches!(
            normalize_name(&schema, "k"),
            Err(QueryError::UnknownColumn { .. })
        ));
        // Qualified references resolve exactly.
        assert_eq!(normalize_name(&schema, "t.k").unwrap(), "t.k");
    }

    #[test]
    fn qualifier_strips_to_plain_when_unique() {
        let schema = Schema::new(vec![Field::new("k", DataType::Int64)]);
        assert_eq!(normalize_name(&schema, "t.k").unwrap(), "k");
    }
}

#[cfg(test)]
mod distinct_tests {
    use super::*;
    use lawsdb_storage::TableBuilder;

    fn catalog() -> Catalog {
        let c = Catalog::new();
        let mut b = TableBuilder::new("t");
        b.add_i64("a", vec![1, 1, 2, 2, 2, 3]);
        b.add_str(
            "s",
            vec!["x".into(), "x".into(), "y".into(), "y".into(), "z".into(), "z".into()],
        );
        c.register(b.build().unwrap()).unwrap();
        c
    }

    #[test]
    fn distinct_single_column() {
        let r = execute(&catalog(), "SELECT DISTINCT a FROM t ORDER BY a").unwrap();
        assert_eq!(r.table.row_count(), 3);
        assert_eq!(r.table.column("a").unwrap().i64_data().unwrap(), &[1, 2, 3]);
    }

    #[test]
    fn distinct_multi_column_keeps_distinct_pairs() {
        let r = execute(&catalog(), "SELECT DISTINCT a, s FROM t ORDER BY a, s").unwrap();
        // Pairs: (1,x), (2,y), (2,z), (3,z).
        assert_eq!(r.table.row_count(), 4);
        assert_eq!(r.table.row(2).unwrap()[0], Value::Int(2));
        assert_eq!(r.table.row(2).unwrap()[1], Value::Str("z".to_string()));
    }

    #[test]
    fn distinct_star_dedups_full_rows() {
        let r = execute(&catalog(), "SELECT DISTINCT * FROM t").unwrap();
        assert_eq!(r.table.row_count(), 4);
    }

    #[test]
    fn distinct_respects_limit_after_dedup() {
        let r = execute(&catalog(), "SELECT DISTINCT a FROM t ORDER BY a DESC LIMIT 2").unwrap();
        assert_eq!(r.table.column("a").unwrap().i64_data().unwrap(), &[3, 2]);
    }

    #[test]
    fn non_distinct_unaffected() {
        let r = execute(&catalog(), "SELECT a FROM t").unwrap();
        assert_eq!(r.table.row_count(), 6);
    }
}
