//! Rule-based plan optimization.
//!
//! Three rules, applied in order:
//!
//! 1. **Constant folding** — predicates and projection expressions fold
//!    constant subtrees (`x > 1 + 2` → `x > 3`).
//! 2. **Projection pruning** — every scan is narrowed to the columns the
//!    plan actually references, so the pager reads only those extents
//!    (a real IO saving under the simulated device).
//! 3. **Trivial-limit elision** — nested limits fold to the tighter
//!    bound, and `LIMIT 0` collapses every scan beneath it to an
//!    [`LogicalPlan::EmptyScan`] of the same shape: the schema survives
//!    (so the result's columns are unchanged) but the executor performs
//!    zero IO and charges no scan budget.

use crate::plan::{AggSpec, LogicalPlan};
use crate::sql::SelectItem;

/// Optimize a plan.
pub fn optimize(plan: &LogicalPlan) -> LogicalPlan {
    let folded = fold_constants(plan);
    let needed = folded.referenced_columns();
    let star = plan_has_star(&folded);
    prune_scans(&folded, &needed, star)
}

fn plan_has_star(plan: &LogicalPlan) -> bool {
    match plan {
        // A bare scan pipeline (SELECT *) or an explicit star projection
        // must materialize every column.
        LogicalPlan::Scan { .. } | LogicalPlan::EmptyScan { .. } => true,
        LogicalPlan::Project { star, .. } => *star,
        LogicalPlan::Join { .. } => true,
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Distinct { input }
        | LogicalPlan::Limit { input, .. } => plan_has_star(input),
        LogicalPlan::Aggregate { .. } => false,
    }
}

fn fold_constants(plan: &LogicalPlan) -> LogicalPlan {
    match plan {
        LogicalPlan::Scan { .. } | LogicalPlan::EmptyScan { .. } => plan.clone(),
        LogicalPlan::Join { left, right, left_col, right_col } => LogicalPlan::Join {
            left: Box::new(fold_constants(left)),
            right: Box::new(fold_constants(right)),
            left_col: left_col.clone(),
            right_col: right_col.clone(),
        },
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Box::new(fold_constants(input)),
            predicate: predicate.fold_constants(),
        },
        LogicalPlan::Aggregate { input, group_by, aggs } => LogicalPlan::Aggregate {
            input: Box::new(fold_constants(input)),
            group_by: group_by.clone(),
            aggs: aggs
                .iter()
                .map(|a| AggSpec {
                    func: a.func,
                    arg: a.arg.as_ref().map(|e| e.fold_constants()),
                    name: a.name.clone(),
                })
                .collect(),
        },
        LogicalPlan::Project { input, exprs, star } => LogicalPlan::Project {
            input: Box::new(fold_constants(input)),
            exprs: exprs.iter().map(|(e, n)| (e.fold_constants(), n.clone())).collect(),
            star: *star,
        },
        LogicalPlan::Distinct { input } => {
            LogicalPlan::Distinct { input: Box::new(fold_constants(input)) }
        }
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(fold_constants(input)),
            keys: keys.clone(),
        },
        LogicalPlan::Limit { input, n } => {
            // Fold nested limits to the tighter bound.
            let inner = fold_constants(input);
            let (inner, n) = if let LogicalPlan::Limit { input: inner2, n: n2 } = inner {
                (*inner2, (*n).min(n2))
            } else {
                (inner, *n)
            };
            // LIMIT 0 can produce no rows: keep the plan shape (an
            // aggregate below would still emit its one global row for
            // the limit to drop) but turn every scan into an EmptyScan
            // so the executor does zero IO.
            let inner = if n == 0 { empty_scans(&inner) } else { inner };
            LogicalPlan::Limit { input: Box::new(inner), n }
        }
    }
}

/// Replace every `Scan` in the subtree with an `EmptyScan` of the same
/// table and projection (the `LIMIT 0` rewrite).
fn empty_scans(plan: &LogicalPlan) -> LogicalPlan {
    match plan {
        LogicalPlan::Scan { table, projection } => LogicalPlan::EmptyScan {
            table: table.clone(),
            projection: projection.clone(),
        },
        LogicalPlan::EmptyScan { .. } => plan.clone(),
        LogicalPlan::Join { left, right, left_col, right_col } => LogicalPlan::Join {
            left: Box::new(empty_scans(left)),
            right: Box::new(empty_scans(right)),
            left_col: left_col.clone(),
            right_col: right_col.clone(),
        },
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Box::new(empty_scans(input)),
            predicate: predicate.clone(),
        },
        LogicalPlan::Aggregate { input, group_by, aggs } => LogicalPlan::Aggregate {
            input: Box::new(empty_scans(input)),
            group_by: group_by.clone(),
            aggs: aggs.clone(),
        },
        LogicalPlan::Project { input, exprs, star } => LogicalPlan::Project {
            input: Box::new(empty_scans(input)),
            exprs: exprs.clone(),
            star: *star,
        },
        LogicalPlan::Distinct { input } => {
            LogicalPlan::Distinct { input: Box::new(empty_scans(input)) }
        }
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(empty_scans(input)),
            keys: keys.clone(),
        },
        LogicalPlan::Limit { input, n } => {
            LogicalPlan::Limit { input: Box::new(empty_scans(input)), n: *n }
        }
    }
}

fn prune_scans(plan: &LogicalPlan, needed: &[String], star: bool) -> LogicalPlan {
    match plan {
        LogicalPlan::Scan { table, projection } => {
            if star {
                return LogicalPlan::Scan { table: table.clone(), projection: projection.clone() };
            }
            // Keep only needed columns that plausibly belong to this
            // table (plain names, or `table.col` qualified names).
            let cols: Vec<String> = needed
                .iter()
                .filter_map(|n| match n.split_once('.') {
                    Some((t, c)) if t == table => Some(c.to_string()),
                    Some(_) => None,
                    None => Some(n.clone()),
                })
                .collect();
            LogicalPlan::Scan {
                table: table.clone(),
                projection: if cols.is_empty() { None } else { Some(cols) },
            }
        }
        // Reads nothing, but narrowing keeps its schema identical to
        // the scan it replaced.
        LogicalPlan::EmptyScan { table, projection } => {
            if star {
                return LogicalPlan::EmptyScan {
                    table: table.clone(),
                    projection: projection.clone(),
                };
            }
            let cols: Vec<String> = needed
                .iter()
                .filter_map(|n| match n.split_once('.') {
                    Some((t, c)) if t == table => Some(c.to_string()),
                    Some(_) => None,
                    None => Some(n.clone()),
                })
                .collect();
            LogicalPlan::EmptyScan {
                table: table.clone(),
                projection: if cols.is_empty() { None } else { Some(cols) },
            }
        }
        LogicalPlan::Join { left, right, left_col, right_col } => LogicalPlan::Join {
            left: Box::new(prune_scans(left, needed, star)),
            right: Box::new(prune_scans(right, needed, star)),
            left_col: left_col.clone(),
            right_col: right_col.clone(),
        },
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Box::new(prune_scans(input, needed, star)),
            predicate: predicate.clone(),
        },
        LogicalPlan::Aggregate { input, group_by, aggs } => LogicalPlan::Aggregate {
            input: Box::new(prune_scans(input, needed, star)),
            group_by: group_by.clone(),
            aggs: aggs.clone(),
        },
        LogicalPlan::Project { input, exprs, star: pstar } => LogicalPlan::Project {
            input: Box::new(prune_scans(input, needed, star)),
            exprs: exprs.clone(),
            star: *pstar,
        },
        LogicalPlan::Distinct { input } => {
            LogicalPlan::Distinct { input: Box::new(prune_scans(input, needed, star)) }
        }
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(prune_scans(input, needed, star)),
            keys: keys.clone(),
        },
        LogicalPlan::Limit { input, n } => {
            LogicalPlan::Limit { input: Box::new(prune_scans(input, needed, star)), n: *n }
        }
    }
}

/// Used by tests and EXPLAIN consumers: whether any `SELECT *` forces
/// full-width scans.
pub fn is_star_query(items: &[SelectItem]) -> bool {
    items.iter().any(|i| matches!(i, SelectItem::Star))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::LogicalPlan;
    use crate::sql::parse_select;

    fn plan(sql: &str) -> LogicalPlan {
        optimize(&LogicalPlan::from_statement(&parse_select(sql).unwrap()).unwrap())
    }

    fn find_scan(p: &LogicalPlan) -> &LogicalPlan {
        match p {
            LogicalPlan::Scan { .. } | LogicalPlan::EmptyScan { .. } => p,
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Distinct { input }
            | LogicalPlan::Limit { input, .. } => find_scan(input),
            LogicalPlan::Join { left, .. } => find_scan(left),
        }
    }

    #[test]
    fn projection_is_pruned_to_referenced_columns() {
        let p = plan("SELECT intensity FROM m WHERE source = 1");
        match find_scan(&p) {
            LogicalPlan::Scan { projection: Some(cols), .. } => {
                assert_eq!(cols.clone(), vec!["intensity", "source"]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn star_query_keeps_full_scan() {
        let p = plan("SELECT * FROM m WHERE source = 1");
        match find_scan(&p) {
            LogicalPlan::Scan { projection: None, .. } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn predicate_constants_fold() {
        let p = plan("SELECT a FROM m WHERE a > 1 + 2");
        fn find_filter(p: &LogicalPlan) -> Option<&crate::sexpr::ScalarExpr> {
            match p {
                LogicalPlan::Filter { predicate, .. } => Some(predicate),
                LogicalPlan::Project { input, .. }
                | LogicalPlan::Sort { input, .. }
                | LogicalPlan::Limit { input, .. }
                | LogicalPlan::Aggregate { input, .. } => find_filter(input),
                _ => None,
            }
        }
        assert_eq!(find_filter(&p).unwrap().to_string(), "(a > 3)");
    }

    #[test]
    fn nested_arithmetic_constants_fold_to_one_literal() {
        let p = plan("SELECT a FROM m WHERE a > (1 + 2) * 3 - 4");
        fn find_filter(p: &LogicalPlan) -> Option<&crate::sexpr::ScalarExpr> {
            match p {
                LogicalPlan::Filter { predicate, .. } => Some(predicate),
                LogicalPlan::Project { input, .. }
                | LogicalPlan::Sort { input, .. }
                | LogicalPlan::Limit { input, .. }
                | LogicalPlan::Aggregate { input, .. } => find_filter(input),
                _ => None,
            }
        }
        assert_eq!(find_filter(&p).unwrap().to_string(), "(a > 5)");
    }

    #[test]
    fn filter_column_dropped_by_projection_still_scanned() {
        // `b` appears only in the WHERE clause; the scan must still
        // materialize it for the filter even though the projection
        // discards it.
        let p = plan("SELECT a FROM t WHERE b > 1");
        match find_scan(&p) {
            LogicalPlan::Scan { projection: Some(cols), .. } => {
                assert_eq!(cols.clone(), vec!["a", "b"]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn explain_surfaces_pruning_predicate_after_optimization() {
        // Folding happens first, so the pruning line shows the folded
        // literal — the same rhs the executor checks against zone maps.
        let p = plan("SELECT a FROM t WHERE b > 1 + 2 AND a < 10 OR a > 99");
        let text = p.explain();
        assert!(
            !text.contains("Pruning"),
            "top-level OR is not sargable, got:\n{text}"
        );
        let p = plan("SELECT a FROM t WHERE b > 1 + 2 AND a < 10");
        let text = p.explain();
        assert!(
            text.contains("Pruning [b > 3 AND a < 10] (exact)"),
            "expected folded pruning line, got:\n{text}"
        );
    }

    #[test]
    fn nested_limits_fold_to_tighter() {
        let inner = LogicalPlan::Limit {
            input: Box::new(LogicalPlan::Limit {
                input: Box::new(LogicalPlan::Scan { table: "t".into(), projection: None }),
                n: 5,
            }),
            n: 10,
        };
        match optimize(&inner) {
            LogicalPlan::Limit { n, .. } => assert_eq!(n, 5),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn limit_zero_collapses_scans_to_empty() {
        let p = plan("SELECT a FROM t WHERE b > 1 LIMIT 0");
        match find_scan(&p) {
            LogicalPlan::EmptyScan { table, projection } => {
                assert_eq!(table, "t");
                // Projection pruning still ran before the collapse.
                assert_eq!(projection.clone().unwrap(), vec!["a", "b"]);
            }
            other => panic!("expected EmptyScan, got {other:?}"),
        }
        // The limit node survives (an aggregate below would still emit
        // its one global row for the limit to drop).
        assert!(matches!(p, LogicalPlan::Limit { n: 0, .. }));
    }

    #[test]
    fn limit_zero_from_nested_limits_also_collapses() {
        let inner = LogicalPlan::Limit {
            input: Box::new(LogicalPlan::Limit {
                input: Box::new(LogicalPlan::Scan { table: "t".into(), projection: None }),
                n: 0,
            }),
            n: 10,
        };
        let p = optimize(&inner);
        assert!(matches!(p, LogicalPlan::Limit { n: 0, .. }));
        assert!(matches!(find_scan(&p), LogicalPlan::EmptyScan { .. }));
    }

    #[test]
    fn nonzero_limit_keeps_real_scans() {
        let p = plan("SELECT a FROM t LIMIT 3");
        assert!(matches!(find_scan(&p), LogicalPlan::Scan { .. }));
    }

    #[test]
    fn aggregate_scan_pruned_to_group_and_arg_columns() {
        let p = plan("SELECT source, AVG(intensity) FROM m GROUP BY source");
        match find_scan(&p) {
            LogicalPlan::Scan { projection: Some(cols), .. } => {
                assert_eq!(cols.clone(), vec!["intensity", "source"]);
            }
            other => panic!("{other:?}"),
        }
    }
}
