//! Errors for SQL parsing, planning and execution.

use lawsdb_storage::StorageError;
use std::fmt;

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, QueryError>;

/// Errors produced by the query layer.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// Lexical error in the SQL text.
    Lex {
        /// Details.
        detail: String,
        /// Byte offset.
        pos: usize,
    },
    /// Syntax error.
    Parse {
        /// What was expected.
        expected: String,
        /// What was found.
        found: String,
    },
    /// A referenced column does not exist in the input schema.
    UnknownColumn {
        /// The missing name.
        name: String,
    },
    /// Aggregates mixed with non-grouped columns, or similar shape
    /// violations.
    InvalidAggregate {
        /// Explanation.
        reason: String,
    },
    /// A type error during evaluation (e.g. arithmetic on strings).
    Type {
        /// Explanation.
        reason: String,
    },
    /// Unsupported SQL construct (kept explicit so callers can tell
    /// "bad query" from "valid SQL we don't do").
    Unsupported {
        /// The construct.
        what: String,
    },
    /// Underlying storage failure.
    Storage(StorageError),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Lex { detail, pos } => write!(f, "lex error at byte {pos}: {detail}"),
            QueryError::Parse { expected, found } => {
                write!(f, "parse error: expected {expected}, found {found}")
            }
            QueryError::UnknownColumn { name } => write!(f, "unknown column {name:?}"),
            QueryError::InvalidAggregate { reason } => write!(f, "invalid aggregate: {reason}"),
            QueryError::Type { reason } => write!(f, "type error: {reason}"),
            QueryError::Unsupported { what } => write!(f, "unsupported SQL: {what}"),
            QueryError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for QueryError {
    fn from(e: StorageError) -> Self {
        QueryError::Storage(e)
    }
}
