//! Errors for SQL parsing, planning and execution.

use lawsdb_storage::StorageError;
use std::fmt;

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, QueryError>;

/// Errors produced by the query layer.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// Lexical error in the SQL text.
    Lex {
        /// Details.
        detail: String,
        /// Byte offset.
        pos: usize,
    },
    /// Syntax error.
    Parse {
        /// What was expected.
        expected: String,
        /// What was found.
        found: String,
        /// Byte offset of the offending token in the source text
        /// (`None` for end-of-input).
        pos: Option<usize>,
    },
    /// A referenced column does not exist in the input schema.
    UnknownColumn {
        /// The missing name.
        name: String,
    },
    /// Aggregates mixed with non-grouped columns, or similar shape
    /// violations.
    InvalidAggregate {
        /// Explanation.
        reason: String,
    },
    /// A type error during evaluation (e.g. arithmetic on strings).
    Type {
        /// Explanation.
        reason: String,
    },
    /// Unsupported SQL construct (kept explicit so callers can tell
    /// "bad query" from "valid SQL we don't do").
    Unsupported {
        /// The construct.
        what: String,
    },
    /// The query ran past its wall-clock budget and was stopped at a
    /// morsel boundary.
    Timeout {
        /// Time actually elapsed when the governor tripped.
        elapsed_ms: u64,
        /// The declared budget.
        budget_ms: u64,
    },
    /// The query materialized more bytes than its memory budget allows.
    MemoryExceeded {
        /// Bytes charged when the governor tripped.
        used: usize,
        /// The declared budget.
        budget: usize,
    },
    /// The query's [`CancelToken`](crate::governor::CancelToken) was
    /// triggered; execution stopped at the next morsel boundary.
    Cancelled,
    /// Table scans admitted more rows than the declared `max_rows`.
    RowLimitExceeded {
        /// Rows admitted when the governor tripped.
        scanned: usize,
        /// The declared budget.
        budget: usize,
    },
    /// A kernel panicked inside a morsel worker. The panic was caught
    /// at the morsel boundary: this query fails with the payload below
    /// while sibling queries and shared state stay healthy.
    WorkerPanic {
        /// The panic payload, stringified.
        detail: String,
        /// Row offset of the morsel that panicked.
        offset: usize,
    },
    /// Underlying storage failure.
    Storage(StorageError),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Lex { detail, pos } => write!(f, "lex error at byte {pos}: {detail}"),
            QueryError::Parse { expected, found, pos: Some(pos) } => {
                write!(f, "parse error at byte {pos}: expected {expected}, found {found}")
            }
            QueryError::Parse { expected, found, pos: None } => {
                write!(f, "parse error: expected {expected}, found {found}")
            }
            QueryError::UnknownColumn { name } => write!(f, "unknown column {name:?}"),
            QueryError::InvalidAggregate { reason } => write!(f, "invalid aggregate: {reason}"),
            QueryError::Type { reason } => write!(f, "type error: {reason}"),
            QueryError::Unsupported { what } => write!(f, "unsupported SQL: {what}"),
            QueryError::Timeout { elapsed_ms, budget_ms } => {
                write!(f, "query timed out after {elapsed_ms} ms (budget {budget_ms} ms)")
            }
            QueryError::MemoryExceeded { used, budget } => {
                write!(f, "memory budget exceeded: {used} bytes materialized (budget {budget})")
            }
            QueryError::Cancelled => write!(f, "query cancelled"),
            QueryError::RowLimitExceeded { scanned, budget } => {
                write!(f, "row budget exceeded: {scanned} rows scanned (budget {budget})")
            }
            QueryError::WorkerPanic { detail, offset } => {
                write!(f, "worker panicked in morsel at row {offset}: {detail}")
            }
            QueryError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for QueryError {
    fn from(e: StorageError) -> Self {
        QueryError::Storage(e)
    }
}
