//! Scalar expressions over table columns.
//!
//! This is the SQL-side expression AST: unlike the model-formula AST in
//! `lawsdb-expr` it carries string literals and NULL semantics, because
//! predicates run over relational data. A lossless conversion *to* the
//! model AST exists for numeric-only expressions ([`ScalarExpr::to_model_expr`]);
//! the approximate-query engine uses it to evaluate predicates against
//! model-reconstructed values.

use crate::error::{QueryError, Result};
use lawsdb_expr::ast::CmpOp;
use lawsdb_storage::{Column, Table, Value};
use std::fmt;

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl ArithOp {
    fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            ArithOp::Add => a + b,
            ArithOp::Sub => a - b,
            ArithOp::Mul => a * b,
            ArithOp::Div => a / b,
        }
    }

    fn symbol(self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        }
    }
}

/// A scalar SQL expression.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarExpr {
    /// Column reference.
    Column(String),
    /// Numeric literal.
    Number(f64),
    /// String literal.
    Str(String),
    /// Arithmetic.
    Arith(ArithOp, Box<ScalarExpr>, Box<ScalarExpr>),
    /// Comparison (SQL three-valued logic: NULL operands → NULL).
    Cmp(CmpOp, Box<ScalarExpr>, Box<ScalarExpr>),
    /// Conjunction.
    And(Box<ScalarExpr>, Box<ScalarExpr>),
    /// Disjunction.
    Or(Box<ScalarExpr>, Box<ScalarExpr>),
    /// Negation.
    Not(Box<ScalarExpr>),
    /// Unary minus.
    Neg(Box<ScalarExpr>),
}

impl ScalarExpr {
    /// All column names referenced, deduplicated, in first-use order.
    pub fn columns(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns(&self, out: &mut Vec<String>) {
        match self {
            ScalarExpr::Column(c) => {
                if !out.contains(c) {
                    out.push(c.clone());
                }
            }
            ScalarExpr::Number(_) | ScalarExpr::Str(_) => {}
            ScalarExpr::Neg(a) | ScalarExpr::Not(a) => a.collect_columns(out),
            ScalarExpr::Arith(_, a, b)
            | ScalarExpr::Cmp(_, a, b)
            | ScalarExpr::And(a, b)
            | ScalarExpr::Or(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
        }
    }

    /// Evaluate on one row of a table (used by tests and point paths;
    /// the executor uses the vectorized [`ScalarExpr::eval_batch`]).
    pub fn eval_row(&self, table: &Table, row: usize) -> Result<Value> {
        Ok(match self {
            ScalarExpr::Column(name) => table.column(name)?.value(row)?,
            ScalarExpr::Number(v) => Value::Float(*v),
            ScalarExpr::Str(s) => Value::Str(s.clone()),
            ScalarExpr::Neg(a) => match a.eval_row(table, row)?.as_f64() {
                Some(v) => Value::Float(-v),
                None => Value::Null,
            },
            ScalarExpr::Arith(op, a, b) => {
                let av = a.eval_row(table, row)?;
                let bv = b.eval_row(table, row)?;
                match (av.as_f64(), bv.as_f64()) {
                    (Some(x), Some(y)) => Value::Float(op.apply(x, y)),
                    _ => Value::Null,
                }
            }
            ScalarExpr::Cmp(op, a, b) => {
                let av = a.eval_row(table, row)?;
                let bv = b.eval_row(table, row)?;
                match av.sql_cmp(&bv) {
                    None => Value::Null,
                    Some(ord) => Value::Bool(cmp_matches(*op, ord)),
                }
            }
            ScalarExpr::And(a, b) => three_valued_and(
                a.eval_row(table, row)?.truth(),
                b.eval_row(table, row)?.truth(),
            ),
            ScalarExpr::Or(a, b) => three_valued_or(
                a.eval_row(table, row)?.truth(),
                b.eval_row(table, row)?.truth(),
            ),
            ScalarExpr::Not(a) => match a.eval_row(table, row)?.truth() {
                Some(t) => Value::Bool(!t),
                None => Value::Null,
            },
        })
    }

    /// Vectorized evaluation over all rows of a table.
    ///
    /// Returns a `Column` of the expression's natural type. Boolean
    /// results use NULL (validity=0) for SQL UNKNOWN.
    pub fn eval_batch(&self, table: &Table) -> Result<Column> {
        let n = table.row_count();
        match self {
            ScalarExpr::Column(name) => Ok(table.column(name)?.clone()),
            ScalarExpr::Number(v) => Ok(Column::from_f64(vec![*v; n])),
            ScalarExpr::Str(s) => Ok(Column::from_str(vec![s.clone(); n])),
            ScalarExpr::Neg(a) => {
                let inner = a.eval_numeric(table)?;
                Ok(Column::from_f64_opt(
                    inner.into_iter().map(|v| v.map(|x| -x)).collect(),
                ))
            }
            ScalarExpr::Arith(op, a, b) => {
                let av = a.eval_numeric(table)?;
                let bv = b.eval_numeric(table)?;
                Ok(Column::from_f64_opt(
                    av.into_iter()
                        .zip(bv)
                        .map(|(x, y)| match (x, y) {
                            (Some(x), Some(y)) => Some(op.apply(x, y)),
                            _ => None,
                        })
                        .collect(),
                ))
            }
            ScalarExpr::Cmp(..) | ScalarExpr::And(..) | ScalarExpr::Or(..) | ScalarExpr::Not(..) => {
                let truth = self.eval_predicate(table)?;
                let mut vals = Vec::with_capacity(n);
                for t in truth {
                    vals.push(t);
                }
                // Encode Some(bool) → Bool, None → NULL.
                let bools: Vec<bool> = vals.iter().map(|t| t.unwrap_or(false)).collect();
                let mut col = Column::from_bool(&bools);
                if let Column::Bool { validity, .. } = &mut col {
                    for (i, t) in vals.iter().enumerate() {
                        if t.is_none() {
                            validity.set(i, false);
                        }
                    }
                }
                Ok(col)
            }
        }
    }

    /// Vectorized numeric evaluation: per-row `Option<f64>` (None = NULL).
    pub fn eval_numeric(&self, table: &Table) -> Result<Vec<Option<f64>>> {
        let n = table.row_count();
        match self {
            ScalarExpr::Column(name) => {
                let col = table.column(name)?;
                let vals = col.to_f64_lossy().map_err(|_| QueryError::Type {
                    reason: format!("column {name:?} is not numeric"),
                })?;
                Ok(vals.into_iter().map(|v| if v.is_nan() { None } else { Some(v) }).collect())
            }
            ScalarExpr::Number(v) => Ok(vec![Some(*v); n]),
            ScalarExpr::Str(_) => Err(QueryError::Type {
                reason: "string literal in numeric context".to_string(),
            }),
            ScalarExpr::Neg(a) => {
                Ok(a.eval_numeric(table)?.into_iter().map(|v| v.map(|x| -x)).collect())
            }
            ScalarExpr::Arith(op, a, b) => {
                let av = a.eval_numeric(table)?;
                let bv = b.eval_numeric(table)?;
                Ok(av
                    .into_iter()
                    .zip(bv)
                    .map(|(x, y)| match (x, y) {
                        (Some(x), Some(y)) => Some(op.apply(x, y)),
                        _ => None,
                    })
                    .collect())
            }
            other => {
                // Booleans coerce to 0/1 (NULL stays NULL).
                let truth = other.eval_predicate(table)?;
                Ok(truth
                    .into_iter()
                    .map(|t| t.map(|b| if b { 1.0 } else { 0.0 }))
                    .collect())
            }
        }
    }

    /// Vectorized predicate evaluation with SQL three-valued logic:
    /// per-row `Option<bool>` where `None` is UNKNOWN.
    pub fn eval_predicate(&self, table: &Table) -> Result<Vec<Option<bool>>> {
        let n = table.row_count();
        match self {
            ScalarExpr::Cmp(op, a, b) => {
                // String comparisons take the row-wise path; numeric
                // comparisons vectorize.
                if a.is_stringy(table) || b.is_stringy(table) {
                    let mut out = Vec::with_capacity(n);
                    for row in 0..n {
                        let av = a.eval_row(table, row)?;
                        let bv = b.eval_row(table, row)?;
                        out.push(av.sql_cmp(&bv).map(|ord| cmp_matches(*op, ord)));
                    }
                    return Ok(out);
                }
                let av = a.eval_numeric(table)?;
                let bv = b.eval_numeric(table)?;
                Ok(av
                    .into_iter()
                    .zip(bv)
                    .map(|(x, y)| match (x, y) {
                        (Some(x), Some(y)) => {
                            x.partial_cmp(&y).map(|ord| cmp_matches(*op, ord))
                        }
                        _ => None,
                    })
                    .collect())
            }
            ScalarExpr::And(a, b) => {
                let av = a.eval_predicate(table)?;
                let bv = b.eval_predicate(table)?;
                Ok(av
                    .into_iter()
                    .zip(bv)
                    .map(|(x, y)| three_valued_and(x, y).truth())
                    .collect())
            }
            ScalarExpr::Or(a, b) => {
                let av = a.eval_predicate(table)?;
                let bv = b.eval_predicate(table)?;
                Ok(av
                    .into_iter()
                    .zip(bv)
                    .map(|(x, y)| three_valued_or(x, y).truth())
                    .collect())
            }
            ScalarExpr::Not(a) => Ok(a
                .eval_predicate(table)?
                .into_iter()
                .map(|t| t.map(|b| !b))
                .collect()),
            other => {
                // Numeric used as predicate: non-zero is true.
                Ok(other
                    .eval_numeric(table)?
                    .into_iter()
                    .map(|v| v.map(|x| x != 0.0))
                    .collect())
            }
        }
    }

    fn is_stringy(&self, table: &Table) -> bool {
        match self {
            ScalarExpr::Str(_) => true,
            ScalarExpr::Column(name) => table
                .column(name)
                .map(|c| c.data_type() == lawsdb_storage::DataType::Str)
                .unwrap_or(false),
            _ => false,
        }
    }

    /// Convert to the model-formula AST (numeric constructs only).
    ///
    /// The approximate engine compiles the result against reconstructed
    /// model outputs. String literals and references to string columns
    /// have no model-side meaning and fail with
    /// [`QueryError::Unsupported`].
    pub fn to_model_expr(&self) -> Result<lawsdb_expr::Expr> {
        use lawsdb_expr::Expr;
        Ok(match self {
            ScalarExpr::Column(c) => Expr::Sym(c.clone()),
            ScalarExpr::Number(v) => Expr::Num(*v),
            ScalarExpr::Str(_) => {
                return Err(QueryError::Unsupported {
                    what: "string literal in model-expression context".to_string(),
                })
            }
            ScalarExpr::Neg(a) => Expr::Neg(Box::new(a.to_model_expr()?)),
            ScalarExpr::Not(a) => Expr::Not(Box::new(a.to_model_expr()?)),
            ScalarExpr::Arith(op, a, b) => {
                let a = Box::new(a.to_model_expr()?);
                let b = Box::new(b.to_model_expr()?);
                match op {
                    ArithOp::Add => Expr::Add(a, b),
                    ArithOp::Sub => Expr::Sub(a, b),
                    ArithOp::Mul => Expr::Mul(a, b),
                    ArithOp::Div => Expr::Div(a, b),
                }
            }
            ScalarExpr::Cmp(op, a, b) => {
                Expr::Cmp(*op, Box::new(a.to_model_expr()?), Box::new(b.to_model_expr()?))
            }
            ScalarExpr::And(a, b) => {
                Expr::And(Box::new(a.to_model_expr()?), Box::new(b.to_model_expr()?))
            }
            ScalarExpr::Or(a, b) => {
                Expr::Or(Box::new(a.to_model_expr()?), Box::new(b.to_model_expr()?))
            }
        })
    }

    /// Fold constant subtrees (the optimizer's constant-folding rule).
    pub fn fold_constants(&self) -> ScalarExpr {
        match self {
            ScalarExpr::Arith(op, a, b) => {
                let a = a.fold_constants();
                let b = b.fold_constants();
                if let (ScalarExpr::Number(x), ScalarExpr::Number(y)) = (&a, &b) {
                    ScalarExpr::Number(op.apply(*x, *y))
                } else {
                    ScalarExpr::Arith(*op, Box::new(a), Box::new(b))
                }
            }
            ScalarExpr::Neg(a) => {
                let a = a.fold_constants();
                if let ScalarExpr::Number(x) = &a {
                    ScalarExpr::Number(-x)
                } else {
                    ScalarExpr::Neg(Box::new(a))
                }
            }
            ScalarExpr::Cmp(op, a, b) => ScalarExpr::Cmp(
                *op,
                Box::new(a.fold_constants()),
                Box::new(b.fold_constants()),
            ),
            ScalarExpr::And(a, b) => {
                ScalarExpr::And(Box::new(a.fold_constants()), Box::new(b.fold_constants()))
            }
            ScalarExpr::Or(a, b) => {
                ScalarExpr::Or(Box::new(a.fold_constants()), Box::new(b.fold_constants()))
            }
            ScalarExpr::Not(a) => ScalarExpr::Not(Box::new(a.fold_constants())),
            other => other.clone(),
        }
    }
}

impl fmt::Display for ScalarExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarExpr::Column(c) => write!(f, "{c}"),
            ScalarExpr::Number(v) => write!(f, "{v}"),
            ScalarExpr::Str(s) => write!(f, "'{s}'"),
            ScalarExpr::Arith(op, a, b) => write!(f, "({a} {} {b})", op.symbol()),
            ScalarExpr::Cmp(op, a, b) => write!(f, "({a} {} {b})", op.symbol()),
            ScalarExpr::And(a, b) => write!(f, "({a} AND {b})"),
            ScalarExpr::Or(a, b) => write!(f, "({a} OR {b})"),
            ScalarExpr::Not(a) => write!(f, "(NOT {a})"),
            ScalarExpr::Neg(a) => write!(f, "(-{a})"),
        }
    }
}

/// Extension: read a Value as SQL truth.
trait Truth {
    fn truth(&self) -> Option<bool>;
}

impl Truth for Value {
    fn truth(&self) -> Option<bool> {
        match self {
            Value::Null => None,
            Value::Bool(b) => Some(*b),
            other => other.as_f64().map(|v| v != 0.0),
        }
    }
}

fn cmp_matches(op: CmpOp, ord: std::cmp::Ordering) -> bool {
    use std::cmp::Ordering::*;
    match op {
        CmpOp::Lt => ord == Less,
        CmpOp::Le => ord != Greater,
        CmpOp::Gt => ord == Greater,
        CmpOp::Ge => ord != Less,
        CmpOp::Eq => ord == Equal,
        CmpOp::Ne => ord != Equal,
    }
}

fn three_valued_and(a: Option<bool>, b: Option<bool>) -> Value {
    match (a, b) {
        (Some(false), _) | (_, Some(false)) => Value::Bool(false),
        (Some(true), Some(true)) => Value::Bool(true),
        _ => Value::Null,
    }
}

fn three_valued_or(a: Option<bool>, b: Option<bool>) -> Value {
    match (a, b) {
        (Some(true), _) | (_, Some(true)) => Value::Bool(true),
        (Some(false), Some(false)) => Value::Bool(false),
        _ => Value::Null,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lawsdb_storage::TableBuilder;

    fn table() -> Table {
        let mut b = TableBuilder::new("t");
        b.add_i64("a", vec![1, 2, 3]);
        b.add_f64_opt("x", vec![Some(1.5), None, Some(3.5)]);
        b.add_str("s", vec!["red".into(), "green".into(), "red".into()]);
        b.build().unwrap()
    }

    fn col(n: &str) -> ScalarExpr {
        ScalarExpr::Column(n.to_string())
    }
    fn num(v: f64) -> ScalarExpr {
        ScalarExpr::Number(v)
    }

    #[test]
    fn arithmetic_with_null_propagation() {
        let t = table();
        let e = ScalarExpr::Arith(ArithOp::Add, Box::new(col("a")), Box::new(col("x")));
        let v = e.eval_numeric(&t).unwrap();
        assert_eq!(v, vec![Some(2.5), None, Some(6.5)]);
    }

    #[test]
    fn three_valued_comparison() {
        let t = table();
        let e = ScalarExpr::Cmp(CmpOp::Gt, Box::new(col("x")), Box::new(num(2.0)));
        let p = e.eval_predicate(&t).unwrap();
        assert_eq!(p, vec![Some(false), None, Some(true)]);
    }

    #[test]
    fn null_and_false_is_false() {
        let t = table();
        // (x > 2) AND (a < 0): row 1 is NULL AND false = false.
        let e = ScalarExpr::And(
            Box::new(ScalarExpr::Cmp(CmpOp::Gt, Box::new(col("x")), Box::new(num(2.0)))),
            Box::new(ScalarExpr::Cmp(CmpOp::Lt, Box::new(col("a")), Box::new(num(0.0)))),
        );
        let p = e.eval_predicate(&t).unwrap();
        assert_eq!(p, vec![Some(false), Some(false), Some(false)]);
    }

    #[test]
    fn null_or_true_is_true() {
        let t = table();
        let e = ScalarExpr::Or(
            Box::new(ScalarExpr::Cmp(CmpOp::Gt, Box::new(col("x")), Box::new(num(2.0)))),
            Box::new(ScalarExpr::Cmp(CmpOp::Gt, Box::new(col("a")), Box::new(num(0.0)))),
        );
        let p = e.eval_predicate(&t).unwrap();
        assert_eq!(p, vec![Some(true), Some(true), Some(true)]);
    }

    #[test]
    fn string_equality() {
        let t = table();
        let e = ScalarExpr::Cmp(
            CmpOp::Eq,
            Box::new(col("s")),
            Box::new(ScalarExpr::Str("red".to_string())),
        );
        let p = e.eval_predicate(&t).unwrap();
        assert_eq!(p, vec![Some(true), Some(false), Some(true)]);
    }

    #[test]
    fn numeric_context_rejects_strings() {
        let t = table();
        let e = ScalarExpr::Arith(ArithOp::Add, Box::new(col("s")), Box::new(num(1.0)));
        assert!(e.eval_numeric(&t).is_err());
    }

    #[test]
    fn to_model_expr_numeric_only() {
        let e = ScalarExpr::Cmp(
            CmpOp::Gt,
            Box::new(ScalarExpr::Arith(ArithOp::Mul, Box::new(col("a")), Box::new(num(2.0)))),
            Box::new(num(3.0)),
        );
        let m = e.to_model_expr().unwrap();
        assert_eq!(m.to_string(), "((a * 2) > 3)");
        let s = ScalarExpr::Str("x".to_string());
        assert!(s.to_model_expr().is_err());
    }

    #[test]
    fn constant_folding() {
        let e = ScalarExpr::Arith(
            ArithOp::Add,
            Box::new(num(1.0)),
            Box::new(ScalarExpr::Arith(ArithOp::Mul, Box::new(num(2.0)), Box::new(num(3.0)))),
        );
        assert_eq!(e.fold_constants(), num(7.0));
        // Non-constant parts survive.
        let e2 = ScalarExpr::Arith(ArithOp::Add, Box::new(col("a")), Box::new(num(0.0)));
        assert!(matches!(e2.fold_constants(), ScalarExpr::Arith(..)));
    }

    #[test]
    fn columns_are_collected_in_order() {
        let e = ScalarExpr::And(
            Box::new(ScalarExpr::Cmp(CmpOp::Eq, Box::new(col("x")), Box::new(col("a")))),
            Box::new(ScalarExpr::Cmp(CmpOp::Eq, Box::new(col("a")), Box::new(num(1.0)))),
        );
        assert_eq!(e.columns(), vec!["x", "a"]);
    }
}
