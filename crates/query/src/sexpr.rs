//! Scalar expressions over table columns.
//!
//! This is the SQL-side expression AST: unlike the model-formula AST in
//! `lawsdb-expr` it carries string literals and NULL semantics, because
//! predicates run over relational data. A lossless conversion *to* the
//! model AST exists for numeric-only expressions ([`ScalarExpr::to_model_expr`]);
//! the approximate-query engine uses it to evaluate predicates against
//! model-reconstructed values.

use crate::error::{QueryError, Result};
use lawsdb_expr::ast::CmpOp;
use lawsdb_storage::bitmap::Bitmap;
use lawsdb_storage::{Column, Table, Value};
use std::fmt;

/// Vectorized predicate result as a bitmap pair: `truth` marks rows
/// that compare TRUE, `known` marks rows whose result is not SQL
/// UNKNOWN (NULL). Invariant: `truth ⊆ known`.
///
/// Filters keep exactly the `truth` rows (SQL discards both FALSE and
/// UNKNOWN), and the boolean connectives run at word speed instead of
/// per-row `Option<bool>` matching.
#[derive(Debug, Clone, PartialEq)]
pub struct PredMask {
    truth: Bitmap,
    known: Bitmap,
}

impl PredMask {
    fn from_parts(len: usize, truth: Vec<u64>, known: Vec<u64>) -> PredMask {
        PredMask {
            truth: Bitmap::from_parts(len, truth),
            known: Bitmap::from_parts(len, known),
        }
    }

    /// Wrap an all-known truth bitmap. Compressed-domain kernels
    /// (`lawsdb_storage::compress::*::eval_cmp`) produce these:
    /// comparisons over stored, non-null encoded values are never
    /// UNKNOWN.
    pub fn from_truth(truth: Bitmap) -> PredMask {
        let known = Bitmap::filled(truth.len(), true);
        PredMask { truth, known }
    }

    /// Build from per-row three-valued results.
    pub fn from_options(vals: &[Option<bool>]) -> PredMask {
        PredMask {
            truth: Bitmap::from_fn(vals.len(), |i| vals[i] == Some(true)),
            known: Bitmap::from_fn(vals.len(), |i| vals[i].is_some()),
        }
    }

    /// Number of rows covered.
    pub fn len(&self) -> usize {
        self.truth.len()
    }

    /// True when the mask covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.truth.is_empty()
    }

    /// Three-valued result for row `i`.
    pub fn get(&self, i: usize) -> Option<bool> {
        if self.known.get(i) {
            Some(self.truth.get(i))
        } else {
            None
        }
    }

    /// Rows a filter keeps: exactly the known-TRUE rows, in order.
    pub fn selected_indices(&self) -> Vec<usize> {
        self.truth.iter_set().collect()
    }

    /// Number of rows a filter would keep.
    pub fn selected_count(&self) -> usize {
        self.truth.count_set()
    }

    /// Bitmap of known-TRUE rows.
    pub fn truth(&self) -> &Bitmap {
        &self.truth
    }

    /// Per-row three-valued results (the legacy representation).
    pub fn to_options(&self) -> Vec<Option<bool>> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }

    /// SQL three-valued AND at word speed: FALSE dominates UNKNOWN.
    pub fn and(&self, other: &PredMask) -> PredMask {
        let truth = self.truth.and(&other.truth);
        let known = self
            .known
            .and(&other.known)
            .or(&self.known.and_not(&self.truth))
            .or(&other.known.and_not(&other.truth));
        PredMask { truth, known }
    }

    /// SQL three-valued OR at word speed: TRUE dominates UNKNOWN.
    pub fn or(&self, other: &PredMask) -> PredMask {
        let truth = self.truth.or(&other.truth);
        let known = self.known.and(&other.known).or(&truth);
        PredMask { truth, known }
    }

    /// SQL three-valued NOT: UNKNOWN stays UNKNOWN.
    pub fn not(&self) -> PredMask {
        PredMask { truth: self.known.and_not(&self.truth), known: self.known.clone() }
    }
}

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl ArithOp {
    fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            ArithOp::Add => a + b,
            ArithOp::Sub => a - b,
            ArithOp::Mul => a * b,
            ArithOp::Div => a / b,
        }
    }

    fn symbol(self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        }
    }
}

/// A scalar SQL expression.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarExpr {
    /// Column reference.
    Column(String),
    /// Numeric literal.
    Number(f64),
    /// String literal.
    Str(String),
    /// Arithmetic.
    Arith(ArithOp, Box<ScalarExpr>, Box<ScalarExpr>),
    /// Comparison (SQL three-valued logic: NULL operands → NULL).
    Cmp(CmpOp, Box<ScalarExpr>, Box<ScalarExpr>),
    /// Conjunction.
    And(Box<ScalarExpr>, Box<ScalarExpr>),
    /// Disjunction.
    Or(Box<ScalarExpr>, Box<ScalarExpr>),
    /// Negation.
    Not(Box<ScalarExpr>),
    /// Unary minus.
    Neg(Box<ScalarExpr>),
}

impl ScalarExpr {
    /// All column names referenced, deduplicated, in first-use order.
    pub fn columns(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    /// The top-level AND-connected conjuncts, left to right. A
    /// non-conjunction is its own single conjunct. SQL `AND` is Kleene
    /// (commutative and associative over `(truth, known)` masks), so
    /// evaluating the conjuncts in any order and folding with
    /// [`PredMask::and`] reproduces `eval_mask` of the whole expression
    /// bit for bit — the planner exploits this to reorder them, and the
    /// executor to short-circuit.
    pub fn conjuncts(&self) -> Vec<&ScalarExpr> {
        let mut out = Vec::new();
        self.collect_conjuncts(&mut out);
        out
    }

    fn collect_conjuncts<'a>(&'a self, out: &mut Vec<&'a ScalarExpr>) {
        match self {
            ScalarExpr::And(a, b) => {
                a.collect_conjuncts(out);
                b.collect_conjuncts(out);
            }
            other => out.push(other),
        }
    }

    fn collect_columns(&self, out: &mut Vec<String>) {
        match self {
            ScalarExpr::Column(c) => {
                if !out.contains(c) {
                    out.push(c.clone());
                }
            }
            ScalarExpr::Number(_) | ScalarExpr::Str(_) => {}
            ScalarExpr::Neg(a) | ScalarExpr::Not(a) => a.collect_columns(out),
            ScalarExpr::Arith(_, a, b)
            | ScalarExpr::Cmp(_, a, b)
            | ScalarExpr::And(a, b)
            | ScalarExpr::Or(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
        }
    }

    /// Evaluate on one row of a table (used by tests and point paths;
    /// the executor uses the vectorized [`ScalarExpr::eval_batch`]).
    pub fn eval_row(&self, table: &Table, row: usize) -> Result<Value> {
        Ok(match self {
            ScalarExpr::Column(name) => table.column(name)?.value(row)?,
            ScalarExpr::Number(v) => Value::Float(*v),
            ScalarExpr::Str(s) => Value::Str(s.clone()),
            ScalarExpr::Neg(a) => match a.eval_row(table, row)?.as_f64() {
                Some(v) => Value::Float(-v),
                None => Value::Null,
            },
            ScalarExpr::Arith(op, a, b) => {
                let av = a.eval_row(table, row)?;
                let bv = b.eval_row(table, row)?;
                match (av.as_f64(), bv.as_f64()) {
                    (Some(x), Some(y)) => Value::Float(op.apply(x, y)),
                    _ => Value::Null,
                }
            }
            ScalarExpr::Cmp(op, a, b) => {
                let av = a.eval_row(table, row)?;
                let bv = b.eval_row(table, row)?;
                match av.sql_cmp(&bv) {
                    None => Value::Null,
                    Some(ord) => Value::Bool(cmp_matches(*op, ord)),
                }
            }
            ScalarExpr::And(a, b) => three_valued_and(
                a.eval_row(table, row)?.truth(),
                b.eval_row(table, row)?.truth(),
            ),
            ScalarExpr::Or(a, b) => three_valued_or(
                a.eval_row(table, row)?.truth(),
                b.eval_row(table, row)?.truth(),
            ),
            ScalarExpr::Not(a) => match a.eval_row(table, row)?.truth() {
                Some(t) => Value::Bool(!t),
                None => Value::Null,
            },
        })
    }

    /// Vectorized evaluation over all rows of a table.
    ///
    /// Returns a `Column` of the expression's natural type. Boolean
    /// results use NULL (validity=0) for SQL UNKNOWN.
    pub fn eval_batch(&self, table: &Table) -> Result<Column> {
        let n = table.row_count();
        match self {
            ScalarExpr::Column(name) => Ok(table.column(name)?.clone()),
            ScalarExpr::Number(v) => Ok(Column::from_f64(vec![*v; n])),
            ScalarExpr::Str(s) => Ok(Column::from_str(vec![s.clone(); n])),
            ScalarExpr::Neg(a) => {
                let inner = a.eval_numeric(table)?;
                Ok(Column::from_f64_opt(
                    inner.into_iter().map(|v| v.map(|x| -x)).collect(),
                ))
            }
            ScalarExpr::Arith(op, a, b) => {
                let av = a.eval_numeric(table)?;
                let bv = b.eval_numeric(table)?;
                Ok(Column::from_f64_opt(
                    av.into_iter()
                        .zip(bv)
                        .map(|(x, y)| match (x, y) {
                            (Some(x), Some(y)) => Some(op.apply(x, y)),
                            _ => None,
                        })
                        .collect(),
                ))
            }
            ScalarExpr::Cmp(..) | ScalarExpr::And(..) | ScalarExpr::Or(..) | ScalarExpr::Not(..) => {
                let truth = self.eval_predicate(table)?;
                let mut vals = Vec::with_capacity(n);
                for t in truth {
                    vals.push(t);
                }
                // Encode Some(bool) → Bool, None → NULL.
                let bools: Vec<bool> = vals.iter().map(|t| t.unwrap_or(false)).collect();
                let mut col = Column::from_bool(&bools);
                if let Column::Bool { validity, .. } = &mut col {
                    for (i, t) in vals.iter().enumerate() {
                        if t.is_none() {
                            validity.set(i, false);
                        }
                    }
                }
                Ok(col)
            }
        }
    }

    /// Vectorized numeric evaluation: per-row `Option<f64>` (None = NULL).
    pub fn eval_numeric(&self, table: &Table) -> Result<Vec<Option<f64>>> {
        let n = table.row_count();
        match self {
            ScalarExpr::Column(name) => {
                let col = table.column(name)?;
                let vals = col.to_f64_lossy().map_err(|_| QueryError::Type {
                    reason: format!("column {name:?} is not numeric"),
                })?;
                Ok(vals.into_iter().map(|v| if v.is_nan() { None } else { Some(v) }).collect())
            }
            ScalarExpr::Number(v) => Ok(vec![Some(*v); n]),
            ScalarExpr::Str(_) => Err(QueryError::Type {
                reason: "string literal in numeric context".to_string(),
            }),
            ScalarExpr::Neg(a) => {
                Ok(a.eval_numeric(table)?.into_iter().map(|v| v.map(|x| -x)).collect())
            }
            ScalarExpr::Arith(op, a, b) => {
                let av = a.eval_numeric(table)?;
                let bv = b.eval_numeric(table)?;
                Ok(av
                    .into_iter()
                    .zip(bv)
                    .map(|(x, y)| match (x, y) {
                        (Some(x), Some(y)) => Some(op.apply(x, y)),
                        _ => None,
                    })
                    .collect())
            }
            other => {
                // Booleans coerce to 0/1 (NULL stays NULL).
                let truth = other.eval_predicate(table)?;
                Ok(truth
                    .into_iter()
                    .map(|t| t.map(|b| if b { 1.0 } else { 0.0 }))
                    .collect())
            }
        }
    }

    /// Vectorized predicate evaluation with SQL three-valued logic:
    /// per-row `Option<bool>` where `None` is UNKNOWN.
    ///
    /// Thin wrapper over [`ScalarExpr::eval_mask`]; the executor's filter
    /// path uses the mask directly and never materializes the options.
    pub fn eval_predicate(&self, table: &Table) -> Result<Vec<Option<bool>>> {
        Ok(self.eval_mask(table)?.to_options())
    }

    /// Vectorized predicate evaluation into a [`PredMask`].
    ///
    /// Comparisons between a `Float64`/`Int64` column and a numeric
    /// literal (or another such column) run directly over the raw value
    /// buffers; everything else falls back to [`ScalarExpr::eval_numeric`].
    /// A data value of NaN is UNKNOWN, matching `eval_numeric`'s
    /// missing-value semantics.
    pub fn eval_mask(&self, table: &Table) -> Result<PredMask> {
        let n = table.row_count();
        match self {
            ScalarExpr::Cmp(op, a, b) => {
                // String comparisons take the row-wise path; numeric
                // comparisons vectorize.
                if a.is_stringy(table) || b.is_stringy(table) {
                    let mut out = Vec::with_capacity(n);
                    for row in 0..n {
                        let av = a.eval_row(table, row)?;
                        let bv = b.eval_row(table, row)?;
                        out.push(av.sql_cmp(&bv).map(|ord| cmp_matches(*op, ord)));
                    }
                    return Ok(PredMask::from_options(&out));
                }
                if let Some(mask) = cmp_fast_path(*op, a, b, table) {
                    return Ok(mask);
                }
                let av = a.eval_numeric(table)?;
                let bv = b.eval_numeric(table)?;
                let mut truth = vec![0u64; n.div_ceil(64)];
                let mut known = vec![0u64; n.div_ceil(64)];
                for (i, (x, y)) in av.into_iter().zip(bv).enumerate() {
                    if let (Some(x), Some(y)) = (x, y) {
                        if let Some(ord) = x.partial_cmp(&y) {
                            known[i / 64] |= 1 << (i % 64);
                            if cmp_matches(*op, ord) {
                                truth[i / 64] |= 1 << (i % 64);
                            }
                        }
                    }
                }
                Ok(PredMask::from_parts(n, truth, known))
            }
            ScalarExpr::And(a, b) => Ok(a.eval_mask(table)?.and(&b.eval_mask(table)?)),
            ScalarExpr::Or(a, b) => Ok(a.eval_mask(table)?.or(&b.eval_mask(table)?)),
            ScalarExpr::Not(a) => Ok(a.eval_mask(table)?.not()),
            other => {
                // Numeric used as predicate: non-zero is true.
                let vals = other.eval_numeric(table)?;
                let mut truth = vec![0u64; n.div_ceil(64)];
                let mut known = vec![0u64; n.div_ceil(64)];
                for (i, v) in vals.into_iter().enumerate() {
                    if let Some(x) = v {
                        known[i / 64] |= 1 << (i % 64);
                        if x != 0.0 {
                            truth[i / 64] |= 1 << (i % 64);
                        }
                    }
                }
                Ok(PredMask::from_parts(n, truth, known))
            }
        }
    }

    fn is_stringy(&self, table: &Table) -> bool {
        match self {
            ScalarExpr::Str(_) => true,
            ScalarExpr::Column(name) => table
                .column(name)
                .map(|c| c.data_type() == lawsdb_storage::DataType::Str)
                .unwrap_or(false),
            _ => false,
        }
    }

    /// Convert to the model-formula AST (numeric constructs only).
    ///
    /// The approximate engine compiles the result against reconstructed
    /// model outputs. String literals and references to string columns
    /// have no model-side meaning and fail with
    /// [`QueryError::Unsupported`].
    pub fn to_model_expr(&self) -> Result<lawsdb_expr::Expr> {
        use lawsdb_expr::Expr;
        Ok(match self {
            ScalarExpr::Column(c) => Expr::Sym(c.clone()),
            ScalarExpr::Number(v) => Expr::Num(*v),
            ScalarExpr::Str(_) => {
                return Err(QueryError::Unsupported {
                    what: "string literal in model-expression context".to_string(),
                })
            }
            ScalarExpr::Neg(a) => Expr::Neg(Box::new(a.to_model_expr()?)),
            ScalarExpr::Not(a) => Expr::Not(Box::new(a.to_model_expr()?)),
            ScalarExpr::Arith(op, a, b) => {
                let a = Box::new(a.to_model_expr()?);
                let b = Box::new(b.to_model_expr()?);
                match op {
                    ArithOp::Add => Expr::Add(a, b),
                    ArithOp::Sub => Expr::Sub(a, b),
                    ArithOp::Mul => Expr::Mul(a, b),
                    ArithOp::Div => Expr::Div(a, b),
                }
            }
            ScalarExpr::Cmp(op, a, b) => {
                Expr::Cmp(*op, Box::new(a.to_model_expr()?), Box::new(b.to_model_expr()?))
            }
            ScalarExpr::And(a, b) => {
                Expr::And(Box::new(a.to_model_expr()?), Box::new(b.to_model_expr()?))
            }
            ScalarExpr::Or(a, b) => {
                Expr::Or(Box::new(a.to_model_expr()?), Box::new(b.to_model_expr()?))
            }
        })
    }

    /// Fold constant subtrees (the optimizer's constant-folding rule).
    pub fn fold_constants(&self) -> ScalarExpr {
        match self {
            ScalarExpr::Arith(op, a, b) => {
                let a = a.fold_constants();
                let b = b.fold_constants();
                if let (ScalarExpr::Number(x), ScalarExpr::Number(y)) = (&a, &b) {
                    ScalarExpr::Number(op.apply(*x, *y))
                } else {
                    ScalarExpr::Arith(*op, Box::new(a), Box::new(b))
                }
            }
            ScalarExpr::Neg(a) => {
                let a = a.fold_constants();
                if let ScalarExpr::Number(x) = &a {
                    ScalarExpr::Number(-x)
                } else {
                    ScalarExpr::Neg(Box::new(a))
                }
            }
            ScalarExpr::Cmp(op, a, b) => ScalarExpr::Cmp(
                *op,
                Box::new(a.fold_constants()),
                Box::new(b.fold_constants()),
            ),
            ScalarExpr::And(a, b) => {
                ScalarExpr::And(Box::new(a.fold_constants()), Box::new(b.fold_constants()))
            }
            ScalarExpr::Or(a, b) => {
                ScalarExpr::Or(Box::new(a.fold_constants()), Box::new(b.fold_constants()))
            }
            ScalarExpr::Not(a) => ScalarExpr::Not(Box::new(a.fold_constants())),
            other => other.clone(),
        }
    }
}

impl fmt::Display for ScalarExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarExpr::Column(c) => write!(f, "{c}"),
            ScalarExpr::Number(v) => write!(f, "{v}"),
            ScalarExpr::Str(s) => write!(f, "'{s}'"),
            ScalarExpr::Arith(op, a, b) => write!(f, "({a} {} {b})", op.symbol()),
            ScalarExpr::Cmp(op, a, b) => write!(f, "({a} {} {b})", op.symbol()),
            ScalarExpr::And(a, b) => write!(f, "({a} AND {b})"),
            ScalarExpr::Or(a, b) => write!(f, "({a} OR {b})"),
            ScalarExpr::Not(a) => write!(f, "(NOT {a})"),
            ScalarExpr::Neg(a) => write!(f, "(-{a})"),
        }
    }
}

/// Extension: read a Value as SQL truth.
trait Truth {
    fn truth(&self) -> Option<bool>;
}

impl Truth for Value {
    fn truth(&self) -> Option<bool> {
        match self {
            Value::Null => None,
            Value::Bool(b) => Some(*b),
            other => other.as_f64().map(|v| v != 0.0),
        }
    }
}

fn cmp_matches(op: CmpOp, ord: std::cmp::Ordering) -> bool {
    use std::cmp::Ordering::*;
    match op {
        CmpOp::Lt => ord == Less,
        CmpOp::Le => ord != Greater,
        CmpOp::Gt => ord == Greater,
        CmpOp::Ge => ord != Less,
        CmpOp::Eq => ord == Equal,
        CmpOp::Ne => ord != Equal,
    }
}

/// A comparison operand the typed kernels can read without boxing:
/// a raw numeric buffer plus validity, or a literal.
enum NumOperand<'a> {
    F(&'a [f64], &'a Bitmap),
    I(&'a [i64], &'a Bitmap),
    Lit(f64),
}

fn num_operand<'a>(e: &ScalarExpr, table: &'a Table) -> Option<NumOperand<'a>> {
    match e {
        ScalarExpr::Number(v) => Some(NumOperand::Lit(*v)),
        ScalarExpr::Column(name) => match table.column(name).ok()? {
            Column::Float64 { data, validity } => Some(NumOperand::F(data, validity)),
            Column::Int64 { data, validity } => Some(NumOperand::I(data, validity)),
            _ => None,
        },
        _ => None,
    }
}

/// Validity probe that skips per-bit lookups on all-valid columns.
fn valid_fn(v: &Bitmap) -> impl Fn(usize) -> bool + '_ {
    let all = v.all_set();
    move |i| all || v.get(i)
}

/// Comparison kernel, monomorphized per operand-type pair so each
/// combination compiles to a tight loop over the raw buffers. NaN
/// values compare UNKNOWN, matching `eval_numeric`'s missing-value
/// semantics.
///
/// Processes 64 rows per iteration, accumulating the truth/known bits
/// of one mask word in registers. The inner lane loop is branch-free —
/// validity, NaN-ness, and the comparison outcome are materialized as
/// `0/1` and shifted into place — so LLVM can unroll and autovectorize
/// it; nothing here depends on lane order.
fn cmp_lanes(
    op: CmpOp,
    n: usize,
    get_a: impl Fn(usize) -> f64,
    valid_a: impl Fn(usize) -> bool,
    get_b: impl Fn(usize) -> f64,
    valid_b: impl Fn(usize) -> bool,
) -> PredMask {
    #[inline(always)]
    fn run(
        n: usize,
        get_a: impl Fn(usize) -> f64,
        valid_a: impl Fn(usize) -> bool,
        get_b: impl Fn(usize) -> f64,
        valid_b: impl Fn(usize) -> bool,
        cmp: impl Fn(f64, f64) -> bool,
    ) -> PredMask {
        let words = n.div_ceil(64);
        let mut truth = vec![0u64; words];
        let mut known = vec![0u64; words];
        for w in 0..words {
            let base = w * 64;
            let lanes = (n - base).min(64);
            let mut kword = 0u64;
            let mut tword = 0u64;
            for j in 0..lanes {
                let i = base + j;
                let a = get_a(i);
                let b = get_b(i);
                // NaN comparisons are all-false except `!=`; masking
                // with `k` (which requires both sides non-NaN) keeps
                // NaN rows UNKNOWN under every operator.
                let k = (valid_a(i) && valid_b(i) && !a.is_nan() && !b.is_nan()) as u64;
                let t = cmp(a, b) as u64 & k;
                kword |= k << j;
                tword |= t << j;
            }
            known[w] = kword;
            truth[w] = tword;
        }
        PredMask::from_parts(n, truth, known)
    }
    match op {
        CmpOp::Lt => run(n, get_a, valid_a, get_b, valid_b, |a, b| a < b),
        CmpOp::Le => run(n, get_a, valid_a, get_b, valid_b, |a, b| a <= b),
        CmpOp::Gt => run(n, get_a, valid_a, get_b, valid_b, |a, b| a > b),
        CmpOp::Ge => run(n, get_a, valid_a, get_b, valid_b, |a, b| a >= b),
        CmpOp::Eq => run(n, get_a, valid_a, get_b, valid_b, |a, b| a == b),
        CmpOp::Ne => run(n, get_a, valid_a, get_b, valid_b, |a, b| a != b),
    }
}

/// Typed fast path for `column <op> literal` / `column <op> column`
/// over `Float64` and `Int64` buffers. Returns `None` when either side
/// is not such an operand (the caller falls back to the generic path).
fn cmp_fast_path(op: CmpOp, a: &ScalarExpr, b: &ScalarExpr, table: &Table) -> Option<PredMask> {
    use NumOperand::*;
    let lhs = num_operand(a, table)?;
    let rhs = num_operand(b, table)?;
    let n = table.row_count();
    let always = |_: usize| true;
    Some(match (lhs, rhs) {
        // Constant-vs-constant is rare; let the generic path fold it.
        (Lit(_), Lit(_)) => return None,
        (F(d, v), Lit(c)) => cmp_lanes(op, n, |i| d[i], valid_fn(v), |_| c, always),
        (Lit(c), F(d, v)) => cmp_lanes(op, n, |_| c, always, |i| d[i], valid_fn(v)),
        (I(d, v), Lit(c)) => cmp_lanes(op, n, |i| d[i] as f64, valid_fn(v), |_| c, always),
        (Lit(c), I(d, v)) => cmp_lanes(op, n, |_| c, always, |i| d[i] as f64, valid_fn(v)),
        (F(da, va), F(db, vb)) => {
            cmp_lanes(op, n, |i| da[i], valid_fn(va), |i| db[i], valid_fn(vb))
        }
        (I(da, va), I(db, vb)) => {
            cmp_lanes(op, n, |i| da[i] as f64, valid_fn(va), |i| db[i] as f64, valid_fn(vb))
        }
        (F(da, va), I(db, vb)) => {
            cmp_lanes(op, n, |i| da[i], valid_fn(va), |i| db[i] as f64, valid_fn(vb))
        }
        (I(da, va), F(db, vb)) => {
            cmp_lanes(op, n, |i| da[i] as f64, valid_fn(va), |i| db[i], valid_fn(vb))
        }
    })
}

fn three_valued_and(a: Option<bool>, b: Option<bool>) -> Value {
    match (a, b) {
        (Some(false), _) | (_, Some(false)) => Value::Bool(false),
        (Some(true), Some(true)) => Value::Bool(true),
        _ => Value::Null,
    }
}

fn three_valued_or(a: Option<bool>, b: Option<bool>) -> Value {
    match (a, b) {
        (Some(true), _) | (_, Some(true)) => Value::Bool(true),
        (Some(false), Some(false)) => Value::Bool(false),
        _ => Value::Null,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lawsdb_storage::TableBuilder;

    fn table() -> Table {
        let mut b = TableBuilder::new("t");
        b.add_i64("a", vec![1, 2, 3]);
        b.add_f64_opt("x", vec![Some(1.5), None, Some(3.5)]);
        b.add_str("s", vec!["red".into(), "green".into(), "red".into()]);
        b.build().unwrap()
    }

    fn col(n: &str) -> ScalarExpr {
        ScalarExpr::Column(n.to_string())
    }
    fn num(v: f64) -> ScalarExpr {
        ScalarExpr::Number(v)
    }

    #[test]
    fn arithmetic_with_null_propagation() {
        let t = table();
        let e = ScalarExpr::Arith(ArithOp::Add, Box::new(col("a")), Box::new(col("x")));
        let v = e.eval_numeric(&t).unwrap();
        assert_eq!(v, vec![Some(2.5), None, Some(6.5)]);
    }

    #[test]
    fn three_valued_comparison() {
        let t = table();
        let e = ScalarExpr::Cmp(CmpOp::Gt, Box::new(col("x")), Box::new(num(2.0)));
        let p = e.eval_predicate(&t).unwrap();
        assert_eq!(p, vec![Some(false), None, Some(true)]);
    }

    #[test]
    fn null_and_false_is_false() {
        let t = table();
        // (x > 2) AND (a < 0): row 1 is NULL AND false = false.
        let e = ScalarExpr::And(
            Box::new(ScalarExpr::Cmp(CmpOp::Gt, Box::new(col("x")), Box::new(num(2.0)))),
            Box::new(ScalarExpr::Cmp(CmpOp::Lt, Box::new(col("a")), Box::new(num(0.0)))),
        );
        let p = e.eval_predicate(&t).unwrap();
        assert_eq!(p, vec![Some(false), Some(false), Some(false)]);
    }

    #[test]
    fn null_or_true_is_true() {
        let t = table();
        let e = ScalarExpr::Or(
            Box::new(ScalarExpr::Cmp(CmpOp::Gt, Box::new(col("x")), Box::new(num(2.0)))),
            Box::new(ScalarExpr::Cmp(CmpOp::Gt, Box::new(col("a")), Box::new(num(0.0)))),
        );
        let p = e.eval_predicate(&t).unwrap();
        assert_eq!(p, vec![Some(true), Some(true), Some(true)]);
    }

    #[test]
    fn string_equality() {
        let t = table();
        let e = ScalarExpr::Cmp(
            CmpOp::Eq,
            Box::new(col("s")),
            Box::new(ScalarExpr::Str("red".to_string())),
        );
        let p = e.eval_predicate(&t).unwrap();
        assert_eq!(p, vec![Some(true), Some(false), Some(true)]);
    }

    #[test]
    fn numeric_context_rejects_strings() {
        let t = table();
        let e = ScalarExpr::Arith(ArithOp::Add, Box::new(col("s")), Box::new(num(1.0)));
        assert!(e.eval_numeric(&t).is_err());
    }

    #[test]
    fn to_model_expr_numeric_only() {
        let e = ScalarExpr::Cmp(
            CmpOp::Gt,
            Box::new(ScalarExpr::Arith(ArithOp::Mul, Box::new(col("a")), Box::new(num(2.0)))),
            Box::new(num(3.0)),
        );
        let m = e.to_model_expr().unwrap();
        assert_eq!(m.to_string(), "((a * 2) > 3)");
        let s = ScalarExpr::Str("x".to_string());
        assert!(s.to_model_expr().is_err());
    }

    #[test]
    fn constant_folding() {
        let e = ScalarExpr::Arith(
            ArithOp::Add,
            Box::new(num(1.0)),
            Box::new(ScalarExpr::Arith(ArithOp::Mul, Box::new(num(2.0)), Box::new(num(3.0)))),
        );
        assert_eq!(e.fold_constants(), num(7.0));
        // Non-constant parts survive.
        let e2 = ScalarExpr::Arith(ArithOp::Add, Box::new(col("a")), Box::new(num(0.0)));
        assert!(matches!(e2.fold_constants(), ScalarExpr::Arith(..)));
    }

    #[test]
    fn mask_selected_rows_are_known_true_only() {
        let t = table();
        let e = ScalarExpr::Cmp(CmpOp::Gt, Box::new(col("x")), Box::new(num(2.0)));
        let m = e.eval_mask(&t).unwrap();
        // Row 1 is NULL → UNKNOWN: excluded from selection.
        assert_eq!(m.to_options(), vec![Some(false), None, Some(true)]);
        assert_eq!(m.selected_indices(), vec![2]);
        assert_eq!(m.selected_count(), 1);
    }

    #[test]
    fn predmask_connectives_match_three_valued_truth_tables() {
        let vals = [Some(false), Some(true), None];
        let mut a_opts = Vec::new();
        let mut b_opts = Vec::new();
        for &x in &vals {
            for &y in &vals {
                a_opts.push(x);
                b_opts.push(y);
            }
        }
        let a = PredMask::from_options(&a_opts);
        let b = PredMask::from_options(&b_opts);
        let want_and: Vec<Option<bool>> = a_opts
            .iter()
            .zip(&b_opts)
            .map(|(&x, &y)| three_valued_and(x, y).truth())
            .collect();
        let want_or: Vec<Option<bool>> = a_opts
            .iter()
            .zip(&b_opts)
            .map(|(&x, &y)| three_valued_or(x, y).truth())
            .collect();
        let want_not: Vec<Option<bool>> = a_opts.iter().map(|&x| x.map(|v| !v)).collect();
        assert_eq!(a.and(&b).to_options(), want_and);
        assert_eq!(a.or(&b).to_options(), want_or);
        assert_eq!(a.not().to_options(), want_not);
    }

    #[test]
    fn fast_path_treats_nan_as_unknown() {
        let mut b = TableBuilder::new("t");
        b.add_f64("x", vec![f64::NAN, 1.0, -2.0]);
        let t = b.build().unwrap();
        let e = ScalarExpr::Cmp(CmpOp::Gt, Box::new(col("x")), Box::new(num(0.5)));
        assert_eq!(e.eval_predicate(&t).unwrap(), vec![None, Some(true), Some(false)]);
        // NaN literal: every comparison is UNKNOWN.
        let e = ScalarExpr::Cmp(CmpOp::Lt, Box::new(col("x")), Box::new(num(f64::NAN)));
        assert_eq!(e.eval_predicate(&t).unwrap(), vec![None, None, None]);
    }

    #[test]
    fn fast_path_handles_reversed_and_column_column_operands() {
        let t = table();
        // literal <op> column mirrors column <op> literal.
        let e = ScalarExpr::Cmp(CmpOp::Lt, Box::new(num(2.0)), Box::new(col("x")));
        assert_eq!(e.eval_predicate(&t).unwrap(), vec![Some(false), None, Some(true)]);
        // Int column vs float column, NULL propagating.
        let e = ScalarExpr::Cmp(CmpOp::Lt, Box::new(col("a")), Box::new(col("x")));
        assert_eq!(e.eval_predicate(&t).unwrap(), vec![Some(true), None, Some(true)]);
        // Int column vs literal.
        let e = ScalarExpr::Cmp(CmpOp::Ge, Box::new(col("a")), Box::new(num(2.0)));
        assert_eq!(e.eval_predicate(&t).unwrap(), vec![Some(false), Some(true), Some(true)]);
    }

    #[test]
    fn fast_path_agrees_with_generic_path() {
        let mut b = TableBuilder::new("t");
        b.add_f64_opt("x", vec![Some(1.0), None, Some(f64::NAN), Some(-3.0), Some(2.0)]);
        b.add_i64("a", vec![1, 2, 3, -3, 0]);
        let t = b.build().unwrap();
        for op in [CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge, CmpOp::Eq, CmpOp::Ne] {
            // Wrap one operand in `+ 0` to defeat the fast path; results
            // must match exactly.
            let fast = ScalarExpr::Cmp(op, Box::new(col("x")), Box::new(col("a")));
            let generic = ScalarExpr::Cmp(
                op,
                Box::new(ScalarExpr::Arith(ArithOp::Add, Box::new(col("x")), Box::new(num(0.0)))),
                Box::new(col("a")),
            );
            assert_eq!(
                fast.eval_predicate(&t).unwrap(),
                generic.eval_predicate(&t).unwrap(),
                "op {op:?}"
            );
        }
    }

    #[test]
    fn columns_are_collected_in_order() {
        let e = ScalarExpr::And(
            Box::new(ScalarExpr::Cmp(CmpOp::Eq, Box::new(col("x")), Box::new(col("a")))),
            Box::new(ScalarExpr::Cmp(CmpOp::Eq, Box::new(col("a")), Box::new(num(1.0)))),
        );
        assert_eq!(e.columns(), vec!["x", "a"]);
    }
}
