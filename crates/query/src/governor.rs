//! Query resource governance: budgets, deadlines and cooperative
//! cancellation.
//!
//! A query declares a [`ResourceBudget`] (and optionally hands out a
//! [`CancelToken`]) through [`ExecOptions`](crate::ExecOptions); the
//! executor arms a per-query [`Governor`] at query start and consults
//! it at **morsel granularity** — the natural preemption point of the
//! morsel-driven executor. A tripped budget surfaces as a structured
//! [`QueryError`] (`Timeout`, `MemoryExceeded`, `Cancelled`,
//! `RowLimitExceeded`) in deterministic morsel order, never as an
//! unbounded runaway or a process abort.
//!
//! Enforcement is cooperative and conservative: deadlines and
//! cancellation are checked before each morsel starts (a running morsel
//! finishes — bounded by morsel size, not query size), rows are charged
//! when a scan admits them, and memory is charged when a kernel
//! *materializes* output (scans are zero-copy and free).

use crate::error::{QueryError, Result};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Declarative per-query resource limits. `None` everywhere (the
/// default) means unbounded — the governor is not even armed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResourceBudget {
    /// Cap on bytes the query may materialize (filter outputs, join
    /// results, …). Zero-copy scans are not charged.
    pub memory_bytes: Option<usize>,
    /// Wall-clock budget, measured from when the executor arms the
    /// governor.
    pub deadline: Option<Duration>,
    /// Cap on rows admitted into the pipeline by table scans.
    pub max_rows: Option<usize>,
}

impl ResourceBudget {
    /// No limits.
    pub fn unlimited() -> ResourceBudget {
        ResourceBudget::default()
    }

    /// True when no limit is set (the governor can be skipped).
    pub fn is_unlimited(&self) -> bool {
        *self == ResourceBudget::default()
    }

    /// Builder: set the wall-clock budget.
    pub fn with_deadline(mut self, d: Duration) -> ResourceBudget {
        self.deadline = Some(d);
        self
    }

    /// Builder: set the materialization cap in bytes.
    pub fn with_memory_bytes(mut self, bytes: usize) -> ResourceBudget {
        self.memory_bytes = Some(bytes);
        self
    }

    /// Builder: set the scanned-row cap.
    pub fn with_max_rows(mut self, rows: usize) -> ResourceBudget {
        self.max_rows = Some(rows);
        self
    }

    /// The tighter of two budgets, per axis: a limit set on either side
    /// applies, and when both sides set one the smaller wins. This is
    /// how a server clamps client-requested budgets — a session can
    /// tighten its limits below the server's caps, never exceed them.
    pub fn intersect(&self, other: &ResourceBudget) -> ResourceBudget {
        fn tighter<T: Ord>(a: Option<T>, b: Option<T>) -> Option<T> {
            match (a, b) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, None) => a,
                (None, b) => b,
            }
        }
        ResourceBudget {
            memory_bytes: tighter(self.memory_bytes, other.memory_bytes),
            deadline: tighter(self.deadline, other.deadline),
            max_rows: tighter(self.max_rows, other.max_rows),
        }
    }
}

/// Cooperative cancellation handle. Clone it, hand a copy to the query
/// via [`ExecOptions`](crate::ExecOptions), keep the other; calling
/// [`cancel`](CancelToken::cancel) from any thread stops the query at
/// the next morsel boundary with [`QueryError::Cancelled`].
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Request cancellation. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Per-query enforcement state: the armed form of a [`ResourceBudget`].
///
/// Created by the executor when a query starts (so the deadline clock
/// measures *this* query) and shared by all of its morsel workers.
#[derive(Debug)]
pub struct Governor {
    started: Instant,
    deadline: Option<Duration>,
    memory_limit: Option<usize>,
    row_limit: Option<usize>,
    cancel: Option<CancelToken>,
    memory_used: AtomicUsize,
    rows_admitted: AtomicUsize,
}

impl Governor {
    /// Arm `budget` now. Returns `None` when there is nothing to
    /// enforce, so the unbudgeted fast path carries no governor at all.
    pub fn arm(budget: ResourceBudget, cancel: Option<CancelToken>) -> Option<Arc<Governor>> {
        if budget.is_unlimited() && cancel.is_none() {
            return None;
        }
        Some(Arc::new(Governor {
            started: Instant::now(),
            deadline: budget.deadline,
            memory_limit: budget.memory_bytes,
            row_limit: budget.max_rows,
            cancel,
            memory_used: AtomicUsize::new(0),
            rows_admitted: AtomicUsize::new(0),
        }))
    }

    /// The morsel-boundary check: cancellation first (most urgent),
    /// then the deadline.
    pub fn check(&self) -> Result<()> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Err(QueryError::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            let elapsed = self.started.elapsed();
            if elapsed > deadline {
                return Err(QueryError::Timeout {
                    elapsed_ms: elapsed.as_millis() as u64,
                    budget_ms: deadline.as_millis() as u64,
                });
            }
        }
        Ok(())
    }

    /// Charge `rows` scanned rows against the row budget.
    pub fn charge_rows(&self, rows: usize) -> Result<()> {
        let total = self.rows_admitted.fetch_add(rows, Ordering::Relaxed) + rows;
        match self.row_limit {
            Some(limit) if total > limit => {
                Err(QueryError::RowLimitExceeded { scanned: total, budget: limit })
            }
            _ => Ok(()),
        }
    }

    /// Charge `bytes` of materialized output against the memory budget.
    pub fn charge_memory(&self, bytes: usize) -> Result<()> {
        let total = self.memory_used.fetch_add(bytes, Ordering::Relaxed) + bytes;
        match self.memory_limit {
            Some(limit) if total > limit => {
                Err(QueryError::MemoryExceeded { used: total, budget: limit })
            }
            _ => Ok(()),
        }
    }

    /// Bytes charged so far.
    pub fn memory_used(&self) -> usize {
        self.memory_used.load(Ordering::Relaxed)
    }

    /// Rows charged so far.
    pub fn rows_admitted(&self) -> usize {
        self.rows_admitted.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intersect_takes_the_tighter_limit_per_axis() {
        let client = ResourceBudget::unlimited()
            .with_deadline(Duration::from_secs(120))
            .with_max_rows(1_000);
        let server = ResourceBudget::unlimited()
            .with_deadline(Duration::from_secs(60))
            .with_memory_bytes(1 << 20);
        let clamped = client.intersect(&server);
        assert_eq!(clamped.deadline, Some(Duration::from_secs(60)), "server deadline wins");
        assert_eq!(clamped.memory_bytes, Some(1 << 20), "server-only limit applies");
        assert_eq!(clamped.max_rows, Some(1_000), "client-only limit applies");
        assert_eq!(
            ResourceBudget::unlimited().intersect(&ResourceBudget::unlimited()),
            ResourceBudget::unlimited()
        );
    }

    #[test]
    fn unlimited_budget_arms_nothing() {
        assert!(Governor::arm(ResourceBudget::unlimited(), None).is_none());
        assert!(Governor::arm(ResourceBudget::default(), Some(CancelToken::new())).is_some());
    }

    #[test]
    fn cancel_token_reaches_every_clone() {
        let t = CancelToken::new();
        let g = Governor::arm(ResourceBudget::unlimited(), Some(t.clone())).unwrap();
        assert!(g.check().is_ok());
        t.cancel();
        assert!(matches!(g.check(), Err(QueryError::Cancelled)));
        assert!(t.is_cancelled());
    }

    #[test]
    fn expired_deadline_times_out() {
        let g = Governor::arm(
            ResourceBudget::unlimited().with_deadline(Duration::ZERO),
            None,
        )
        .unwrap();
        // Duration::ZERO expires as soon as any time has elapsed.
        std::thread::sleep(Duration::from_millis(1));
        assert!(matches!(g.check(), Err(QueryError::Timeout { .. })));
    }

    #[test]
    fn generous_deadline_passes() {
        let g = Governor::arm(
            ResourceBudget::unlimited().with_deadline(Duration::from_secs(3600)),
            None,
        )
        .unwrap();
        assert!(g.check().is_ok());
    }

    #[test]
    fn memory_budget_trips_on_the_crossing_charge() {
        let g = Governor::arm(ResourceBudget::unlimited().with_memory_bytes(100), None).unwrap();
        assert!(g.charge_memory(60).is_ok());
        assert!(g.charge_memory(40).is_ok(), "exactly at the limit is allowed");
        let err = g.charge_memory(1).unwrap_err();
        assert!(matches!(err, QueryError::MemoryExceeded { used: 101, budget: 100 }), "{err}");
        assert_eq!(g.memory_used(), 101);
    }

    #[test]
    fn row_budget_trips_on_the_crossing_charge() {
        let g = Governor::arm(ResourceBudget::unlimited().with_max_rows(1000), None).unwrap();
        assert!(g.charge_rows(1000).is_ok());
        assert!(matches!(
            g.charge_rows(1),
            Err(QueryError::RowLimitExceeded { scanned: 1001, budget: 1000 })
        ));
        assert_eq!(g.rows_admitted(), 1001);
    }
}
