//! Morsel-driven parallel execution primitives.
//!
//! A *morsel* is a contiguous row range of a table. The executor splits
//! pipeline inputs into fixed-size morsels, a small pool of scoped
//! worker threads pulls morsels off a shared atomic counter, and the
//! per-morsel results are merged **in morsel order** — so the output
//! (and any floating-point accumulation) is bit-identical no matter how
//! many workers run or how the OS schedules them. Table slicing is
//! zero-copy ([`lawsdb_storage::Table::slice`] shares value buffers),
//! so fan-out costs O(morsels), not O(rows).

use crate::error::{QueryError, Result};
use crate::governor::{CancelToken, Governor, ResourceBudget};
use crate::pruning::ScanStatsCollector;
use lawsdb_obs::{fields, ProfileContext};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;

/// Default rows per morsel: large enough to amortize dispatch, small
/// enough to load-balance skewed predicates.
pub const DEFAULT_MORSEL_ROWS: usize = 64 * 1024;

/// Knobs for the parallel executor.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Worker threads; `0` means one per available core. Explicit
    /// counts are clamped to the machine's available parallelism:
    /// oversubscribing cores only adds scheduling overhead (the
    /// 2-thread-on-1-core configuration regressed `filter_scan` to
    /// 0.90× in BENCH_query.json).
    pub threads: usize,
    /// Rows per morsel.
    pub morsel_rows: usize,
    /// Consult table synopses (zone maps, model bounds) to skip row
    /// ranges before evaluating predicates. On by default; benchmarks
    /// and equivalence tests turn it off to get the unpruned baseline.
    pub pruning: bool,
    /// Optional shared sink for scan-pruning counters. The executor
    /// always reports per-query [`crate::pruning::ScanStats`] through
    /// [`crate::exec::QueryResult`]; a caller-provided collector
    /// additionally accumulates across queries.
    pub stats: Option<Arc<ScanStatsCollector>>,
    /// Resource limits for each query run under these options. The
    /// executor arms a fresh [`Governor`] per query, so the deadline
    /// clock starts at query start, not options construction.
    pub budget: ResourceBudget,
    /// Cooperative cancellation handle, honored at morsel granularity.
    pub cancel: Option<CancelToken>,
    /// The armed per-query governor. Set by the executor when a query
    /// starts (from `budget` + `cancel`); callers leave it `None`.
    pub governor: Option<Arc<Governor>>,
    /// Execution-profile sink. When set, the executor records plan-node
    /// spans, per-morsel timing leaves, and pruning/governor points
    /// into it; `None` (the default) costs one branch per site.
    pub profile: Option<ProfileContext>,
    /// Server-minted query id, threaded through for observability
    /// (histogram exemplars, flight-recorder traces). `0` means
    /// unattributed. Pure observer identity — excluded from `PartialEq`
    /// so it can never key the plan cache.
    pub query_id: u64,
}

impl PartialEq for ExecOptions {
    fn eq(&self, other: &Self) -> bool {
        // The stats sink, the cancel token, the armed governor, the
        // profile sink and the query id are observers / runtime state,
        // not behavioral knobs.
        self.threads == other.threads
            && self.morsel_rows == other.morsel_rows
            && self.pruning == other.pruning
            && self.budget == other.budget
    }
}

impl Eq for ExecOptions {}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            threads: 0,
            morsel_rows: DEFAULT_MORSEL_ROWS,
            pruning: true,
            stats: None,
            budget: ResourceBudget::default(),
            cancel: None,
            governor: None,
            profile: None,
            query_id: 0,
        }
    }
}

impl ExecOptions {
    /// Single-threaded execution (still morselized, so results match
    /// the parallel path exactly).
    pub fn serial() -> ExecOptions {
        ExecOptions { threads: 1, ..ExecOptions::default() }
    }

    /// Default options with an explicit thread count.
    pub fn with_threads(threads: usize) -> ExecOptions {
        ExecOptions { threads, ..ExecOptions::default() }
    }

    /// Default options with pruning disabled (the exhaustive-scan
    /// baseline every pruned result must match bit-for-bit).
    pub fn unpruned() -> ExecOptions {
        ExecOptions { pruning: false, ..ExecOptions::default() }
    }

    /// The thread count actually used: `threads` clamped to the
    /// machine's available parallelism, or that parallelism itself when
    /// `threads == 0`. Morsel scheduling makes results identical for
    /// any worker count, so clamping never changes output — only the
    /// oversubscription overhead.
    pub fn effective_threads(&self) -> usize {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        if self.threads > 0 {
            self.threads.min(cores)
        } else {
            cores
        }
    }

    /// Default options with a resource budget.
    pub fn with_budget(budget: ResourceBudget) -> ExecOptions {
        ExecOptions { budget, ..ExecOptions::default() }
    }

    /// The morsel-boundary governor check; a no-op without a governor.
    pub fn governor_check(&self) -> Result<()> {
        match &self.governor {
            Some(g) => g.check(),
            None => Ok(()),
        }
    }

    /// Charge scanned rows against the armed governor, if any. With a
    /// profile sink set, every charge becomes a `governor.rows` point
    /// recording the amount and whether the budget admitted it.
    pub fn charge_rows(&self, rows: usize) -> Result<()> {
        match &self.governor {
            Some(g) => {
                let r = g.charge_rows(rows);
                if let Some(ctx) = &self.profile {
                    ctx.point("governor.rows", fields![rows, ok = r.is_ok()]);
                }
                r
            }
            None => Ok(()),
        }
    }

    /// Charge materialized bytes against the armed governor, if any.
    /// Profiled like [`ExecOptions::charge_rows`], as `governor.memory`.
    pub fn charge_memory(&self, bytes: usize) -> Result<()> {
        match &self.governor {
            Some(g) => {
                let r = g.charge_memory(bytes);
                if let Some(ctx) = &self.profile {
                    ctx.point("governor.memory", fields![bytes, ok = r.is_ok()]);
                }
                r
            }
            None => Ok(()),
        }
    }
}

/// Render a caught panic payload (the common `&str` / `String` cases,
/// then a fallback).
fn panic_detail(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run one morsel under panic isolation: a panicking kernel becomes a
/// structured [`QueryError::WorkerPanic`] for *this* query instead of
/// unwinding through the executor and tearing down unrelated work.
fn run_morsel<R>(
    work: &(impl Fn(usize, usize) -> Result<R> + Sync),
    offset: usize,
    len: usize,
) -> Result<R> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| work(offset, len))) {
        Ok(r) => r,
        Err(payload) => {
            Err(QueryError::WorkerPanic { detail: panic_detail(payload), offset })
        }
    }
}

/// [`run_morsel`], plus a per-morsel timing leaf when a profile sink is
/// set. Timing uses the *collector's* clock (not `Instant` directly) so
/// a `MockClock` run produces the same tree byte for byte; the leaf's
/// `offset` index makes sibling order worker-schedule-independent.
fn run_morsel_profiled<R>(
    work: &(impl Fn(usize, usize) -> Result<R> + Sync),
    profile: Option<&ProfileContext>,
    offset: usize,
    len: usize,
) -> Result<R> {
    let Some(ctx) = profile else {
        return run_morsel(work, offset, len);
    };
    let t0 = ctx.now_micros();
    let r = run_morsel(work, offset, len);
    let duration_us = ctx.now_micros().saturating_sub(t0);
    ctx.leaf("morsel", offset as u64, fields![rows = len, duration_us, ok = r.is_ok()]);
    r
}

/// Split `n_rows` into `(offset, len)` morsel ranges in row order.
pub fn morsel_ranges(n_rows: usize, morsel_rows: usize) -> Vec<(usize, usize)> {
    let step = morsel_rows.max(1);
    (0..n_rows).step_by(step).map(|o| (o, step.min(n_rows - o))).collect()
}

/// Run `work(offset, len)` over every morsel of an `n_rows` input and
/// return the results in morsel order, regardless of which worker
/// produced them or when.
///
/// Workers claim morsels from an atomic counter (work-stealing-free
/// dynamic scheduling); errors are surfaced in morsel order so failures
/// are deterministic too. With one effective thread (or one morsel) the
/// work runs inline on the caller's thread.
pub fn parallel_morsels<R, F>(n_rows: usize, opts: &ExecOptions, work: F) -> Result<Vec<R>>
where
    R: Send,
    F: Fn(usize, usize) -> Result<R> + Sync,
{
    let morsels = morsel_ranges(n_rows, opts.morsel_rows);
    let threads = opts.effective_threads().min(morsels.len());
    if threads <= 1 {
        return morsels
            .into_iter()
            .map(|(o, l)| {
                opts.governor_check()?;
                run_morsel_profiled(&work, opts.profile.as_ref(), o, l)
            })
            .collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, Result<R>)>();
    std::thread::scope(|s| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            let morsels = &morsels;
            let work = &work;
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&(offset, len)) = morsels.get(i) else { break };
                // The budget/cancel check runs before each morsel
                // starts: a cancelled or out-of-time query stops
                // within one morsel, with the error surfacing in
                // deterministic morsel order like any kernel error.
                let r = match opts.governor_check() {
                    Ok(()) => {
                        run_morsel_profiled(&work, opts.profile.as_ref(), offset, len)
                    }
                    Err(e) => Err(e),
                };
                if tx.send((i, r)).is_err() {
                    break;
                }
            });
        }
    });
    drop(tx);
    let mut out: Vec<Option<Result<R>>> = (0..morsels.len()).map(|_| None).collect();
    for (i, r) in rx {
        out[i] = Some(r);
    }
    out.into_iter()
        .map(|r| {
            // catch_unwind means a worker cannot die mid-morsel, so a
            // missing slot is a logic error — still surfaced as a
            // structured error rather than a panic of our own.
            r.unwrap_or_else(|| {
                Err(QueryError::WorkerPanic {
                    detail: "morsel produced no result".to_string(),
                    offset: 0,
                })
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::QueryError;

    #[test]
    fn ranges_cover_rows_exactly_once() {
        for (n, m) in [(0, 10), (1, 10), (10, 10), (25, 10), (100, 1), (7, 100)] {
            let ranges = morsel_ranges(n, m);
            let mut next = 0;
            for (o, l) in ranges {
                assert_eq!(o, next);
                assert!(l >= 1 && l <= m);
                next = o + l;
            }
            assert_eq!(next, n, "n={n} m={m}");
        }
    }

    #[test]
    fn zero_morsel_rows_does_not_loop_forever() {
        assert_eq!(morsel_ranges(3, 0), vec![(0, 1), (1, 1), (2, 1)]);
    }

    #[test]
    fn results_come_back_in_morsel_order() {
        let opts = ExecOptions { threads: 4, morsel_rows: 3, ..ExecOptions::default() };
        let got = parallel_morsels(20, &opts, |offset, len| Ok((offset, len))).unwrap();
        assert_eq!(got, morsel_ranges(20, 3));
    }

    #[test]
    fn serial_and_parallel_agree() {
        let work = |offset: usize, len: usize| Ok((offset..offset + len).sum::<usize>());
        let serial =
            parallel_morsels(1000, &ExecOptions { threads: 1, morsel_rows: 17, ..ExecOptions::default() }, work).unwrap();
        let parallel =
            parallel_morsels(1000, &ExecOptions { threads: 8, morsel_rows: 17, ..ExecOptions::default() }, work).unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn first_error_in_morsel_order_wins() {
        let opts = ExecOptions { threads: 4, morsel_rows: 1, ..ExecOptions::default() };
        let err = parallel_morsels(10, &opts, |offset, _| {
            if offset >= 3 {
                Err(QueryError::Unsupported { what: format!("morsel {offset}") })
            } else {
                Ok(offset)
            }
        })
        .unwrap_err();
        assert_eq!(err.to_string(), "unsupported SQL: morsel 3");
    }

    #[test]
    fn explicit_thread_counts_clamp_to_available_parallelism() {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        assert_eq!(ExecOptions::with_threads(1024).effective_threads(), cores);
        assert_eq!(ExecOptions::with_threads(1).effective_threads(), 1);
        assert_eq!(ExecOptions::default().effective_threads(), cores);
    }

    #[test]
    fn empty_input_yields_no_morsels() {
        let got: Vec<usize> =
            parallel_morsels(0, &ExecOptions::default(), |_, _| Ok(1)).unwrap();
        assert!(got.is_empty());
    }
}
