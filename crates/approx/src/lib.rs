//! # lawsdb-approx
//!
//! Approximate query answering from captured models — Section 4.2 of
//! *"Capturing the Laws of (Data) Nature"* — plus the two classical
//! baselines the paper's introduction positions against (sampling and
//! synopses) and the residual-based anomaly detector.
//!
//! * [`engine`] — the **model-backed approximate query engine**. It
//!   takes the paper's own example queries verbatim:
//!   `SELECT intensity FROM measurements WHERE source = 42 AND
//!   wavelength = 0.14` is answered by a parameter lookup plus one model
//!   evaluation; the predicate variant is answered by **parameter-space
//!   enumeration** ("calculate all intensity values with the stored set
//!   of parameters for all sources and the given wavelength") over the
//!   enumerable domains captured at fit time. Zero base-table rows are
//!   touched; every answer carries a ±2·SE error bound.
//! * [`analytic`] — closed-form aggregates for **linear** models
//!   ("for the common class of linear models, we can even … calculate
//!   analytic solutions for aggregation queries"): min/max/sum/avg/count
//!   without materializing anything.
//! * [`legal`] — the **legal-parameter-combination** structure: a
//!   from-scratch Bloom filter over the observed (group, inputs)
//!   combinations, so enumeration does not invent tuples that never
//!   existed ("we could generate a compressed lookup structure (e.g.
//!   Bloom filters) to encode all legal parameter combinations").
//! * [`sampling`] — BlinkDB-style uniform sampling with CLT error bars.
//! * [`histogram`] — equi-width / equi-depth histogram synopses with
//!   uniform-within-bucket reconstruction.
//! * [`anomaly`] — residual-based outlier ranking ("the observations
//!   that do not fit the model are of supreme interest") with
//!   precision/recall scoring against planted ground truth.
//! * [`explore`] — model exploration: rank the parameter space by the
//!   model's gradient magnitude ("find interesting subsets of the data
//!   by analyzing the first derivative of the model function").
//! * [`inverse`] — inverse prediction à la Zimmer et al. (Section 5):
//!   given a desired output, find the inputs that produce it, by
//!   enumerated search or by bisection on monotone 1-D models.

// `!(x < y)` guards are NaN-aware in tolerance/interval validation.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod analytic;
pub mod anomaly;
pub mod engine;
pub mod error;
pub mod explore;
pub mod histogram;
pub mod inverse;
pub mod legal;
pub mod sampling;

pub use engine::{ApproxAnswer, ApproxEngine, Strategy};
pub use error::{ApproxError, Result};
