//! Inverse prediction on captured models.
//!
//! Section 5 discusses Zimmer et al.'s work on continuous models: "They
//! focus particularly on inverse prediction. Given a model and desired
//! output, they search for the input values that are likely to create
//! this output." Two of their strategies map naturally onto captured
//! models:
//!
//! * [`invert_enumerated`] — search the enumerated parameter space
//!   (groups × captured variable domains) for inputs whose prediction
//!   lands within a tolerance of the target; the discrete analogue of
//!   their *Restraint Optimization* (the input space is restricted to
//!   its legal values).
//! * [`invert_continuous`] — for a single-variable model, bisect the
//!   input interval for an exact preimage of the target, valid when the
//!   model is monotone over the interval (power laws, exponentials and
//!   linear laws all are).

use crate::error::{ApproxError, Result};
use lawsdb_models::{CapturedModel, ModelParams};

/// One input point whose prediction matches the target.
#[derive(Debug, Clone, PartialEq)]
pub struct InverseMatch {
    /// Group key (`None` for global models).
    pub group: Option<i64>,
    /// Input coordinates, in `coverage.variables` order.
    pub inputs: Vec<f64>,
    /// The model's prediction at this point.
    pub value: f64,
}

/// Search the enumerated parameter space for inputs predicting within
/// `tol` of `target`. Results are sorted by |value − target|.
pub fn invert_enumerated(
    model: &CapturedModel,
    target: f64,
    tol: f64,
) -> Result<Vec<InverseMatch>> {
    if !(tol >= 0.0) {
        return Err(ApproxError::BadInput { detail: format!("invalid tolerance {tol}") });
    }
    let vars = &model.coverage.variables;
    let domains: Vec<&[f64]> = vars
        .iter()
        .map(|v| {
            model.coverage.domain_of(v).ok_or_else(|| ApproxError::NotAnswerable {
                reason: format!("variable {v:?} has no enumerable domain"),
            })
        })
        .collect::<Result<_>>()?;
    let groups: Vec<Option<i64>> = match &model.params {
        ModelParams::Global { .. } => vec![None],
        ModelParams::Grouped { .. } => model.group_keys().into_iter().map(Some).collect(),
    };

    let mut matches = Vec::new();
    let mut index = vec![0usize; vars.len()];
    let mut point: Vec<(&str, f64)> = vars.iter().map(|v| (v.as_str(), 0.0)).collect();
    for &group in &groups {
        index.iter_mut().for_each(|i| *i = 0);
        loop {
            for (d, slot) in point.iter_mut().enumerate() {
                slot.1 = domains[d][index[d]];
            }
            let value = model.predict_scalar(group, &point)?;
            if (value - target).abs() <= tol {
                matches.push(InverseMatch {
                    group,
                    inputs: point.iter().map(|(_, v)| *v).collect(),
                    value,
                });
            }
            // Mixed-radix advance.
            let mut d = 0;
            loop {
                if d == vars.len() {
                    break;
                }
                index[d] += 1;
                if index[d] < domains[d].len() {
                    break;
                }
                index[d] = 0;
                d += 1;
            }
            if d == vars.len() || vars.is_empty() {
                break;
            }
        }
    }
    matches.sort_by(|a, b| {
        (a.value - target)
            .abs()
            .partial_cmp(&(b.value - target).abs())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    Ok(matches)
}

/// Bisect `[lo, hi]` for an input of the model's single variable whose
/// prediction equals `target` (to 1e-12 relative). Returns `None` when
/// the target is not bracketed by the endpoint predictions — either out
/// of range or the model is not monotone there.
pub fn invert_continuous(
    model: &CapturedModel,
    group: Option<i64>,
    lo: f64,
    hi: f64,
    target: f64,
) -> Result<Option<f64>> {
    if model.coverage.variables.len() != 1 {
        return Err(ApproxError::NotAnswerable {
            reason: "continuous inversion needs a single-variable model".to_string(),
        });
    }
    if !(lo < hi) || !lo.is_finite() || !hi.is_finite() {
        return Err(ApproxError::BadInput { detail: format!("bad interval [{lo}, {hi}]") });
    }
    let var = model.coverage.variables[0].clone();
    let eval = |x: f64| model.predict_scalar(group, &[(var.as_str(), x)]);
    let f_lo = eval(lo)?;
    let f_hi = eval(hi)?;
    if !f_lo.is_finite() || !f_hi.is_finite() {
        return Err(ApproxError::NotAnswerable {
            reason: "model is non-finite at the interval endpoints".to_string(),
        });
    }
    // Must bracket the target.
    if (f_lo - target) * (f_hi - target) > 0.0 {
        return Ok(None);
    }
    let increasing = f_hi >= f_lo;
    let (mut a, mut b) = (lo, hi);
    for _ in 0..200 {
        let mid = 0.5 * (a + b);
        let fm = eval(mid)?;
        let go_right = if increasing { fm < target } else { fm > target };
        if go_right {
            a = mid;
        } else {
            b = mid;
        }
        if (b - a) <= 1e-12 * (1.0 + b.abs()) {
            break;
        }
    }
    Ok(Some(0.5 * (a + b)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lawsdb_fit::FitOptions;
    use lawsdb_models::bridge::fit_table_grouped;
    use lawsdb_storage::TableBuilder;

    fn model() -> CapturedModel {
        let freqs: [f64; 4] = [0.12, 0.15, 0.16, 0.18];
        let laws: [(f64, f64); 3] = [(2.0, -0.7), (0.5, -1.2), (1.0, 0.3)];
        let mut src = Vec::new();
        let mut nu = Vec::new();
        let mut intensity = Vec::new();
        for (s, &(p, a)) in laws.iter().enumerate() {
            for i in 0..40 {
                src.push(s as i64);
                nu.push(freqs[i % 4]);
                intensity.push(p * freqs[i % 4].powf(a));
            }
        }
        let mut b = TableBuilder::new("m");
        b.add_i64("source", src);
        b.add_f64("nu", nu);
        b.add_f64("intensity", intensity);
        fit_table_grouped(
            &b.build().unwrap(),
            "intensity ~ p * nu ^ alpha",
            "source",
            &FitOptions::default().with_initial("alpha", -0.7),
            1,
        )
        .unwrap()
        .0
    }

    #[test]
    fn enumerated_inversion_finds_the_producing_inputs() {
        let m = model();
        // Which (source, band) combinations emit ≈ 2·0.15^−0.7?
        let target = 2.0 * 0.15_f64.powf(-0.7);
        let hits = invert_enumerated(&m, target, 1e-6).unwrap();
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].group, Some(0));
        assert_eq!(hits[0].inputs, vec![0.15]);
    }

    #[test]
    fn enumerated_inversion_with_wide_tolerance_ranks_by_closeness() {
        let m = model();
        let target = 2.0 * 0.15_f64.powf(-0.7);
        let hits = invert_enumerated(&m, target, 2.0).unwrap();
        assert!(hits.len() > 1);
        for w in hits.windows(2) {
            assert!(
                (w[0].value - target).abs() <= (w[1].value - target).abs(),
                "sorted by closeness"
            );
        }
    }

    #[test]
    fn continuous_inversion_recovers_the_frequency() {
        let m = model();
        // Source 0: I = 2·ν^−0.7, decreasing in ν. Given I, find ν.
        let nu_true = 0.1437_f64;
        let target = 2.0 * nu_true.powf(-0.7);
        let found = invert_continuous(&m, Some(0), 0.05, 0.30, target)
            .unwrap()
            .expect("bracketed");
        assert!((found - nu_true).abs() < 1e-6, "{found}");
    }

    #[test]
    fn continuous_inversion_rejects_unbracketed_targets() {
        let m = model();
        // Far above anything source 0 emits in-band.
        let out = invert_continuous(&m, Some(0), 0.12, 0.18, 1e9).unwrap();
        assert_eq!(out, None);
    }

    #[test]
    fn continuous_inversion_works_on_increasing_laws_too() {
        let m = model();
        // Source 2 has α = +0.3: increasing in ν.
        let nu_true = 0.165_f64;
        let target = 1.0 * nu_true.powf(0.3);
        let found = invert_continuous(&m, Some(2), 0.10, 0.20, target)
            .unwrap()
            .expect("bracketed");
        assert!((found - nu_true).abs() < 1e-6, "{found}");
    }

    #[test]
    fn bad_inputs_rejected() {
        let m = model();
        assert!(invert_enumerated(&m, 1.0, -1.0).is_err());
        assert!(invert_enumerated(&m, 1.0, f64::NAN).is_err());
        assert!(invert_continuous(&m, Some(0), 0.2, 0.1, 1.0).is_err());
        assert!(invert_continuous(&m, Some(0), f64::NEG_INFINITY, 0.1, 1.0).is_err());
    }
}
