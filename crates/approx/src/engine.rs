//! The model-backed approximate query engine.
//!
//! Given a SQL query over a modeled table, the engine answers it without
//! touching a single base-table row:
//!
//! 1. **Resolve** the best active model covering the referenced response
//!    column (catalog model selection).
//! 2. **Constrain** the reconstruction dimensions from the predicate's
//!    conjunctive equality/range constraints: the group column restricts
//!    to specific keys, pinned variables evaluate at the given point,
//!    remaining variables fall back to their **enumerated domains**
//!    captured at fit time (Section 4.2's parameter-space enumeration;
//!    a non-enumerable unpinned dimension makes the query
//!    [`ApproxError::NotAnswerable`] — exactly the paper's "the cost for
//!    this could quickly overwhelm the savings" case).
//! 3. **Reconstruct** the virtual relation `(group, variables…,
//!    response)` by evaluating the model per group over the variable
//!    grid, optionally dropping combinations rejected by the model's
//!    legal filter or a registered Bloom filter of observed
//!    combinations.
//! 4. **Execute** the original SQL against the virtual relation through
//!    the ordinary query executor — filters, projections, aggregates,
//!    ORDER BY and LIMIT all apply unchanged.
//! 5. **Annotate** the answer with an error bound derived from the
//!    involved groups' residual standard errors (±2·SE), Figure 2's
//!    step 5: "returned with error bounds".
//!
//! Pure aggregate queries over *linear* models short-circuit into
//! closed-form answers ([`crate::analytic`]) without materializing the
//! grid at all.

use crate::analytic::{linear_aggregate_groups, Aggregate, Domain};
use crate::error::{ApproxError, Result};
use crate::legal::{combo_hash, BloomFilter};
use lawsdb_expr::ast::CmpOp;
use lawsdb_expr::{Bindings, Expr};
use lawsdb_models::model::ModelId;
use lawsdb_models::{CapturedModel, ModelCatalog, ModelParams};
use lawsdb_query::morsel::parallel_morsels;
use lawsdb_query::sql::{AggFunc, SelectItem, SelectStatement};
use lawsdb_query::{parse_select, ExecOptions, PruningPredicate, ScalarExpr};
use lawsdb_storage::zonemap::{PredOp, ZoneEntry};
use lawsdb_storage::{Catalog, Table, TableBuilder};
use std::collections::HashMap;
use std::sync::Arc;

/// How an approximate answer was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// All dimensions pinned by equality: a single model evaluation.
    PointLookup,
    /// Parameter-space enumeration over captured domains.
    Enumeration,
    /// Closed-form linear-model aggregate; nothing materialized.
    AnalyticAggregate,
}

/// An approximate query answer.
#[derive(Debug, Clone)]
pub struct ApproxAnswer {
    /// Result rows.
    pub table: Table,
    /// Base-table rows touched — zero by construction on every model
    /// path (the paper's zero-IO property).
    pub rows_scanned: usize,
    /// Virtual tuples reconstructed from the model (the CPU cost the
    /// paper trades the IO for).
    pub tuples_reconstructed: usize,
    /// ±bound on reconstructed response values (2·max residual SE over
    /// the involved groups), when derivable.
    pub error_bound: Option<f64>,
    /// Which strategy answered the query.
    pub strategy: Strategy,
    /// The model that answered it.
    pub model: ModelId,
}

/// Per-dimension constraint extracted from a conjunctive predicate.
#[derive(Debug, Clone, Default)]
struct DimConstraint {
    /// Pinned exact values (from `=`).
    eq: Vec<f64>,
    /// Range lower bound (from `>`/`>=`; we treat both as closed — the
    /// residual predicate re-applies exact semantics later).
    lo: Option<f64>,
    /// Range upper bound.
    hi: Option<f64>,
}

impl DimConstraint {
    fn admits(&self, v: f64) -> bool {
        if !self.eq.is_empty() && !self.eq.contains(&v) {
            return false;
        }
        if let Some(lo) = self.lo {
            if v < lo {
                return false;
            }
        }
        if let Some(hi) = self.hi {
            if v > hi {
                return false;
            }
        }
        true
    }

    fn pinned(&self) -> Option<f64> {
        if self.eq.len() == 1 {
            Some(self.eq[0])
        } else {
            None
        }
    }
}

/// The approximate query engine. Holds the model catalog plus optional
/// registered legal-combination Bloom filters.
pub struct ApproxEngine {
    models: Arc<ModelCatalog>,
    legal_filters: HashMap<u64, BloomFilter>,
    /// Cap on reconstructed tuples per query.
    pub enumeration_cap: usize,
    /// Whether stale models may answer (with their recorded quality).
    pub allow_stale: bool,
    /// Parallel-execution knobs; reconstruction fans `predict_batch`
    /// out over group keys and the residual SQL runs through the
    /// morsel-parallel executor. Results are identical for any setting.
    pub exec: ExecOptions,
}

impl ApproxEngine {
    /// New engine over a model catalog.
    pub fn new(models: Arc<ModelCatalog>) -> ApproxEngine {
        ApproxEngine {
            models,
            legal_filters: HashMap::new(),
            enumeration_cap: 10_000_000,
            allow_stale: false,
            exec: ExecOptions::default(),
        }
    }

    /// Register a Bloom filter of observed (group, variables…) combos
    /// for a model; enumeration will drop combinations it rejects.
    pub fn register_legal_filter(&mut self, model: ModelId, filter: BloomFilter) {
        self.legal_filters.insert(model.0, filter);
    }

    /// Answer a SELECT approximately from captured models.
    pub fn answer(&self, sql: &str) -> Result<ApproxAnswer> {
        let stmt = parse_select(sql)?;
        if stmt.join.is_some() {
            return Err(ApproxError::NotAnswerable {
                reason: "joins are not answerable from a single model".to_string(),
            });
        }
        let model = self.resolve_model(&stmt)?;
        let constraints = extract_constraints(stmt.predicate.as_ref());

        // Try the closed-form path first: aggregate-only query over a
        // linear model.
        if let Some(answer) = self.try_analytic(&stmt, &model, &constraints)? {
            return Ok(answer);
        }

        // Build the reconstruction dimensions.
        let (keys, pinned_all) = self.group_dimension(&model, &constraints)?;
        let (var_values, vars_pinned) = self.variable_dimensions(&model, &constraints)?;

        let grid = cartesian(&var_values);
        let tuples = keys.len().checked_mul(grid_len(&grid)).ok_or(
            ApproxError::EnumerationTooLarge { tuples: usize::MAX, cap: self.enumeration_cap },
        )?;
        if tuples > self.enumeration_cap {
            return Err(ApproxError::EnumerationTooLarge {
                tuples,
                cap: self.enumeration_cap,
            });
        }

        let pure_point = pinned_all && vars_pinned;
        // Partial model (Section 4.1): reconstruction is clipped to the
        // coverage predicate; a point lookup outside it is refused
        // rather than answered from an inapplicable model.
        let coverage_pred: Option<Expr> = match &model.coverage.predicate {
            None => None,
            Some(src) => Some(lawsdb_expr::parse_expr(src).map_err(|e| {
                ApproxError::NotAnswerable {
                    reason: format!("unparseable coverage predicate: {e}"),
                }
            })?),
        };
        // The scan pruner, reused on the model path: sargable conjuncts
        // on the response column refute whole group keys from each
        // key's predicted range *before* any tuple materializes (the
        // reconstructed response IS the prediction, so the residual
        // bound is zero here).
        let response_conjuncts: Vec<(PredOp, f64)> = stmt
            .predicate
            .as_ref()
            .and_then(PruningPredicate::extract)
            .map(|p| {
                p.conjuncts
                    .into_iter()
                    .filter(|c| c.column == model.coverage.response)
                    .map(|c| (c.op, c.rhs))
                    .collect()
            })
            .unwrap_or_default();

        let virtual_table = self.reconstruct(
            &model,
            &keys,
            &grid,
            pure_point,
            coverage_pred.as_ref(),
            &response_conjuncts,
        )?;
        let reconstructed = virtual_table.row_count();

        // Error bound: 2·max residual SE over involved groups.
        let error_bound = max_residual_se(&model, &keys).map(|se| 2.0 * se);

        // Run the original SQL over the virtual relation.
        let catalog = Catalog::new();
        catalog.register(virtual_table).map_err(ApproxError::Storage)?;
        let result = lawsdb_query::execute_with(&catalog, sql, &self.exec)?;

        Ok(ApproxAnswer {
            table: result.table,
            rows_scanned: 0,
            tuples_reconstructed: reconstructed,
            error_bound,
            strategy: if pure_point { Strategy::PointLookup } else { Strategy::Enumeration },
            model: model.id,
        })
    }

    /// Find the model whose response column the query references.
    fn resolve_model(&self, stmt: &SelectStatement) -> Result<Arc<CapturedModel>> {
        let mut referenced: Vec<String> = Vec::new();
        for item in &stmt.items {
            match item {
                SelectItem::Star => {}
                SelectItem::Expr { expr, .. } => referenced.extend(expr.columns()),
                SelectItem::Agg { arg: Some(e), .. } => referenced.extend(e.columns()),
                SelectItem::Agg { arg: None, .. } => {}
            }
        }
        if let Some(p) = &stmt.predicate {
            referenced.extend(p.columns());
        }
        for col in &referenced {
            if let Ok(m) = self.models.best_for(&stmt.table, col, self.allow_stale) {
                return Ok(m);
            }
        }
        Err(ApproxError::NotAnswerable {
            reason: format!(
                "no active model covers any referenced column of {:?}",
                stmt.table
            ),
        })
    }

    /// Group-key dimension: restricted keys and whether it is pinned.
    fn group_dimension(
        &self,
        model: &CapturedModel,
        constraints: &Option<HashMap<String, DimConstraint>>,
    ) -> Result<(Vec<Option<i64>>, bool)> {
        match &model.params {
            ModelParams::Global { .. } => Ok((vec![None], true)),
            ModelParams::Grouped { group_column, .. } => {
                let all = model.group_keys();
                if let Some(cs) = constraints {
                    if let Some(c) = cs.get(group_column) {
                        let keys: Vec<Option<i64>> = all
                            .iter()
                            .copied()
                            .filter(|&k| c.admits(k as f64))
                            .map(Some)
                            .collect();
                        let pinned = c.pinned().is_some();
                        return Ok((keys, pinned));
                    }
                }
                Ok((all.into_iter().map(Some).collect(), false))
            }
        }
    }

    /// Variable dimensions: per variable the values to evaluate at, and
    /// whether all variables were pinned by equality.
    fn variable_dimensions(
        &self,
        model: &CapturedModel,
        constraints: &Option<HashMap<String, DimConstraint>>,
    ) -> Result<(Vec<Vec<f64>>, bool)> {
        let mut out = Vec::with_capacity(model.coverage.variables.len());
        let mut all_pinned = true;
        for var in &model.coverage.variables {
            let c = constraints.as_ref().and_then(|cs| cs.get(var));
            if let Some(v) = c.and_then(|c| c.pinned()) {
                out.push(vec![v]);
                continue;
            }
            all_pinned = false;
            match model.coverage.domain_of(var) {
                Some(domain) => {
                    let values: Vec<f64> = match c {
                        Some(c) => domain.iter().copied().filter(|&v| c.admits(v)).collect(),
                        None => domain.to_vec(),
                    };
                    out.push(values);
                }
                None => {
                    return Err(ApproxError::NotAnswerable {
                        reason: format!(
                            "variable {var:?} is unbound and not enumerable \
                             (the paper's parameter-space-enumeration limit)"
                        ),
                    })
                }
            }
        }
        Ok((out, all_pinned))
    }

    /// Materialize the virtual relation.
    fn reconstruct(
        &self,
        model: &CapturedModel,
        keys: &[Option<i64>],
        grid: &[Vec<f64>],
        pure_point: bool,
        coverage_pred: Option<&Expr>,
        response_conjuncts: &[(PredOp, f64)],
    ) -> Result<Table> {
        let vars = &model.coverage.variables;
        let grid_rows = grid_len(grid);
        let legal_bloom = self.legal_filters.get(&model.id.0);

        // The model's own legal filter (user-supplied expression over
        // the inputs — Section 4.2's first remedy).
        let legal_expr: Option<&Expr> = model.legal_filter.as_ref();

        /// Columns reconstructed for one group key.
        struct KeyPartial {
            group: Vec<i64>,
            vars: Vec<Vec<f64>>,
            resp: Vec<f64>,
        }

        // Evaluate one group key's whole grid in a batch, then filter
        // rows through coverage/legality. Each key is independent, so
        // the keys fan out across the morsel worker pool; partials are
        // merged back in key order, which makes the reconstructed
        // relation identical for any thread count.
        let per_key = |key: Option<i64>| -> Result<KeyPartial> {
            let var_slices: Vec<&[f64]> = grid.iter().map(Vec::as_slice).collect();
            let pred = model.predict_batch(key, &var_slices)?;
            let mut out = KeyPartial {
                group: Vec::new(),
                vars: vec![Vec::new(); vars.len()],
                resp: Vec::new(),
            };
            // Zone-map pruning over the virtual relation: if the key's
            // whole predicted range refutes a response conjunct, none of
            // its rows can survive the SQL filter — skip reconstruction.
            // A non-finite prediction makes the range unbounded (never
            // prunable), mirroring model-synopsis zone construction.
            if !pure_point && !response_conjuncts.is_empty() && grid_rows > 0 {
                let mut lo = f64::INFINITY;
                let mut hi = f64::NEG_INFINITY;
                let mut unbounded = false;
                for &p in &pred {
                    if !p.is_finite() {
                        unbounded = true;
                        break;
                    }
                    lo = lo.min(p);
                    hi = hi.max(p);
                }
                if !unbounded && lo <= hi {
                    let entry = ZoneEntry::bounded(grid_rows as u32, lo, hi);
                    if response_conjuncts.iter().any(|&(op, rhs)| !entry.may_match(op, rhs)) {
                        return Ok(out);
                    }
                }
            }
            let mut combo = vec![0.0; vars.len()];
            for row in 0..grid_rows {
                for (d, g) in grid.iter().enumerate() {
                    combo[d] = g[row];
                }
                // Coverage predicate applies to *every* path: a partial
                // model must not speak for rows outside its subset.
                if let Some(cov) = coverage_pred {
                    let mut b = Bindings::new();
                    for (d, var) in vars.iter().enumerate() {
                        b.set(var, combo[d]);
                    }
                    if let (Some(k), ModelParams::Grouped { group_column, .. }) =
                        (key, &model.params)
                    {
                        b.set(group_column, k as f64);
                    }
                    let covered = cov.eval(&b).map(|v| v != 0.0).unwrap_or(false);
                    if !covered {
                        if pure_point {
                            return Err(ApproxError::NotAnswerable {
                                reason: format!(
                                    "point lies outside the model's coverage \
                                     predicate {:?}",
                                    model.coverage.predicate.as_deref().unwrap_or("")
                                ),
                            });
                        }
                        continue;
                    }
                }
                // Point lookups bypass legality: they are prediction
                // requests, not relation reconstruction (the paper's own
                // first query asks for ν = 0.14, a never-observed point).
                if !pure_point {
                    if let Some(bf) = legal_bloom {
                        if !bf.contains(combo_hash(key.unwrap_or(0), &combo)) {
                            continue;
                        }
                    }
                    if let Some(f) = legal_expr {
                        let mut b = Bindings::new();
                        for (d, var) in vars.iter().enumerate() {
                            b.set(var, combo[d]);
                        }
                        if let Some(k) = key {
                            if let ModelParams::Grouped { group_column, .. } = &model.params {
                                b.set(group_column, k as f64);
                            }
                        }
                        if f.eval(&b).map(|v| v == 0.0).unwrap_or(false) {
                            continue;
                        }
                    }
                }
                out.group.push(key.unwrap_or(0));
                for (d, c) in out.vars.iter_mut().enumerate() {
                    c.push(combo[d]);
                }
                out.resp.push(pred[row]);
            }
            Ok(out)
        };

        // One key per morsel; errors propagate in key order below so
        // failures are deterministic too.
        let key_opts = ExecOptions { morsel_rows: 1, ..self.exec.clone() };
        let partials = parallel_morsels(keys.len(), &key_opts, |offset, _| {
            Ok(per_key(keys[offset]))
        })?;

        let mut col_group: Vec<i64> = Vec::new();
        let mut col_vars: Vec<Vec<f64>> = vec![Vec::new(); vars.len()];
        let mut col_resp: Vec<f64> = Vec::new();
        for partial in partials {
            let mut p = partial?;
            col_group.append(&mut p.group);
            for (d, c) in col_vars.iter_mut().enumerate() {
                c.append(&mut p.vars[d]);
            }
            col_resp.append(&mut p.resp);
        }

        let mut tb = TableBuilder::new(model.coverage.table.clone());
        if let ModelParams::Grouped { group_column, .. } = &model.params {
            tb.add_i64(group_column.clone(), col_group);
        }
        for (d, var) in vars.iter().enumerate() {
            tb.add_f64(var.clone(), std::mem::take(&mut col_vars[d]));
        }
        tb.add_f64(model.coverage.response.clone(), col_resp);
        tb.build().map_err(ApproxError::Storage)
    }

    /// Closed-form aggregates for linear models.
    fn try_analytic(
        &self,
        stmt: &SelectStatement,
        model: &CapturedModel,
        constraints: &Option<HashMap<String, DimConstraint>>,
    ) -> Result<Option<ApproxAnswer>> {
        // Shape: exactly one aggregate over the response, no grouping.
        if !stmt.group_by.is_empty() || stmt.items.len() != 1 {
            return Ok(None);
        }
        let (func, arg) = match &stmt.items[0] {
            SelectItem::Agg { func, arg: Some(ScalarExpr::Column(c)), .. }
                if c == &model.coverage.response =>
            {
                (*func, c.clone())
            }
            _ => return Ok(None),
        };
        let _ = arg;
        let agg = match func {
            AggFunc::Count => Aggregate::Count,
            AggFunc::Sum => Aggregate::Sum,
            AggFunc::Avg => Aggregate::Avg,
            AggFunc::Min => Aggregate::Min,
            AggFunc::Max => Aggregate::Max,
        };
        // Single input variable, enumerable domain.
        if model.coverage.variables.len() != 1 {
            return Ok(None);
        }
        let var = &model.coverage.variables[0];
        let Some(domain) = model.coverage.domain_of(var) else {
            return Ok(None);
        };
        // Predicate may constrain only the variable and the group column.
        let Some(cs) = (match constraints {
            Some(cs) => Some(cs),
            None if stmt.predicate.is_none() => {
                // No predicate at all: empty constraint map.
                return self.analytic_over(model, agg, domain, &DimConstraint::default(), None);
            }
            None => None, // disjunctive predicate: bail to enumeration
        }) else {
            return Ok(None);
        };
        let group_col = match &model.params {
            ModelParams::Grouped { group_column, .. } => Some(group_column.clone()),
            ModelParams::Global { .. } => None,
        };
        for col in cs.keys() {
            if col != var && Some(col.clone()) != group_col {
                return Ok(None);
            }
        }
        let var_c = cs.get(var).cloned().unwrap_or_default();
        let group_c = group_col.as_ref().and_then(|g| cs.get(g)).cloned();
        self.analytic_over(model, agg, domain, &var_c, group_c.as_ref())
    }

    fn analytic_over(
        &self,
        model: &CapturedModel,
        agg: Aggregate,
        domain: &[f64],
        var_c: &DimConstraint,
        group_c: Option<&DimConstraint>,
    ) -> Result<Option<ApproxAnswer>> {
        let points: Vec<f64> = domain.iter().copied().filter(|&v| var_c.admits(v)).collect();
        let var = &model.coverage.variables[0];
        // Linearize per parameter vector: substitute fitted params and
        // check d/dvar is constant.
        let mut groups: Vec<(f64, f64, Domain)> = Vec::new();
        let mut max_se = 0.0f64;
        match &model.params {
            ModelParams::Global { names, values, residual_se, .. } => {
                let Some((a, b)) = linearize(&model.rhs, var, names, values) else {
                    // Non-linear model: fall back to enumeration.
                    return Ok(None);
                };
                groups.push((a, b, Domain::Points(points.clone())));
                max_se = *residual_se;
            }
            ModelParams::Grouped { names, groups: map, .. } => {
                for &key in &model.group_keys() {
                    if let Some(c) = group_c {
                        if !c.admits(key as f64) {
                            continue;
                        }
                    }
                    let g = &map[&key];
                    let Some((a, b)) = linearize(&model.rhs, var, names, &g.values) else {
                        return Ok(None);
                    };
                    groups.push((a, b, Domain::Points(points.clone())));
                    max_se = max_se.max(g.residual_se);
                }
            }
        }
        if groups.is_empty() {
            return Ok(None); // constraint excluded every group
        }
        let value = linear_aggregate_groups(&groups, agg)?;
        let mut tb = TableBuilder::new("result");
        tb.add_f64("value", vec![value]);
        let table = tb.build().map_err(ApproxError::Storage)?;
        Ok(Some(ApproxAnswer {
            table,
            rows_scanned: 0,
            tuples_reconstructed: 0,
            error_bound: Some(2.0 * max_se),
            strategy: Strategy::AnalyticAggregate,
            model: model.id,
        }))
    }
}

/// Substitute fitted parameters into the model body and test linearity
/// in `var`: returns `(intercept, slope)` when `f(x) = intercept +
/// slope·x` exactly.
fn linearize(rhs: &Expr, var: &str, names: &[String], values: &[f64]) -> Option<(f64, f64)> {
    let mut bound = rhs.clone();
    for (n, v) in names.iter().zip(values) {
        bound = bound.substitute(n, &Expr::Num(*v));
    }
    let d = lawsdb_expr::deriv::differentiate(&bound, var).ok()?;
    let slope = d.as_const()?;
    let at_zero = lawsdb_expr::simplify::simplify(&bound.substitute(var, &Expr::Num(0.0)));
    let intercept = at_zero.as_const()?;
    Some((intercept, slope))
}

/// Extract per-column constraints from a *conjunctive* predicate.
/// Returns `None` when the predicate contains OR/NOT (dimensions then
/// stay unrestricted and the residual predicate filters after
/// reconstruction).
fn extract_constraints(
    predicate: Option<&ScalarExpr>,
) -> Option<HashMap<String, DimConstraint>> {
    let mut map = HashMap::new();
    match predicate {
        None => return None,
        Some(p) => {
            if !collect(p, &mut map) {
                return None;
            }
        }
    }
    return Some(map);

    fn collect(e: &ScalarExpr, map: &mut HashMap<String, DimConstraint>) -> bool {
        match e {
            ScalarExpr::And(a, b) => collect(a, map) && collect(b, map),
            ScalarExpr::Cmp(op, a, b) => {
                let (col, val, op) = match (&**a, &**b) {
                    (ScalarExpr::Column(c), ScalarExpr::Number(v)) => (c.clone(), *v, *op),
                    (ScalarExpr::Number(v), ScalarExpr::Column(c)) => {
                        (c.clone(), *v, flip(*op))
                    }
                    // Comparisons between columns etc.: no dimension
                    // restriction, but still conjunctive — keep going.
                    _ => return true,
                };
                let c = map.entry(col).or_default();
                match op {
                    CmpOp::Eq => c.eq.push(val),
                    CmpOp::Lt | CmpOp::Le => {
                        c.hi = Some(c.hi.map_or(val, |h| h.min(val)));
                    }
                    CmpOp::Gt | CmpOp::Ge => {
                        c.lo = Some(c.lo.map_or(val, |l| l.max(val)));
                    }
                    CmpOp::Ne => {} // cannot restrict; post-filter handles it
                }
                true
            }
            // Any non-conjunctive structure: give up on restriction.
            ScalarExpr::Or(..) | ScalarExpr::Not(..) => false,
            // Other leaves restrict nothing but stay conjunctive.
            _ => true,
        }
    }

    fn flip(op: CmpOp) -> CmpOp {
        match op {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            other => other,
        }
    }
}

/// Cartesian product of variable value lists, column-wise: result[d] is
/// the d-th variable's value for every grid row.
fn cartesian(dims: &[Vec<f64>]) -> Vec<Vec<f64>> {
    if dims.is_empty() {
        return Vec::new();
    }
    let total: usize = dims.iter().map(Vec::len).product();
    let mut out: Vec<Vec<f64>> = dims.iter().map(|_| Vec::with_capacity(total)).collect();
    if total == 0 {
        return out;
    }
    let mut repeat = total;
    for (d, values) in dims.iter().enumerate() {
        repeat /= values.len();
        let cycles = total / (values.len() * repeat);
        for _ in 0..cycles {
            for &v in values {
                for _ in 0..repeat {
                    out[d].push(v);
                }
            }
        }
    }
    out
}

fn grid_len(grid: &[Vec<f64>]) -> usize {
    grid.first().map_or(1, Vec::len)
}

fn max_residual_se(model: &CapturedModel, keys: &[Option<i64>]) -> Option<f64> {
    match &model.params {
        ModelParams::Global { residual_se, .. } => Some(*residual_se),
        ModelParams::Grouped { groups, .. } => {
            let mut best: Option<f64> = None;
            for key in keys.iter().flatten() {
                if let Some(g) = groups.get(key) {
                    best = Some(best.map_or(g.residual_se, |b| b.max(g.residual_se)));
                }
            }
            best
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lawsdb_fit::FitOptions;
    use lawsdb_models::bridge::fit_table_grouped;
    use lawsdb_storage::Value;

    /// Synthetic LOFAR table: 5 sources × 4 frequencies × 10 repeats.
    fn lofar_setup() -> (Arc<ModelCatalog>, ModelId, Table) {
        let freqs: [f64; 4] = [0.12, 0.15, 0.16, 0.18];
        let laws: [(f64, f64); 5] =
            [(2.0, -0.7), (0.5, -1.2), (1.0, 0.3), (3.0, -0.5), (0.8, -0.9)];
        let mut src = Vec::new();
        let mut nu = Vec::new();
        let mut intensity = Vec::new();
        for (s, &(p, a)) in laws.iter().enumerate() {
            for rep in 0..10 {
                for &f in &freqs {
                    let _ = rep;
                    src.push(s as i64);
                    nu.push(f);
                    intensity.push(p * f.powf(a));
                }
            }
        }
        let mut b = TableBuilder::new("measurements");
        b.add_i64("source", src);
        b.add_f64("nu", nu);
        b.add_f64("intensity", intensity);
        let table = b.build().unwrap();
        let (model, _) = fit_table_grouped(
            &table,
            "intensity ~ p * nu ^ alpha",
            "source",
            &FitOptions::default(),
            2,
        )
        .unwrap();
        let catalog = Arc::new(ModelCatalog::new());
        let stored = catalog.store(model);
        (catalog, stored.id, table)
    }

    #[test]
    fn paper_query_one_is_a_zero_io_point_lookup() {
        let (models, _, _) = lofar_setup();
        let engine = ApproxEngine::new(models);
        let a = engine
            .answer("SELECT intensity FROM measurements WHERE source = 1 AND nu = 0.14")
            .unwrap();
        assert_eq!(a.strategy, Strategy::PointLookup);
        assert_eq!(a.rows_scanned, 0);
        assert_eq!(a.table.row_count(), 1);
        let got = a.table.column("intensity").unwrap().f64_data().unwrap()[0];
        let want = 0.5 * 0.14_f64.powf(-1.2);
        assert!((got - want).abs() < 1e-6, "{got} vs {want}");
        assert!(a.error_bound.is_some());
    }

    #[test]
    fn paper_query_two_enumerates_the_parameter_space() {
        let (models, _, _) = lofar_setup();
        let engine = ApproxEngine::new(models);
        let a = engine
            .answer(
                "SELECT source, intensity FROM measurements \
                 WHERE nu = 0.15 AND intensity > 1.5 ORDER BY source",
            )
            .unwrap();
        assert_eq!(a.strategy, Strategy::Enumeration);
        assert_eq!(a.rows_scanned, 0);
        // Truth: sources with p·0.15^α > 1.5 → s0: 2·0.15^-0.7≈7.6 ✓,
        // s1: 0.5·0.15^-1.2≈4.8 ✓, s2: 1·0.15^0.3≈0.57 ✗,
        // s3: 3·0.15^-0.5≈7.7 ✓, s4: 0.8·0.15^-0.9≈4.4 ✓.
        let sources: Vec<Value> =
            (0..a.table.row_count()).map(|i| a.table.row(i).unwrap()[0].clone()).collect();
        assert_eq!(
            sources,
            vec![Value::Int(0), Value::Int(1), Value::Int(3), Value::Int(4)]
        );
    }

    #[test]
    fn response_conjuncts_prune_refuted_keys_before_reconstruction() {
        let (models, _, _) = lofar_setup();
        let engine = ApproxEngine::new(models);
        let a = engine
            .answer(
                "SELECT source, intensity FROM measurements \
                 WHERE nu = 0.15 AND intensity > 1.5 ORDER BY source",
            )
            .unwrap();
        // Source 2's predicted intensity at nu = 0.15 (≈0.57) refutes
        // the conjunct, so its tuple is never reconstructed: only the
        // four surviving keys materialize.
        assert_eq!(a.tuples_reconstructed, 4);
        assert_eq!(a.table.row_count(), 4);
    }

    #[test]
    fn unsatisfiable_response_predicate_reconstructs_nothing() {
        let (models, _, _) = lofar_setup();
        let engine = ApproxEngine::new(models);
        let a = engine
            .answer("SELECT source, intensity FROM measurements WHERE intensity > 1000.0")
            .unwrap();
        assert_eq!(a.tuples_reconstructed, 0);
        assert_eq!(a.table.row_count(), 0);
    }

    #[test]
    fn unbound_source_enumerates_all_groups_once_per_nu() {
        let (models, _, _) = lofar_setup();
        let engine = ApproxEngine::new(models);
        let a = engine.answer("SELECT source, nu, intensity FROM measurements").unwrap();
        // 5 sources × 4 frequencies, regardless of the 200 base rows.
        assert_eq!(a.table.row_count(), 20);
        assert_eq!(a.tuples_reconstructed, 20);
    }

    #[test]
    fn aggregate_over_reconstruction() {
        let (models, _, _) = lofar_setup();
        let engine = ApproxEngine::new(models);
        let a = engine
            .answer(
                "SELECT source, MAX(intensity) AS peak FROM measurements \
                 GROUP BY source ORDER BY source",
            )
            .unwrap();
        assert_eq!(a.table.row_count(), 5);
        // Source 0 peaks at the lowest frequency: 2·0.12^-0.7.
        let peak0 = a.table.row(0).unwrap()[1].clone();
        let want = 2.0 * 0.12_f64.powf(-0.7);
        match peak0 {
            Value::Float(v) => assert!((v - want).abs() < 1e-6),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn range_constraint_restricts_enumerated_domain() {
        let (models, _, _) = lofar_setup();
        let engine = ApproxEngine::new(models);
        let a = engine
            .answer("SELECT nu, intensity FROM measurements WHERE source = 2 AND nu >= 0.15")
            .unwrap();
        // Domain {0.12, 0.15, 0.16, 0.18} restricted to ≥ 0.15 → 3 rows.
        assert_eq!(a.table.row_count(), 3);
    }

    #[test]
    fn registered_bloom_filter_drops_unobserved_combos() {
        let (models, id, table) = lofar_setup();
        let mut engine = ApproxEngine::new(models);
        // Build the filter from rows where source ≠ 4 at nu = 0.18, i.e.
        // pretend source 4 was never observed at 0.18.
        let src = table.column("source").unwrap().i64_data().unwrap();
        let nu = table.column("nu").unwrap().f64_data().unwrap();
        let keep: Vec<usize> = (0..table.row_count())
            .filter(|&i| !(src[i] == 4 && nu[i] == 0.18))
            .collect();
        let groups: Vec<i64> = keep.iter().map(|&i| src[i]).collect();
        let nus: Vec<f64> = keep.iter().map(|&i| nu[i]).collect();
        let bf = crate::legal::build_legal_filter(&groups, &[&nus[..]], 12);
        engine.register_legal_filter(id, bf);
        let a = engine.answer("SELECT source, nu, intensity FROM measurements").unwrap();
        // 20 combos minus the one pruned.
        assert_eq!(a.table.row_count(), 19);
        for i in 0..a.table.row_count() {
            let row = a.table.row(i).unwrap();
            assert!(
                !(row[0] == Value::Int(4) && row[1] == Value::Float(0.18)),
                "pruned combo resurfaced"
            );
        }
    }

    #[test]
    fn point_lookup_bypasses_legality() {
        // The paper's query 1 asks for ν = 0.14 — never observed.
        let (models, id, table) = lofar_setup();
        let mut engine = ApproxEngine::new(models);
        let src = table.column("source").unwrap().i64_data().unwrap().to_vec();
        let nu = table.column("nu").unwrap().f64_data().unwrap().to_vec();
        let bf = crate::legal::build_legal_filter(&src, &[&nu[..]], 12);
        engine.register_legal_filter(id, bf);
        let a = engine
            .answer("SELECT intensity FROM measurements WHERE source = 0 AND nu = 0.14")
            .unwrap();
        assert_eq!(a.table.row_count(), 1, "prediction requests are not filtered");
    }

    #[test]
    fn non_enumerable_unbound_dimension_is_not_answerable() {
        // Build a model over a continuous variable (not enumerable).
        let xs: Vec<f64> = (0..2000).map(|i| i as f64 * 0.001 + (i as f64 * 0.37).sin() * 1e-6).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 1.0 + 2.0 * x).collect();
        let mut b = TableBuilder::new("cont");
        b.add_f64("x", xs);
        b.add_f64("y", ys);
        let t = b.build().unwrap();
        let m = lawsdb_models::bridge::fit_table(&t, "y ~ a + b * x", &FitOptions::default())
            .unwrap();
        let models = Arc::new(ModelCatalog::new());
        models.store(m);
        let engine = ApproxEngine::new(models);
        // Unbound x, non-enumerable, and the projection needs tuples.
        let err = engine.answer("SELECT x, y FROM cont").unwrap_err();
        assert!(matches!(err, ApproxError::NotAnswerable { .. }), "{err}");
        // But a pinned x answers fine.
        let a = engine.answer("SELECT y FROM cont WHERE x = 0.5").unwrap();
        let got = a.table.column("y").unwrap().f64_data().unwrap()[0];
        assert!((got - 2.0).abs() < 1e-6);
    }

    #[test]
    fn analytic_aggregate_short_circuits_for_linear_models() {
        // Linear per-group model over an enumerable domain.
        let hours: Vec<f64> = (0..24).map(|h| h as f64).collect();
        let mut g = Vec::new();
        let mut x = Vec::new();
        let mut y = Vec::new();
        for key in 0..3i64 {
            for &h in &hours {
                g.push(key);
                x.push(h);
                y.push(10.0 * (key + 1) as f64 + 2.0 * h);
            }
        }
        let mut b = TableBuilder::new("load");
        b.add_i64("sensor", g);
        b.add_f64("hour", x);
        b.add_f64("temp", y);
        let t = b.build().unwrap();
        let (m, _) = fit_table_grouped(&t, "temp ~ a + b * hour", "sensor", &FitOptions::default(), 1)
            .unwrap();
        let models = Arc::new(ModelCatalog::new());
        models.store(m);
        let engine = ApproxEngine::new(models);
        let a = engine.answer("SELECT MAX(temp) FROM load").unwrap();
        assert_eq!(a.strategy, Strategy::AnalyticAggregate);
        assert_eq!(a.tuples_reconstructed, 0, "nothing materialized");
        let got = a.table.column("value").unwrap().f64_data().unwrap()[0];
        // Max = sensor 2 at hour 23: 30 + 46 = 76.
        assert!((got - 76.0).abs() < 1e-6, "{got}");
        // AVG: mean over sensors of (10(k+1) + 2·11.5) = 20 + 23 = 43.
        let a = engine.answer("SELECT AVG(temp) FROM load").unwrap();
        let got = a.table.column("value").unwrap().f64_data().unwrap()[0];
        assert!((got - 43.0).abs() < 1e-6, "{got}");
        // COUNT over the reconstruction = 3 × 24.
        let a = engine.answer("SELECT COUNT(temp) FROM load").unwrap();
        let got = a.table.column("value").unwrap().f64_data().unwrap()[0];
        assert_eq!(got, 72.0);
    }

    #[test]
    fn analytic_respects_constraints() {
        let hours: Vec<f64> = (0..24).map(|h| h as f64).collect();
        let mut g = Vec::new();
        let mut x = Vec::new();
        let mut y = Vec::new();
        for key in 0..3i64 {
            for &h in &hours {
                g.push(key);
                x.push(h);
                y.push(10.0 * (key + 1) as f64 + 2.0 * h);
            }
        }
        let mut b = TableBuilder::new("load");
        b.add_i64("sensor", g);
        b.add_f64("hour", x);
        b.add_f64("temp", y);
        let t = b.build().unwrap();
        let (m, _) = fit_table_grouped(&t, "temp ~ a + b * hour", "sensor", &FitOptions::default(), 1)
            .unwrap();
        let models = Arc::new(ModelCatalog::new());
        models.store(m);
        let engine = ApproxEngine::new(models);
        let a = engine
            .answer("SELECT MIN(temp) FROM load WHERE sensor = 1 AND hour >= 12")
            .unwrap();
        assert_eq!(a.strategy, Strategy::AnalyticAggregate);
        let got = a.table.column("value").unwrap().f64_data().unwrap()[0];
        // Sensor 1: 20 + 2·12 = 44.
        assert!((got - 44.0).abs() < 1e-6, "{got}");
    }

    #[test]
    fn enumeration_cap_is_enforced() {
        let (models, _, _) = lofar_setup();
        let mut engine = ApproxEngine::new(models);
        engine.enumeration_cap = 10;
        let err = engine.answer("SELECT source, intensity FROM measurements").unwrap_err();
        assert!(matches!(err, ApproxError::EnumerationTooLarge { tuples: 20, cap: 10 }));
    }

    #[test]
    fn allow_stale_widens_model_resolution() {
        let (models, id, _) = lofar_setup();
        models.set_state(id, lawsdb_models::ModelState::Stale).unwrap();
        let strict = ApproxEngine::new(Arc::clone(&models));
        assert!(strict
            .answer("SELECT intensity FROM measurements WHERE source = 1 AND nu = 0.15")
            .is_err());
        let mut lax = ApproxEngine::new(models);
        lax.allow_stale = true;
        let a = lax
            .answer("SELECT intensity FROM measurements WHERE source = 1 AND nu = 0.15")
            .unwrap();
        assert_eq!(a.table.row_count(), 1);
    }

    #[test]
    fn unmodeled_table_is_not_answerable() {
        let models = Arc::new(ModelCatalog::new());
        let engine = ApproxEngine::new(models);
        assert!(matches!(
            engine.answer("SELECT a FROM nowhere"),
            Err(ApproxError::NotAnswerable { .. })
        ));
    }

    #[test]
    fn cartesian_product_shape() {
        let grid = cartesian(&[vec![1.0, 2.0], vec![10.0, 20.0, 30.0]]);
        assert_eq!(grid.len(), 2);
        assert_eq!(grid[0].len(), 6);
        assert_eq!(grid[0], vec![1.0, 1.0, 1.0, 2.0, 2.0, 2.0]);
        assert_eq!(grid[1], vec![10.0, 20.0, 30.0, 10.0, 20.0, 30.0]);
        let empty = cartesian(&[]);
        assert!(empty.is_empty());
        let with_empty_dim = cartesian(&[vec![1.0], vec![]]);
        assert_eq!(grid_len(&with_empty_dim), 0);
    }

    #[test]
    fn reconstruction_is_identical_serial_vs_parallel() {
        let (models, _, _) = lofar_setup();
        let mut serial = ApproxEngine::new(Arc::clone(&models));
        serial.exec = ExecOptions::serial();
        let mut parallel = ApproxEngine::new(models);
        parallel.exec = ExecOptions { threads: 4, morsel_rows: 1, ..ExecOptions::default() };
        // No ORDER BY: row order must already match because per-key
        // partials merge in key order.
        let sql = "SELECT source, nu, intensity FROM measurements";
        let a = serial.answer(sql).unwrap();
        let b = parallel.answer(sql).unwrap();
        assert_eq!(a.tuples_reconstructed, b.tuples_reconstructed);
        assert_eq!(a.table.row_count(), b.table.row_count());
        for i in 0..a.table.row_count() {
            assert_eq!(a.table.row(i).unwrap(), b.table.row(i).unwrap());
        }
    }

    #[test]
    fn disjunctive_predicates_still_answer_correctly() {
        let (models, _, _) = lofar_setup();
        let engine = ApproxEngine::new(models);
        let a = engine
            .answer(
                "SELECT source, nu, intensity FROM measurements \
                 WHERE source = 0 OR source = 2 ORDER BY source, nu",
            )
            .unwrap();
        // Full enumeration post-filtered: 2 sources × 4 nus.
        assert_eq!(a.table.row_count(), 8);
    }
}
