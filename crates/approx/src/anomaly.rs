//! Data-anomaly detection from fit quality (Section 4.2):
//!
//! > "Often, the observations that do not fit the model are of supreme
//! > interest. These will stand out in the fitting process by for
//! > example showing large residual errors. … In our LOFAR example,
//! > there is a small number of radio sources where the intensity is
//! > seemingly unrelated to the frequency."
//!
//! Ranks grouped-model groups by misfit and scores rankings against
//! planted ground truth (the synthetic LOFAR generator injects known
//! anomalous sources).

use lawsdb_models::{CapturedModel, ModelParams};
use std::collections::HashSet;

/// How to score a group's "interestingness".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MisfitScore {
    /// Raw residual standard error (largest = most anomalous). Simple,
    /// but conflates noisy-but-conforming with non-conforming groups.
    ResidualSe,
    /// `1 − R²` — fraction of variance the law fails to explain; the
    /// scale-free measure (a bright source's absolute residuals dwarf a
    /// faint source's even when both follow the law).
    OneMinusR2,
}

/// A ranked anomaly candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Anomaly {
    /// Group key.
    pub key: i64,
    /// Misfit score (higher = more anomalous).
    pub score: f64,
}

/// Rank a grouped model's groups worst-fit-first.
///
/// Returns an empty list for global models (nothing to rank).
pub fn rank_anomalies(model: &CapturedModel, score: MisfitScore) -> Vec<Anomaly> {
    let ModelParams::Grouped { groups, .. } = &model.params else {
        return Vec::new();
    };
    let mut out: Vec<Anomaly> = groups
        .iter()
        .map(|(&key, g)| Anomaly {
            key,
            score: match score {
                MisfitScore::ResidualSe => g.residual_se,
                MisfitScore::OneMinusR2 => {
                    if g.r2.is_nan() {
                        1.0
                    } else {
                        1.0 - g.r2
                    }
                }
            },
        })
        .collect();
    out.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.key.cmp(&b.key))
    });
    out
}

/// Precision@k: fraction of the top-k ranked keys that are true
/// anomalies.
pub fn precision_at_k(ranked: &[Anomaly], truth: &HashSet<i64>, k: usize) -> f64 {
    if k == 0 {
        return f64::NAN;
    }
    let k = k.min(ranked.len());
    if k == 0 {
        return 0.0;
    }
    let hits = ranked[..k].iter().filter(|a| truth.contains(&a.key)).count();
    hits as f64 / k as f64
}

/// Recall@k: fraction of true anomalies found in the top k.
pub fn recall_at_k(ranked: &[Anomaly], truth: &HashSet<i64>, k: usize) -> f64 {
    if truth.is_empty() {
        return f64::NAN;
    }
    let k = k.min(ranked.len());
    let hits = ranked[..k].iter().filter(|a| truth.contains(&a.key)).count();
    hits as f64 / truth.len() as f64
}

/// Average precision over the full ranking (area under the
/// precision-recall curve, the single-number summary E8 reports).
pub fn average_precision(ranked: &[Anomaly], truth: &HashSet<i64>) -> f64 {
    if truth.is_empty() {
        return f64::NAN;
    }
    let mut hits = 0usize;
    let mut sum = 0.0;
    for (i, a) in ranked.iter().enumerate() {
        if truth.contains(&a.key) {
            hits += 1;
            sum += hits as f64 / (i + 1) as f64;
        }
    }
    sum / truth.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use lawsdb_models::model::{Coverage, GroupParams, ModelId, ModelState};
    use lawsdb_expr::parse_formula;
    use std::collections::HashMap;

    fn model_with_groups(groups: Vec<(i64, f64, f64)>) -> CapturedModel {
        // (key, residual_se, r2)
        let f = parse_formula("y ~ p * x ^ a").unwrap();
        let mut map = HashMap::new();
        for (k, rse, r2) in groups {
            map.insert(k, GroupParams { values: vec![1.0, 1.0], residual_se: rse, r2, n: 40 });
        }
        CapturedModel {
            id: ModelId(1),
            version: 1,
            formula_source: f.source.clone(),
            rhs: f.rhs.clone(),
            params: ModelParams::Grouped {
                group_column: "g".to_string(),
                names: vec!["a".to_string(), "p".to_string()],
                groups: map,
            },
            coverage: Coverage {
                table: "t".to_string(),
                response: "y".to_string(),
                variables: vec!["x".to_string()],
                rows_at_fit: 0,
                predicate: None,
                domains: Vec::new(),
            },
            overall_r2: 0.9,
            max_abs_residual: None,
            state: ModelState::Active,
            legal_filter: None,
        }
    }

    #[test]
    fn ranking_orders_by_score_desc() {
        let m = model_with_groups(vec![(1, 0.01, 0.99), (2, 0.5, 0.10), (3, 0.05, 0.90)]);
        let r = rank_anomalies(&m, MisfitScore::ResidualSe);
        assert_eq!(r.iter().map(|a| a.key).collect::<Vec<_>>(), vec![2, 3, 1]);
        let r2 = rank_anomalies(&m, MisfitScore::OneMinusR2);
        assert_eq!(r2[0].key, 2);
        assert!((r2[0].score - 0.9).abs() < 1e-12);
    }

    #[test]
    fn scale_free_score_beats_raw_rse_on_bright_sources() {
        // Group 10 is bright: large absolute residuals but perfect law
        // (high R²). Group 20 is faint but lawless (low R²).
        let m = model_with_groups(vec![(10, 5.0, 0.999), (20, 0.2, 0.05)]);
        let by_rse = rank_anomalies(&m, MisfitScore::ResidualSe);
        assert_eq!(by_rse[0].key, 10, "raw RSE is fooled by brightness");
        let by_r2 = rank_anomalies(&m, MisfitScore::OneMinusR2);
        assert_eq!(by_r2[0].key, 20, "1−R² finds the lawless group");
    }

    #[test]
    fn precision_recall_math() {
        let ranked = vec![
            Anomaly { key: 1, score: 0.9 },
            Anomaly { key: 2, score: 0.8 },
            Anomaly { key: 3, score: 0.7 },
            Anomaly { key: 4, score: 0.6 },
        ];
        let truth: HashSet<i64> = [1, 3].into_iter().collect();
        assert_eq!(precision_at_k(&ranked, &truth, 1), 1.0);
        assert_eq!(precision_at_k(&ranked, &truth, 2), 0.5);
        assert_eq!(recall_at_k(&ranked, &truth, 2), 0.5);
        assert_eq!(recall_at_k(&ranked, &truth, 4), 1.0);
        // AP = (1/1 + 2/3)/2
        assert!((average_precision(&ranked, &truth) - (1.0 + 2.0 / 3.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn edge_cases() {
        let ranked: Vec<Anomaly> = Vec::new();
        let truth: HashSet<i64> = [1].into_iter().collect();
        assert_eq!(precision_at_k(&ranked, &truth, 5), 0.0);
        assert_eq!(recall_at_k(&ranked, &truth, 5), 0.0);
        assert!(precision_at_k(&ranked, &truth, 0).is_nan());
        let empty_truth = HashSet::new();
        assert!(recall_at_k(&ranked, &empty_truth, 1).is_nan());
        assert!(average_precision(&ranked, &empty_truth).is_nan());
    }

    #[test]
    fn global_model_has_no_ranking() {
        use lawsdb_models::model::ModelParams as MP;
        let mut m = model_with_groups(vec![(1, 0.1, 0.9)]);
        m.params = MP::Global {
            names: vec!["a".to_string()],
            values: vec![1.0],
            residual_se: 0.1,
            r2: 0.9,
            n: 10,
        };
        assert!(rank_anomalies(&m, MisfitScore::ResidualSe).is_empty());
    }
}
