//! Errors for approximate query answering.

use std::fmt;

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, ApproxError>;

/// Errors produced by the approximate engines.
#[derive(Debug, Clone, PartialEq)]
pub enum ApproxError {
    /// The query cannot be answered from models (no coverage, unbound
    /// non-enumerable dimension, unsupported construct). Carries the
    /// reason so the session layer can fall back to exact execution and
    /// explain why.
    NotAnswerable {
        /// Why the model path refused.
        reason: String,
    },
    /// The enumerated parameter space would exceed the configured cap.
    EnumerationTooLarge {
        /// Tuples the enumeration would produce.
        tuples: usize,
        /// Configured cap.
        cap: usize,
    },
    /// Underlying model failure.
    Model(lawsdb_models::ModelError),
    /// Underlying query failure.
    Query(lawsdb_query::QueryError),
    /// Underlying storage failure.
    Storage(lawsdb_storage::StorageError),
    /// Bad construction parameters (histograms, samples).
    BadInput {
        /// Explanation.
        detail: String,
    },
}

impl fmt::Display for ApproxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApproxError::NotAnswerable { reason } => {
                write!(f, "not answerable from models: {reason}")
            }
            ApproxError::EnumerationTooLarge { tuples, cap } => {
                write!(f, "parameter space of {tuples} tuples exceeds cap {cap}")
            }
            ApproxError::Model(e) => write!(f, "model error: {e}"),
            ApproxError::Query(e) => write!(f, "query error: {e}"),
            ApproxError::Storage(e) => write!(f, "storage error: {e}"),
            ApproxError::BadInput { detail } => write!(f, "bad input: {detail}"),
        }
    }
}

impl std::error::Error for ApproxError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ApproxError::Model(e) => Some(e),
            ApproxError::Query(e) => Some(e),
            ApproxError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<lawsdb_models::ModelError> for ApproxError {
    fn from(e: lawsdb_models::ModelError) -> Self {
        ApproxError::Model(e)
    }
}
impl From<lawsdb_query::QueryError> for ApproxError {
    fn from(e: lawsdb_query::QueryError) -> Self {
        ApproxError::Query(e)
    }
}
impl From<lawsdb_storage::StorageError> for ApproxError {
    fn from(e: lawsdb_storage::StorageError) -> Self {
        ApproxError::Storage(e)
    }
}
