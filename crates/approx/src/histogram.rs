//! Histogram synopses — the classical approximate-answering baseline
//! the paper cites as \[9\] (Ioannidis & Poosala) and positions user
//! models against: "User models can provide approximations in a similar
//! way to the data synopses discussed before, but with higher accuracy."

use crate::error::{ApproxError, Result};

/// One histogram bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct Bucket {
    /// Inclusive lower bound.
    pub lo: f64,
    /// Exclusive upper bound (inclusive for the last bucket).
    pub hi: f64,
    /// Rows in the bucket.
    pub count: u64,
    /// Sum of values in the bucket (for SUM/AVG answers).
    pub sum: f64,
}

/// A one-dimensional histogram synopsis.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<Bucket>,
    total_count: u64,
}

impl Histogram {
    /// Equi-width histogram over the finite values.
    pub fn equi_width(values: &[f64], buckets: usize) -> Result<Histogram> {
        let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
        Self::build_equi_width(&finite, buckets)
    }

    fn build_equi_width(finite: &[f64], nbuckets: usize) -> Result<Histogram> {
        if nbuckets == 0 {
            return Err(ApproxError::BadInput { detail: "zero buckets".to_string() });
        }
        if finite.is_empty() {
            return Err(ApproxError::BadInput { detail: "no finite values".to_string() });
        }
        let lo = finite.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let width = ((hi - lo) / nbuckets as f64).max(f64::MIN_POSITIVE);
        let mut buckets: Vec<Bucket> = (0..nbuckets)
            .map(|i| Bucket {
                lo: lo + i as f64 * width,
                hi: if i + 1 == nbuckets { hi } else { lo + (i + 1) as f64 * width },
                count: 0,
                sum: 0.0,
            })
            .collect();
        for &v in finite {
            let i = (((v - lo) / width) as usize).min(nbuckets - 1);
            buckets[i].count += 1;
            buckets[i].sum += v;
        }
        Ok(Histogram { buckets, total_count: finite.len() as u64 })
    }

    /// Equi-depth histogram: bucket boundaries at quantiles so every
    /// bucket holds roughly the same number of rows — much better for
    /// skewed data.
    pub fn equi_depth(values: &[f64], nbuckets: usize) -> Result<Histogram> {
        if nbuckets == 0 {
            return Err(ApproxError::BadInput { detail: "zero buckets".to_string() });
        }
        let mut finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
        if finite.is_empty() {
            return Err(ApproxError::BadInput { detail: "no finite values".to_string() });
        }
        finite.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let n = finite.len();
        let per = n.div_ceil(nbuckets);
        let mut buckets = Vec::with_capacity(nbuckets);
        let mut start = 0usize;
        while start < n {
            let end = (start + per).min(n);
            let slice = &finite[start..end];
            buckets.push(Bucket {
                lo: slice[0],
                hi: *slice.last().expect("non-empty"),
                count: slice.len() as u64,
                sum: slice.iter().sum(),
            });
            start = end;
        }
        Ok(Histogram { buckets, total_count: n as u64 })
    }

    /// The buckets.
    pub fn buckets(&self) -> &[Bucket] {
        &self.buckets
    }

    /// Total rows summarized.
    pub fn total_count(&self) -> u64 {
        self.total_count
    }

    /// Synopsis size in bytes: 4 numbers per bucket.
    pub fn byte_size(&self) -> usize {
        self.buckets.len() * 32
    }

    /// Estimated COUNT of rows with value in `[lo, hi]`, assuming
    /// uniformity within buckets.
    pub fn estimate_count(&self, lo: f64, hi: f64) -> f64 {
        self.buckets.iter().map(|b| b.count as f64 * overlap_fraction(b, lo, hi)).sum()
    }

    /// Estimated SUM over rows with value in `[lo, hi]`.
    pub fn estimate_sum(&self, lo: f64, hi: f64) -> f64 {
        self.buckets
            .iter()
            .map(|b| {
                let f = overlap_fraction(b, lo, hi);
                if f == 0.0 {
                    0.0
                } else if f == 1.0 {
                    b.sum
                } else {
                    // Partial bucket: uniform assumption → mean of the
                    // covered sub-range times the covered count.
                    let c_lo = b.lo.max(lo);
                    let c_hi = b.hi.min(hi);
                    b.count as f64 * f * (c_lo + c_hi) / 2.0
                }
            })
            .sum()
    }

    /// Estimated AVG over rows with value in `[lo, hi]`.
    pub fn estimate_avg(&self, lo: f64, hi: f64) -> f64 {
        let c = self.estimate_count(lo, hi);
        if c == 0.0 {
            f64::NAN
        } else {
            self.estimate_sum(lo, hi) / c
        }
    }

    /// Reconstruct a point value: the mean of the bucket containing `x`
    /// (what a synopsis can offer in place of a model prediction).
    pub fn reconstruct(&self, x: f64) -> f64 {
        for b in &self.buckets {
            if x >= b.lo && (x < b.hi || (x <= b.hi && b.hi == self.buckets.last().expect("non-empty").hi))
            {
                return if b.count > 0 { b.sum / b.count as f64 } else { (b.lo + b.hi) / 2.0 };
            }
        }
        // Outside the histogram domain: clamp to nearest edge bucket.
        let first = self.buckets.first().expect("non-empty");
        let last = self.buckets.last().expect("non-empty");
        if x < first.lo {
            if first.count > 0 {
                first.sum / first.count as f64
            } else {
                (first.lo + first.hi) / 2.0
            }
        } else if last.count > 0 {
            last.sum / last.count as f64
        } else {
            (last.lo + last.hi) / 2.0
        }
    }
}

fn overlap_fraction(b: &Bucket, lo: f64, hi: f64) -> f64 {
    let width = b.hi - b.lo;
    if width <= 0.0 {
        // Point bucket.
        return if b.lo >= lo && b.lo <= hi { 1.0 } else { 0.0 };
    }
    let c_lo = b.lo.max(lo);
    let c_hi = b.hi.min(hi);
    ((c_hi - c_lo) / width).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: usize) -> Vec<f64> {
        (0..n).map(|i| i as f64 / (n - 1) as f64 * 100.0).collect()
    }

    #[test]
    fn full_range_estimates_are_exact() {
        let v = uniform(1000);
        let h = Histogram::equi_width(&v, 32).unwrap();
        assert!((h.estimate_count(0.0, 100.0) - 1000.0).abs() < 1e-9);
        let exact_sum: f64 = v.iter().sum();
        assert!((h.estimate_sum(0.0, 100.0) - exact_sum).abs() / exact_sum < 1e-9);
        assert_eq!(h.total_count(), 1000);
    }

    #[test]
    fn partial_range_estimate_close_on_uniform_data() {
        let v = uniform(10_000);
        let h = Histogram::equi_width(&v, 64).unwrap();
        let est = h.estimate_count(25.0, 75.0);
        assert!((est - 5000.0).abs() < 200.0, "{est}");
        let avg = h.estimate_avg(25.0, 75.0);
        assert!((avg - 50.0).abs() < 1.0, "{avg}");
    }

    #[test]
    fn equi_depth_handles_skew_better() {
        // Heavy skew: 99% of mass near 0, tail to 1000.
        let mut v: Vec<f64> = (0..9900).map(|i| i as f64 / 9900.0).collect();
        v.extend((0..100).map(|i| 10.0 + i as f64 * 10.0));
        let query = (0.2, 0.4);
        let exact = v.iter().filter(|&&x| x >= query.0 && x <= query.1).count() as f64;
        let ew = Histogram::equi_width(&v, 16).unwrap().estimate_count(query.0, query.1);
        let ed = Histogram::equi_depth(&v, 16).unwrap().estimate_count(query.0, query.1);
        assert!(
            (ed - exact).abs() < (ew - exact).abs(),
            "equi-depth {ed} should beat equi-width {ew} (exact {exact})"
        );
    }

    #[test]
    fn reconstruct_returns_bucket_means() {
        let v = vec![1.0, 1.0, 9.0, 9.0];
        let h = Histogram::equi_width(&v, 2).unwrap();
        assert_eq!(h.reconstruct(2.0), 1.0);
        assert_eq!(h.reconstruct(8.0), 9.0);
        // Clamping outside the domain.
        assert_eq!(h.reconstruct(-5.0), 1.0);
        assert_eq!(h.reconstruct(50.0), 9.0);
    }

    #[test]
    fn nans_are_ignored() {
        let v = vec![1.0, f64::NAN, 3.0];
        let h = Histogram::equi_width(&v, 2).unwrap();
        assert_eq!(h.total_count(), 2);
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(Histogram::equi_width(&[], 4).is_err());
        assert!(Histogram::equi_width(&[1.0], 0).is_err());
        assert!(Histogram::equi_depth(&[f64::NAN], 4).is_err());
    }

    #[test]
    fn constant_column_single_point_buckets() {
        let v = vec![5.0; 100];
        let h = Histogram::equi_width(&v, 4).unwrap();
        assert!((h.estimate_count(5.0, 5.0) - 100.0).abs() < 1e-9);
        assert_eq!(h.reconstruct(5.0), 5.0);
    }

    #[test]
    fn byte_size_scales_with_buckets() {
        let v = uniform(100);
        let h32 = Histogram::equi_width(&v, 32).unwrap();
        let h64 = Histogram::equi_width(&v, 64).unwrap();
        assert_eq!(h32.byte_size(), 32 * 32);
        assert!(h64.byte_size() > h32.byte_size());
    }
}
