//! Legal parameter combinations via a Bloom filter.
//!
//! Parameter-space enumeration can produce `(source, ν)` combinations
//! that never occurred in the base data — "we would violate relational
//! semantics due to additional results that were not in the original
//! data set" (Section 4.2). The paper proposes two remedies: a
//! user-supplied filter function (implemented as
//! `CapturedModel::legal_filter`) and "a compressed lookup structure
//! (e.g. Bloom filters) to encode all legal parameter combinations" —
//! implemented here from scratch.

/// A classic Bloom filter over 64-bit element hashes, using
/// double hashing (Kirsch–Mitzenmacher) to derive k probe positions.
#[derive(Debug, Clone)]
pub struct BloomFilter {
    bits: Vec<u64>,
    nbits: u64,
    k: u32,
    items: usize,
}

impl BloomFilter {
    /// Size a filter for `expected_items` at the given false-positive
    /// rate (clamped to [1e-9, 0.5]).
    pub fn with_rate(expected_items: usize, fp_rate: f64) -> BloomFilter {
        let n = expected_items.max(1) as f64;
        let p = fp_rate.clamp(1e-9, 0.5);
        let ln2 = std::f64::consts::LN_2;
        let nbits = (-(n * p.ln()) / (ln2 * ln2)).ceil().max(64.0) as u64;
        let k = ((nbits as f64 / n) * ln2).round().clamp(1.0, 30.0) as u32;
        BloomFilter { bits: vec![0; nbits.div_ceil(64) as usize], nbits, k, items: 0 }
    }

    /// Filter with an explicit bits-per-key budget (the E9 sweep).
    pub fn with_bits_per_key(expected_items: usize, bits_per_key: usize) -> BloomFilter {
        let nbits = (expected_items.max(1) * bits_per_key.max(1)).max(64) as u64;
        let k = ((bits_per_key as f64) * std::f64::consts::LN_2)
            .round()
            .clamp(1.0, 30.0) as u32;
        BloomFilter { bits: vec![0; nbits.div_ceil(64) as usize], nbits, k, items: 0 }
    }

    /// Insert an element hash.
    pub fn insert(&mut self, hash: u64) {
        let (h1, h2) = split_hash(hash);
        for i in 0..self.k {
            let pos = probe(h1, h2, i, self.nbits);
            self.bits[(pos / 64) as usize] |= 1 << (pos % 64);
        }
        self.items += 1;
    }

    /// Membership test: false means *definitely absent*; true means
    /// probably present.
    pub fn contains(&self, hash: u64) -> bool {
        let (h1, h2) = split_hash(hash);
        (0..self.k).all(|i| {
            let pos = probe(h1, h2, i, self.nbits);
            self.bits[(pos / 64) as usize] & (1 << (pos % 64)) != 0
        })
    }

    /// Elements inserted.
    pub fn len(&self) -> usize {
        self.items
    }

    /// True when nothing was inserted.
    pub fn is_empty(&self) -> bool {
        self.items == 0
    }

    /// Size of the bit array in bytes.
    pub fn byte_size(&self) -> usize {
        self.bits.len() * 8
    }

    /// Empirically measure the false-positive rate against a probe set
    /// known to be absent.
    pub fn measure_fp_rate(&self, absent_hashes: &[u64]) -> f64 {
        if absent_hashes.is_empty() {
            return 0.0;
        }
        let fp = absent_hashes.iter().filter(|&&h| self.contains(h)).count();
        fp as f64 / absent_hashes.len() as f64
    }
}

fn split_hash(hash: u64) -> (u64, u64) {
    // Finalize with splitmix64 so weak input hashes still spread.
    let mut z = hash.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^= z >> 31;
    (z, z.rotate_left(32) | 1)
}

fn probe(h1: u64, h2: u64, i: u32, nbits: u64) -> u64 {
    h1.wrapping_add(h2.wrapping_mul(i as u64)) % nbits
}

/// Hash a legal parameter combination: group key + input values. Floats
/// hash by bit pattern, matching the equality semantics of enumeration
/// (domains are enumerated from the exact stored values).
pub fn combo_hash(group: i64, inputs: &[f64]) -> u64 {
    let mut h = 0xcbf29ce484222325u64; // FNV-1a
    for byte in group.to_le_bytes() {
        h = (h ^ byte as u64).wrapping_mul(0x100000001b3);
    }
    for v in inputs {
        for byte in v.to_bits().to_le_bytes() {
            h = (h ^ byte as u64).wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// Build the legal-combination filter for a table: one entry per
/// observed (group, variables…) row.
pub fn build_legal_filter(
    groups: &[i64],
    input_columns: &[&[f64]],
    bits_per_key: usize,
) -> BloomFilter {
    let n = groups.len();
    let mut bf = BloomFilter::with_bits_per_key(n, bits_per_key);
    let mut point = vec![0.0; input_columns.len()];
    for row in 0..n {
        for (d, c) in input_columns.iter().enumerate() {
            point[d] = c[row];
        }
        bf.insert(combo_hash(groups[row], &point));
    }
    bf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut bf = BloomFilter::with_rate(1000, 0.01);
        for i in 0..1000u64 {
            bf.insert(combo_hash(i as i64, &[i as f64 * 0.5]));
        }
        for i in 0..1000u64 {
            assert!(bf.contains(combo_hash(i as i64, &[i as f64 * 0.5])), "item {i}");
        }
        assert_eq!(bf.len(), 1000);
    }

    #[test]
    fn fp_rate_near_target() {
        let mut bf = BloomFilter::with_rate(10_000, 0.01);
        for i in 0..10_000u64 {
            bf.insert(combo_hash(i as i64, &[]));
        }
        let absent: Vec<u64> =
            (0..20_000u64).map(|i| combo_hash((i + 1_000_000) as i64, &[])).collect();
        let fp = bf.measure_fp_rate(&absent);
        assert!(fp < 0.03, "fp rate {fp} should be near 1%");
    }

    #[test]
    fn more_bits_per_key_means_fewer_false_positives() {
        let absent: Vec<u64> =
            (0..20_000u64).map(|i| combo_hash((i + 9_000_000) as i64, &[])).collect();
        let mut rates = Vec::new();
        for bpk in [4usize, 8, 12, 16] {
            let mut bf = BloomFilter::with_bits_per_key(5000, bpk);
            for i in 0..5000u64 {
                bf.insert(combo_hash(i as i64, &[]));
            }
            rates.push(bf.measure_fp_rate(&absent));
        }
        // Monotone (with slack for noise at the tiny end).
        assert!(rates[0] > rates[2], "{rates:?}");
        assert!(rates[3] < 0.01, "{rates:?}");
    }

    #[test]
    fn combo_hash_distinguishes_structure() {
        // (1, [2.0]) vs (2, [1.0]) must differ; order matters.
        assert_ne!(combo_hash(1, &[2.0]), combo_hash(2, &[1.0]));
        assert_ne!(combo_hash(1, &[1.0, 2.0]), combo_hash(1, &[2.0, 1.0]));
        assert_eq!(combo_hash(5, &[0.12]), combo_hash(5, &[0.12]));
    }

    #[test]
    fn build_from_columns() {
        let groups = [1i64, 1, 2];
        let nu = [0.12, 0.15, 0.12];
        let bf = build_legal_filter(&groups, &[&nu], 10);
        assert!(bf.contains(combo_hash(1, &[0.12])));
        assert!(bf.contains(combo_hash(2, &[0.12])));
        // (2, 0.15) never occurred; overwhelmingly likely to be absent
        // at 10 bits/key with 3 items.
        assert!(!bf.contains(combo_hash(2, &[0.15])));
    }

    #[test]
    fn empty_filter_contains_nothing() {
        let bf = BloomFilter::with_rate(10, 0.01);
        assert!(bf.is_empty());
        assert!(!bf.contains(combo_hash(1, &[1.0])));
    }
}
