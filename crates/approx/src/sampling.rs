//! Sampling-based approximate answering — the BlinkDB-style baseline
//! (cited as \[2\]): "In sampling, only a subset of data is used to answer
//! a time-critical query. Doing so will introduce errors in the result,
//! but predicting the extent of these errors is well understood."
//!
//! We implement uniform row sampling with CLT-based confidence
//! intervals, exactly the well-understood error prediction the paper
//! refers to.

use crate::error::{ApproxError, Result};
use lawsdb_linalg::dist::normal_quantile;
use lawsdb_storage::Table;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// An aggregate estimate with a symmetric confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Point estimate.
    pub value: f64,
    /// Half-width of the confidence interval at the requested level.
    pub ci_half_width: f64,
    /// Sample rows that matched the predicate.
    pub sample_matches: usize,
}

/// A pre-built uniform sample of a table (the offline part of a
/// sampling AQP system).
#[derive(Debug, Clone)]
pub struct TableSample {
    /// The sampled rows, as a table.
    pub sample: Table,
    /// Sampling fraction actually achieved.
    pub fraction: f64,
    /// Base-table row count.
    pub base_rows: usize,
}

impl TableSample {
    /// Draw a uniform sample without replacement.
    pub fn uniform(table: &Table, fraction: f64, seed: u64) -> Result<TableSample> {
        if !(0.0..=1.0).contains(&fraction) || fraction == 0.0 {
            return Err(ApproxError::BadInput {
                detail: format!("sampling fraction {fraction} not in (0, 1]"),
            });
        }
        let n = table.row_count();
        let k = ((n as f64 * fraction).round() as usize).clamp(1, n);
        let mut idx: Vec<usize> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        idx.shuffle(&mut rng);
        idx.truncate(k);
        idx.sort_unstable(); // preserve scan order
        let sample = table.take(&idx)?;
        Ok(TableSample { sample, fraction: k as f64 / n as f64, base_rows: n })
    }

    /// Scale factor from sample counts to base-table counts.
    pub fn scale(&self) -> f64 {
        1.0 / self.fraction
    }

    /// Estimate `AVG(column)` over the sample rows at `keep_rows`
    /// (indices into the sample that satisfied the query predicate),
    /// with a CLT confidence interval at `confidence` (e.g. 0.95).
    pub fn estimate_avg(
        &self,
        column: &str,
        keep_rows: &[usize],
        confidence: f64,
    ) -> Result<Estimate> {
        let vals = self.matched_values(column, keep_rows)?;
        let m = vals.len();
        if m == 0 {
            return Ok(Estimate { value: f64::NAN, ci_half_width: f64::NAN, sample_matches: 0 });
        }
        let mean = lawsdb_linalg::ops::mean(&vals);
        let sd = lawsdb_linalg::ops::std_dev(&vals);
        let z = normal_quantile(0.5 + confidence / 2.0);
        let half = if m > 1 { z * sd / (m as f64).sqrt() } else { f64::INFINITY };
        Ok(Estimate { value: mean, ci_half_width: half, sample_matches: m })
    }

    /// Estimate `SUM(column)`: the scaled sample sum, CI scaled alike.
    pub fn estimate_sum(
        &self,
        column: &str,
        keep_rows: &[usize],
        confidence: f64,
    ) -> Result<Estimate> {
        let vals = self.matched_values(column, keep_rows)?;
        let m = vals.len();
        if m == 0 {
            return Ok(Estimate { value: 0.0, ci_half_width: f64::NAN, sample_matches: 0 });
        }
        let sum: f64 = vals.iter().sum();
        let sd = lawsdb_linalg::ops::std_dev(&vals);
        let z = normal_quantile(0.5 + confidence / 2.0);
        // Var of the scaled sum ≈ scale²·m·sd² (ignoring the finite
        // population correction, conservative).
        let half = if m > 1 {
            self.scale() * z * sd * (m as f64).sqrt()
        } else {
            f64::INFINITY
        };
        Ok(Estimate { value: sum * self.scale(), ci_half_width: half, sample_matches: m })
    }

    /// Estimate `COUNT(*)` of base rows matching a predicate that
    /// matched `matches` of the sample rows.
    pub fn estimate_count(&self, matches: usize, confidence: f64) -> Estimate {
        let k = self.sample.row_count() as f64;
        let p_hat = matches as f64 / k;
        let z = normal_quantile(0.5 + confidence / 2.0);
        let se = (p_hat * (1.0 - p_hat) / k).sqrt();
        Estimate {
            value: p_hat * self.base_rows as f64,
            ci_half_width: z * se * self.base_rows as f64,
            sample_matches: matches,
        }
    }

    fn matched_values(&self, column: &str, keep_rows: &[usize]) -> Result<Vec<f64>> {
        let col = self.sample.column(column)?;
        let all = col.to_f64_lossy()?;
        Ok(keep_rows
            .iter()
            .filter_map(|&r| {
                let v = *all.get(r)?;
                v.is_finite().then_some(v)
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lawsdb_storage::TableBuilder;

    fn base_table(n: usize) -> Table {
        let mut b = TableBuilder::new("t");
        b.add_i64("id", (0..n as i64).collect());
        // Values 0..100 uniformly.
        b.add_f64("v", (0..n).map(|i| (i % 101) as f64).collect());
        b.build().unwrap()
    }

    #[test]
    fn sample_size_matches_fraction() {
        let t = base_table(10_000);
        let s = TableSample::uniform(&t, 0.05, 7).unwrap();
        assert_eq!(s.sample.row_count(), 500);
        assert!((s.fraction - 0.05).abs() < 1e-9);
        assert!((s.scale() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn avg_estimate_within_ci_of_truth() {
        let t = base_table(20_000);
        let truth = 50.0; // mean of 0..=100
        let s = TableSample::uniform(&t, 0.05, 42).unwrap();
        let keep: Vec<usize> = (0..s.sample.row_count()).collect();
        let e = s.estimate_avg("v", &keep, 0.99).unwrap();
        assert!(
            (e.value - truth).abs() <= e.ci_half_width * 1.5,
            "estimate {} ± {} vs truth {truth}",
            e.value,
            e.ci_half_width
        );
        assert!(e.ci_half_width < 5.0);
    }

    #[test]
    fn count_estimate_scales_matches() {
        let t = base_table(10_000);
        let s = TableSample::uniform(&t, 0.10, 3).unwrap();
        // Predicate matching ~half the sample.
        let matches = s
            .sample
            .column("v")
            .unwrap()
            .f64_data()
            .unwrap()
            .iter()
            .filter(|&&v| v < 50.0)
            .count();
        let e = s.estimate_count(matches, 0.95);
        // Truth ≈ 10000 · 50/101.
        let truth = 10_000.0 * 50.0 / 101.0;
        assert!((e.value - truth).abs() < e.ci_half_width * 2.0 + 100.0);
    }

    #[test]
    fn sum_estimate_scales() {
        let t = base_table(10_000);
        let truth: f64 = t.column("v").unwrap().f64_data().unwrap().iter().sum();
        let s = TableSample::uniform(&t, 0.2, 11).unwrap();
        let keep: Vec<usize> = (0..s.sample.row_count()).collect();
        let e = s.estimate_sum("v", &keep, 0.99).unwrap();
        assert!((e.value - truth).abs() / truth < 0.05, "{} vs {truth}", e.value);
    }

    #[test]
    fn deterministic_under_seed() {
        let t = base_table(1000);
        let a = TableSample::uniform(&t, 0.1, 5).unwrap();
        let b = TableSample::uniform(&t, 0.1, 5).unwrap();
        assert_eq!(a.sample, b.sample);
        let c = TableSample::uniform(&t, 0.1, 6).unwrap();
        assert_ne!(a.sample, c.sample);
    }

    #[test]
    fn bigger_samples_give_tighter_intervals() {
        let t = base_table(50_000);
        let small = TableSample::uniform(&t, 0.01, 1).unwrap();
        let large = TableSample::uniform(&t, 0.2, 1).unwrap();
        let ks: Vec<usize> = (0..small.sample.row_count()).collect();
        let kl: Vec<usize> = (0..large.sample.row_count()).collect();
        let es = small.estimate_avg("v", &ks, 0.95).unwrap();
        let el = large.estimate_avg("v", &kl, 0.95).unwrap();
        assert!(el.ci_half_width < es.ci_half_width);
    }

    #[test]
    fn invalid_fraction_rejected() {
        let t = base_table(100);
        assert!(TableSample::uniform(&t, 0.0, 1).is_err());
        assert!(TableSample::uniform(&t, 1.5, 1).is_err());
    }

    #[test]
    fn empty_match_set_yields_nan_avg_zero_sum() {
        let t = base_table(100);
        let s = TableSample::uniform(&t, 0.5, 1).unwrap();
        let e = s.estimate_avg("v", &[], 0.95).unwrap();
        assert!(e.value.is_nan());
        let e = s.estimate_sum("v", &[], 0.95).unwrap();
        assert_eq!(e.value, 0.0);
    }
}

/// A stratified sample: a per-group cap guarantees every group is
/// represented — BlinkDB's central idea, and the fix for uniform
/// sampling's failure mode on per-group queries (rare groups simply
/// vanish from a uniform sample).
#[derive(Debug, Clone)]
pub struct StratifiedSample {
    /// The sampled rows.
    pub sample: Table,
    /// Rows kept per group (the stratification cap).
    pub per_group: usize,
    /// Base-table row count.
    pub base_rows: usize,
    /// Per-group base counts, for per-group scale factors.
    group_counts: std::collections::HashMap<i64, usize>,
}

impl StratifiedSample {
    /// Stratify on an integer key column, keeping at most `per_group`
    /// uniformly chosen rows of each group.
    pub fn build(
        table: &Table,
        group_column: &str,
        per_group: usize,
        seed: u64,
    ) -> Result<StratifiedSample> {
        if per_group == 0 {
            return Err(ApproxError::BadInput {
                detail: "per_group must be at least 1".to_string(),
            });
        }
        let keys = table
            .column(group_column)
            .map_err(ApproxError::Storage)?
            .i64_data()
            .map_err(ApproxError::Storage)?;
        let mut by_group: std::collections::HashMap<i64, Vec<usize>> =
            std::collections::HashMap::new();
        for (row, &k) in keys.iter().enumerate() {
            by_group.entry(k).or_default().push(row);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut keep = Vec::new();
        let mut group_counts = std::collections::HashMap::new();
        // Sorted key order keeps the rng stream (and thus the sample)
        // deterministic under a fixed seed.
        let mut groups: Vec<(i64, Vec<usize>)> = by_group.into_iter().collect();
        groups.sort_by_key(|(k, _)| *k);
        for (k, mut rows) in groups {
            group_counts.insert(k, rows.len());
            if rows.len() > per_group {
                rows.shuffle(&mut rng);
                rows.truncate(per_group);
            }
            keep.extend(rows);
        }
        keep.sort_unstable();
        let sample = table.take(&keep).map_err(ApproxError::Storage)?;
        Ok(StratifiedSample {
            sample,
            per_group,
            base_rows: table.row_count(),
            group_counts,
        })
    }

    /// Per-group scale factor: base rows of the group / sampled rows.
    pub fn group_scale(&self, key: i64) -> f64 {
        let base = self.group_counts.get(&key).copied().unwrap_or(0);
        let kept = base.min(self.per_group);
        if kept == 0 {
            f64::NAN
        } else {
            base as f64 / kept as f64
        }
    }

    /// Estimate `AVG(column)` within one group, with a CLT interval.
    /// Unlike the uniform sample, every group present in the base table
    /// is guaranteed to have rows here.
    pub fn estimate_group_avg(
        &self,
        column: &str,
        group_column: &str,
        key: i64,
        confidence: f64,
    ) -> Result<Estimate> {
        let keys = self
            .sample
            .column(group_column)
            .map_err(ApproxError::Storage)?
            .i64_data()
            .map_err(ApproxError::Storage)?;
        let rows: Vec<usize> =
            (0..self.sample.row_count()).filter(|&i| keys[i] == key).collect();
        let vals = {
            let col = self.sample.column(column).map_err(ApproxError::Storage)?;
            let all = col.to_f64_lossy().map_err(ApproxError::Storage)?;
            rows.iter()
                .filter_map(|&r| {
                    let v = all[r];
                    v.is_finite().then_some(v)
                })
                .collect::<Vec<f64>>()
        };
        let m = vals.len();
        if m == 0 {
            return Ok(Estimate {
                value: f64::NAN,
                ci_half_width: f64::NAN,
                sample_matches: 0,
            });
        }
        let mean = lawsdb_linalg::ops::mean(&vals);
        let sd = lawsdb_linalg::ops::std_dev(&vals);
        let z = normal_quantile(0.5 + confidence / 2.0);
        let half = if m > 1 { z * sd / (m as f64).sqrt() } else { f64::INFINITY };
        Ok(Estimate { value: mean, ci_half_width: half, sample_matches: m })
    }

    /// Total sampled rows.
    pub fn sampled_rows(&self) -> usize {
        self.sample.row_count()
    }
}

#[cfg(test)]
mod stratified_tests {
    use super::*;
    use lawsdb_storage::TableBuilder;

    /// 50 groups with very different sizes: 0..9 have 200 rows, the
    /// rest have 5.
    fn skewed_table() -> Table {
        let mut g = Vec::new();
        let mut v = Vec::new();
        for key in 0..50i64 {
            let n = if key < 10 { 200 } else { 5 };
            for i in 0..n {
                g.push(key);
                v.push(key as f64 * 10.0 + (i % 7) as f64);
            }
        }
        let mut b = TableBuilder::new("t");
        b.add_i64("g", g);
        b.add_f64("v", v);
        b.build().unwrap()
    }

    #[test]
    fn every_group_is_represented() {
        let t = skewed_table();
        let s = StratifiedSample::build(&t, "g", 8, 1).unwrap();
        let keys = s.sample.column("g").unwrap().i64_data().unwrap();
        let distinct: std::collections::HashSet<i64> = keys.iter().copied().collect();
        assert_eq!(distinct.len(), 50, "all groups survive stratification");
        // Large groups capped at 8, small groups kept whole.
        for key in 0..50i64 {
            let cnt = keys.iter().filter(|&&k| k == key).count();
            if key < 10 {
                assert_eq!(cnt, 8);
            } else {
                assert_eq!(cnt, 5);
            }
        }
    }

    #[test]
    fn group_scales_reflect_base_sizes() {
        let t = skewed_table();
        let s = StratifiedSample::build(&t, "g", 8, 1).unwrap();
        assert!((s.group_scale(0) - 25.0).abs() < 1e-12); // 200/8
        assert!((s.group_scale(40) - 1.0).abs() < 1e-12); // 5/5
        assert!(s.group_scale(999).is_nan());
    }

    #[test]
    fn per_group_avg_always_answerable() {
        let t = skewed_table();
        let s = StratifiedSample::build(&t, "g", 8, 3).unwrap();
        for key in [0i64, 25, 49] {
            let e = s.estimate_group_avg("v", "g", key, 0.95).unwrap();
            assert!(e.sample_matches > 0, "group {key} must be present");
            // True mean is key*10 + mean((i%7) over group) ≈ key*10 + 2.x
            assert!((e.value - key as f64 * 10.0).abs() < 4.0, "group {key}: {}", e.value);
        }
    }

    #[test]
    fn zero_per_group_rejected() {
        let t = skewed_table();
        assert!(StratifiedSample::build(&t, "g", 0, 1).is_err());
    }

    #[test]
    fn deterministic_under_seed() {
        let t = skewed_table();
        let a = StratifiedSample::build(&t, "g", 3, 9).unwrap();
        let b = StratifiedSample::build(&t, "g", 3, 9).unwrap();
        assert_eq!(a.sample, b.sample);
    }
}
