//! Analytic aggregate solutions for linear models (Section 4.2):
//!
//! > "For the common class of linear models, we can even go one step
//! > further and calculate analytic solutions for aggregation queries.
//! > For example, given a well-fitting linear model we can calculate the
//! > minimum and maximum value for a column."
//!
//! For a single-variable linear model `y = a + b·x` over a known input
//! domain (an interval or an enumerated set), every standard aggregate
//! has a closed form:
//!
//! * monotonicity gives MIN/MAX at the domain endpoints (sign of `b`);
//! * linearity of expectation gives `AVG(y) = a + b·AVG(x)` and
//!   `SUM(y) = n·a + b·SUM(x)`.
//!
//! No tuple is materialized — this is the extreme point of the zero-IO
//! spectrum, O(1) work regardless of data size.

use crate::error::{ApproxError, Result};

/// The input domain an analytic aggregate ranges over.
#[derive(Debug, Clone, PartialEq)]
pub enum Domain {
    /// A continuous interval `[lo, hi]` with a known point count
    /// (`count` matters for SUM/COUNT; AVG over an interval uses the
    /// midpoint, the uniform-grid limit).
    Interval {
        /// Lower endpoint.
        lo: f64,
        /// Upper endpoint.
        hi: f64,
        /// Number of (evenly spaced) points the interval stands for.
        count: usize,
    },
    /// An explicit enumerated set of input values.
    Points(Vec<f64>),
}

impl Domain {
    fn count(&self) -> usize {
        match self {
            Domain::Interval { count, .. } => *count,
            Domain::Points(p) => p.len(),
        }
    }

    fn min(&self) -> f64 {
        match self {
            Domain::Interval { lo, .. } => *lo,
            Domain::Points(p) => p.iter().copied().fold(f64::INFINITY, f64::min),
        }
    }

    fn max(&self) -> f64 {
        match self {
            Domain::Interval { hi, .. } => *hi,
            Domain::Points(p) => p.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }

    fn sum(&self) -> f64 {
        match self {
            // Evenly spaced points over [lo, hi] sum to count·midpoint.
            Domain::Interval { lo, hi, count } => (lo + hi) / 2.0 * *count as f64,
            Domain::Points(p) => p.iter().sum(),
        }
    }

    fn mean(&self) -> f64 {
        match self {
            Domain::Interval { lo, hi, .. } => (lo + hi) / 2.0,
            Domain::Points(p) => {
                if p.is_empty() {
                    f64::NAN
                } else {
                    p.iter().sum::<f64>() / p.len() as f64
                }
            }
        }
    }
}

/// Aggregates with analytic solutions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregate {
    /// Row count.
    Count,
    /// Sum of the modeled column.
    Sum,
    /// Mean of the modeled column.
    Avg,
    /// Minimum of the modeled column.
    Min,
    /// Maximum of the modeled column.
    Max,
}

/// Closed-form aggregate of `y = intercept + slope·x` over `domain`.
///
/// Returns the value without evaluating the model at a single point
/// beyond the endpoints.
pub fn linear_aggregate(
    intercept: f64,
    slope: f64,
    domain: &Domain,
    agg: Aggregate,
) -> Result<f64> {
    let n = domain.count();
    if n == 0 {
        return Err(ApproxError::BadInput { detail: "empty domain".to_string() });
    }
    Ok(match agg {
        Aggregate::Count => n as f64,
        Aggregate::Sum => intercept * n as f64 + slope * domain.sum(),
        Aggregate::Avg => intercept + slope * domain.mean(),
        Aggregate::Min => {
            if slope >= 0.0 {
                intercept + slope * domain.min()
            } else {
                intercept + slope * domain.max()
            }
        }
        Aggregate::Max => {
            if slope >= 0.0 {
                intercept + slope * domain.max()
            } else {
                intercept + slope * domain.min()
            }
        }
    })
}

/// Closed-form aggregate over the union of several groups' linear
/// models (each with its own intercept/slope and domain): exact
/// combination rules — counts and sums add, min/max take extrema, and
/// AVG is the count-weighted mean.
pub fn linear_aggregate_groups(
    models: &[(f64, f64, Domain)],
    agg: Aggregate,
) -> Result<f64> {
    if models.is_empty() {
        return Err(ApproxError::BadInput { detail: "no groups".to_string() });
    }
    match agg {
        Aggregate::Count => {
            Ok(models.iter().map(|(_, _, d)| d.count() as f64).sum())
        }
        Aggregate::Sum => {
            let mut s = 0.0;
            for (a, b, d) in models {
                s += linear_aggregate(*a, *b, d, Aggregate::Sum)?;
            }
            Ok(s)
        }
        Aggregate::Avg => {
            let mut s = 0.0;
            let mut n = 0.0;
            for (a, b, d) in models {
                s += linear_aggregate(*a, *b, d, Aggregate::Sum)?;
                n += d.count() as f64;
            }
            Ok(s / n)
        }
        Aggregate::Min => {
            let mut best = f64::INFINITY;
            for (a, b, d) in models {
                best = best.min(linear_aggregate(*a, *b, d, Aggregate::Min)?);
            }
            Ok(best)
        }
        Aggregate::Max => {
            let mut best = f64::NEG_INFINITY;
            for (a, b, d) in models {
                best = best.max(linear_aggregate(*a, *b, d, Aggregate::Max)?);
            }
            Ok(best)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute(intercept: f64, slope: f64, xs: &[f64], agg: Aggregate) -> f64 {
        let ys: Vec<f64> = xs.iter().map(|x| intercept + slope * x).collect();
        match agg {
            Aggregate::Count => ys.len() as f64,
            Aggregate::Sum => ys.iter().sum(),
            Aggregate::Avg => ys.iter().sum::<f64>() / ys.len() as f64,
            Aggregate::Min => ys.iter().copied().fold(f64::INFINITY, f64::min),
            Aggregate::Max => ys.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }

    #[test]
    fn points_domain_matches_brute_force() {
        let xs = vec![0.12, 0.15, 0.16, 0.18];
        let d = Domain::Points(xs.clone());
        for agg in [Aggregate::Count, Aggregate::Sum, Aggregate::Avg, Aggregate::Min, Aggregate::Max]
        {
            let analytic = linear_aggregate(2.0, -3.0, &d, agg).unwrap();
            let expect = brute(2.0, -3.0, &xs, agg);
            assert!((analytic - expect).abs() < 1e-12, "{agg:?}: {analytic} vs {expect}");
        }
    }

    #[test]
    fn negative_slope_swaps_min_max_endpoints() {
        let d = Domain::Interval { lo: 0.0, hi: 10.0, count: 11 };
        // y = 5 − x: min at x=10, max at x=0.
        assert_eq!(linear_aggregate(5.0, -1.0, &d, Aggregate::Min).unwrap(), -5.0);
        assert_eq!(linear_aggregate(5.0, -1.0, &d, Aggregate::Max).unwrap(), 5.0);
        // y = 5 + x: the other way round.
        assert_eq!(linear_aggregate(5.0, 1.0, &d, Aggregate::Min).unwrap(), 5.0);
        assert_eq!(linear_aggregate(5.0, 1.0, &d, Aggregate::Max).unwrap(), 15.0);
    }

    #[test]
    fn interval_matches_evenly_spaced_points() {
        let n = 101;
        let xs: Vec<f64> = (0..n).map(|i| i as f64 / (n - 1) as f64 * 4.0).collect();
        let d = Domain::Interval { lo: 0.0, hi: 4.0, count: n };
        for agg in [Aggregate::Sum, Aggregate::Avg] {
            let analytic = linear_aggregate(1.0, 2.5, &d, agg).unwrap();
            let expect = brute(1.0, 2.5, &xs, agg);
            assert!((analytic - expect).abs() < 1e-9, "{agg:?}");
        }
    }

    #[test]
    fn group_combination_rules() {
        let groups = vec![
            (1.0, 2.0, Domain::Points(vec![0.0, 1.0])),  // y ∈ {1, 3}
            (10.0, -1.0, Domain::Points(vec![0.0, 5.0])), // y ∈ {10, 5}
        ];
        assert_eq!(linear_aggregate_groups(&groups, Aggregate::Count).unwrap(), 4.0);
        assert_eq!(linear_aggregate_groups(&groups, Aggregate::Sum).unwrap(), 19.0);
        assert!((linear_aggregate_groups(&groups, Aggregate::Avg).unwrap() - 4.75).abs() < 1e-12);
        assert_eq!(linear_aggregate_groups(&groups, Aggregate::Min).unwrap(), 1.0);
        assert_eq!(linear_aggregate_groups(&groups, Aggregate::Max).unwrap(), 10.0);
    }

    #[test]
    fn empty_inputs_rejected() {
        assert!(linear_aggregate(0.0, 1.0, &Domain::Points(vec![]), Aggregate::Sum).is_err());
        assert!(linear_aggregate_groups(&[], Aggregate::Sum).is_err());
    }
}
