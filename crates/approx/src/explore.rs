//! Model exploration — the ⊕ opportunity of Section 4.2:
//!
//! > "We can facilitate the exploration of the model's domain by the
//! > user. For example, we can find interesting subsets of the data by
//! > analyzing the first derivative of the model function for regions in
//! > the parameter space with high gradients."
//!
//! Given a captured model, [`explore_gradients`] differentiates the model
//! body symbolically in each input variable, evaluates the gradient
//! magnitude over the enumerated parameter space (groups × variable
//! domains), and returns the regions ranked steepest-first — all without
//! touching the base data.

use crate::error::{ApproxError, Result};
use lawsdb_expr::deriv::differentiate;
use lawsdb_expr::Bindings;
use lawsdb_models::{CapturedModel, ModelParams};

/// One explored point of the parameter space.
#[derive(Debug, Clone, PartialEq)]
pub struct GradientPoint {
    /// Group key (`None` for global models).
    pub group: Option<i64>,
    /// Input coordinates, in `coverage.variables` order.
    pub inputs: Vec<f64>,
    /// Model value at the point.
    pub value: f64,
    /// L2 norm of the gradient in the input variables.
    pub gradient_norm: f64,
}

/// Evaluate gradient magnitudes over the model's enumerable parameter
/// space and return the `top_k` steepest points.
///
/// Fails when a variable has no captured domain (nothing to sweep) or
/// the model body is not differentiable in some variable.
pub fn explore_gradients(model: &CapturedModel, top_k: usize) -> Result<Vec<GradientPoint>> {
    let vars = &model.coverage.variables;
    if vars.is_empty() {
        return Err(ApproxError::NotAnswerable {
            reason: "model has no input variables to explore".to_string(),
        });
    }
    // Enumerated domain per variable.
    let domains: Vec<&[f64]> = vars
        .iter()
        .map(|v| {
            model.coverage.domain_of(v).ok_or_else(|| ApproxError::NotAnswerable {
                reason: format!("variable {v:?} has no enumerable domain"),
            })
        })
        .collect::<Result<_>>()?;
    // Symbolic gradient, one expression per variable.
    let grads: Vec<lawsdb_expr::Expr> = vars
        .iter()
        .map(|v| {
            differentiate(&model.rhs, v).map_err(|e| ApproxError::NotAnswerable {
                reason: format!("model not differentiable in {v:?}: {e}"),
            })
        })
        .collect::<Result<_>>()?;

    let groups: Vec<Option<i64>> = match &model.params {
        ModelParams::Global { .. } => vec![None],
        ModelParams::Grouped { .. } => model.group_keys().into_iter().map(Some).collect(),
    };

    // Sweep the cartesian product.
    let mut points = Vec::new();
    let mut index = vec![0usize; vars.len()];
    for &group in &groups {
        let mut bindings = Bindings::new();
        bind_params(model, group, &mut bindings)?;
        index.iter_mut().for_each(|i| *i = 0);
        loop {
            for (d, var) in vars.iter().enumerate() {
                bindings.set(var, domains[d][index[d]]);
            }
            let value = model.rhs.eval(&bindings).map_err(ApproxError::from_expr)?;
            let mut sq = 0.0;
            for g in &grads {
                let gi = g.eval(&bindings).map_err(ApproxError::from_expr)?;
                sq += gi * gi;
            }
            points.push(GradientPoint {
                group,
                inputs: index.iter().enumerate().map(|(d, &i)| domains[d][i]).collect(),
                value,
                gradient_norm: sq.sqrt(),
            });
            // Advance the mixed-radix counter.
            let mut d = 0;
            loop {
                if d == vars.len() {
                    break;
                }
                index[d] += 1;
                if index[d] < domains[d].len() {
                    break;
                }
                index[d] = 0;
                d += 1;
            }
            if d == vars.len() {
                break;
            }
        }
    }
    points.sort_by(|a, b| {
        b.gradient_norm
            .partial_cmp(&a.gradient_norm)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    points.truncate(top_k);
    Ok(points)
}

fn bind_params(model: &CapturedModel, group: Option<i64>, b: &mut Bindings) -> Result<()> {
    match (&model.params, group) {
        (ModelParams::Global { names, values, .. }, _) => {
            for (n, v) in names.iter().zip(values) {
                b.set(n, *v);
            }
            Ok(())
        }
        (ModelParams::Grouped { names, groups, .. }, Some(key)) => {
            let g = groups.get(&key).ok_or(lawsdb_models::ModelError::UnknownGroup { key })?;
            for (n, v) in names.iter().zip(&g.values) {
                b.set(n, *v);
            }
            Ok(())
        }
        (ModelParams::Grouped { group_column, .. }, None) => {
            Err(ApproxError::NotAnswerable {
                reason: format!("grouped model needs a {group_column} value"),
            })
        }
    }
}

impl ApproxError {
    fn from_expr(e: lawsdb_expr::ExprError) -> ApproxError {
        ApproxError::NotAnswerable { reason: format!("expression evaluation failed: {e}") }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lawsdb_fit::FitOptions;
    use lawsdb_models::bridge::fit_table_grouped;
    use lawsdb_storage::TableBuilder;

    /// Two sources: one flat (α ≈ 0), one steep (α = −1.5). The steep
    /// source's low-frequency corner must dominate the gradient ranking.
    fn model() -> CapturedModel {
        let freqs: [f64; 4] = [0.12, 0.15, 0.16, 0.18];
        let laws: [(f64, f64); 2] = [(1.0, -0.01), (1.0, -1.5)];
        let mut src = Vec::new();
        let mut nu = Vec::new();
        let mut intensity = Vec::new();
        for (s, &(p, a)) in laws.iter().enumerate() {
            for i in 0..40 {
                src.push(s as i64);
                nu.push(freqs[i % 4]);
                intensity.push(p * freqs[i % 4].powf(a));
            }
        }
        let mut b = TableBuilder::new("m");
        b.add_i64("source", src);
        b.add_f64("nu", nu);
        b.add_f64("intensity", intensity);
        let t = b.build().unwrap();
        fit_table_grouped(
            &t,
            "intensity ~ p * nu ^ alpha",
            "source",
            &FitOptions::default().with_initial("alpha", -0.7),
            1,
        )
        .unwrap()
        .0
    }

    #[test]
    fn steepest_region_is_the_steep_sources_low_frequency_corner() {
        let m = model();
        let top = explore_gradients(&m, 3).unwrap();
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].group, Some(1), "steep source first: {top:?}");
        assert_eq!(top[0].inputs, vec![0.12], "lowest frequency is steepest");
        // |d/dν p·ν^α| = |p·α|·ν^(α−1) at ν=0.12, α=−1.5, p=1.
        let want = 1.5 * 0.12_f64.powf(-2.5);
        assert!((top[0].gradient_norm - want).abs() / want < 1e-3);
        // And the ranking is monotone.
        assert!(top[0].gradient_norm >= top[1].gradient_norm);
        assert!(top[1].gradient_norm >= top[2].gradient_norm);
    }

    #[test]
    fn all_points_covered_when_k_large() {
        let m = model();
        let all = explore_gradients(&m, 1000).unwrap();
        // 2 groups × 4 frequencies.
        assert_eq!(all.len(), 8);
    }

    #[test]
    fn flat_source_has_negligible_gradients() {
        let m = model();
        let all = explore_gradients(&m, 1000).unwrap();
        let flat_max = all
            .iter()
            .filter(|p| p.group == Some(0))
            .map(|p| p.gradient_norm)
            .fold(0.0f64, f64::max);
        let steep_min = all
            .iter()
            .filter(|p| p.group == Some(1))
            .map(|p| p.gradient_norm)
            .fold(f64::INFINITY, f64::min);
        assert!(flat_max < steep_min, "flat {flat_max} vs steep {steep_min}");
    }
}
