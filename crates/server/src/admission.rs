//! Admission control: the server-side throttle in front of the
//! per-query [`Governor`](lawsdb_query::Governor).
//!
//! The governor bounds what one *running* query may consume; the
//! admission controller bounds how many queries run at once and how
//! much memory their budgets may collectively reserve. A request that
//! cannot start immediately waits in a **bounded queue** with a
//! deadline: when the queue is full it is rejected *now* with a
//! structured retry hint, and when its wait budget expires it fails
//! with a structured timeout — the two shapes a loaded server is
//! allowed to say "no" in. It never hangs and never panics.
//!
//! Every decision is counted in the engine's
//! [`MetricsRegistry`](lawsdb_obs::MetricsRegistry) under the
//! `lawsdb_server_*` namespace: `admitted`, `queued`, `rejected`,
//! `queue_timeout` counters, `active_queries` (+ high-water peak)
//! gauges, and a `queue_wait_us` histogram.

use crate::error::WireError;
use lawsdb_obs::{Counter, Gauge, Histogram, MetricsRegistry};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Global caps enforced by the [`AdmissionController`].
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Queries allowed to run concurrently across all sessions.
    pub max_concurrent_queries: usize,
    /// Requests allowed to wait for a slot; the next one is rejected.
    pub max_queued: usize,
    /// How long a queued request may wait before failing with
    /// [`WireError::QueueTimeout`].
    pub queue_timeout: Duration,
    /// Cap on the summed memory *reservations* of admitted queries
    /// (each query reserves its budget's `memory_bytes`, or
    /// [`AdmissionConfig::default_reserve_bytes`] when unbudgeted).
    /// `None` disables the memory gate.
    pub global_memory_bytes: Option<usize>,
    /// Reservation charged for a query with no memory budget.
    pub default_reserve_bytes: usize,
    /// Ceiling on the `retry_after_ms` backoff hint sent with
    /// [`WireError::Rejected`]. The raw hint is the queue's drain
    /// horizon (`queue_timeout`), which can be many seconds — an
    /// honest drain estimate but a terrible client backoff. Capping the
    /// hint keeps rejected clients probing at a bounded cadence, the
    /// same shape as [`lawsdb_storage::RetryPolicy::max_delay_us`] on
    /// the device-retry path.
    pub max_retry_after_ms: u64,
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig {
            max_concurrent_queries: 4,
            max_queued: 32,
            queue_timeout: Duration::from_secs(5),
            global_memory_bytes: Some(256 << 20),
            default_reserve_bytes: 16 << 20,
            max_retry_after_ms: 2_000,
        }
    }
}

/// Why a request was not admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// Queue already holds `max_queued` waiters.
    QueueFull {
        /// Queries running at rejection time.
        active: usize,
        /// Requests waiting at rejection time.
        queued: usize,
        /// Backoff hint: the configured queue timeout.
        retry_after_ms: u64,
    },
    /// Waited the full queue budget without a slot opening.
    QueueTimeout {
        /// Milliseconds actually waited.
        waited_ms: u64,
        /// The configured wait budget.
        budget_ms: u64,
    },
    /// The request's memory reservation exceeds the global cap on its
    /// own — it could never be admitted, so it fails immediately.
    ReserveTooLarge {
        /// Requested reservation.
        reserve: usize,
        /// The global cap.
        cap: usize,
    },
}

impl AdmissionError {
    /// The wire form of this refusal.
    pub fn to_wire(&self) -> WireError {
        match self {
            AdmissionError::QueueFull { active, queued, retry_after_ms } => WireError::Rejected {
                active: *active as u32,
                queued: *queued as u32,
                retry_after_ms: *retry_after_ms,
            },
            AdmissionError::QueueTimeout { waited_ms, budget_ms } => {
                WireError::QueueTimeout { waited_ms: *waited_ms, budget_ms: *budget_ms }
            }
            AdmissionError::ReserveTooLarge { reserve, cap } => WireError::Server {
                detail: format!(
                    "memory reservation {reserve} bytes exceeds the server's global cap {cap}"
                ),
            },
        }
    }
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_wire())
    }
}

impl std::error::Error for AdmissionError {}

#[derive(Debug, Default)]
struct State {
    active: usize,
    reserved_bytes: usize,
    queued: usize,
}

/// The shared admission gate. One per server; every query round-trips
/// through [`AdmissionController::admit`] and holds the returned
/// [`AdmissionPermit`] for exactly the execution span.
#[derive(Debug)]
pub struct AdmissionController {
    cfg: AdmissionConfig,
    state: Mutex<State>,
    slot_freed: Condvar,
    admitted: Arc<Counter>,
    queued_total: Arc<Counter>,
    rejected: Arc<Counter>,
    timeouts: Arc<Counter>,
    active_queries: Arc<Gauge>,
    active_peak: Arc<Gauge>,
    queue_wait_us: Arc<Histogram>,
    peak_seen: AtomicUsize,
}

impl AdmissionController {
    /// Build a controller whose counters live in `registry` under
    /// `lawsdb_server_*`.
    pub fn for_registry(cfg: AdmissionConfig, registry: &MetricsRegistry) -> AdmissionController {
        AdmissionController {
            cfg,
            state: Mutex::new(State::default()),
            slot_freed: Condvar::new(),
            admitted: registry.counter("lawsdb_server_admitted"),
            queued_total: registry.counter("lawsdb_server_queued"),
            rejected: registry.counter("lawsdb_server_rejected"),
            timeouts: registry.counter("lawsdb_server_queue_timeout"),
            active_queries: registry.gauge("lawsdb_server_active_queries"),
            active_peak: registry.gauge("lawsdb_server_active_queries_peak"),
            queue_wait_us: registry.histogram("lawsdb_server_queue_wait_us"),
            peak_seen: AtomicUsize::new(0),
        }
    }

    /// The configured caps.
    pub fn config(&self) -> &AdmissionConfig {
        &self.cfg
    }

    fn has_capacity(&self, st: &State, reserve: usize) -> bool {
        if st.active >= self.cfg.max_concurrent_queries {
            return false;
        }
        match self.cfg.global_memory_bytes {
            Some(cap) => st.reserved_bytes.saturating_add(reserve) <= cap,
            None => true,
        }
    }

    /// Ask to run a query reserving `reserve` bytes of the global
    /// memory cap. Returns a permit immediately when capacity exists,
    /// waits up to the configured queue timeout when it does not, and
    /// returns a structured [`AdmissionError`] when the queue is full,
    /// the wait expires, or the reservation could never fit.
    pub fn admit(self: &Arc<Self>, reserve: usize) -> Result<AdmissionPermit, AdmissionError> {
        if let Some(cap) = self.cfg.global_memory_bytes {
            if reserve > cap {
                self.rejected.inc();
                return Err(AdmissionError::ReserveTooLarge { reserve, cap });
            }
        }
        let started = Instant::now();
        let deadline = started + self.cfg.queue_timeout;
        let mut st = match self.state.lock() {
            Ok(g) => g,
            // A poisoned admission lock means a panic *while holding
            // it*; the state is a few counters, safe to keep using.
            Err(p) => p.into_inner(),
        };
        if self.has_capacity(&st, reserve) {
            return Ok(self.grant(&mut st, reserve, None));
        }
        if st.queued >= self.cfg.max_queued {
            self.rejected.inc();
            return Err(AdmissionError::QueueFull {
                active: st.active,
                queued: st.queued,
                retry_after_ms: (self.cfg.queue_timeout.as_millis() as u64)
                    .min(self.cfg.max_retry_after_ms),
            });
        }
        st.queued += 1;
        self.queued_total.inc();
        loop {
            let now = Instant::now();
            if now >= deadline {
                st.queued -= 1;
                self.timeouts.inc();
                self.rejected.inc();
                return Err(AdmissionError::QueueTimeout {
                    waited_ms: started.elapsed().as_millis() as u64,
                    budget_ms: self.cfg.queue_timeout.as_millis() as u64,
                });
            }
            let (guard, _timeout) = match self.slot_freed.wait_timeout(st, deadline - now) {
                Ok(r) => r,
                Err(p) => {
                    let g = p.into_inner();
                    (g.0, g.1)
                }
            };
            st = guard;
            if self.has_capacity(&st, reserve) {
                st.queued -= 1;
                return Ok(self.grant(&mut st, reserve, Some(started.elapsed())));
            }
        }
    }

    fn grant(
        self: &Arc<Self>,
        st: &mut State,
        reserve: usize,
        waited: Option<Duration>,
    ) -> AdmissionPermit {
        st.active += 1;
        st.reserved_bytes = st.reserved_bytes.saturating_add(reserve);
        self.admitted.inc();
        self.active_queries.add(1);
        let peak = self.peak_seen.fetch_max(st.active, Ordering::Relaxed).max(st.active);
        self.active_peak.set(peak as i64);
        self.queue_wait_us.observe(waited.unwrap_or(Duration::ZERO).as_micros() as u64);
        AdmissionPermit { controller: Arc::clone(self), reserve }
    }

    fn release(&self, reserve: usize) {
        let mut st = match self.state.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        st.active -= 1;
        st.reserved_bytes = st.reserved_bytes.saturating_sub(reserve);
        drop(st);
        self.active_queries.add(-1);
        self.slot_freed.notify_all();
    }

    /// Queries currently running (for tests and stats).
    pub fn active(&self) -> usize {
        match self.state.lock() {
            Ok(g) => g.active,
            Err(p) => p.into_inner().active,
        }
    }

    /// Highest concurrent-query count ever granted.
    pub fn peak_active(&self) -> usize {
        self.peak_seen.load(Ordering::Relaxed)
    }
}

/// RAII admission slot: holding it is the right to run one query;
/// dropping it frees the slot (and its memory reservation) and wakes
/// the queue.
#[derive(Debug)]
pub struct AdmissionPermit {
    controller: Arc<AdmissionController>,
    reserve: usize,
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        self.controller.release(self.reserve);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(cfg: AdmissionConfig) -> (Arc<AdmissionController>, Arc<MetricsRegistry>) {
        let registry = Arc::new(MetricsRegistry::new());
        (Arc::new(AdmissionController::for_registry(cfg, &registry)), registry)
    }

    #[test]
    fn fast_path_admits_and_releases() {
        let (c, reg) = controller(AdmissionConfig::default());
        let p = c.admit(1024).unwrap();
        assert_eq!(c.active(), 1);
        assert_eq!(reg.snapshot().gauge("lawsdb_server_active_queries"), 1);
        drop(p);
        assert_eq!(c.active(), 0);
        assert_eq!(reg.snapshot().gauge("lawsdb_server_active_queries"), 0);
        assert_eq!(reg.snapshot().counter("lawsdb_server_admitted"), 1);
    }

    #[test]
    fn reservation_larger_than_the_cap_fails_immediately() {
        let (c, _reg) = controller(AdmissionConfig {
            global_memory_bytes: Some(100),
            ..AdmissionConfig::default()
        });
        let err = c.admit(101).unwrap_err();
        assert_eq!(err, AdmissionError::ReserveTooLarge { reserve: 101, cap: 100 });
    }

    #[test]
    fn queue_full_rejects_with_retry_hint() {
        let (c, reg) = controller(AdmissionConfig {
            max_concurrent_queries: 1,
            max_queued: 0,
            queue_timeout: Duration::from_millis(250),
            ..AdmissionConfig::default()
        });
        let _held = c.admit(0).unwrap();
        let err = c.admit(0).unwrap_err();
        assert_eq!(
            err,
            AdmissionError::QueueFull { active: 1, queued: 0, retry_after_ms: 250 }
        );
        assert_eq!(reg.snapshot().counter("lawsdb_server_rejected"), 1);
    }

    #[test]
    fn retry_hint_is_capped_but_short_timeouts_pass_through() {
        // A long drain horizon must not become a multi-second client
        // backoff: the hint is min(queue_timeout, max_retry_after_ms).
        let (c, _reg) = controller(AdmissionConfig {
            max_concurrent_queries: 1,
            max_queued: 0,
            queue_timeout: Duration::from_secs(30),
            max_retry_after_ms: 2_000,
            ..AdmissionConfig::default()
        });
        let _held = c.admit(0).unwrap();
        let err = c.admit(0).unwrap_err();
        assert_eq!(err, AdmissionError::QueueFull { active: 1, queued: 0, retry_after_ms: 2_000 });

        // Timeouts below the cap are honest drain estimates: untouched.
        let (c, _reg) = controller(AdmissionConfig {
            max_concurrent_queries: 1,
            max_queued: 0,
            queue_timeout: Duration::from_millis(40),
            max_retry_after_ms: 2_000,
            ..AdmissionConfig::default()
        });
        let _held = c.admit(0).unwrap();
        let err = c.admit(0).unwrap_err();
        assert_eq!(err, AdmissionError::QueueFull { active: 1, queued: 0, retry_after_ms: 40 });
    }

    #[test]
    fn queue_timeout_is_honored() {
        let (c, reg) = controller(AdmissionConfig {
            max_concurrent_queries: 1,
            max_queued: 4,
            queue_timeout: Duration::from_millis(100),
            ..AdmissionConfig::default()
        });
        let _held = c.admit(0).unwrap();
        let started = Instant::now();
        let err = c.admit(0).unwrap_err();
        let waited = started.elapsed();
        match err {
            AdmissionError::QueueTimeout { waited_ms, budget_ms } => {
                assert_eq!(budget_ms, 100);
                assert!(waited_ms >= 100, "returned before the budget: {waited_ms} ms");
            }
            other => panic!("expected QueueTimeout, got {other:?}"),
        }
        assert!(waited >= Duration::from_millis(100));
        // Generous upper tolerance for a loaded 1-CPU box.
        assert!(waited < Duration::from_secs(5), "waited {waited:?}");
        assert_eq!(reg.snapshot().counter("lawsdb_server_queue_timeout"), 1);
        assert_eq!(reg.snapshot().counter("lawsdb_server_queued"), 1);
    }

    #[test]
    fn queued_request_runs_when_the_slot_frees() {
        let (c, reg) = controller(AdmissionConfig {
            max_concurrent_queries: 1,
            max_queued: 4,
            queue_timeout: Duration::from_secs(10),
            ..AdmissionConfig::default()
        });
        let held = c.admit(0).unwrap();
        let c2 = Arc::clone(&c);
        let waiter = std::thread::spawn(move || c2.admit(0).map(drop).is_ok());
        std::thread::sleep(Duration::from_millis(50));
        drop(held);
        assert!(waiter.join().unwrap(), "queued request must be admitted after release");
        assert_eq!(reg.snapshot().counter("lawsdb_server_admitted"), 2);
        assert_eq!(reg.snapshot().counter("lawsdb_server_queued"), 1);
        assert_eq!(reg.snapshot().counter("lawsdb_server_rejected"), 0);
    }

    #[test]
    fn memory_gate_blocks_until_reservations_drain() {
        let (c, _reg) = controller(AdmissionConfig {
            max_concurrent_queries: 8,
            max_queued: 4,
            queue_timeout: Duration::from_millis(100),
            global_memory_bytes: Some(100),
            default_reserve_bytes: 0,
            ..AdmissionConfig::default()
        });
        let p60 = c.admit(60).unwrap();
        let _p40 = c.admit(40).unwrap();
        // Concurrency slots remain, but the memory cap is exhausted.
        let err = c.admit(1).unwrap_err();
        assert!(matches!(err, AdmissionError::QueueTimeout { .. }), "{err:?}");
        drop(p60);
        assert!(c.admit(1).is_ok());
    }
}
