//! The session layer: one thread per client connection, all sessions
//! sharing one [`LawsDb`] (one pager cache, one model catalog, one
//! plan cache, one metrics registry).
//!
//! A session owns its [`SessionOptions`] (layered over the server's
//! defaults), and every query it runs passes through the
//! [`AdmissionController`](crate::admission::AdmissionController)
//! before touching the engine. Failure scoping is strict:
//!
//! * a *query* error (timeout, budget, panic, parse, …) is answered
//!   with a structured [`WireError::Query`] and the session lives on;
//! * a *protocol* error (malformed frame) is answered and then closes
//!   **this** session only — sibling sessions never notice;
//! * a client disconnect (EOF) tears the session down cleanly,
//!   unregistering it from the directory and freeing its gauge.
//!
//! In-flight queries are cancellable across sessions: the directory
//! maps session id → the [`CancelToken`] of its running query, and
//! [`Frame::Cancel`] trips it from any connection.

use crate::admission::AdmissionPermit;
use crate::error::{
    cluster_error_to_wire, core_error_to_wire, query_error_kind, TransportError, WireError,
};
use crate::protocol::{
    encoded_result_len, read_frame, read_frame_payload, write_frame, write_frame_versioned, Frame,
    QueryMode, SessionOptions, StatsFormat, WireResult, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION,
};
use crate::server::Server;
use lawsdb_core::Answer;
use lawsdb_obs::{
    fields, FlightRecord, FlightRecorder, Gauge, ProfileCollector, TraceNode,
};
use lawsdb_query::{morsel::parallel_morsels, CancelToken, ExecOptions, Governor, ResourceBudget};
use lawsdb_storage::TableBuilder;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

impl SessionOptions {
    /// Layer these options over `base`: any knob the client left unset
    /// falls back to the server's default.
    pub fn merged_over(&self, base: &SessionOptions) -> SessionOptions {
        SessionOptions {
            threads: self.threads.or(base.threads),
            morsel_rows: self.morsel_rows.or(base.morsel_rows),
            pruning: self.pruning.or(base.pruning),
            deadline_ms: self.deadline_ms.or(base.deadline_ms),
            memory_bytes: self.memory_bytes.or(base.memory_bytes),
            max_rows: self.max_rows.or(base.max_rows),
        }
    }

    /// The per-query [`ResourceBudget`] these options request.
    pub fn budget(&self) -> ResourceBudget {
        ResourceBudget {
            deadline: self.deadline_ms.map(Duration::from_millis),
            memory_bytes: self.memory_bytes.map(|b| b as usize),
            max_rows: self.max_rows.map(|r| r as usize),
        }
    }
}

/// Registry of live sessions: ids, per-session cancel hooks, and the
/// `lawsdb_server_active_sessions` gauge.
#[derive(Debug)]
pub struct SessionDirectory {
    slots: Mutex<HashMap<u64, Option<CancelToken>>>,
    next_id: AtomicU64,
    max_sessions: usize,
    active_sessions: Arc<Gauge>,
    sessions_total: Arc<lawsdb_obs::Counter>,
}

impl SessionDirectory {
    pub(crate) fn new(
        max_sessions: usize,
        registry: &lawsdb_obs::MetricsRegistry,
    ) -> SessionDirectory {
        SessionDirectory {
            slots: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            max_sessions,
            active_sessions: registry.gauge("lawsdb_server_active_sessions"),
            sessions_total: registry.counter("lawsdb_server_sessions_total"),
        }
    }

    /// Admit a new session, or refuse with the current/max counts when
    /// the cap is reached.
    pub fn register(&self) -> Result<u64, (usize, usize)> {
        let mut slots = self.slots.lock();
        if slots.len() >= self.max_sessions {
            return Err((slots.len(), self.max_sessions));
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        slots.insert(id, None);
        self.active_sessions.add(1);
        self.sessions_total.inc();
        Ok(id)
    }

    /// Remove a session (idempotent).
    pub fn unregister(&self, id: u64) {
        if self.slots.lock().remove(&id).is_some() {
            self.active_sessions.add(-1);
        }
    }

    /// Publish the cancel token of `id`'s in-flight query.
    pub fn set_cancel(&self, id: u64, token: CancelToken) {
        if let Some(slot) = self.slots.lock().get_mut(&id) {
            *slot = Some(token);
        }
    }

    /// Clear the in-flight hook after a query finishes.
    pub fn clear_cancel(&self, id: u64) {
        if let Some(slot) = self.slots.lock().get_mut(&id) {
            *slot = None;
        }
    }

    /// Trip the cancel token of `id`'s running query. Returns whether a
    /// token was actually delivered.
    pub fn cancel(&self, id: u64) -> bool {
        match self.slots.lock().get(&id) {
            Some(Some(token)) => {
                token.cancel();
                true
            }
            _ => false,
        }
    }

    /// Open sessions right now.
    pub fn active(&self) -> usize {
        self.slots.lock().len()
    }
}

/// Serve one connection: handshake, then a strict request→response
/// loop until EOF, `Close`, or a protocol violation.
pub(crate) fn run_session<S: Read + Write>(server: &Arc<Server>, mut stream: S) {
    let session_id = match server.sessions().register() {
        Ok(id) => id,
        Err((active, max)) => {
            let _ = write_frame(
                &mut stream,
                &Frame::Error(WireError::SessionLimit { active: active as u32, max: max as u32 }),
            );
            return;
        }
    };
    serve_registered(server, &mut stream, session_id);
    server.sessions().unregister(session_id);
}

fn serve_registered<S: Read + Write>(server: &Arc<Server>, stream: &mut S, session_id: u64) {
    // Handshake: the first frame must be a Hello inside the supported
    // version window. The session then speaks the *client's* version —
    // a v1 client never sees v2 result bodies (trace extension).
    let (mut options, negotiated) = match read_frame(stream) {
        Ok(Some(Frame::Hello { protocol_version, options })) => {
            if !(MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&protocol_version) {
                let _ = write_frame(
                    stream,
                    &Frame::Error(WireError::Protocol {
                        detail: format!(
                            "protocol version mismatch: client {protocol_version}, \
                             server {PROTOCOL_VERSION}"
                        ),
                    }),
                );
                return;
            }
            (options.merged_over(server.config().default_options()), protocol_version)
        }
        Ok(Some(_)) => {
            let _ = write_frame(
                stream,
                &Frame::Error(WireError::Protocol {
                    detail: "expected Hello as the first frame".to_string(),
                }),
            );
            return;
        }
        Ok(None) => return,
        Err(e) => {
            reply_transport_error(server, stream, &e);
            return;
        }
    };
    if write_frame_versioned(
        stream,
        &Frame::HelloAck { session: session_id, protocol_version: negotiated },
        negotiated,
    )
    .is_err()
    {
        return;
    }

    loop {
        // Read the raw payload first so the decode step runs under the
        // server clock and can be charged to the query's trace.
        let payload = match read_frame_payload(stream) {
            Ok(Some(p)) => p,
            Ok(None) => return, // clean disconnect
            Err(e) => {
                reply_transport_error(server, stream, &e);
                return;
            }
        };
        let clock = server.clock();
        let decode_started = clock.now_micros();
        let decoded = Frame::decode(&payload);
        let decode_us = clock.now_micros().saturating_sub(decode_started);
        let reply = match decoded {
            Ok(Frame::Query { mode, sql, trace }) => {
                let wire = WireContext { trace, negotiated, decode_us, frame_bytes: payload.len() };
                run_query(server, session_id, &options, mode, &sql, wire)
            }
            Ok(Frame::SetOptions { options: new }) => {
                options = new.merged_over(server.config().default_options());
                Frame::OptionsAck
            }
            Ok(Frame::Stats { format }) => Frame::StatsReply {
                text: match format {
                    StatsFormat::Prometheus => server.db().stats_prometheus(),
                    StatsFormat::Json => server.db().stats_json(),
                },
            },
            Ok(Frame::SlowLog { n }) => {
                Frame::SlowLogReply { entries: server.recorder().worst(n as usize) }
            }
            Ok(Frame::Cancel { session }) => {
                Frame::CancelAck { delivered: server.sessions().cancel(session) }
            }
            Ok(Frame::Close) => {
                let _ = write_frame_versioned(stream, &Frame::Goodbye, negotiated);
                return;
            }
            Ok(other) => {
                // A server→client frame arriving at the server is a
                // protocol violation: answer and close this session.
                let _ = write_frame_versioned(
                    stream,
                    &Frame::Error(WireError::Protocol {
                        detail: format!("unexpected frame from client: {other:?}"),
                    }),
                    negotiated,
                );
                server.metrics_hooks().protocol_errors.inc();
                return;
            }
            Err(e) => {
                reply_transport_error(server, stream, &TransportError::Protocol(e));
                return;
            }
        };
        if write_frame_versioned(stream, &reply, negotiated).is_err() {
            return;
        }
    }
}

fn reply_transport_error<S: Read + Write>(server: &Arc<Server>, stream: &mut S, e: &TransportError) {
    if let TransportError::Protocol(p) = e {
        server.metrics_hooks().protocol_errors.inc();
        let _ = write_frame(
            stream,
            &Frame::Error(WireError::Protocol { detail: p.to_string() }),
        );
    }
    // IO errors mean the stream is gone; nothing to say, just close.
}

/// Per-request wire context handed from the session loop into
/// [`run_query`]: what the client asked for and what the framing layer
/// already measured.
struct WireContext {
    /// The client requested the full trace tree on its result.
    trace: bool,
    /// Negotiated protocol version for this session.
    negotiated: u32,
    /// Microseconds the frame decode took (server clock).
    decode_us: u64,
    /// Raw payload size of the query frame.
    frame_bytes: usize,
}

/// Admit, execute, and package one query.
fn run_query(
    server: &Arc<Server>,
    session_id: u64,
    options: &SessionOptions,
    mode: QueryMode,
    sql: &str,
    wire: WireContext,
) -> Frame {
    let hooks = server.metrics_hooks();
    hooks.queries.inc();
    let clock = Arc::clone(server.clock());
    let recorder = server.recorder();
    let query_id = server.mint_query_id();
    // A profile is collected when the client asked for a trace or when
    // the flight recorder might keep this query; otherwise the
    // collector — and every span under it — never exists.
    let collector = (wire.trace || recorder.enabled())
        .then(|| ProfileCollector::with_clock(Arc::clone(&clock)));
    let ctx = collector.as_ref().map(|c| c.context());
    if let Some(c) = &ctx {
        c.point(
            "server.decode",
            fields![us = wire.decode_us, bytes = wire.frame_bytes as u64],
        );
    }
    // The session's requested budget, clamped by the server's per-query
    // caps: a client may tighten its limits, never exceed the server's.
    let budget = options.budget().intersect(&server.config().max_budget);
    let cancel = CancelToken::new();
    server.sessions().set_cancel(session_id, cancel.clone());
    let reserve = budget
        .memory_bytes
        .unwrap_or(server.admission().config().default_reserve_bytes);
    // Queue wait runs on the mockable server clock (not `Instant`), so
    // MockClock tests pin it and traces stay deterministic.
    let queue_started = clock.now_micros();
    let admitted = {
        let _queue_span = ctx.as_ref().map(|c| c.span("server.admission"));
        server.admission().admit(reserve)
    };
    let queue_us = clock.now_micros().saturating_sub(queue_started);
    let permit = match admitted {
        Ok(p) => p,
        Err(e) => {
            server.sessions().clear_cancel(session_id);
            hooks.query_errors.inc();
            let err = e.to_wire();
            finish_record(recorder, collector, query_id, sql, mode, Some(err.to_string()));
            return Frame::Error(err);
        }
    };
    let exec = ExecOptions {
        threads: options.threads.unwrap_or(1) as usize,
        morsel_rows: options
            .morsel_rows
            .map(|m| (m as usize).max(1))
            .unwrap_or(lawsdb_query::morsel::DEFAULT_MORSEL_ROWS),
        pruning: options.pruning.unwrap_or(true),
        budget,
        cancel: Some(cancel),
        profile: ctx.clone(),
        query_id,
        ..ExecOptions::default()
    };
    let service_started = clock.now_micros();
    let outcome = dispatch(server, &permit, mode, sql, &exec);
    let service_us = clock.now_micros().saturating_sub(service_started);
    drop(permit);
    server.sessions().clear_cancel(session_id);
    hooks.query_us.observe_with_exemplar(service_us, query_id);
    match outcome {
        Ok(Frame::ResultSet(mut r)) => {
            r.service_us = service_us;
            r.queue_us = queue_us;
            r.query_id = query_id;
            if let Some(c) = &ctx {
                // Charge the encode of the body about to ship. The
                // trace is attached afterwards: it cannot contain the
                // cost of encoding itself.
                let mut span = c.span("server.encode");
                span.field("bytes", encoded_result_len(&r, wire.negotiated) as u64);
            }
            let tree = finish_record(recorder, collector, query_id, sql, mode, None);
            if wire.trace && wire.negotiated >= 2 {
                r.trace = tree;
            }
            Frame::ResultSet(r)
        }
        Ok(other) => {
            finish_record(recorder, collector, query_id, sql, mode, None);
            other
        }
        Err(e) => {
            hooks.query_errors.inc();
            finish_record(recorder, collector, query_id, sql, mode, Some(e.to_string()));
            Frame::Error(e)
        }
    }
}

/// Assemble the collected profile into a [`TraceNode`], feed the
/// flight recorder, and hand the tree back for clients that asked.
fn finish_record(
    recorder: &FlightRecorder,
    collector: Option<Arc<ProfileCollector>>,
    query_id: u64,
    sql: &str,
    mode: QueryMode,
    error: Option<String>,
) -> Option<TraceNode> {
    let collector = collector?;
    let tree = TraceNode::from(&collector.build("query"));
    recorder.observe(FlightRecord::from_trace(query_id, sql, mode.name(), error, tree.clone()));
    Some(tree)
}

fn dispatch(
    server: &Arc<Server>,
    _permit: &AdmissionPermit,
    mode: QueryMode,
    sql: &str,
    exec: &ExecOptions,
) -> Result<Frame, WireError> {
    if server.config().fault_injection {
        if let Some(frame) = injected_fault(sql, exec)? {
            return Ok(frame);
        }
    }
    let db = server.db();
    match mode {
        QueryMode::Exact => {
            let r = db.query_with(sql, exec).map_err(|e| core_error_to_wire(&e))?;
            Ok(result_frame(r.table, r.rows_scanned as u64, false, None, Vec::new()))
        }
        QueryMode::Resilient => {
            let r = db.query_resilient_with(sql, exec).map_err(|e| core_error_to_wire(&e))?;
            let degraded = r.degraded.iter().map(|d| d.name().to_string()).collect();
            answer_frame(r.answer, degraded)
        }
        QueryMode::Adaptive => {
            let a = db.query_adaptive_with(sql, exec).map_err(|e| core_error_to_wire(&e))?;
            answer_frame(a, Vec::new())
        }
        QueryMode::Explain => {
            let text = db.explain(sql).map_err(|e| core_error_to_wire(&e))?;
            Ok(Frame::ExplainReply { text })
        }
        QueryMode::Cluster => {
            let Some(cluster) = server.cluster() else {
                return Err(WireError::Query {
                    kind: "cluster_unavailable".to_string(),
                    detail: "this server fronts no sharded cluster".to_string(),
                });
            };
            let a = cluster.query(sql, exec).map_err(|e| cluster_error_to_wire(&e))?;
            let degraded = a.degraded.iter().map(|d| d.name().to_string()).collect();
            Ok(result_frame(
                a.table,
                a.rows_scanned as u64,
                a.approximate,
                a.error_bound,
                degraded,
            ))
        }
    }
}

fn answer_frame(answer: Answer, degraded: Vec<String>) -> Result<Frame, WireError> {
    Ok(match answer {
        Answer::Exact(r) => {
            result_frame(r.table, r.rows_scanned as u64, false, None, degraded)
        }
        Answer::Approx(a) => {
            result_frame(a.table, a.rows_scanned as u64, true, a.error_bound, degraded)
        }
    })
}

fn result_frame(
    table: lawsdb_storage::Table,
    rows_scanned: u64,
    approximate: bool,
    error_bound: Option<f64>,
    degraded: Vec<String>,
) -> Frame {
    Frame::ResultSet(Box::new(WireResult {
        table,
        rows_scanned,
        approximate,
        error_bound,
        degraded,
        service_us: 0,
        queue_us: 0,
        query_id: 0,
        trace: None,
    }))
}

/// Test-only fault hooks, compiled in but dead unless
/// [`ServerConfig::fault_injection`](crate::ServerConfig) is set:
///
/// * `FAULT PANIC` — a kernel that panics inside a morsel worker, so
///   the catch-unwind isolation path is exercised end-to-end over the
///   wire (the session answers a structured `worker_panic` error and
///   stays up).
/// * `FAULT SLEEP <total_ms> <morsels>` — a deterministic long query:
///   `morsels` one-row morsels each sleeping `total_ms / morsels`,
///   governor-checked between morsels, so cancel and deadline tests
///   have a predictable target.
fn injected_fault(sql: &str, exec: &ExecOptions) -> Result<Option<Frame>, WireError> {
    let Some(rest) = sql.strip_prefix("FAULT ") else {
        return Ok(None);
    };
    let opts = ExecOptions {
        morsel_rows: 1,
        threads: 1,
        governor: Governor::arm(exec.budget, exec.cancel.clone()),
        ..exec.clone()
    };
    let wire = |e: lawsdb_query::QueryError| WireError::Query {
        kind: query_error_kind(&e).to_string(),
        detail: e.to_string(),
    };
    if rest == "PANIC" {
        let err = parallel_morsels(4, &opts, |_, _| -> lawsdb_query::Result<usize> {
            panic!("injected fault: deliberate kernel panic")
        })
        .expect_err("a panicking kernel must surface as a structured error");
        return Err(wire(err));
    }
    if let Some(args) = rest.strip_prefix("SLEEP ") {
        let mut it = args.split_whitespace();
        let (Some(total_ms), Some(morsels)) = (
            it.next().and_then(|v| v.parse::<u64>().ok()),
            it.next().and_then(|v| v.parse::<u64>().ok()),
        ) else {
            return Err(WireError::Query {
                kind: "parse".to_string(),
                detail: "FAULT SLEEP expects <total_ms> <morsels>".to_string(),
            });
        };
        let morsels = morsels.clamp(1, 10_000) as usize;
        let nap = Duration::from_millis(total_ms / morsels as u64);
        parallel_morsels(morsels, &opts, |offset, _| {
            std::thread::sleep(nap);
            Ok(offset)
        })
        .map_err(wire)?;
        let mut b = TableBuilder::new("fault_sleep");
        b.add_i64("slept_morsels", vec![morsels as i64]);
        let table = b.build().map_err(|e| WireError::Server { detail: e.to_string() })?;
        return Ok(Some(result_frame(table, 0, false, None, Vec::new())));
    }
    Err(WireError::Query {
        kind: "parse".to_string(),
        detail: format!("unknown fault directive: {rest:?}"),
    })
}
