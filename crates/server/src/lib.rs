//! # lawsdb-server — the multi-session front end
//!
//! Turns one embedded [`LawsDb`](lawsdb_core::LawsDb) into a server:
//! concurrent client sessions over a shared engine (one pager cache,
//! one model catalog, one plan cache), with every query passing
//! through global admission control before it can touch a core.
//!
//! * [`protocol`] — the length-prefixed binary wire format; total,
//!   never-panicking decode.
//! * [`pipe`] — in-process loopback transport (no sockets needed).
//! * [`admission`] — bounded-queue admission with concurrency and
//!   memory caps, timeouts, and structured rejections.
//! * [`session`] — the per-connection request loop and the live-session
//!   directory (cross-session cancel lives here).
//! * [`server`] — ties it together; TCP and in-process listeners.
//! * [`client`] — the typed synchronous client library the tests and
//!   benches drive the server with.
//!
//! Every server metric lands in the engine's own
//! [`MetricsRegistry`](lawsdb_obs::MetricsRegistry) under the
//! `lawsdb_server_*` namespace, so one stats snapshot covers storage,
//! query, and server behavior together.

#![warn(missing_docs)]

pub mod admission;
pub mod client;
pub mod error;
pub mod pipe;
pub mod protocol;
pub mod server;
pub mod session;

pub use admission::{AdmissionConfig, AdmissionController, AdmissionError, AdmissionPermit};
pub use client::{AdmissionRetry, Client, ClientError};
pub use error::{ProtocolError, TransportError, WireError};
pub use pipe::{duplex, PipeStream};
pub use protocol::{
    read_frame, write_frame, write_frame_versioned, Frame, QueryMode, SessionOptions, StatsFormat,
    WireResult, MAX_FRAME_BYTES, MAX_TRACE_DEPTH, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION,
};
pub use server::{Server, ServerConfig, TcpHandle};
pub use session::SessionDirectory;
