//! Structured errors for the server front end.
//!
//! Three layers, kept distinct on purpose:
//!
//! * [`ProtocolError`] — a byte stream that is not a well-formed frame.
//!   Pure data (`Clone + PartialEq`), produced only by decoding, so the
//!   proptest corruption suite can assert on exact variants.
//! * [`TransportError`] — a protocol error *or* an IO failure while
//!   moving frames; what the framed read/write functions return.
//! * [`WireError`] — the failure vocabulary that crosses the wire:
//!   admission rejections (with retry hints), per-query engine errors
//!   (with stable kind names), protocol violations, server faults.

use lawsdb_query::QueryError;
use std::fmt;

/// A malformed frame. Every variant is a refusal, never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The payload ended before a field it promised.
    Truncated {
        /// Bytes the next field needed.
        needed: usize,
        /// Bytes actually left.
        available: usize,
    },
    /// A claimed length no valid frame could carry.
    Oversized {
        /// Which field made the claim.
        what: &'static str,
        /// The claimed size.
        claimed: u64,
    },
    /// An unknown discriminant byte.
    BadTag {
        /// Which field was being decoded.
        context: &'static str,
        /// The byte found.
        tag: u8,
    },
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// Bytes left over after a complete frame body.
    TrailingBytes {
        /// How many.
        count: usize,
    },
    /// A decoded table failed the engine's shape validation.
    BadTable {
        /// The storage layer's explanation.
        detail: String,
    },
    /// The client spoke a different protocol version.
    VersionMismatch {
        /// Client's version.
        client: u32,
        /// This server's version.
        server: u32,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Truncated { needed, available } => {
                write!(f, "truncated frame: needed {needed} bytes, {available} available")
            }
            ProtocolError::Oversized { what, claimed } => {
                write!(f, "oversized claim: {what} = {claimed}")
            }
            ProtocolError::BadTag { context, tag } => {
                write!(f, "bad {context} tag 0x{tag:02X}")
            }
            ProtocolError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            ProtocolError::TrailingBytes { count } => {
                write!(f, "{count} trailing bytes after frame body")
            }
            ProtocolError::BadTable { detail } => write!(f, "malformed table: {detail}"),
            ProtocolError::VersionMismatch { client, server } => {
                write!(f, "protocol version mismatch: client {client}, server {server}")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

/// A failure while moving frames over a stream.
#[derive(Debug)]
pub enum TransportError {
    /// The bytes were readable but not a valid frame.
    Protocol(ProtocolError),
    /// The stream itself failed.
    Io(std::io::Error),
}

impl TransportError {
    pub(crate) fn io(e: std::io::Error) -> TransportError {
        TransportError::Io(e)
    }
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Protocol(e) => write!(f, "{e}"),
            TransportError::Io(e) => write!(f, "transport IO error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TransportError::Protocol(e) => Some(e),
            TransportError::Io(e) => Some(e),
        }
    }
}

impl From<ProtocolError> for TransportError {
    fn from(e: ProtocolError) -> TransportError {
        TransportError::Protocol(e)
    }
}

/// The structured failure vocabulary that crosses the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The admission queue was full; retry after the hinted delay.
    Rejected {
        /// Queries running when the request arrived.
        active: u32,
        /// Requests already waiting.
        queued: u32,
        /// Suggested client backoff (the queue's drain horizon).
        retry_after_ms: u64,
    },
    /// The request waited its full queue budget without being admitted.
    QueueTimeout {
        /// Milliseconds actually waited.
        waited_ms: u64,
        /// The queue-wait budget.
        budget_ms: u64,
    },
    /// The server is at its session cap; the connection is closed.
    SessionLimit {
        /// Sessions currently open.
        active: u32,
        /// The configured cap.
        max: u32,
    },
    /// The engine refused or aborted the query. `kind` is a stable
    /// machine-readable name (`timeout`, `cancelled`, `memory_exceeded`,
    /// `row_limit_exceeded`, `worker_panic`, `parse`, …); `detail` is
    /// the engine's human-readable rendering.
    Query {
        /// Stable error-kind name.
        kind: String,
        /// Full error text.
        detail: String,
    },
    /// The client sent a malformed frame; the session closes after
    /// this reply (and only this session).
    Protocol {
        /// What was wrong.
        detail: String,
    },
    /// An internal server failure.
    Server {
        /// What happened.
        detail: String,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Rejected { active, queued, retry_after_ms } => write!(
                f,
                "admission rejected: {active} active, {queued} queued; retry after {retry_after_ms} ms"
            ),
            WireError::QueueTimeout { waited_ms, budget_ms } => {
                write!(f, "queue timeout: waited {waited_ms} ms (budget {budget_ms} ms)")
            }
            WireError::SessionLimit { active, max } => {
                write!(f, "session limit reached: {active} of {max} open")
            }
            WireError::Query { kind, detail } => write!(f, "query error ({kind}): {detail}"),
            WireError::Protocol { detail } => write!(f, "protocol violation: {detail}"),
            WireError::Server { detail } => write!(f, "server error: {detail}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Stable machine-readable name for each engine error variant —
/// the `kind` field of [`WireError::Query`].
pub fn query_error_kind(e: &QueryError) -> &'static str {
    match e {
        QueryError::Lex { .. } => "lex",
        QueryError::Parse { .. } => "parse",
        QueryError::UnknownColumn { .. } => "unknown_column",
        QueryError::InvalidAggregate { .. } => "invalid_aggregate",
        QueryError::Type { .. } => "type",
        QueryError::Unsupported { .. } => "unsupported",
        QueryError::Timeout { .. } => "timeout",
        QueryError::MemoryExceeded { .. } => "memory_exceeded",
        QueryError::Cancelled => "cancelled",
        QueryError::RowLimitExceeded { .. } => "row_limit_exceeded",
        QueryError::WorkerPanic { .. } => "worker_panic",
        QueryError::Storage(_) => "storage",
    }
}

/// Map an engine error to its wire form.
pub fn core_error_to_wire(e: &lawsdb_core::CoreError) -> WireError {
    match e {
        lawsdb_core::CoreError::Query(q) => {
            WireError::Query { kind: query_error_kind(q).to_string(), detail: q.to_string() }
        }
        other => WireError::Query { kind: "engine".to_string(), detail: other.to_string() },
    }
}

/// Map a cluster error to its wire form. `partial_result` and
/// `cluster_unsupported` are stable kinds clients branch on; query- and
/// storage-layer failures keep their engine kinds.
pub fn cluster_error_to_wire(e: &lawsdb_cluster::ClusterError) -> WireError {
    match e {
        lawsdb_cluster::ClusterError::Unsupported { .. } => {
            WireError::Query { kind: "cluster_unsupported".to_string(), detail: e.to_string() }
        }
        lawsdb_cluster::ClusterError::PartialResult { .. } => {
            WireError::Query { kind: "partial_result".to_string(), detail: e.to_string() }
        }
        lawsdb_cluster::ClusterError::Query(q) => {
            WireError::Query { kind: query_error_kind(q).to_string(), detail: q.to_string() }
        }
        lawsdb_cluster::ClusterError::Storage(s) => {
            WireError::Query { kind: "storage".to_string(), detail: s.to_string() }
        }
    }
}
