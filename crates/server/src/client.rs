//! The in-process client library: a thin, synchronous, typed wrapper
//! over the wire protocol. One [`Client`] owns one session; calls are
//! strict request→response, mirroring the server's session loop.
//!
//! The client works over any `Read + Write` stream — the in-process
//! [`PipeStream`](crate::pipe::PipeStream) from
//! [`Server::connect`](crate::Server::connect), or a `TcpStream`
//! against [`Server::serve_tcp`](crate::Server::serve_tcp).

use crate::error::{TransportError, WireError};
use crate::protocol::{
    read_frame, write_frame, Frame, QueryMode, SessionOptions, StatsFormat, WireResult,
    PROTOCOL_VERSION,
};
use lawsdb_obs::FlightRecord;
use std::fmt;
use std::io::{Read, Write};
use std::time::Duration;

/// Deterministic client-side backoff for admission rejections — the
/// same shape as `lawsdb_storage::RetryPolicy` (attempt budget, base
/// delay, hard ceiling), in milliseconds because admission hints are.
///
/// The wait before each retry honors the server's `retry_after_ms`
/// hint as a floor — retrying sooner would just get rejected again —
/// escalates by doubling for repeated rejections, and is capped at
/// `max_delay_ms` no matter what the server suggests, so a
/// misconfigured (or hostile) hint can never park a client for
/// minutes. Every delay is a pure function of the attempt index and
/// the hint, so a logged schedule replays exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionRetry {
    /// Total attempts per query, including the first (1 = no retry).
    pub max_attempts: u32,
    /// Client-side backoff before the first retry, in milliseconds.
    pub base_delay_ms: u64,
    /// Hard ceiling on any single wait, in milliseconds. Also caps the
    /// server's `retry_after_ms` hint.
    pub max_delay_ms: u64,
}

impl AdmissionRetry {
    /// No retries: every rejection surfaces immediately.
    pub fn none() -> AdmissionRetry {
        AdmissionRetry { max_attempts: 1, base_delay_ms: 0, max_delay_ms: 0 }
    }

    /// The default query policy: 6 attempts, 10 ms doubling, capped at
    /// 500 ms per wait. Worst case a client burns ~1.8 s before giving
    /// up on a saturated server.
    pub fn default_queries() -> AdmissionRetry {
        AdmissionRetry { max_attempts: 6, base_delay_ms: 10, max_delay_ms: 500 }
    }

    /// The wait before retry number `retry` (1-based), given the
    /// server's `retry_after_ms` hint from the rejection it follows.
    pub fn delay_for(&self, retry: u32, retry_after_ms: u64) -> Duration {
        let exp = retry.saturating_sub(1).min(32);
        let own = self.base_delay_ms.saturating_mul(1u64 << exp);
        Duration::from_millis(own.max(retry_after_ms).min(self.max_delay_ms))
    }
}

impl Default for AdmissionRetry {
    fn default() -> AdmissionRetry {
        AdmissionRetry::default_queries()
    }
}

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// The stream failed or carried a malformed frame.
    Transport(TransportError),
    /// The server answered with a structured error.
    Server(WireError),
    /// The server answered with a frame this request cannot accept.
    Unexpected {
        /// What the client was waiting for.
        expected: &'static str,
        /// What arrived, rendered.
        got: String,
    },
    /// The server closed the stream mid-conversation.
    Disconnected,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Transport(e) => write!(f, "{e}"),
            ClientError::Server(e) => write!(f, "{e}"),
            ClientError::Unexpected { expected, got } => {
                write!(f, "expected {expected}, got {got}")
            }
            ClientError::Disconnected => write!(f, "server disconnected"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<TransportError> for ClientError {
    fn from(e: TransportError) -> ClientError {
        ClientError::Transport(e)
    }
}

/// One connected session.
#[derive(Debug)]
pub struct Client<S> {
    stream: S,
    session: u64,
    version: u32,
}

impl<S: Read + Write> Client<S> {
    /// Handshake over `stream` with default options.
    pub fn connect(stream: S) -> Result<Client<S>, ClientError> {
        Client::connect_with(stream, SessionOptions::default())
    }

    /// Handshake over `stream` with initial session options.
    pub fn connect_with(mut stream: S, options: SessionOptions) -> Result<Client<S>, ClientError> {
        write_frame(&mut stream, &Frame::Hello { protocol_version: PROTOCOL_VERSION, options })?;
        match read_frame(&mut stream)? {
            Some(Frame::HelloAck { session, protocol_version }) => {
                Ok(Client { stream, session, version: protocol_version })
            }
            Some(Frame::Error(e)) => Err(ClientError::Server(e)),
            Some(other) => {
                Err(ClientError::Unexpected { expected: "HelloAck", got: format!("{other:?}") })
            }
            None => Err(ClientError::Disconnected),
        }
    }

    /// This session's id — the handle another session would pass to
    /// [`Client::cancel`] to cancel this session's running query.
    pub fn session_id(&self) -> u64 {
        self.session
    }

    /// The protocol version the server acknowledged for this session.
    pub fn negotiated_version(&self) -> u32 {
        self.version
    }

    fn roundtrip(&mut self, request: &Frame) -> Result<Frame, ClientError> {
        write_frame(&mut self.stream, request)?;
        match read_frame(&mut self.stream)? {
            Some(frame) => Ok(frame),
            None => Err(ClientError::Disconnected),
        }
    }

    /// Run `sql` in `mode`; returns the typed result set.
    pub fn query(&mut self, mode: QueryMode, sql: &str) -> Result<WireResult, ClientError> {
        self.query_inner(mode, sql, false)
    }

    /// Run `sql` in `mode` with tracing: the result carries the full
    /// distributed trace tree in [`WireResult::trace`] (admission
    /// queue, decode/encode, per-shard scatter-gather phases, plan and
    /// morsel spans). Requires a v2 session; a v1 server simply never
    /// attaches the tree.
    pub fn query_traced(&mut self, mode: QueryMode, sql: &str) -> Result<WireResult, ClientError> {
        self.query_inner(mode, sql, true)
    }

    fn query_inner(
        &mut self,
        mode: QueryMode,
        sql: &str,
        trace: bool,
    ) -> Result<WireResult, ClientError> {
        match self.roundtrip(&Frame::Query { mode, sql: sql.to_string(), trace })? {
            Frame::ResultSet(r) => Ok(*r),
            Frame::Error(e) => Err(ClientError::Server(e)),
            other => {
                Err(ClientError::Unexpected { expected: "ResultSet", got: format!("{other:?}") })
            }
        }
    }

    /// Fetch the server's slow-query flight recorder: up to `n`
    /// complete profiles of the slowest (or failed) recent queries,
    /// worst first.
    pub fn slowlog(&mut self, n: u32) -> Result<Vec<FlightRecord>, ClientError> {
        match self.roundtrip(&Frame::SlowLog { n })? {
            Frame::SlowLogReply { entries } => Ok(entries),
            Frame::Error(e) => Err(ClientError::Server(e)),
            other => {
                Err(ClientError::Unexpected { expected: "SlowLogReply", got: format!("{other:?}") })
            }
        }
    }

    /// Run `sql` in `mode`, transparently retrying admission
    /// rejections under `policy`. Each `Rejected` answer is absorbed,
    /// the client sleeps for [`AdmissionRetry::delay_for`] (which
    /// honors the server's `retry_after_ms` hint up to the policy
    /// ceiling), and the query is re-sent. Every other outcome —
    /// success, engine errors, transport failures — passes through
    /// unchanged on the first occurrence; only admission pushback is
    /// worth re-asking about.
    pub fn query_with_retry(
        &mut self,
        mode: QueryMode,
        sql: &str,
        policy: AdmissionRetry,
    ) -> Result<WireResult, ClientError> {
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match self.query(mode, sql) {
                Err(ClientError::Server(WireError::Rejected { retry_after_ms, .. }))
                    if attempt < policy.max_attempts =>
                {
                    std::thread::sleep(policy.delay_for(attempt, retry_after_ms));
                }
                other => return other,
            }
        }
    }

    /// Exact-mode shorthand.
    pub fn query_exact(&mut self, sql: &str) -> Result<WireResult, ClientError> {
        self.query(QueryMode::Exact, sql)
    }

    /// Cluster-mode shorthand: dispatch to the server's attached
    /// sharded cluster.
    pub fn query_cluster(&mut self, sql: &str) -> Result<WireResult, ClientError> {
        self.query(QueryMode::Cluster, sql)
    }

    /// Resilient-mode shorthand.
    pub fn query_resilient(&mut self, sql: &str) -> Result<WireResult, ClientError> {
        self.query(QueryMode::Resilient, sql)
    }

    /// Adaptive-mode shorthand.
    pub fn query_adaptive(&mut self, sql: &str) -> Result<WireResult, ClientError> {
        self.query(QueryMode::Adaptive, sql)
    }

    /// `EXPLAIN sql`: the costed plan text, nothing executed.
    pub fn explain(&mut self, sql: &str) -> Result<String, ClientError> {
        let request = Frame::Query { mode: QueryMode::Explain, sql: sql.to_string(), trace: false };
        match self.roundtrip(&request)? {
            Frame::ExplainReply { text } => Ok(text),
            Frame::Error(e) => Err(ClientError::Server(e)),
            other => {
                Err(ClientError::Unexpected { expected: "ExplainReply", got: format!("{other:?}") })
            }
        }
    }

    /// Replace this session's options.
    pub fn set_options(&mut self, options: SessionOptions) -> Result<(), ClientError> {
        match self.roundtrip(&Frame::SetOptions { options })? {
            Frame::OptionsAck => Ok(()),
            Frame::Error(e) => Err(ClientError::Server(e)),
            other => {
                Err(ClientError::Unexpected { expected: "OptionsAck", got: format!("{other:?}") })
            }
        }
    }

    /// Fetch the server's metrics registry.
    pub fn stats(&mut self, format: StatsFormat) -> Result<String, ClientError> {
        match self.roundtrip(&Frame::Stats { format })? {
            Frame::StatsReply { text } => Ok(text),
            Frame::Error(e) => Err(ClientError::Server(e)),
            other => {
                Err(ClientError::Unexpected { expected: "StatsReply", got: format!("{other:?}") })
            }
        }
    }

    /// Cancel another session's in-flight query. Returns whether a
    /// cancel token was actually tripped.
    pub fn cancel(&mut self, session: u64) -> Result<bool, ClientError> {
        match self.roundtrip(&Frame::Cancel { session })? {
            Frame::CancelAck { delivered } => Ok(delivered),
            Frame::Error(e) => Err(ClientError::Server(e)),
            other => {
                Err(ClientError::Unexpected { expected: "CancelAck", got: format!("{other:?}") })
            }
        }
    }

    /// Orderly goodbye; consumes the client.
    pub fn close(mut self) -> Result<(), ClientError> {
        match self.roundtrip(&Frame::Close)? {
            Frame::Goodbye => Ok(()),
            Frame::Error(e) => Err(ClientError::Server(e)),
            other => {
                Err(ClientError::Unexpected { expected: "Goodbye", got: format!("{other:?}") })
            }
        }
    }

    /// Send raw payload bytes as one frame — the corruption test
    /// suite's hook for speaking malformed protocol on purpose.
    pub fn send_raw(&mut self, payload: &[u8]) -> Result<(), ClientError> {
        self.stream
            .write_all(&(payload.len() as u32).to_le_bytes())
            .and_then(|()| self.stream.write_all(payload))
            .and_then(|()| self.stream.flush())
            .map_err(|e| ClientError::Transport(TransportError::Io(e)))
    }

    /// Read the next frame off the stream (pairs with [`send_raw`]).
    ///
    /// [`send_raw`]: Client::send_raw
    pub fn recv(&mut self) -> Result<Option<Frame>, ClientError> {
        read_frame(&mut self.stream).map_err(ClientError::from)
    }
}
