//! In-process duplex byte stream: the loopback transport behind
//! [`Server::connect`](crate::Server::connect).
//!
//! A [`PipeStream`] pair moves byte chunks over two `mpsc` channels,
//! implementing [`Read`]/[`Write`] with exactly the semantics the
//! framed protocol needs: writes never block, reads block until bytes
//! arrive, and dropping either end surfaces as a clean EOF (`Ok(0)`)
//! on the peer's next read — which the session loop treats as client
//! disconnect and tears the session down. Tests and benches use it to
//! exercise the full wire path (encode → frame → decode) with no
//! sockets, so the suites are deterministic on any sandbox.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::sync::mpsc::{channel, Receiver, Sender};

/// One end of an in-process duplex byte stream.
#[derive(Debug)]
pub struct PipeStream {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    pending: VecDeque<u8>,
}

/// A connected pair of stream ends.
pub fn duplex() -> (PipeStream, PipeStream) {
    let (a_tx, a_rx) = channel();
    let (b_tx, b_rx) = channel();
    (
        PipeStream { tx: a_tx, rx: b_rx, pending: VecDeque::new() },
        PipeStream { tx: b_tx, rx: a_rx, pending: VecDeque::new() },
    )
}

impl Read for PipeStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        if self.pending.is_empty() {
            match self.rx.recv() {
                Ok(chunk) => self.pending.extend(chunk),
                // Peer dropped: clean EOF.
                Err(_) => return Ok(0),
            }
        }
        let n = buf.len().min(self.pending.len());
        for slot in buf.iter_mut().take(n) {
            // The queue holds at least n bytes; pop_front cannot fail.
            *slot = self.pending.pop_front().unwrap_or_default();
        }
        Ok(n)
    }
}

impl Write for PipeStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.tx.send(buf.to_vec()).map_err(|_| {
            std::io::Error::new(std::io::ErrorKind::BrokenPipe, "pipe peer disconnected")
        })?;
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_cross_the_pipe_in_order() {
        let (mut a, mut b) = duplex();
        a.write_all(b"hello ").unwrap();
        a.write_all(b"world").unwrap();
        let mut buf = [0u8; 11];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello world");
    }

    #[test]
    fn dropping_one_end_is_clean_eof_on_the_other() {
        let (a, mut b) = duplex();
        drop(a);
        let mut buf = [0u8; 8];
        assert_eq!(b.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn writing_to_a_dropped_peer_is_broken_pipe() {
        let (mut a, b) = duplex();
        drop(b);
        assert_eq!(
            a.write(b"x").unwrap_err().kind(),
            std::io::ErrorKind::BrokenPipe
        );
    }
}
