//! The LawsDB wire protocol: length-prefixed binary frames.
//!
//! Every frame on the wire is `[u32 little-endian payload length]`
//! followed by exactly that many payload bytes; the first payload byte
//! is the frame tag, the rest is the tag-specific body. Integers are
//! little-endian, floats are IEEE-754 bit patterns, strings are
//! `u32 length + UTF-8 bytes`, options are a one-byte presence flag,
//! vectors are `u32 count + elements`.
//!
//! Decoding is *total*: [`Frame::decode`] consumes an untrusted byte
//! slice and returns a structured [`ProtocolError`] on any malformed
//! input — truncation, unknown tags, bad UTF-8, inconsistent table
//! shapes, oversized claims — and never panics or over-allocates
//! (every claimed length is checked against the bytes actually
//! present before any allocation). The proptest suite in
//! `tests/protocol_proptest.rs` pins both directions: encode∘decode is
//! the identity for every frame type, and decode survives random,
//! truncated and bit-flipped streams.

use crate::error::{ProtocolError, TransportError, WireError};
use lawsdb_obs::{FieldValue, FlightRecord, TraceNode};
use lawsdb_storage::bitmap::Bitmap;
use lawsdb_storage::{Column, DataType, Field, Schema, Table};
use std::io::{Read, Write};

/// Protocol version spoken by this build. Version 2 added query ids,
/// the `Query` trace flag, the trace tree on `ResultSet`, and the
/// `SlowLog` request. The server negotiates down to
/// [`MIN_PROTOCOL_VERSION`]: a v1 [`Frame::Hello`] is accepted and the
/// session speaks v1 (no trace fields on the wire); anything outside
/// the supported range is answered with a protocol error and the
/// session is closed.
pub const PROTOCOL_VERSION: u32 = 2;

/// Oldest protocol version the server still speaks.
pub const MIN_PROTOCOL_VERSION: u32 = 1;

/// Decode-side cap on trace-tree nesting; deeper claims are rejected
/// (a real profile nests plan depth + a few cluster levels, nowhere
/// near this).
pub const MAX_TRACE_DEPTH: usize = 64;

/// Hard cap on a single frame's payload. Larger claims are rejected
/// before any allocation happens.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Cap on columns in a wire-encoded table (a decode-side sanity bound;
/// the engine never produces result sets remotely this wide).
const MAX_WIRE_COLUMNS: u64 = 4096;

/// How a [`Frame::Query`] should be executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryMode {
    /// Exact base-table execution.
    Exact,
    /// The degradation ladder: model when fresh, exact otherwise, with
    /// the taken rungs reported in [`WireResult::degraded`].
    Resilient,
    /// Cost-based choice between the exact plan and the model path.
    Adaptive,
    /// `EXPLAIN`: the costed physical plan, not executed.
    Explain,
    /// Sharded scatter-gather execution with replica failover, when the
    /// server fronts a cluster.
    Cluster,
}

impl QueryMode {
    /// Stable lower-case name — the `mode` label flight-recorder
    /// entries and stats output carry.
    pub fn name(self) -> &'static str {
        match self {
            QueryMode::Exact => "exact",
            QueryMode::Resilient => "resilient",
            QueryMode::Adaptive => "adaptive",
            QueryMode::Explain => "explain",
            QueryMode::Cluster => "cluster",
        }
    }

    fn tag(self) -> u8 {
        match self {
            QueryMode::Exact => 0,
            QueryMode::Resilient => 1,
            QueryMode::Adaptive => 2,
            QueryMode::Explain => 3,
            QueryMode::Cluster => 4,
        }
    }

    fn from_tag(tag: u8) -> Result<QueryMode, ProtocolError> {
        match tag {
            0 => Ok(QueryMode::Exact),
            1 => Ok(QueryMode::Resilient),
            2 => Ok(QueryMode::Adaptive),
            3 => Ok(QueryMode::Explain),
            4 => Ok(QueryMode::Cluster),
            _ => Err(ProtocolError::BadTag { context: "query mode", tag }),
        }
    }
}

/// Requested exposition format for [`Frame::Stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatsFormat {
    /// Prometheus text exposition.
    Prometheus,
    /// JSON object.
    Json,
}

/// Per-session execution knobs, all optional: `None` keeps the
/// server-side default. Budgets a client requests are *intersected*
/// with the server's per-query caps — a session can tighten its
/// limits, never exceed the server's.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SessionOptions {
    /// Worker threads for this session's queries (0 = one per core).
    pub threads: Option<u32>,
    /// Rows per morsel.
    pub morsel_rows: Option<u32>,
    /// Consult zone synopses before scanning.
    pub pruning: Option<bool>,
    /// Per-query wall-clock budget, milliseconds.
    pub deadline_ms: Option<u64>,
    /// Per-query materialization budget, bytes.
    pub memory_bytes: Option<u64>,
    /// Per-query scanned-row cap.
    pub max_rows: Option<u64>,
}

/// A successful query response: the result rows plus the execution
/// provenance a client needs to trust (or distrust) them.
#[derive(Debug, Clone, PartialEq)]
pub struct WireResult {
    /// Result rows.
    pub table: Table,
    /// Base-table rows scanned (0 on the model path).
    pub rows_scanned: u64,
    /// True when a captured model answered.
    pub approximate: bool,
    /// ±bound on approximate values, when derivable.
    pub error_bound: Option<f64>,
    /// Degradation-ladder rungs taken (stable names, e.g.
    /// `residual_drift`), empty on the exact and approx fast paths.
    pub degraded: Vec<String>,
    /// Server-side execution time, microseconds, measured *after*
    /// admission — the denominator of the bench gate.
    pub service_us: u64,
    /// Time spent waiting in the admission queue, microseconds.
    pub queue_us: u64,
    /// Server-minted query id (v2; 0 when the peer spoke v1). Links
    /// this result to histogram exemplars and the slow-query log.
    pub query_id: u64,
    /// The full distributed trace, present when the query asked for one
    /// (v2 only; v1 peers never see it).
    pub trace: Option<TraceNode>,
}

/// One protocol frame, client→server or server→client.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    // ---- client → server ------------------------------------------
    /// Session handshake; must be the first frame on a connection.
    Hello {
        /// Client's protocol version; must fall within
        /// [`MIN_PROTOCOL_VERSION`]`..=`[`PROTOCOL_VERSION`] — the
        /// session then speaks the client's version.
        protocol_version: u32,
        /// Initial session options.
        options: SessionOptions,
    },
    /// Execute SQL under this session's options.
    Query {
        /// Execution mode.
        mode: QueryMode,
        /// SQL text.
        sql: String,
        /// Ask for the full distributed trace on the result (v2; the
        /// flag is trailing-optional on the wire, so v1 frames decode
        /// with `false`).
        trace: bool,
    },
    /// Replace this session's options.
    SetOptions {
        /// The new options.
        options: SessionOptions,
    },
    /// Fetch the server's metrics registry.
    Stats {
        /// Exposition format.
        format: StatsFormat,
    },
    /// Cancel the named session's in-flight query (the engine's
    /// `pg_cancel_backend`): delivery is reported, the cancelled query
    /// fails with a structured `cancelled` error in *its own* session.
    Cancel {
        /// Target session id (from that session's [`Frame::HelloAck`]).
        session: u64,
    },
    /// Orderly goodbye; the server answers [`Frame::Goodbye`].
    Close,
    /// Pull the `n` worst traces from the server's flight recorder (v2).
    SlowLog {
        /// Maximum records to return.
        n: u32,
    },

    // ---- server → client ------------------------------------------
    /// Handshake accepted; carries the session's id.
    HelloAck {
        /// This session's id (the handle siblings cancel by).
        session: u64,
        /// Server's protocol version.
        protocol_version: u32,
    },
    /// A query's result rows.
    ResultSet(Box<WireResult>),
    /// A structured failure: admission rejection, query error,
    /// protocol violation.
    Error(WireError),
    /// Metrics text in the requested format.
    StatsReply {
        /// Rendered registry snapshot.
        text: String,
    },
    /// The costed plan, one node per line.
    ExplainReply {
        /// `EXPLAIN` text.
        text: String,
    },
    /// Options applied.
    OptionsAck,
    /// Cancel processed; `delivered` is false when the target session
    /// does not exist or has no query in flight.
    CancelAck {
        /// Whether a cancel token was actually tripped.
        delivered: bool,
    },
    /// Orderly shutdown of this session.
    Goodbye,
    /// The flight recorder's worst queries, slowest first (v2).
    SlowLogReply {
        /// Complete records, each carrying its full trace tree.
        entries: Vec<FlightRecord>,
    },
}

// ---- encoding primitives ------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(v as u8);
}

fn put_opt_u32(out: &mut Vec<u8>, v: Option<u32>) {
    match v {
        Some(v) => {
            out.push(1);
            put_u32(out, v);
        }
        None => out.push(0),
    }
}

fn put_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        Some(v) => {
            out.push(1);
            put_u64(out, v);
        }
        None => out.push(0),
    }
}

fn put_opt_bool(out: &mut Vec<u8>, v: Option<bool>) {
    match v {
        Some(v) => {
            out.push(1);
            put_bool(out, v);
        }
        None => out.push(0),
    }
}

fn put_opt_f64(out: &mut Vec<u8>, v: Option<f64>) {
    match v {
        Some(v) => {
            out.push(1);
            put_u64(out, v.to_bits());
        }
        None => out.push(0),
    }
}

fn put_bitmap(out: &mut Vec<u8>, bits: &Bitmap, len: usize) {
    let mut byte = 0u8;
    for i in 0..len {
        if bits.get(i) {
            byte |= 1 << (i % 8);
        }
        if i % 8 == 7 {
            out.push(byte);
            byte = 0;
        }
    }
    if !len.is_multiple_of(8) {
        out.push(byte);
    }
}

/// Bounds-checked reader over a fully-buffered frame payload. Every
/// accessor returns [`ProtocolError::Truncated`] instead of reading
/// past the end, so no combination of claimed lengths can panic.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        if self.remaining() < n {
            return Err(ProtocolError::Truncated { needed: n, available: self.remaining() });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.bytes(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        let b = self.bytes(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    fn f64(&mut self) -> Result<f64, ProtocolError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn bool_(&mut self) -> Result<bool, ProtocolError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(ProtocolError::BadTag { context: "bool", tag }),
        }
    }

    fn str_(&mut self) -> Result<String, ProtocolError> {
        let len = self.u32()? as usize;
        let bytes = self.bytes(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtocolError::BadUtf8)
    }

    fn opt<T>(
        &mut self,
        read: impl FnOnce(&mut Self) -> Result<T, ProtocolError>,
    ) -> Result<Option<T>, ProtocolError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(read(self)?)),
            tag => Err(ProtocolError::BadTag { context: "option flag", tag }),
        }
    }

    fn bitmap(&mut self, rows: usize) -> Result<Bitmap, ProtocolError> {
        let bytes = self.bytes(rows.div_ceil(8))?;
        let mut bm = Bitmap::new();
        for i in 0..rows {
            bm.push(bytes[i / 8] & (1 << (i % 8)) != 0);
        }
        Ok(bm)
    }
}

// ---- session options ----------------------------------------------

fn put_options(out: &mut Vec<u8>, o: &SessionOptions) {
    put_opt_u32(out, o.threads);
    put_opt_u32(out, o.morsel_rows);
    put_opt_bool(out, o.pruning);
    put_opt_u64(out, o.deadline_ms);
    put_opt_u64(out, o.memory_bytes);
    put_opt_u64(out, o.max_rows);
}

fn read_options(r: &mut Reader<'_>) -> Result<SessionOptions, ProtocolError> {
    Ok(SessionOptions {
        threads: r.opt(Reader::u32)?,
        morsel_rows: r.opt(Reader::u32)?,
        pruning: r.opt(Reader::bool_)?,
        deadline_ms: r.opt(Reader::u64)?,
        memory_bytes: r.opt(Reader::u64)?,
        max_rows: r.opt(Reader::u64)?,
    })
}

// ---- table --------------------------------------------------------

fn column_type_tag(c: &Column) -> u8 {
    match c {
        Column::Int64 { .. } => 0,
        Column::Float64 { .. } => 1,
        Column::Str { .. } => 2,
        Column::Bool { .. } => 3,
    }
}

fn put_table(out: &mut Vec<u8>, t: &Table) {
    put_str(out, t.name());
    put_u32(out, t.columns().len() as u32);
    put_u64(out, t.row_count() as u64);
    let rows = t.row_count();
    for (field, col) in t.schema().fields().iter().zip(t.columns()) {
        put_str(out, &field.name);
        out.push(column_type_tag(col));
        put_bool(out, field.nullable);
        put_bitmap(out, col.validity(), rows);
        match col {
            Column::Int64 { data, .. } => {
                for &v in data.iter() {
                    put_u64(out, v as u64);
                }
            }
            Column::Float64 { data, .. } => {
                for &v in data.iter() {
                    put_u64(out, v.to_bits());
                }
            }
            Column::Str { data, .. } => {
                for v in data.iter() {
                    put_str(out, v);
                }
            }
            Column::Bool { data, .. } => put_bitmap(out, data, rows),
        }
    }
}

fn read_table(r: &mut Reader<'_>) -> Result<Table, ProtocolError> {
    let name = r.str_()?;
    let ncols = r.u32()? as u64;
    let nrows64 = r.u64()?;
    if ncols > MAX_WIRE_COLUMNS {
        return Err(ProtocolError::Oversized { what: "table columns", claimed: ncols });
    }
    // A row needs at least one validity bit on the wire, so any claim
    // beyond 8× the remaining bytes is provably bogus — reject before
    // looping, let alone allocating.
    if nrows64 > (r.remaining() as u64).saturating_mul(8).max(1) {
        return Err(ProtocolError::Oversized { what: "table rows", claimed: nrows64 });
    }
    let nrows = nrows64 as usize;
    let mut fields = Vec::new();
    let mut columns = Vec::new();
    for _ in 0..ncols {
        let fname = r.str_()?;
        let tag = r.u8()?;
        let nullable = r.bool_()?;
        let validity = r.bitmap(nrows)?;
        let (dtype, col) = match tag {
            0 => {
                let raw = r.bytes(nrows.checked_mul(8).ok_or(ProtocolError::Oversized {
                    what: "int column bytes",
                    claimed: nrows64,
                })?)?;
                let data: Vec<i64> = raw
                    .chunks_exact(8)
                    .map(|b| i64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
                    .collect();
                (DataType::Int64, Column::Int64 { data: data.into(), validity })
            }
            1 => {
                let raw = r.bytes(nrows.checked_mul(8).ok_or(ProtocolError::Oversized {
                    what: "float column bytes",
                    claimed: nrows64,
                })?)?;
                let data: Vec<f64> = raw
                    .chunks_exact(8)
                    .map(|b| {
                        f64::from_bits(u64::from_le_bytes([
                            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
                        ]))
                    })
                    .collect();
                (DataType::Float64, Column::Float64 { data: data.into(), validity })
            }
            2 => {
                let mut data = Vec::new();
                for _ in 0..nrows {
                    data.push(r.str_()?);
                }
                (DataType::Str, Column::Str { data: data.into(), validity })
            }
            3 => {
                let data = r.bitmap(nrows)?;
                (DataType::Bool, Column::Bool { data, validity })
            }
            tag => return Err(ProtocolError::BadTag { context: "column type", tag }),
        };
        fields.push(if nullable {
            Field::nullable(fname, dtype)
        } else {
            Field::new(fname, dtype)
        });
        columns.push(col);
    }
    Table::new(name, Schema::new(fields), columns)
        .map_err(|e| ProtocolError::BadTable { detail: e.to_string() })
}

// ---- trace trees and flight records -------------------------------

fn put_field_value(out: &mut Vec<u8>, v: &FieldValue) {
    match v {
        FieldValue::U64(x) => {
            out.push(0);
            put_u64(out, *x);
        }
        FieldValue::I64(x) => {
            out.push(1);
            put_u64(out, *x as u64);
        }
        FieldValue::F64(x) => {
            out.push(2);
            put_u64(out, x.to_bits());
        }
        FieldValue::Bool(x) => {
            out.push(3);
            put_bool(out, *x);
        }
        FieldValue::Str(x) => {
            out.push(4);
            put_str(out, x);
        }
    }
}

fn read_field_value(r: &mut Reader<'_>) -> Result<FieldValue, ProtocolError> {
    match r.u8()? {
        0 => Ok(FieldValue::U64(r.u64()?)),
        1 => Ok(FieldValue::I64(r.u64()? as i64)),
        2 => Ok(FieldValue::F64(r.f64()?)),
        3 => Ok(FieldValue::Bool(r.bool_()?)),
        4 => Ok(FieldValue::Str(r.str_()?)),
        tag => Err(ProtocolError::BadTag { context: "field value", tag }),
    }
}

fn put_trace_node(out: &mut Vec<u8>, n: &TraceNode) {
    put_str(out, &n.name);
    put_u64(out, n.start_us);
    put_opt_u64(out, n.duration_us);
    put_opt_u64(out, n.index);
    put_u32(out, n.fields.len() as u32);
    for (k, v) in &n.fields {
        put_str(out, k);
        put_field_value(out, v);
    }
    put_u32(out, n.children.len() as u32);
    for c in &n.children {
        put_trace_node(out, c);
    }
}

fn read_trace_node(r: &mut Reader<'_>, depth: usize) -> Result<TraceNode, ProtocolError> {
    if depth > MAX_TRACE_DEPTH {
        return Err(ProtocolError::Oversized { what: "trace depth", claimed: depth as u64 });
    }
    let name = r.str_()?;
    let start_us = r.u64()?;
    let duration_us = r.opt(Reader::u64)?;
    let index = r.opt(Reader::u64)?;
    let nfields = r.u32()? as usize;
    // A field needs at least a length + tag on the wire; any claim
    // beyond the remaining bytes is bogus — reject before allocating.
    if nfields > r.remaining() {
        return Err(ProtocolError::Oversized { what: "trace fields", claimed: nfields as u64 });
    }
    let mut fields = Vec::with_capacity(nfields);
    for _ in 0..nfields {
        let k = r.str_()?;
        fields.push((k, read_field_value(r)?));
    }
    let nchildren = r.u32()? as usize;
    if nchildren > r.remaining() {
        return Err(ProtocolError::Oversized {
            what: "trace children",
            claimed: nchildren as u64,
        });
    }
    let mut children = Vec::with_capacity(nchildren);
    for _ in 0..nchildren {
        children.push(read_trace_node(r, depth + 1)?);
    }
    Ok(TraceNode { name, start_us, duration_us, index, fields, children })
}

fn put_flight_record(out: &mut Vec<u8>, rec: &FlightRecord) {
    put_u64(out, rec.query_id);
    put_str(out, &rec.sql);
    put_str(out, &rec.mode);
    put_u64(out, rec.total_us);
    match &rec.error {
        Some(e) => {
            out.push(1);
            put_str(out, e);
        }
        None => out.push(0),
    }
    put_u32(out, rec.layers.len() as u32);
    for (layer, us) in &rec.layers {
        put_str(out, layer);
        put_u64(out, *us);
    }
    put_str(out, &rec.dominant_layer);
    put_u64(out, rec.dominant_us);
    match &rec.trace {
        Some(t) => {
            out.push(1);
            put_trace_node(out, t);
        }
        None => out.push(0),
    }
}

fn read_flight_record(r: &mut Reader<'_>) -> Result<FlightRecord, ProtocolError> {
    let query_id = r.u64()?;
    let sql = r.str_()?;
    let mode = r.str_()?;
    let total_us = r.u64()?;
    let error = r.opt(Reader::str_)?;
    let nlayers = r.u32()? as usize;
    if nlayers > r.remaining() {
        return Err(ProtocolError::Oversized { what: "layer list", claimed: nlayers as u64 });
    }
    let mut layers = Vec::with_capacity(nlayers);
    for _ in 0..nlayers {
        let layer = r.str_()?;
        layers.push((layer, r.u64()?));
    }
    let dominant_layer = r.str_()?;
    let dominant_us = r.u64()?;
    let trace = r.opt(|r| read_trace_node(r, 0))?;
    Ok(FlightRecord {
        query_id,
        sql,
        mode,
        total_us,
        error,
        layers,
        dominant_layer,
        dominant_us,
        trace,
    })
}

// ---- results and errors -------------------------------------------

fn put_result(out: &mut Vec<u8>, r: &WireResult, version: u32) {
    put_table(out, &r.table);
    put_u64(out, r.rows_scanned);
    put_bool(out, r.approximate);
    put_opt_f64(out, r.error_bound);
    put_u32(out, r.degraded.len() as u32);
    for d in &r.degraded {
        put_str(out, d);
    }
    put_u64(out, r.service_us);
    put_u64(out, r.queue_us);
    // v2 extends the body in place (ResultSet is last-in-frame, so old
    // decoders reading a v1 body simply stop here).
    if version >= 2 {
        put_u64(out, r.query_id);
        match &r.trace {
            Some(t) => {
                out.push(1);
                put_trace_node(out, t);
            }
            None => out.push(0),
        }
    }
}

fn read_result(r: &mut Reader<'_>) -> Result<WireResult, ProtocolError> {
    let table = read_table(r)?;
    let rows_scanned = r.u64()?;
    let approximate = r.bool_()?;
    let error_bound = r.opt(Reader::f64)?;
    let n = r.u32()? as usize;
    if n > r.remaining() {
        return Err(ProtocolError::Oversized { what: "degraded list", claimed: n as u64 });
    }
    let mut degraded = Vec::with_capacity(n);
    for _ in 0..n {
        degraded.push(r.str_()?);
    }
    let service_us = r.u64()?;
    let queue_us = r.u64()?;
    // Trailing-optional v2 extension: a v1 body ends here, defaulting
    // the trace fields; a v2 body carries them explicitly.
    let (query_id, trace) = if r.remaining() > 0 {
        (r.u64()?, r.opt(|r| read_trace_node(r, 0))?)
    } else {
        (0, None)
    };
    Ok(WireResult {
        table,
        rows_scanned,
        approximate,
        error_bound,
        degraded,
        service_us,
        queue_us,
        query_id,
        trace,
    })
}

fn put_wire_error(out: &mut Vec<u8>, e: &WireError) {
    match e {
        WireError::Rejected { active, queued, retry_after_ms } => {
            out.push(0);
            put_u32(out, *active);
            put_u32(out, *queued);
            put_u64(out, *retry_after_ms);
        }
        WireError::QueueTimeout { waited_ms, budget_ms } => {
            out.push(1);
            put_u64(out, *waited_ms);
            put_u64(out, *budget_ms);
        }
        WireError::SessionLimit { active, max } => {
            out.push(2);
            put_u32(out, *active);
            put_u32(out, *max);
        }
        WireError::Query { kind, detail } => {
            out.push(3);
            put_str(out, kind);
            put_str(out, detail);
        }
        WireError::Protocol { detail } => {
            out.push(4);
            put_str(out, detail);
        }
        WireError::Server { detail } => {
            out.push(5);
            put_str(out, detail);
        }
    }
}

fn read_wire_error(r: &mut Reader<'_>) -> Result<WireError, ProtocolError> {
    match r.u8()? {
        0 => Ok(WireError::Rejected {
            active: r.u32()?,
            queued: r.u32()?,
            retry_after_ms: r.u64()?,
        }),
        1 => Ok(WireError::QueueTimeout { waited_ms: r.u64()?, budget_ms: r.u64()? }),
        2 => Ok(WireError::SessionLimit { active: r.u32()?, max: r.u32()? }),
        3 => Ok(WireError::Query { kind: r.str_()?, detail: r.str_()? }),
        4 => Ok(WireError::Protocol { detail: r.str_()? }),
        5 => Ok(WireError::Server { detail: r.str_()? }),
        tag => Err(ProtocolError::BadTag { context: "error kind", tag }),
    }
}

// ---- frames -------------------------------------------------------

impl Frame {
    /// Encode this frame's payload (tag byte + body, no length prefix)
    /// at the current [`PROTOCOL_VERSION`].
    pub fn encode(&self) -> Vec<u8> {
        self.encode_versioned(PROTOCOL_VERSION)
    }

    /// Encode for a negotiated protocol version. Only `ResultSet`
    /// bodies differ: a v1 peer gets the v1 body (no query id, no
    /// trace), everything else is version-invariant.
    pub fn encode_versioned(&self, version: u32) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Frame::Hello { protocol_version, options } => {
                out.push(0x01);
                put_u32(&mut out, *protocol_version);
                put_options(&mut out, options);
            }
            Frame::Query { mode, sql, trace } => {
                out.push(0x02);
                out.push(mode.tag());
                put_str(&mut out, sql);
                // Trailing-optional: absent in frames from v1 clients,
                // decoded as `false`.
                put_bool(&mut out, *trace);
            }
            Frame::SetOptions { options } => {
                out.push(0x03);
                put_options(&mut out, options);
            }
            Frame::Stats { format } => {
                out.push(0x04);
                out.push(match format {
                    StatsFormat::Prometheus => 0,
                    StatsFormat::Json => 1,
                });
            }
            Frame::Cancel { session } => {
                out.push(0x05);
                put_u64(&mut out, *session);
            }
            Frame::Close => out.push(0x06),
            Frame::SlowLog { n } => {
                out.push(0x07);
                put_u32(&mut out, *n);
            }
            Frame::HelloAck { session, protocol_version } => {
                out.push(0x81);
                put_u64(&mut out, *session);
                put_u32(&mut out, *protocol_version);
            }
            Frame::ResultSet(r) => {
                out.push(0x82);
                put_result(&mut out, r, version);
            }
            Frame::Error(e) => {
                out.push(0x83);
                put_wire_error(&mut out, e);
            }
            Frame::StatsReply { text } => {
                out.push(0x84);
                put_str(&mut out, text);
            }
            Frame::ExplainReply { text } => {
                out.push(0x85);
                put_str(&mut out, text);
            }
            Frame::OptionsAck => out.push(0x86),
            Frame::CancelAck { delivered } => {
                out.push(0x87);
                put_bool(&mut out, *delivered);
            }
            Frame::Goodbye => out.push(0x88),
            Frame::SlowLogReply { entries } => {
                out.push(0x89);
                put_u32(&mut out, entries.len() as u32);
                for e in entries {
                    put_flight_record(&mut out, e);
                }
            }
        }
        out
    }

    /// Decode a frame from a complete payload slice (everything between
    /// two length prefixes). Total: returns a structured error on any
    /// malformed input, never panics, and rejects trailing garbage.
    pub fn decode(payload: &[u8]) -> Result<Frame, ProtocolError> {
        let mut r = Reader::new(payload);
        let tag = r.u8()?;
        let frame = match tag {
            0x01 => Frame::Hello { protocol_version: r.u32()?, options: read_options(&mut r)? },
            0x02 => {
                let mode = QueryMode::from_tag(r.u8()?)?;
                let sql = r.str_()?;
                // Trailing-optional trace flag (absent before v2).
                let trace = if r.remaining() > 0 { r.bool_()? } else { false };
                Frame::Query { mode, sql, trace }
            }
            0x03 => Frame::SetOptions { options: read_options(&mut r)? },
            0x04 => Frame::Stats {
                format: match r.u8()? {
                    0 => StatsFormat::Prometheus,
                    1 => StatsFormat::Json,
                    tag => return Err(ProtocolError::BadTag { context: "stats format", tag }),
                },
            },
            0x05 => Frame::Cancel { session: r.u64()? },
            0x06 => Frame::Close,
            0x07 => Frame::SlowLog { n: r.u32()? },
            0x81 => Frame::HelloAck { session: r.u64()?, protocol_version: r.u32()? },
            0x82 => Frame::ResultSet(Box::new(read_result(&mut r)?)),
            0x83 => Frame::Error(read_wire_error(&mut r)?),
            0x84 => Frame::StatsReply { text: r.str_()? },
            0x85 => Frame::ExplainReply { text: r.str_()? },
            0x86 => Frame::OptionsAck,
            0x87 => Frame::CancelAck { delivered: r.bool_()? },
            0x88 => Frame::Goodbye,
            0x89 => {
                let n = r.u32()? as usize;
                if n > r.remaining() {
                    return Err(ProtocolError::Oversized {
                        what: "slowlog entries",
                        claimed: n as u64,
                    });
                }
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    entries.push(read_flight_record(&mut r)?);
                }
                Frame::SlowLogReply { entries }
            }
            tag => return Err(ProtocolError::BadTag { context: "frame", tag }),
        };
        if r.remaining() != 0 {
            return Err(ProtocolError::TrailingBytes { count: r.remaining() });
        }
        Ok(frame)
    }
}

/// Write one length-prefixed frame at the current protocol version.
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> Result<(), TransportError> {
    write_frame_versioned(w, frame, PROTOCOL_VERSION)
}

/// Write one length-prefixed frame encoded for a negotiated version
/// (sessions speaking v1 must not emit v2 result bodies).
pub fn write_frame_versioned<W: Write>(
    w: &mut W,
    frame: &Frame,
    version: u32,
) -> Result<(), TransportError> {
    let payload = frame.encode_versioned(version);
    if payload.len() > MAX_FRAME_BYTES {
        return Err(TransportError::Protocol(ProtocolError::Oversized {
            what: "outgoing frame",
            claimed: payload.len() as u64,
        }));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes()).map_err(TransportError::io)?;
    w.write_all(&payload).map_err(TransportError::io)?;
    w.flush().map_err(TransportError::io)?;
    Ok(())
}

/// Encoded size of a result body at `version`, without assembling the
/// full frame. The session's `server.encode` span charges the payload
/// it is about to ship, measured *before* the trace tree is attached —
/// a trace cannot contain the cost of encoding itself.
pub(crate) fn encoded_result_len(r: &WireResult, version: u32) -> usize {
    let mut out = Vec::new();
    put_result(&mut out, r, version);
    out.len() + 1 // + the frame tag byte
}

/// Read one length-prefixed frame. `Ok(None)` is a clean end-of-stream
/// exactly at a frame boundary; EOF anywhere inside a frame is a
/// [`ProtocolError::Truncated`].
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Frame>, TransportError> {
    match read_frame_payload(r)? {
        None => Ok(None),
        Some(payload) => Frame::decode(&payload).map_err(TransportError::Protocol).map(Some),
    }
}

/// Read one frame's raw payload without decoding it — the session loop
/// uses this so the decode step can be timed on the server clock and
/// charged to the query's `server.decode` span.
pub(crate) fn read_frame_payload<R: Read>(r: &mut R) -> Result<Option<Vec<u8>>, TransportError> {
    let mut len_buf = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        let n = r.read(&mut len_buf[got..]).map_err(TransportError::io)?;
        if n == 0 {
            if got == 0 {
                return Ok(None);
            }
            return Err(TransportError::Protocol(ProtocolError::Truncated {
                needed: 4,
                available: got,
            }));
        }
        got += n;
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(TransportError::Protocol(ProtocolError::Oversized {
            what: "incoming frame",
            claimed: len as u64,
        }));
    }
    let mut payload = vec![0u8; len];
    let mut filled = 0;
    while filled < len {
        let n = r.read(&mut payload[filled..]).map_err(TransportError::io)?;
        if n == 0 {
            return Err(TransportError::Protocol(ProtocolError::Truncated {
                needed: len,
                available: filled,
            }));
        }
        filled += n;
    }
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lawsdb_storage::TableBuilder;

    fn sample_table() -> Table {
        let mut b = TableBuilder::new("t");
        b.add_i64("g", vec![1, 2, 3]);
        b.add_f64_opt("v", vec![Some(1.5), None, Some(-2.25)]);
        b.add_str("s", vec!["a".into(), "".into(), "δ".into()]);
        b.add_bool("ok", &[true, false, true]);
        b.build().unwrap()
    }

    fn sample_trace() -> TraceNode {
        TraceNode {
            name: "query".to_string(),
            start_us: 10,
            duration_us: Some(90),
            index: None,
            fields: vec![
                ("rows".to_string(), FieldValue::U64(3)),
                ("note".to_string(), FieldValue::Str("δ".to_string())),
                ("bound".to_string(), FieldValue::F64(0.5)),
            ],
            children: vec![TraceNode {
                name: "cluster.shard".to_string(),
                start_us: 20,
                duration_us: Some(40),
                index: Some(0),
                fields: vec![("ok".to_string(), FieldValue::Bool(true))],
                children: Vec::new(),
            }],
        }
    }

    #[test]
    fn table_roundtrip_preserves_every_column_type() {
        let t = sample_table();
        let frame = Frame::ResultSet(Box::new(WireResult {
            table: t.clone(),
            rows_scanned: 7,
            approximate: true,
            error_bound: Some(0.5),
            degraded: vec!["no_model".into()],
            service_us: 11,
            queue_us: 3,
            query_id: 42,
            trace: Some(sample_trace()),
        }));
        let decoded = Frame::decode(&frame.encode()).unwrap();
        assert_eq!(decoded, frame);
    }

    #[test]
    fn v1_result_body_decodes_with_default_trace_fields() {
        let result = WireResult {
            table: sample_table(),
            rows_scanned: 7,
            approximate: false,
            error_bound: None,
            degraded: Vec::new(),
            service_us: 11,
            queue_us: 3,
            query_id: 42,
            trace: Some(sample_trace()),
        };
        let frame = Frame::ResultSet(Box::new(result));
        // A v1 encoding drops the trace fields; decode restores the
        // defaults (id 0, no trace) and everything else survives.
        let decoded = Frame::decode(&frame.encode_versioned(1)).unwrap();
        let Frame::ResultSet(d) = decoded else { panic!("not a result set") };
        assert_eq!(d.query_id, 0);
        assert_eq!(d.trace, None);
        assert_eq!(d.service_us, 11);
        assert_eq!(d.queue_us, 3);
        assert_eq!(d.table, sample_table());
    }

    #[test]
    fn slowlog_frames_roundtrip() {
        let req = Frame::SlowLog { n: 5 };
        assert_eq!(Frame::decode(&req.encode()).unwrap(), req);
        let reply = Frame::SlowLogReply {
            entries: vec![FlightRecord {
                query_id: 9,
                sql: "SELECT g FROM t".to_string(),
                mode: "cluster".to_string(),
                total_us: 90,
                error: Some("shard 1 lost".to_string()),
                layers: vec![("fetch".to_string(), 40), ("execute".to_string(), 50)],
                dominant_layer: "execute".to_string(),
                dominant_us: 50,
                trace: Some(sample_trace()),
            }],
        };
        assert_eq!(Frame::decode(&reply.encode()).unwrap(), reply);
        assert_eq!(
            Frame::decode(&Frame::SlowLogReply { entries: Vec::new() }.encode()).unwrap(),
            Frame::SlowLogReply { entries: Vec::new() }
        );
    }

    #[test]
    fn query_trace_flag_is_trailing_optional() {
        // A v1-era Query body (no trailing flag byte) decodes with
        // trace=false.
        let mut payload = vec![0x02, 0u8];
        put_str(&mut payload, "SELECT 1");
        assert_eq!(
            Frame::decode(&payload).unwrap(),
            Frame::Query { mode: QueryMode::Exact, sql: "SELECT 1".into(), trace: false }
        );
        let traced = Frame::Query { mode: QueryMode::Exact, sql: "SELECT 1".into(), trace: true };
        assert_eq!(Frame::decode(&traced.encode()).unwrap(), traced);
    }

    #[test]
    fn over_deep_trace_claims_are_rejected() {
        // A chain of nested single-child nodes deeper than the cap.
        fn chain(depth: usize) -> TraceNode {
            TraceNode {
                name: "n".to_string(),
                start_us: 0,
                duration_us: None,
                index: None,
                fields: Vec::new(),
                children: if depth == 0 { Vec::new() } else { vec![chain(depth - 1)] },
            }
        }
        let deep = Frame::ResultSet(Box::new(WireResult {
            table: sample_table(),
            rows_scanned: 0,
            approximate: false,
            error_bound: None,
            degraded: Vec::new(),
            service_us: 0,
            queue_us: 0,
            query_id: 1,
            trace: Some(chain(MAX_TRACE_DEPTH + 1)),
        }));
        assert!(matches!(
            Frame::decode(&deep.encode()),
            Err(ProtocolError::Oversized { what: "trace depth", .. })
        ));
    }

    #[test]
    fn stream_roundtrip() {
        let mut buf = Vec::new();
        let frames = [
            Frame::Hello { protocol_version: PROTOCOL_VERSION, options: SessionOptions::default() },
            Frame::Query { mode: QueryMode::Resilient, sql: "SELECT 1".into(), trace: false },
            Frame::Goodbye,
        ];
        for f in &frames {
            write_frame(&mut buf, f).unwrap();
        }
        let mut r = &buf[..];
        for f in &frames {
            assert_eq!(read_frame(&mut r).unwrap().as_ref(), Some(f));
        }
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn decode_rejects_trailing_garbage_and_bad_tags() {
        let mut payload = Frame::Close.encode();
        payload.push(0xFF);
        assert!(matches!(
            Frame::decode(&payload),
            Err(ProtocolError::TrailingBytes { count: 1 })
        ));
        assert!(matches!(
            Frame::decode(&[0x7F]),
            Err(ProtocolError::BadTag { context: "frame", .. })
        ));
        assert!(matches!(Frame::decode(&[]), Err(ProtocolError::Truncated { .. })));
    }

    #[test]
    fn oversized_claims_are_rejected_before_allocation() {
        // A ResultSet claiming u64::MAX rows in a tiny payload.
        let mut payload = vec![0x82];
        put_str(&mut payload, "t");
        put_u32(&mut payload, 1);
        put_u64(&mut payload, u64::MAX);
        assert!(matches!(
            Frame::decode(&payload),
            Err(ProtocolError::Oversized { what: "table rows", .. })
        ));
    }
}
