//! The LawsDB wire protocol: length-prefixed binary frames.
//!
//! Every frame on the wire is `[u32 little-endian payload length]`
//! followed by exactly that many payload bytes; the first payload byte
//! is the frame tag, the rest is the tag-specific body. Integers are
//! little-endian, floats are IEEE-754 bit patterns, strings are
//! `u32 length + UTF-8 bytes`, options are a one-byte presence flag,
//! vectors are `u32 count + elements`.
//!
//! Decoding is *total*: [`Frame::decode`] consumes an untrusted byte
//! slice and returns a structured [`ProtocolError`] on any malformed
//! input — truncation, unknown tags, bad UTF-8, inconsistent table
//! shapes, oversized claims — and never panics or over-allocates
//! (every claimed length is checked against the bytes actually
//! present before any allocation). The proptest suite in
//! `tests/protocol_proptest.rs` pins both directions: encode∘decode is
//! the identity for every frame type, and decode survives random,
//! truncated and bit-flipped streams.

use crate::error::{ProtocolError, TransportError, WireError};
use lawsdb_storage::bitmap::Bitmap;
use lawsdb_storage::{Column, DataType, Field, Schema, Table};
use std::io::{Read, Write};

/// Protocol version spoken by this build. A [`Frame::Hello`] carrying
/// a different version is answered with a protocol error and the
/// session is closed.
pub const PROTOCOL_VERSION: u32 = 1;

/// Hard cap on a single frame's payload. Larger claims are rejected
/// before any allocation happens.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Cap on columns in a wire-encoded table (a decode-side sanity bound;
/// the engine never produces result sets remotely this wide).
const MAX_WIRE_COLUMNS: u64 = 4096;

/// How a [`Frame::Query`] should be executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryMode {
    /// Exact base-table execution.
    Exact,
    /// The degradation ladder: model when fresh, exact otherwise, with
    /// the taken rungs reported in [`WireResult::degraded`].
    Resilient,
    /// Cost-based choice between the exact plan and the model path.
    Adaptive,
    /// `EXPLAIN`: the costed physical plan, not executed.
    Explain,
    /// Sharded scatter-gather execution with replica failover, when the
    /// server fronts a cluster.
    Cluster,
}

impl QueryMode {
    fn tag(self) -> u8 {
        match self {
            QueryMode::Exact => 0,
            QueryMode::Resilient => 1,
            QueryMode::Adaptive => 2,
            QueryMode::Explain => 3,
            QueryMode::Cluster => 4,
        }
    }

    fn from_tag(tag: u8) -> Result<QueryMode, ProtocolError> {
        match tag {
            0 => Ok(QueryMode::Exact),
            1 => Ok(QueryMode::Resilient),
            2 => Ok(QueryMode::Adaptive),
            3 => Ok(QueryMode::Explain),
            4 => Ok(QueryMode::Cluster),
            _ => Err(ProtocolError::BadTag { context: "query mode", tag }),
        }
    }
}

/// Requested exposition format for [`Frame::Stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatsFormat {
    /// Prometheus text exposition.
    Prometheus,
    /// JSON object.
    Json,
}

/// Per-session execution knobs, all optional: `None` keeps the
/// server-side default. Budgets a client requests are *intersected*
/// with the server's per-query caps — a session can tighten its
/// limits, never exceed the server's.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SessionOptions {
    /// Worker threads for this session's queries (0 = one per core).
    pub threads: Option<u32>,
    /// Rows per morsel.
    pub morsel_rows: Option<u32>,
    /// Consult zone synopses before scanning.
    pub pruning: Option<bool>,
    /// Per-query wall-clock budget, milliseconds.
    pub deadline_ms: Option<u64>,
    /// Per-query materialization budget, bytes.
    pub memory_bytes: Option<u64>,
    /// Per-query scanned-row cap.
    pub max_rows: Option<u64>,
}

/// A successful query response: the result rows plus the execution
/// provenance a client needs to trust (or distrust) them.
#[derive(Debug, Clone, PartialEq)]
pub struct WireResult {
    /// Result rows.
    pub table: Table,
    /// Base-table rows scanned (0 on the model path).
    pub rows_scanned: u64,
    /// True when a captured model answered.
    pub approximate: bool,
    /// ±bound on approximate values, when derivable.
    pub error_bound: Option<f64>,
    /// Degradation-ladder rungs taken (stable names, e.g.
    /// `residual_drift`), empty on the exact and approx fast paths.
    pub degraded: Vec<String>,
    /// Server-side execution time, microseconds, measured *after*
    /// admission — the denominator of the bench gate.
    pub service_us: u64,
    /// Time spent waiting in the admission queue, microseconds.
    pub queue_us: u64,
}

/// One protocol frame, client→server or server→client.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    // ---- client → server ------------------------------------------
    /// Session handshake; must be the first frame on a connection.
    Hello {
        /// Client's protocol version; must equal [`PROTOCOL_VERSION`].
        protocol_version: u32,
        /// Initial session options.
        options: SessionOptions,
    },
    /// Execute SQL under this session's options.
    Query {
        /// Execution mode.
        mode: QueryMode,
        /// SQL text.
        sql: String,
    },
    /// Replace this session's options.
    SetOptions {
        /// The new options.
        options: SessionOptions,
    },
    /// Fetch the server's metrics registry.
    Stats {
        /// Exposition format.
        format: StatsFormat,
    },
    /// Cancel the named session's in-flight query (the engine's
    /// `pg_cancel_backend`): delivery is reported, the cancelled query
    /// fails with a structured `cancelled` error in *its own* session.
    Cancel {
        /// Target session id (from that session's [`Frame::HelloAck`]).
        session: u64,
    },
    /// Orderly goodbye; the server answers [`Frame::Goodbye`].
    Close,

    // ---- server → client ------------------------------------------
    /// Handshake accepted; carries the session's id.
    HelloAck {
        /// This session's id (the handle siblings cancel by).
        session: u64,
        /// Server's protocol version.
        protocol_version: u32,
    },
    /// A query's result rows.
    ResultSet(Box<WireResult>),
    /// A structured failure: admission rejection, query error,
    /// protocol violation.
    Error(WireError),
    /// Metrics text in the requested format.
    StatsReply {
        /// Rendered registry snapshot.
        text: String,
    },
    /// The costed plan, one node per line.
    ExplainReply {
        /// `EXPLAIN` text.
        text: String,
    },
    /// Options applied.
    OptionsAck,
    /// Cancel processed; `delivered` is false when the target session
    /// does not exist or has no query in flight.
    CancelAck {
        /// Whether a cancel token was actually tripped.
        delivered: bool,
    },
    /// Orderly shutdown of this session.
    Goodbye,
}

// ---- encoding primitives ------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(v as u8);
}

fn put_opt_u32(out: &mut Vec<u8>, v: Option<u32>) {
    match v {
        Some(v) => {
            out.push(1);
            put_u32(out, v);
        }
        None => out.push(0),
    }
}

fn put_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        Some(v) => {
            out.push(1);
            put_u64(out, v);
        }
        None => out.push(0),
    }
}

fn put_opt_bool(out: &mut Vec<u8>, v: Option<bool>) {
    match v {
        Some(v) => {
            out.push(1);
            put_bool(out, v);
        }
        None => out.push(0),
    }
}

fn put_opt_f64(out: &mut Vec<u8>, v: Option<f64>) {
    match v {
        Some(v) => {
            out.push(1);
            put_u64(out, v.to_bits());
        }
        None => out.push(0),
    }
}

fn put_bitmap(out: &mut Vec<u8>, bits: &Bitmap, len: usize) {
    let mut byte = 0u8;
    for i in 0..len {
        if bits.get(i) {
            byte |= 1 << (i % 8);
        }
        if i % 8 == 7 {
            out.push(byte);
            byte = 0;
        }
    }
    if !len.is_multiple_of(8) {
        out.push(byte);
    }
}

/// Bounds-checked reader over a fully-buffered frame payload. Every
/// accessor returns [`ProtocolError::Truncated`] instead of reading
/// past the end, so no combination of claimed lengths can panic.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        if self.remaining() < n {
            return Err(ProtocolError::Truncated { needed: n, available: self.remaining() });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.bytes(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        let b = self.bytes(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    fn f64(&mut self) -> Result<f64, ProtocolError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn bool_(&mut self) -> Result<bool, ProtocolError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(ProtocolError::BadTag { context: "bool", tag }),
        }
    }

    fn str_(&mut self) -> Result<String, ProtocolError> {
        let len = self.u32()? as usize;
        let bytes = self.bytes(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtocolError::BadUtf8)
    }

    fn opt<T>(
        &mut self,
        read: impl FnOnce(&mut Self) -> Result<T, ProtocolError>,
    ) -> Result<Option<T>, ProtocolError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(read(self)?)),
            tag => Err(ProtocolError::BadTag { context: "option flag", tag }),
        }
    }

    fn bitmap(&mut self, rows: usize) -> Result<Bitmap, ProtocolError> {
        let bytes = self.bytes(rows.div_ceil(8))?;
        let mut bm = Bitmap::new();
        for i in 0..rows {
            bm.push(bytes[i / 8] & (1 << (i % 8)) != 0);
        }
        Ok(bm)
    }
}

// ---- session options ----------------------------------------------

fn put_options(out: &mut Vec<u8>, o: &SessionOptions) {
    put_opt_u32(out, o.threads);
    put_opt_u32(out, o.morsel_rows);
    put_opt_bool(out, o.pruning);
    put_opt_u64(out, o.deadline_ms);
    put_opt_u64(out, o.memory_bytes);
    put_opt_u64(out, o.max_rows);
}

fn read_options(r: &mut Reader<'_>) -> Result<SessionOptions, ProtocolError> {
    Ok(SessionOptions {
        threads: r.opt(Reader::u32)?,
        morsel_rows: r.opt(Reader::u32)?,
        pruning: r.opt(Reader::bool_)?,
        deadline_ms: r.opt(Reader::u64)?,
        memory_bytes: r.opt(Reader::u64)?,
        max_rows: r.opt(Reader::u64)?,
    })
}

// ---- table --------------------------------------------------------

fn column_type_tag(c: &Column) -> u8 {
    match c {
        Column::Int64 { .. } => 0,
        Column::Float64 { .. } => 1,
        Column::Str { .. } => 2,
        Column::Bool { .. } => 3,
    }
}

fn put_table(out: &mut Vec<u8>, t: &Table) {
    put_str(out, t.name());
    put_u32(out, t.columns().len() as u32);
    put_u64(out, t.row_count() as u64);
    let rows = t.row_count();
    for (field, col) in t.schema().fields().iter().zip(t.columns()) {
        put_str(out, &field.name);
        out.push(column_type_tag(col));
        put_bool(out, field.nullable);
        put_bitmap(out, col.validity(), rows);
        match col {
            Column::Int64 { data, .. } => {
                for &v in data.iter() {
                    put_u64(out, v as u64);
                }
            }
            Column::Float64 { data, .. } => {
                for &v in data.iter() {
                    put_u64(out, v.to_bits());
                }
            }
            Column::Str { data, .. } => {
                for v in data.iter() {
                    put_str(out, v);
                }
            }
            Column::Bool { data, .. } => put_bitmap(out, data, rows),
        }
    }
}

fn read_table(r: &mut Reader<'_>) -> Result<Table, ProtocolError> {
    let name = r.str_()?;
    let ncols = r.u32()? as u64;
    let nrows64 = r.u64()?;
    if ncols > MAX_WIRE_COLUMNS {
        return Err(ProtocolError::Oversized { what: "table columns", claimed: ncols });
    }
    // A row needs at least one validity bit on the wire, so any claim
    // beyond 8× the remaining bytes is provably bogus — reject before
    // looping, let alone allocating.
    if nrows64 > (r.remaining() as u64).saturating_mul(8).max(1) {
        return Err(ProtocolError::Oversized { what: "table rows", claimed: nrows64 });
    }
    let nrows = nrows64 as usize;
    let mut fields = Vec::new();
    let mut columns = Vec::new();
    for _ in 0..ncols {
        let fname = r.str_()?;
        let tag = r.u8()?;
        let nullable = r.bool_()?;
        let validity = r.bitmap(nrows)?;
        let (dtype, col) = match tag {
            0 => {
                let raw = r.bytes(nrows.checked_mul(8).ok_or(ProtocolError::Oversized {
                    what: "int column bytes",
                    claimed: nrows64,
                })?)?;
                let data: Vec<i64> = raw
                    .chunks_exact(8)
                    .map(|b| i64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
                    .collect();
                (DataType::Int64, Column::Int64 { data: data.into(), validity })
            }
            1 => {
                let raw = r.bytes(nrows.checked_mul(8).ok_or(ProtocolError::Oversized {
                    what: "float column bytes",
                    claimed: nrows64,
                })?)?;
                let data: Vec<f64> = raw
                    .chunks_exact(8)
                    .map(|b| {
                        f64::from_bits(u64::from_le_bytes([
                            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
                        ]))
                    })
                    .collect();
                (DataType::Float64, Column::Float64 { data: data.into(), validity })
            }
            2 => {
                let mut data = Vec::new();
                for _ in 0..nrows {
                    data.push(r.str_()?);
                }
                (DataType::Str, Column::Str { data: data.into(), validity })
            }
            3 => {
                let data = r.bitmap(nrows)?;
                (DataType::Bool, Column::Bool { data, validity })
            }
            tag => return Err(ProtocolError::BadTag { context: "column type", tag }),
        };
        fields.push(if nullable {
            Field::nullable(fname, dtype)
        } else {
            Field::new(fname, dtype)
        });
        columns.push(col);
    }
    Table::new(name, Schema::new(fields), columns)
        .map_err(|e| ProtocolError::BadTable { detail: e.to_string() })
}

// ---- results and errors -------------------------------------------

fn put_result(out: &mut Vec<u8>, r: &WireResult) {
    put_table(out, &r.table);
    put_u64(out, r.rows_scanned);
    put_bool(out, r.approximate);
    put_opt_f64(out, r.error_bound);
    put_u32(out, r.degraded.len() as u32);
    for d in &r.degraded {
        put_str(out, d);
    }
    put_u64(out, r.service_us);
    put_u64(out, r.queue_us);
}

fn read_result(r: &mut Reader<'_>) -> Result<WireResult, ProtocolError> {
    let table = read_table(r)?;
    let rows_scanned = r.u64()?;
    let approximate = r.bool_()?;
    let error_bound = r.opt(Reader::f64)?;
    let n = r.u32()? as usize;
    if n > r.remaining() {
        return Err(ProtocolError::Oversized { what: "degraded list", claimed: n as u64 });
    }
    let mut degraded = Vec::with_capacity(n);
    for _ in 0..n {
        degraded.push(r.str_()?);
    }
    Ok(WireResult {
        table,
        rows_scanned,
        approximate,
        error_bound,
        degraded,
        service_us: r.u64()?,
        queue_us: r.u64()?,
    })
}

fn put_wire_error(out: &mut Vec<u8>, e: &WireError) {
    match e {
        WireError::Rejected { active, queued, retry_after_ms } => {
            out.push(0);
            put_u32(out, *active);
            put_u32(out, *queued);
            put_u64(out, *retry_after_ms);
        }
        WireError::QueueTimeout { waited_ms, budget_ms } => {
            out.push(1);
            put_u64(out, *waited_ms);
            put_u64(out, *budget_ms);
        }
        WireError::SessionLimit { active, max } => {
            out.push(2);
            put_u32(out, *active);
            put_u32(out, *max);
        }
        WireError::Query { kind, detail } => {
            out.push(3);
            put_str(out, kind);
            put_str(out, detail);
        }
        WireError::Protocol { detail } => {
            out.push(4);
            put_str(out, detail);
        }
        WireError::Server { detail } => {
            out.push(5);
            put_str(out, detail);
        }
    }
}

fn read_wire_error(r: &mut Reader<'_>) -> Result<WireError, ProtocolError> {
    match r.u8()? {
        0 => Ok(WireError::Rejected {
            active: r.u32()?,
            queued: r.u32()?,
            retry_after_ms: r.u64()?,
        }),
        1 => Ok(WireError::QueueTimeout { waited_ms: r.u64()?, budget_ms: r.u64()? }),
        2 => Ok(WireError::SessionLimit { active: r.u32()?, max: r.u32()? }),
        3 => Ok(WireError::Query { kind: r.str_()?, detail: r.str_()? }),
        4 => Ok(WireError::Protocol { detail: r.str_()? }),
        5 => Ok(WireError::Server { detail: r.str_()? }),
        tag => Err(ProtocolError::BadTag { context: "error kind", tag }),
    }
}

// ---- frames -------------------------------------------------------

impl Frame {
    /// Encode this frame's payload (tag byte + body, no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Frame::Hello { protocol_version, options } => {
                out.push(0x01);
                put_u32(&mut out, *protocol_version);
                put_options(&mut out, options);
            }
            Frame::Query { mode, sql } => {
                out.push(0x02);
                out.push(mode.tag());
                put_str(&mut out, sql);
            }
            Frame::SetOptions { options } => {
                out.push(0x03);
                put_options(&mut out, options);
            }
            Frame::Stats { format } => {
                out.push(0x04);
                out.push(match format {
                    StatsFormat::Prometheus => 0,
                    StatsFormat::Json => 1,
                });
            }
            Frame::Cancel { session } => {
                out.push(0x05);
                put_u64(&mut out, *session);
            }
            Frame::Close => out.push(0x06),
            Frame::HelloAck { session, protocol_version } => {
                out.push(0x81);
                put_u64(&mut out, *session);
                put_u32(&mut out, *protocol_version);
            }
            Frame::ResultSet(r) => {
                out.push(0x82);
                put_result(&mut out, r);
            }
            Frame::Error(e) => {
                out.push(0x83);
                put_wire_error(&mut out, e);
            }
            Frame::StatsReply { text } => {
                out.push(0x84);
                put_str(&mut out, text);
            }
            Frame::ExplainReply { text } => {
                out.push(0x85);
                put_str(&mut out, text);
            }
            Frame::OptionsAck => out.push(0x86),
            Frame::CancelAck { delivered } => {
                out.push(0x87);
                put_bool(&mut out, *delivered);
            }
            Frame::Goodbye => out.push(0x88),
        }
        out
    }

    /// Decode a frame from a complete payload slice (everything between
    /// two length prefixes). Total: returns a structured error on any
    /// malformed input, never panics, and rejects trailing garbage.
    pub fn decode(payload: &[u8]) -> Result<Frame, ProtocolError> {
        let mut r = Reader::new(payload);
        let tag = r.u8()?;
        let frame = match tag {
            0x01 => Frame::Hello { protocol_version: r.u32()?, options: read_options(&mut r)? },
            0x02 => Frame::Query { mode: QueryMode::from_tag(r.u8()?)?, sql: r.str_()? },
            0x03 => Frame::SetOptions { options: read_options(&mut r)? },
            0x04 => Frame::Stats {
                format: match r.u8()? {
                    0 => StatsFormat::Prometheus,
                    1 => StatsFormat::Json,
                    tag => return Err(ProtocolError::BadTag { context: "stats format", tag }),
                },
            },
            0x05 => Frame::Cancel { session: r.u64()? },
            0x06 => Frame::Close,
            0x81 => Frame::HelloAck { session: r.u64()?, protocol_version: r.u32()? },
            0x82 => Frame::ResultSet(Box::new(read_result(&mut r)?)),
            0x83 => Frame::Error(read_wire_error(&mut r)?),
            0x84 => Frame::StatsReply { text: r.str_()? },
            0x85 => Frame::ExplainReply { text: r.str_()? },
            0x86 => Frame::OptionsAck,
            0x87 => Frame::CancelAck { delivered: r.bool_()? },
            0x88 => Frame::Goodbye,
            tag => return Err(ProtocolError::BadTag { context: "frame", tag }),
        };
        if r.remaining() != 0 {
            return Err(ProtocolError::TrailingBytes { count: r.remaining() });
        }
        Ok(frame)
    }
}

/// Write one length-prefixed frame.
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> Result<(), TransportError> {
    let payload = frame.encode();
    if payload.len() > MAX_FRAME_BYTES {
        return Err(TransportError::Protocol(ProtocolError::Oversized {
            what: "outgoing frame",
            claimed: payload.len() as u64,
        }));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes()).map_err(TransportError::io)?;
    w.write_all(&payload).map_err(TransportError::io)?;
    w.flush().map_err(TransportError::io)?;
    Ok(())
}

/// Read one length-prefixed frame. `Ok(None)` is a clean end-of-stream
/// exactly at a frame boundary; EOF anywhere inside a frame is a
/// [`ProtocolError::Truncated`].
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Frame>, TransportError> {
    let mut len_buf = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        let n = r.read(&mut len_buf[got..]).map_err(TransportError::io)?;
        if n == 0 {
            if got == 0 {
                return Ok(None);
            }
            return Err(TransportError::Protocol(ProtocolError::Truncated {
                needed: 4,
                available: got,
            }));
        }
        got += n;
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(TransportError::Protocol(ProtocolError::Oversized {
            what: "incoming frame",
            claimed: len as u64,
        }));
    }
    let mut payload = vec![0u8; len];
    let mut filled = 0;
    while filled < len {
        let n = r.read(&mut payload[filled..]).map_err(TransportError::io)?;
        if n == 0 {
            return Err(TransportError::Protocol(ProtocolError::Truncated {
                needed: len,
                available: filled,
            }));
        }
        filled += n;
    }
    Frame::decode(&payload).map_err(TransportError::Protocol).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lawsdb_storage::TableBuilder;

    fn sample_table() -> Table {
        let mut b = TableBuilder::new("t");
        b.add_i64("g", vec![1, 2, 3]);
        b.add_f64_opt("v", vec![Some(1.5), None, Some(-2.25)]);
        b.add_str("s", vec!["a".into(), "".into(), "δ".into()]);
        b.add_bool("ok", &[true, false, true]);
        b.build().unwrap()
    }

    #[test]
    fn table_roundtrip_preserves_every_column_type() {
        let t = sample_table();
        let frame = Frame::ResultSet(Box::new(WireResult {
            table: t.clone(),
            rows_scanned: 7,
            approximate: true,
            error_bound: Some(0.5),
            degraded: vec!["no_model".into()],
            service_us: 11,
            queue_us: 3,
        }));
        let decoded = Frame::decode(&frame.encode()).unwrap();
        assert_eq!(decoded, frame);
    }

    #[test]
    fn stream_roundtrip() {
        let mut buf = Vec::new();
        let frames = [
            Frame::Hello { protocol_version: PROTOCOL_VERSION, options: SessionOptions::default() },
            Frame::Query { mode: QueryMode::Resilient, sql: "SELECT 1".into() },
            Frame::Goodbye,
        ];
        for f in &frames {
            write_frame(&mut buf, f).unwrap();
        }
        let mut r = &buf[..];
        for f in &frames {
            assert_eq!(read_frame(&mut r).unwrap().as_ref(), Some(f));
        }
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn decode_rejects_trailing_garbage_and_bad_tags() {
        let mut payload = Frame::Close.encode();
        payload.push(0xFF);
        assert!(matches!(
            Frame::decode(&payload),
            Err(ProtocolError::TrailingBytes { count: 1 })
        ));
        assert!(matches!(
            Frame::decode(&[0x7F]),
            Err(ProtocolError::BadTag { context: "frame", .. })
        ));
        assert!(matches!(Frame::decode(&[]), Err(ProtocolError::Truncated { .. })));
    }

    #[test]
    fn oversized_claims_are_rejected_before_allocation() {
        // A ResultSet claiming u64::MAX rows in a tiny payload.
        let mut payload = vec![0x82];
        put_str(&mut payload, "t");
        put_u32(&mut payload, 1);
        put_u64(&mut payload, u64::MAX);
        assert!(matches!(
            Frame::decode(&payload),
            Err(ProtocolError::Oversized { what: "table rows", .. })
        ));
    }
}
