//! The assembled server: one shared [`LawsDb`], a session directory,
//! an admission controller, and the transports that feed them.
//!
//! Connections arrive three ways, all ending in the same session loop:
//!
//! * [`Server::connect`] — in-process loopback over a
//!   [`PipeStream`](crate::pipe::PipeStream) pair (tests, benches,
//!   embedded use);
//! * [`Server::serve_stream`] — any `Read + Write + Send` stream the
//!   caller already owns;
//! * [`Server::serve_tcp`] — a real TCP listener, one thread per
//!   connection, with an orderly [`TcpHandle::shutdown`].

use crate::admission::{AdmissionConfig, AdmissionController};
use crate::pipe::{duplex, PipeStream};
use crate::protocol::SessionOptions;
use crate::session::{run_session, SessionDirectory};
use lawsdb_cluster::Cluster;
use lawsdb_core::LawsDb;
use lawsdb_obs::{Clock, Counter, FlightRecorder, Histogram, MonotonicClock, RecorderConfig};
use parking_lot::RwLock;
use lawsdb_query::ResourceBudget;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Server-wide policy knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Global admission caps (concurrency, queue, memory).
    pub admission: AdmissionConfig,
    /// Concurrent sessions allowed; the next connection is refused
    /// with a structured `SessionLimit` error.
    pub max_sessions: usize,
    /// Per-query resource ceiling. Session budgets are intersected
    /// with this, so no client can exceed it.
    pub max_budget: ResourceBudget,
    /// Baseline session options; client `Hello`/`SetOptions` knobs
    /// layer over these. Defaults to single-threaded query execution —
    /// on a loaded server, parallelism comes from sessions, not from
    /// oversubscribing cores per query.
    pub default_options: SessionOptions,
    /// Compile-in deterministic fault hooks (`FAULT PANIC`,
    /// `FAULT SLEEP`) for the concurrency test suites. Off by default.
    pub fault_injection: bool,
    /// The clock behind queue-wait and service timing and behind every
    /// per-query profile collector. Tests pin a
    /// [`MockClock`](lawsdb_obs::MockClock) here so distributed traces
    /// render byte-identically across runs.
    pub clock: Arc<dyn Clock>,
    /// Slow-query flight-recorder admission policy; `capacity: 0`
    /// disables recording (and the per-query profiling it implies)
    /// entirely.
    pub recorder: RecorderConfig,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            admission: AdmissionConfig::default(),
            max_sessions: 64,
            max_budget: ResourceBudget::unlimited()
                .with_deadline(Duration::from_secs(60)),
            default_options: SessionOptions { threads: Some(1), ..SessionOptions::default() },
            fault_injection: false,
            clock: Arc::new(MonotonicClock::new()),
            recorder: RecorderConfig::default(),
        }
    }
}

impl ServerConfig {
    /// The baseline session options.
    pub fn default_options(&self) -> &SessionOptions {
        &self.default_options
    }
}

/// Per-server counters that are not admission-specific.
#[derive(Debug)]
pub struct ServerMetricHooks {
    /// Queries received (any mode).
    pub queries: Arc<Counter>,
    /// Queries answered with a structured error (admission or engine).
    pub query_errors: Arc<Counter>,
    /// Malformed frames received.
    pub protocol_errors: Arc<Counter>,
    /// Post-admission service time per query, microseconds.
    pub query_us: Arc<Histogram>,
}

/// A multi-session front end over one shared engine.
pub struct Server {
    db: Arc<LawsDb>,
    cfg: ServerConfig,
    admission: Arc<AdmissionController>,
    sessions: Arc<SessionDirectory>,
    hooks: ServerMetricHooks,
    /// The sharded execution layer, when this server fronts one.
    /// `QueryMode::Cluster` requests dispatch here; without an attached
    /// cluster they answer a structured `cluster_unavailable` error.
    cluster: RwLock<Option<Arc<Cluster>>>,
    /// Bounded ring of complete profiles for the slowest / failed
    /// queries, served over [`Frame::SlowLog`](crate::protocol::Frame).
    recorder: Arc<FlightRecorder>,
    /// Monotonic query-id mint: unique per server process, never zero,
    /// stamped on results, exemplars, and flight-recorder entries.
    next_query_id: AtomicU64,
}

impl Server {
    /// Stand a server up over `db`. All `lawsdb_server_*` metrics bind
    /// into the engine's own registry, so one stats snapshot covers
    /// storage, query, and server counters together.
    pub fn new(db: Arc<LawsDb>, cfg: ServerConfig) -> Arc<Server> {
        let registry = Arc::clone(db.metrics());
        let admission =
            Arc::new(AdmissionController::for_registry(cfg.admission.clone(), &registry));
        let sessions = Arc::new(SessionDirectory::new(cfg.max_sessions, &registry));
        let hooks = ServerMetricHooks {
            queries: registry.counter("lawsdb_server_queries"),
            query_errors: registry.counter("lawsdb_server_query_errors"),
            protocol_errors: registry.counter("lawsdb_server_protocol_errors"),
            query_us: registry.histogram("lawsdb_server_query_us"),
        };
        let recorder = Arc::new(FlightRecorder::new(cfg.recorder.clone()));
        Arc::new(Server {
            db,
            cfg,
            admission,
            sessions,
            hooks,
            cluster: RwLock::new(None),
            recorder,
            next_query_id: AtomicU64::new(1),
        })
    }

    /// Front a sharded cluster: `QueryMode::Cluster` queries dispatch
    /// to it (behind the same admission gate as every other mode).
    pub fn attach_cluster(&self, cluster: Arc<Cluster>) {
        *self.cluster.write() = Some(cluster);
    }

    /// The attached cluster, if any.
    pub fn cluster(&self) -> Option<Arc<Cluster>> {
        self.cluster.read().clone()
    }

    /// The shared engine.
    pub fn db(&self) -> &Arc<LawsDb> {
        &self.db
    }

    /// The server's configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.cfg
    }

    /// The admission gate.
    pub fn admission(&self) -> &Arc<AdmissionController> {
        &self.admission
    }

    /// The live-session directory.
    pub fn sessions(&self) -> &Arc<SessionDirectory> {
        &self.sessions
    }

    pub(crate) fn metrics_hooks(&self) -> &ServerMetricHooks {
        &self.hooks
    }

    /// The server-wide clock (mockable for deterministic traces).
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.cfg.clock
    }

    /// The slow-query flight recorder.
    pub fn recorder(&self) -> &Arc<FlightRecorder> {
        &self.recorder
    }

    /// Mint the next query id.
    pub(crate) fn mint_query_id(&self) -> u64 {
        self.next_query_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Cancel the in-flight query of `session` (same semantics as a
    /// wire [`Frame::Cancel`](crate::protocol::Frame::Cancel)).
    pub fn cancel_session(&self, session: u64) -> bool {
        self.sessions.cancel(session)
    }

    /// Run a session over a caller-owned stream on a fresh thread.
    pub fn serve_stream<S>(self: &Arc<Self>, stream: S) -> JoinHandle<()>
    where
        S: Read + Write + Send + 'static,
    {
        let server = Arc::clone(self);
        std::thread::spawn(move || run_session(&server, stream))
    }

    /// Open an in-process connection: returns the client half of a
    /// loopback pipe whose server half is already being served. The
    /// full wire path (framing, decoding, admission) runs exactly as
    /// over TCP.
    pub fn connect(self: &Arc<Self>) -> PipeStream {
        let (client_half, server_half) = duplex();
        self.serve_stream(server_half);
        client_half
    }

    /// Bind a TCP listener and serve every connection on its own
    /// thread until [`TcpHandle::shutdown`].
    pub fn serve_tcp(self: &Arc<Self>, addr: &str) -> std::io::Result<TcpHandle> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let server = Arc::clone(self);
        let stop_accept = Arc::clone(&stop);
        let accept_thread = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if stop_accept.load(Ordering::Acquire) {
                    break;
                }
                match conn {
                    Ok(stream) => {
                        let _ = stream.set_nodelay(true);
                        server.serve_stream(stream);
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(TcpHandle { addr: local, stop, accept_thread: Some(accept_thread) })
    }
}

/// Handle on a running TCP listener.
#[derive(Debug)]
pub struct TcpHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TcpHandle {
    /// The bound address (use `127.0.0.1:0` to let the OS pick a port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting connections and join the accept thread. Already
    /// established sessions drain on their own threads.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for TcpHandle {
    fn drop(&mut self) {
        if let Some(t) = self.accept_thread.take() {
            self.stop.store(true, Ordering::Release);
            let _ = TcpStream::connect(self.addr);
            let _ = t.join();
        }
    }
}
