//! Concurrent sessions over one shared engine: N clients issuing mixed
//! exact / model / resilient / adaptive queries at once must produce
//! results **bit-identical** to serial execution, and one session's
//! cancel, timeout, or kernel panic must never perturb its siblings.
//!
//! Schedules are seeded (`LAWSDB_FAULT_SEED=<seed>` is printed); the
//! deliberate faults ride the server's test-only `FAULT` directives,
//! which exercise the real morsel-level catch-unwind and governor
//! paths end-to-end over the wire.

use lawsdb_core::LawsDb;
use lawsdb_fit::FitOptions as RawFitOptions;
use lawsdb_server::{
    AdmissionConfig, Client, ClientError, QueryMode, Server, ServerConfig, SessionOptions,
    WireError, WireResult,
};
use lawsdb_storage::TableBuilder;
use std::sync::Arc;
use std::time::Duration;

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

fn seed() -> u64 {
    let s = lawsdb_core::resilience::fault_seed();
    println!("LAWSDB_FAULT_SEED={s}");
    s
}

/// The shared engine: a power-law table with a captured model (so the
/// resilient/adaptive paths have a real model rung to take) plus a
/// model-less table (so the `no_model` degradation rung is exercised).
fn shared_db() -> Arc<LawsDb> {
    let db = LawsDb::new();
    let freqs: [f64; 4] = [0.12, 0.15, 0.16, 0.18];
    let laws: [(f64, f64); 4] = [(2.0, -0.7), (0.5, -1.2), (1.0, 0.3), (3.0, -0.5)];
    let mut src = Vec::new();
    let mut nu = Vec::new();
    let mut intensity = Vec::new();
    for (s, &(p, a)) in laws.iter().enumerate() {
        for i in 0..40 {
            src.push(s as i64);
            nu.push(freqs[i % 4]);
            intensity.push(p * freqs[i % 4].powf(a));
        }
    }
    let mut b = TableBuilder::new("measurements");
    b.add_i64("source", src);
    b.add_f64("nu", nu);
    b.add_f64("intensity", intensity);
    db.register_table(b.build().unwrap()).unwrap();
    db.capture_model(
        "measurements",
        "intensity ~ p * nu ^ alpha",
        Some("source"),
        &RawFitOptions::default(),
    )
    .unwrap();

    let mut plain = TableBuilder::new("plain");
    plain.add_i64("g", (0..200).map(|i| i % 7).collect());
    plain.add_f64("v", (0..200).map(|i| i as f64 * 0.25 - 20.0).collect());
    db.register_table(plain.build().unwrap()).unwrap();
    Arc::new(db)
}

fn test_server(admission: AdmissionConfig) -> Arc<Server> {
    Server::new(
        shared_db(),
        ServerConfig { admission, fault_injection: true, ..ServerConfig::default() },
    )
}

/// The mixed workload every session replays: exact aggregates, a
/// model-path resilient hit, a `no_model` resilient fallback, adaptive,
/// and a model point query.
const WORKLOAD: &[(QueryMode, &str)] = &[
    (QueryMode::Exact, "SELECT COUNT(*) FROM measurements"),
    (QueryMode::Exact, "SELECT source, AVG(intensity) FROM measurements GROUP BY source"),
    (QueryMode::Exact, "SELECT g, SUM(v) FROM plain GROUP BY g"),
    (QueryMode::Exact, "SELECT v FROM plain WHERE g = 3"),
    (
        QueryMode::Resilient,
        "SELECT intensity FROM measurements WHERE source = 1 AND nu = 0.15",
    ),
    (QueryMode::Resilient, "SELECT AVG(v) FROM plain"),
    (
        QueryMode::Adaptive,
        "SELECT intensity FROM measurements WHERE source = 2 AND nu = 0.18",
    ),
    (QueryMode::Adaptive, "SELECT MAX(v) FROM plain"),
];

/// The comparable portion of a result: everything except the
/// per-execution timings.
fn comparable(r: &WireResult) -> (String, bool, Option<u64>, Vec<String>, u64) {
    (
        format!("{:?}", r.table),
        r.approximate,
        r.error_bound.map(f64::to_bits),
        r.degraded.clone(),
        r.rows_scanned,
    )
}

#[test]
fn eight_concurrent_sessions_match_serial_execution_bit_for_bit() {
    let server = test_server(AdmissionConfig::default());

    // Serial reference: one session runs the workload alone.
    let mut reference = Vec::new();
    let mut serial = Client::connect(server.connect()).unwrap();
    for &(mode, sql) in WORKLOAD {
        reference.push(comparable(&serial.query(mode, sql).unwrap()));
    }
    serial.close().unwrap();

    // 8 concurrent sessions, each replaying the workload several times
    // in a seeded per-client order.
    let base_seed = seed();
    let reference = Arc::new(reference);
    let handles: Vec<_> = (0..8)
        .map(|client_id| {
            let server = Arc::clone(&server);
            let reference = Arc::clone(&reference);
            std::thread::spawn(move || {
                let mut rng = Rng(base_seed ^ (client_id as u64).wrapping_mul(0x9E37));
                let mut client = Client::connect(server.connect()).unwrap();
                for round in 0..3 {
                    // A seeded permutation: every query runs each round,
                    // in an order that differs per client and round.
                    let mut order: Vec<usize> = (0..WORKLOAD.len()).collect();
                    for i in (1..order.len()).rev() {
                        order.swap(i, (rng.next() % (i as u64 + 1)) as usize);
                    }
                    for qi in order {
                        let (mode, sql) = WORKLOAD[qi];
                        let got = comparable(&client.query(mode, sql).unwrap());
                        assert_eq!(
                            got, reference[qi],
                            "client {client_id} round {round} query {qi} diverged from serial"
                        );
                    }
                }
                client.close().unwrap();
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread must not panic");
    }

    // All sessions tear down cleanly. The Goodbye reply races the
    // server thread's unregister by design, so drain briefly.
    for _ in 0..200 {
        if server.sessions().active() == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(server.sessions().active(), 0);
    assert_eq!(server.admission().active(), 0);
}

#[test]
fn explain_is_identical_across_concurrent_sessions() {
    let server = test_server(AdmissionConfig::default());
    let sql = "SELECT source, AVG(intensity) FROM measurements GROUP BY source";
    let mut c = Client::connect(server.connect()).unwrap();
    let reference = c.explain(sql).unwrap();
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let server = Arc::clone(&server);
            let reference = reference.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(server.connect()).unwrap();
                for _ in 0..5 {
                    assert_eq!(c.explain(sql).unwrap(), reference);
                }
                c.close().unwrap();
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    c.close().unwrap();
}

/// Expect a query-kind error and return its detail.
fn expect_query_error(r: Result<WireResult, ClientError>, kind: &str) -> String {
    match r {
        Err(ClientError::Server(WireError::Query { kind: k, detail })) if k == kind => detail,
        other => panic!("expected a structured `{kind}` error, got {other:?}"),
    }
}

#[test]
fn cancelling_one_session_never_perturbs_siblings() {
    let server = test_server(AdmissionConfig {
        max_concurrent_queries: 4,
        ..AdmissionConfig::default()
    });
    let mut victim = Client::connect(server.connect()).unwrap();
    let victim_id = victim.session_id();

    // The victim runs a long cancellable query on its own thread.
    let victim_thread = std::thread::spawn(move || {
        let detail =
            expect_query_error(victim.query_exact("FAULT SLEEP 30000 300"), "cancelled");
        (victim, detail)
    });

    // A sibling cancels it by session id, then keeps working.
    let mut sibling = Client::connect(server.connect()).unwrap();
    std::thread::sleep(Duration::from_millis(150));
    assert!(sibling.cancel(victim_id).unwrap(), "cancel must reach the running query");

    let (mut victim, detail) = victim_thread.join().unwrap();
    assert!(detail.contains("cancel"), "{detail}");

    // The cancelled session survives and runs the next query fine...
    let r = victim.query_exact("SELECT COUNT(*) FROM plain").unwrap();
    assert_eq!(r.table.row_count(), 1);
    // ...and the sibling never felt a thing.
    let r = sibling.query_exact("SELECT COUNT(*) FROM measurements").unwrap();
    assert_eq!(r.table.row_count(), 1);
    victim.close().unwrap();
    sibling.close().unwrap();
}

#[test]
fn per_session_deadline_trips_only_its_own_query() {
    let server = test_server(AdmissionConfig {
        max_concurrent_queries: 4,
        ..AdmissionConfig::default()
    });
    let mut hasty = Client::connect_with(
        server.connect(),
        SessionOptions { deadline_ms: Some(120), ..SessionOptions::default() },
    )
    .unwrap();
    let mut patient = Client::connect(server.connect()).unwrap();

    let detail = expect_query_error(hasty.query_exact("FAULT SLEEP 10000 100"), "timeout");
    assert!(detail.contains("budget"), "{detail}");

    // The timed-out session is still serviceable, and an un-budgeted
    // sibling runs the same shape of query to completion.
    let r = hasty.query_exact("SELECT COUNT(*) FROM plain").unwrap();
    assert_eq!(r.table.row_count(), 1);
    let r = patient.query_exact("FAULT SLEEP 100 4").unwrap();
    assert_eq!(r.table.name(), "fault_sleep");
    hasty.close().unwrap();
    patient.close().unwrap();
}

#[test]
fn a_panicking_kernel_is_contained_to_its_own_query() {
    let server = test_server(AdmissionConfig::default());
    let mut unlucky = Client::connect(server.connect()).unwrap();
    let mut sibling = Client::connect(server.connect()).unwrap();

    let detail = expect_query_error(unlucky.query_exact("FAULT PANIC"), "worker_panic");
    assert!(detail.contains("panic"), "{detail}");

    // The session that hit the panic keeps serving...
    let r = unlucky.query_exact("SELECT COUNT(*) FROM measurements").unwrap();
    assert_eq!(r.table.row_count(), 1);
    // ...the sibling is untouched...
    let r = sibling
        .query(QueryMode::Resilient, "SELECT intensity FROM measurements WHERE source = 0 AND nu = 0.12")
        .unwrap();
    assert!(r.approximate, "the model path must still answer");
    // ...and the admission slot was released despite the panic.
    assert_eq!(server.admission().active(), 0);
    unlucky.close().unwrap();
    sibling.close().unwrap();
}

#[test]
fn session_options_are_isolated_per_session() {
    let server = test_server(AdmissionConfig::default());
    let mut tight = Client::connect_with(
        server.connect(),
        SessionOptions { max_rows: Some(10), ..SessionOptions::default() },
    )
    .unwrap();
    let mut loose = Client::connect(server.connect()).unwrap();

    // The tight session's row budget trips on a 200-row scan...
    let detail =
        expect_query_error(tight.query_exact("SELECT SUM(v) FROM plain"), "row_limit_exceeded");
    assert!(detail.contains("10"), "{detail}");
    // ...while the loose session scans the same table freely.
    let r = loose.query_exact("SELECT SUM(v) FROM plain").unwrap();
    assert_eq!(r.rows_scanned, 200);

    // Options can be replaced mid-session.
    tight.set_options(SessionOptions::default()).unwrap();
    let r = tight.query_exact("SELECT SUM(v) FROM plain").unwrap();
    assert_eq!(r.rows_scanned, 200);
    tight.close().unwrap();
    loose.close().unwrap();
}

#[test]
fn tcp_transport_serves_the_same_protocol() {
    let server = test_server(AdmissionConfig::default());
    let handle = server.serve_tcp("127.0.0.1:0").expect("bind loopback");
    let addr = handle.addr();
    let stream = std::net::TcpStream::connect(addr).unwrap();
    let mut client = Client::connect(stream).unwrap();
    let r = client.query_exact("SELECT COUNT(*) FROM measurements").unwrap();
    assert_eq!(r.table.row_count(), 1);
    client.close().unwrap();
    handle.shutdown();
}

#[test]
fn stats_exposition_carries_pushdown_and_plan_cache_counters() {
    use lawsdb_server::StatsFormat;
    let server = test_server(AdmissionConfig::default());
    let mut c = Client::connect(server.connect()).unwrap();
    // An unfiltered global aggregate over data zones takes the
    // zone-synopsis path (`intensity` would not: model capture replaced
    // its zones); running it twice exercises the plan cache too.
    c.query_exact("SELECT COUNT(v), SUM(v) FROM plain").unwrap();
    c.query_exact("SELECT COUNT(v), SUM(v) FROM plain").unwrap();
    let text = c.stats(StatsFormat::Prometheus).unwrap();
    let value = |name: &str| -> u64 {
        text.lines()
            .find(|l| l.starts_with(name))
            .unwrap_or_else(|| panic!("{name} missing from exposition:\n{text}"))
            .split_whitespace()
            .nth(1)
            .unwrap()
            .parse()
            .unwrap()
    };
    assert!(value("lawsdb_query_zones_agg_synopsis") > 0);
    assert!(value("lawsdb_query_plan_cache_hit") >= 1);
    // Present (and zero) until something actually evicts.
    assert_eq!(value("lawsdb_query_plan_cache_evictions"), 0);
    c.close().unwrap();
}
