//! End-to-end distributed query tracing: one client-requested trace
//! stitches the admission queue wait, frame decode/encode, per-shard
//! scatter-gather phases (fetch / execute / gather), replica failover
//! attempts, and total-loss model fallback into a single tree — pinned
//! byte-identical across runs under a `MockClock` — and the same query
//! lands in the slow-query flight recorder with its dominant layer
//! correctly attributed.
//!
//! Faults are seeded: `LAWSDB_FAULT_SEED=<seed>` is printed, and
//! re-running with it set reproduces the exact shard choices.

use lawsdb_cluster::{Cluster, ClusterConfig, PartitionScheme};
use lawsdb_core::LawsDb;
use lawsdb_obs::{dominant_layer, MockClock, RecorderConfig, TraceNode, LAYERS};
use lawsdb_server::{Client, ClientError, QueryMode, Server, ServerConfig, WireError};
use lawsdb_storage::{Table, TableBuilder};
use std::sync::Arc;

fn seed() -> u64 {
    let s = lawsdb_core::resilience::fault_seed();
    println!("LAWSDB_FAULT_SEED = {s:#x} (set to reproduce)");
    s
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Noise-free power-law measurements: per-shard fitted models
/// reconstruct intensity essentially exactly, so total-loss model
/// fallback stays inside the residual bound.
fn lofar() -> Table {
    let freqs: [f64; 4] = [0.12, 0.15, 0.16, 0.18];
    let laws: [(f64, f64); 4] = [(2.0, -0.7), (0.5, -1.2), (1.0, 0.3), (3.0, -0.5)];
    let mut src = Vec::new();
    let mut nu = Vec::new();
    let mut intensity = Vec::new();
    for (s, &(p, a)) in laws.iter().enumerate() {
        for i in 0..40 {
            src.push(s as i64);
            nu.push(freqs[i % 4]);
            intensity.push(p * freqs[i % 4].powf(a));
        }
    }
    let mut b = TableBuilder::new("measurements");
    b.add_i64("source", src);
    b.add_f64("nu", nu);
    b.add_f64("intensity", intensity);
    let mut t = b.build().unwrap();
    t.rebuild_synopsis_with(16);
    t
}

const AVG_SQL: &str =
    "SELECT source, AVG(intensity) AS m FROM measurements GROUP BY source ORDER BY source";

/// A server over a 3×2 sharded cluster with captured per-shard models,
/// timed by a fresh `MockClock`, flight recorder on.
fn traced_server() -> (Arc<Server>, Arc<Cluster>) {
    let db = LawsDb::new();
    let t = lofar();
    db.register_table(t.clone()).unwrap();
    let cluster = Arc::new(
        Cluster::new(
            &t,
            ClusterConfig {
                shards: 3,
                replicas: 2,
                scheme: PartitionScheme::Hash { key: "source".to_string() },
                morsel_rows: 32,
                fail_threshold: 1,
                probe_after: 1,
                max_abs_residual: 1e-6,
            },
            db.metrics(),
        )
        .unwrap(),
    );
    cluster
        .capture_models("intensity ~ p * nu ^ alpha", "source", &lawsdb_fit::FitOptions::default(), 2)
        .unwrap();
    let server = Server::new(
        Arc::new(db),
        ServerConfig {
            clock: Arc::new(MockClock::new(3)),
            recorder: RecorderConfig::default(),
            ..ServerConfig::default()
        },
    );
    server.attach_cluster(Arc::clone(&cluster));
    (server, cluster)
}

/// Run the acceptance scenario once: a seed-chosen populated shard
/// loses one replica (failover), a different populated shard loses
/// every replica (model fallback), and one traced cluster query runs
/// through the full wire path. Returns the trace and the slowlog.
fn faulted_traced_query(
    state: &mut u64,
) -> (TraceNode, u64, Vec<lawsdb_obs::FlightRecord>) {
    let (server, cluster) = traced_server();
    let populated: Vec<usize> =
        (0..cluster.config().shards).filter(|&s| cluster.shard_rows(s) > 0).collect();
    assert!(populated.len() >= 2, "need two populated shards, got {populated:?}");
    let failover_at = populated[(splitmix64(state) as usize) % populated.len()];
    let lost = *populated.iter().find(|&&s| s != failover_at).unwrap();
    cluster.kill_replica(failover_at, 0);
    cluster.kill_shard(lost);

    let mut c = Client::connect(server.connect()).unwrap();
    let r = c.query_traced(QueryMode::Cluster, AVG_SQL).unwrap();
    assert!(r.approximate, "total shard loss must degrade to the model");
    assert!(r.query_id > 0, "the server must mint a nonzero query id");
    let trace = r.trace.expect("a traced query must carry its trace tree");
    let slowlog = c.slowlog(8).unwrap();
    c.close().unwrap();
    (trace, r.query_id, slowlog)
}

#[test]
fn distributed_trace_is_complete_deterministic_and_slowlogged() {
    let s = seed();

    let mut state = s;
    let (trace, query_id, slowlog) = faulted_traced_query(&mut state);

    // -- Span taxonomy: every layer of the distributed query is there.
    assert!(!trace.find("server.admission").is_empty(), "missing queue-wait span:\n{trace}");
    assert!(!trace.find("server.decode").is_empty(), "missing decode point:\n{trace}");
    assert!(!trace.find("server.encode").is_empty(), "missing encode span:\n{trace}");
    for phase in ["cluster.fetch", "cluster.execute", "cluster.gather"] {
        assert!(!trace.find(phase).is_empty(), "missing {phase} span:\n{trace}");
    }
    // Failover attempt and health outcome are structured child spans.
    assert!(!trace.find("cluster.failover").is_empty(), "missing failover point:\n{trace}");
    // Total shard loss surfaces as a model-fallback point carrying the
    // degrade reason.
    let fallbacks = trace.find("cluster.model_fallback");
    assert!(!fallbacks.is_empty(), "missing model fallback point:\n{trace}");
    assert_eq!(
        fallbacks[0].field("reason").map(ToString::to_string).as_deref(),
        Some("shard_model_fallback"),
        "fallback must carry its reason:\n{trace}"
    );
    // The engine's morsel-grammar leaves are stitched under the shard
    // execute spans — one tree from wire to morsel.
    let executes = trace.find("cluster.execute");
    assert!(
        executes.iter().any(|e| !e.find("morsel").is_empty()),
        "missing engine morsel leaves under cluster.execute:\n{trace}"
    );

    // -- Determinism: a fresh server + cluster + MockClock and the same
    // seed reproduce the trace byte for byte.
    let mut state = s;
    let (again, _, _) = faulted_traced_query(&mut state);
    assert_eq!(trace.render(), again.render(), "trace must be byte-identical across runs");

    // -- Flight recorder: the same query is in the slowlog, worst
    // first, with its dominant layer correctly attributed.
    let rec = slowlog
        .iter()
        .find(|r| r.query_id == query_id)
        .expect("the traced query must appear in the slowlog");
    assert_eq!(rec.sql, AVG_SQL);
    assert_eq!(rec.mode, "cluster");
    assert!(rec.error.is_none());
    assert!(rec.total_us > 0);
    let kept = rec.trace.as_ref().expect("slowlog entries keep the full trace");
    assert_eq!(kept.render(), trace.render(), "recorder must hold the same tree");
    // Dominant-layer attribution recomputes from the tree itself.
    let (want_layer, want_us) = dominant_layer(&rec.layers);
    assert_eq!(rec.dominant_layer, want_layer);
    assert_eq!(rec.dominant_us, want_us);
    assert!(
        LAYERS.contains(&rec.dominant_layer.as_str()),
        "dominant layer {} must be canonical",
        rec.dominant_layer
    );
    assert!(
        rec.layers.iter().any(|(l, _)| l == "fetch") && rec.layers.iter().any(|(l, _)| l == "execute"),
        "cluster phases must be attributed: {:?}",
        rec.layers
    );
}

#[test]
fn queue_wait_runs_on_the_mockable_server_clock() {
    // The queue-wait measurement must come from the server's clock
    // (mockable), not a raw `Instant` — a MockClock stepping 5 µs per
    // reading makes every wait a nonzero multiple of 5.
    let db = LawsDb::new();
    let mut b = TableBuilder::new("t");
    b.add_i64("g", vec![1, 2, 3, 4]);
    db.register_table(b.build().unwrap()).unwrap();
    let server = Server::new(
        Arc::new(db),
        ServerConfig { clock: Arc::new(MockClock::new(5)), ..ServerConfig::default() },
    );
    let mut c = Client::connect(server.connect()).unwrap();
    let r = c.query_exact("SELECT COUNT(*) FROM t").unwrap();
    assert!(r.queue_us > 0, "mock clock steps on every reading; wait cannot be zero");
    assert_eq!(r.queue_us % 5, 0, "queue wait must be measured on the mock clock");
    assert_eq!(r.service_us % 5, 0, "service time must be measured on the mock clock");
    c.close().unwrap();
}

#[test]
fn untraced_queries_carry_ids_but_no_tree_and_failures_reach_the_slowlog() {
    let db = LawsDb::new();
    let mut b = TableBuilder::new("t");
    b.add_i64("g", vec![1, 2, 3, 4]);
    db.register_table(b.build().unwrap()).unwrap();
    let server = Server::new(
        Arc::new(db),
        ServerConfig { clock: Arc::new(MockClock::new(3)), ..ServerConfig::default() },
    );
    let mut c = Client::connect(server.connect()).unwrap();

    // Plain query: id stamped, no tree shipped, still recorded.
    let r = c.query_exact("SELECT COUNT(*) FROM t").unwrap();
    assert!(r.query_id > 0);
    assert!(r.trace.is_none(), "untraced queries must not pay for the tree on the wire");

    // A failing query is admitted to the recorder with its error.
    let err = c.query_exact("SELECT nope FROM t");
    assert!(matches!(err, Err(ClientError::Server(WireError::Query { .. }))));

    let log = c.slowlog(8).unwrap();
    assert_eq!(log.len(), 2, "both queries must be recorded");
    assert!(log.iter().any(|e| e.error.is_none() && e.sql.contains("COUNT")));
    let failed = log.iter().find(|e| e.error.is_some()).expect("failure must be recorded");
    assert!(failed.sql.contains("nope"));
    assert!(failed.trace.is_some(), "failed queries keep their partial trace");
    c.close().unwrap();
}

#[test]
fn recorder_capacity_zero_disables_profiling_but_tracing_still_works() {
    let db = LawsDb::new();
    let mut b = TableBuilder::new("t");
    b.add_i64("g", vec![1, 2, 3, 4]);
    db.register_table(b.build().unwrap()).unwrap();
    let server = Server::new(
        Arc::new(db),
        ServerConfig {
            recorder: RecorderConfig { capacity: 0, ..RecorderConfig::default() },
            ..ServerConfig::default()
        },
    );
    let mut c = Client::connect(server.connect()).unwrap();
    // No recorder and no trace request: nothing is collected.
    let plain = c.query_exact("SELECT COUNT(*) FROM t").unwrap();
    assert!(plain.trace.is_none());
    assert!(c.slowlog(8).unwrap().is_empty(), "capacity 0 must record nothing");
    // An explicit trace request still collects, ships, and is not kept.
    let traced = c.query_traced(QueryMode::Exact, "SELECT COUNT(*) FROM t").unwrap();
    assert!(traced.trace.is_some(), "explicit trace requests bypass the disabled recorder");
    assert!(c.slowlog(8).unwrap().is_empty());
    c.close().unwrap();
}
