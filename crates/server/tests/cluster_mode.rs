//! `QueryMode::Cluster` over the wire: the same admission gate and
//! session loop as every other mode, dispatching into an attached
//! sharded [`Cluster`]. Asserts the bit-identity contract end to end
//! (wire answer == embedded engine answer), transparent replica
//! failover, the structured `cluster_unavailable` error when no
//! cluster is attached, and the `lawsdb_cluster_*` metrics landing in
//! the same registry a client scrapes with `Stats`.

use lawsdb_cluster::{Cluster, ClusterConfig, PartitionScheme};
use lawsdb_core::LawsDb;
use lawsdb_server::{Client, ClientError, Server, ServerConfig, StatsFormat, WireError};
use lawsdb_query::{execute_with, ExecOptions};
use lawsdb_storage::{Catalog, Table, TableBuilder, Value};
use std::sync::Arc;

fn table() -> Table {
    let mut b = TableBuilder::new("t");
    b.add_i64("g", (0..300).map(|i| i % 7).collect());
    b.add_f64("v", (0..300).map(|i| (i as f64) * 0.731 - 40.0).collect());
    b.build().unwrap()
}

/// Floats rendered as raw bits: equal strings ⇔ equal bits.
fn render(t: &Table) -> String {
    let mut out = String::new();
    for row in 0..t.row_count() {
        for c in t.columns() {
            match c.value(row).unwrap() {
                Value::Null => out.push_str("∅ "),
                Value::Int(i) => out.push_str(&format!("i{i} ")),
                Value::Float(x) => out.push_str(&format!("f{:016x} ", x.to_bits())),
                other => out.push_str(&format!("{other:?} ")),
            }
        }
        out.push('\n');
    }
    out
}

fn server_with_cluster() -> (Arc<Server>, Arc<Cluster>) {
    let db = LawsDb::new();
    let t = table();
    db.register_table(t.clone()).unwrap();
    let cluster = Arc::new(
        Cluster::new(
            &t,
            ClusterConfig {
                shards: 3,
                replicas: 2,
                scheme: PartitionScheme::Hash { key: "g".to_string() },
                ..ClusterConfig::default()
            },
            db.metrics(),
        )
        .unwrap(),
    );
    let server = Server::new(Arc::new(db), ServerConfig::default());
    server.attach_cluster(Arc::clone(&cluster));
    (server, cluster)
}

const SQL: &str = "SELECT g, COUNT(*) AS n, SUM(v) AS s, AVG(v) AS m FROM t \
                   GROUP BY g ORDER BY g";

#[test]
fn cluster_mode_answers_bit_identical_over_the_wire() {
    let (server, cluster) = server_with_cluster();

    // Embedded single-engine baseline on a fresh catalog.
    let catalog = Catalog::new();
    catalog.register(table()).unwrap();
    let opts = ExecOptions { threads: 1, ..ExecOptions::default() };
    let baseline = execute_with(&catalog, SQL, &opts).unwrap();

    let mut c = Client::connect(server.connect()).unwrap();
    let healthy = c.query_cluster(SQL).unwrap();
    assert_eq!(render(&healthy.table), render(&baseline.table));
    assert!(!healthy.approximate);
    assert!(healthy.degraded.is_empty());

    // Kill one replica of every shard: failover is silent and the
    // answer does not move by a bit.
    for s in 0..cluster.config().shards {
        cluster.kill_replica(s, 0);
    }
    let failed_over = c.query_cluster(SQL).unwrap();
    assert_eq!(render(&failed_over.table), render(&baseline.table));
    assert!(!failed_over.approximate);

    // The cluster's counters live in the engine registry the wire
    // Stats frame scrapes.
    let stats = c.stats(StatsFormat::Prometheus).unwrap();
    for needle in ["lawsdb_cluster_shard_queries", "lawsdb_cluster_failovers"] {
        assert!(stats.contains(needle), "missing `{needle}` in:\n{stats}");
    }
    let failovers: u64 = stats
        .lines()
        .find_map(|l| l.strip_prefix("lawsdb_cluster_failovers "))
        .and_then(|v| v.trim().parse().ok())
        .unwrap();
    assert!(failovers >= 1, "killing live replicas must surface as failovers:\n{stats}");
    c.close().unwrap();
}

#[test]
fn cluster_mode_without_a_cluster_is_a_structured_error() {
    let db = LawsDb::new();
    db.register_table(table()).unwrap();
    let server = Server::new(Arc::new(db), ServerConfig::default());
    let mut c = Client::connect(server.connect()).unwrap();
    match c.query_cluster(SQL) {
        Err(ClientError::Server(WireError::Query { kind, .. })) => {
            assert_eq!(kind, "cluster_unavailable");
        }
        other => panic!("expected a structured cluster_unavailable error, got {other:?}"),
    }
    // The session survives the error; other modes still work.
    let r = c.query_exact("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.table.row_count(), 1);
    c.close().unwrap();
}

#[test]
fn cluster_mode_surfaces_partial_results_as_wire_errors() {
    let (server, cluster) = server_with_cluster();
    // No captured models: losing every replica of a shard cannot
    // degrade to a model, so the query fails structurally — the
    // session and the connection both survive.
    cluster.kill_shard(1);
    let mut c = Client::connect(server.connect()).unwrap();
    match c.query_cluster(SQL) {
        Err(ClientError::Server(WireError::Query { kind, detail })) => {
            assert_eq!(kind, "partial_result", "{detail}");
            assert!(detail.contains("shard 1"), "{detail}");
        }
        other => panic!("expected a partial_result error, got {other:?}"),
    }
    for s in 0..cluster.config().shards {
        cluster.heal_replica(s, 0).unwrap();
        cluster.heal_replica(s, 1).unwrap();
    }
    let healed = c.query_cluster(SQL).unwrap();
    assert!(!healed.approximate);
    c.close().unwrap();
}
