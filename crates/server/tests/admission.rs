//! Admission control over the wire: queue-full rejection with a
//! structured retry hint, queue timeouts honored within tolerance,
//! global concurrency and memory caps held under a seeded burst, and
//! the `lawsdb_server_*` metrics pinned to exact values — asserted both
//! through the registry and through the wire-level Prometheus
//! exposition a real operator would scrape.

use lawsdb_core::LawsDb;
use lawsdb_server::{
    AdmissionConfig, Client, ClientError, Server, ServerConfig, SessionOptions, StatsFormat,
    WireError,
};
use lawsdb_storage::TableBuilder;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

fn seed() -> u64 {
    let s = lawsdb_core::resilience::fault_seed();
    println!("LAWSDB_FAULT_SEED={s}");
    s
}

fn server_with(admission: AdmissionConfig) -> Arc<Server> {
    let db = LawsDb::new();
    let mut b = TableBuilder::new("t");
    b.add_i64("g", (0..100).map(|i| i % 5).collect());
    b.add_f64("v", (0..100).map(|i| i as f64).collect());
    db.register_table(b.build().unwrap()).unwrap();
    Server::new(
        Arc::new(db),
        ServerConfig { admission, fault_injection: true, ..ServerConfig::default() },
    )
}

/// Hold one admission slot by running a long sleep query on a thread;
/// returns after the query is actually admitted (active == 1).
fn occupy_slot(server: &Arc<Server>, ms: u64) -> std::thread::JoinHandle<()> {
    let s = Arc::clone(server);
    let h = std::thread::spawn(move || {
        let mut c = Client::connect(s.connect()).unwrap();
        let sql = format!("FAULT SLEEP {ms} {}", (ms / 10).max(1));
        let _ = c.query_exact(&sql);
        c.close().unwrap();
    });
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.admission().active() == 0 {
        assert!(Instant::now() < deadline, "occupier was never admitted");
        std::thread::sleep(Duration::from_millis(5));
    }
    h
}

#[test]
fn queue_full_rejects_over_the_wire_with_a_retry_hint() {
    let server = server_with(AdmissionConfig {
        max_concurrent_queries: 1,
        max_queued: 0,
        queue_timeout: Duration::from_millis(400),
        ..AdmissionConfig::default()
    });
    let occupier = occupy_slot(&server, 2_000);

    let mut rejected = Client::connect(server.connect()).unwrap();
    match rejected.query_exact("SELECT COUNT(*) FROM t") {
        Err(ClientError::Server(WireError::Rejected { active, queued, retry_after_ms })) => {
            assert_eq!((active, queued, retry_after_ms), (1, 0, 400));
        }
        other => panic!("expected a structured Rejected error, got {other:?}"),
    }
    // The rejected session stays open; once the slot frees it succeeds.
    occupier.join().unwrap();
    let r = rejected.query_exact("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.table.row_count(), 1);

    // Metrics pinned: exactly the occupier's query and the retry were
    // admitted, exactly one request was rejected, none ever queued.
    let stats = rejected.stats(StatsFormat::Prometheus).unwrap();
    for line in [
        "lawsdb_server_admitted 2",
        "lawsdb_server_rejected 1",
        "lawsdb_server_queued 0",
        "lawsdb_server_queue_timeout 0",
        "lawsdb_server_active_queries 0",
        "lawsdb_server_queries 3",
        "lawsdb_server_query_errors 1",
    ] {
        assert!(stats.contains(line), "missing `{line}` in:\n{stats}");
    }
    rejected.close().unwrap();
}

/// Satellite path for saturated servers: `query_with_retry` absorbs
/// the structured rejection, waits out the (capped) `retry_after_ms`
/// hint, and re-sends — the caller sees one successful result, never
/// the intermediate pushback.
#[test]
fn rejected_then_admitted_query_succeeds_transparently() {
    let server = server_with(AdmissionConfig {
        max_concurrent_queries: 1,
        max_queued: 0,
        queue_timeout: Duration::from_millis(40),
        ..AdmissionConfig::default()
    });
    // Hold the only slot long enough that the first attempt is
    // certainly rejected, short enough that a later retry is admitted.
    let occupier = occupy_slot(&server, 250);

    let mut c = Client::connect(server.connect()).unwrap();
    let policy = lawsdb_server::AdmissionRetry::default_queries();
    let r = c
        .query_with_retry(lawsdb_server::QueryMode::Exact, "SELECT COUNT(*) FROM t", policy)
        .expect("retry helper must ride out the busy window");
    assert_eq!(r.table.row_count(), 1);
    occupier.join().unwrap();

    // The transparency is observable server-side: at least one
    // rejection was issued, yet the client call returned Ok.
    let stats = c.stats(StatsFormat::Prometheus).unwrap();
    let rejected: u64 = stats
        .lines()
        .find_map(|l| l.strip_prefix("lawsdb_server_rejected "))
        .and_then(|v| v.trim().parse().ok())
        .unwrap();
    assert!(rejected >= 1, "expected at least one rejection in:\n{stats}");
    c.close().unwrap();
}

/// The client-side policy is deterministic and capped: the wait honors
/// the server hint as a floor, doubles across consecutive rejections,
/// and never exceeds `max_delay_ms` regardless of hint or attempt
/// index (the exponent clamps, so huge indices cannot overflow).
#[test]
fn admission_retry_backoff_honors_hint_and_caps() {
    let p = lawsdb_server::AdmissionRetry { max_attempts: 8, base_delay_ms: 10, max_delay_ms: 200 };
    let ms = |retry, hint| p.delay_for(retry, hint).as_millis() as u64;
    assert_eq!(ms(1, 0), 10, "pure client schedule when the hint is zero");
    assert_eq!(ms(2, 0), 20);
    assert_eq!(ms(1, 150), 150, "server hint floors the early waits");
    assert_eq!(ms(1, 30_000), 200, "a hostile hint is capped");
    assert_eq!(ms(6, 0), 200, "doubling is capped");
    assert_eq!(ms(u32::MAX, 0), 200, "exponent clamps, no overflow");
    assert_eq!(lawsdb_server::AdmissionRetry::none().delay_for(1, 400), Duration::ZERO);
}

#[test]
fn queue_timeout_is_honored_within_tolerance_over_the_wire() {
    let budget_ms = 250u64;
    let server = server_with(AdmissionConfig {
        max_concurrent_queries: 1,
        max_queued: 8,
        queue_timeout: Duration::from_millis(budget_ms),
        ..AdmissionConfig::default()
    });
    let occupier = occupy_slot(&server, 3_000);

    let mut waiter = Client::connect(server.connect()).unwrap();
    let started = Instant::now();
    match waiter.query_exact("SELECT COUNT(*) FROM t") {
        Err(ClientError::Server(WireError::QueueTimeout { waited_ms, budget_ms: b })) => {
            assert_eq!(b, budget_ms);
            assert!(waited_ms >= budget_ms, "gave up early: {waited_ms} < {budget_ms} ms");
        }
        other => panic!("expected a structured QueueTimeout, got {other:?}"),
    }
    let waited = started.elapsed();
    assert!(waited >= Duration::from_millis(budget_ms), "returned in {waited:?}");
    // Generous upper tolerance for a loaded 1-CPU container.
    assert!(waited < Duration::from_secs(5), "took {waited:?}, budget {budget_ms} ms");

    let stats = waiter.stats(StatsFormat::Prometheus).unwrap();
    for line in [
        "lawsdb_server_queued 1",
        "lawsdb_server_queue_timeout 1",
        "lawsdb_server_rejected 1",
    ] {
        assert!(stats.contains(line), "missing `{line}` in:\n{stats}");
    }
    waiter.close().unwrap();
    occupier.join().unwrap();
}

#[test]
fn concurrency_cap_holds_under_a_seeded_burst() {
    let cap = 2usize;
    let server = server_with(AdmissionConfig {
        max_concurrent_queries: cap,
        max_queued: 32,
        queue_timeout: Duration::from_secs(30),
        ..AdmissionConfig::default()
    });
    let base = seed();
    let clients = 8;
    let per_client = 4;
    let handles: Vec<_> = (0..clients)
        .map(|id| {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                let mut rng = Rng(base ^ (id as u64).wrapping_mul(0xABCD));
                let mut c = Client::connect(server.connect()).unwrap();
                for _ in 0..per_client {
                    // Seeded mix of short sleeps and real scans, all
                    // passing through admission.
                    let r = if rng.next().is_multiple_of(2) {
                        c.query_exact("FAULT SLEEP 20 2")
                    } else {
                        c.query_exact("SELECT g, SUM(v) FROM t GROUP BY g")
                    };
                    r.unwrap();
                }
                c.close().unwrap();
            })
        })
        .collect();
    for h in handles {
        h.join().expect("burst client must not fail");
    }

    assert!(
        server.admission().peak_active() <= cap,
        "cap breached: peak {} > {cap}",
        server.admission().peak_active()
    );
    assert_eq!(server.admission().active(), 0, "all slots released");

    // Every query in the burst was admitted exactly once, none were
    // rejected or timed out; the peak gauge proves the cap was reached
    // (8 clients against 2 slots must have collided).
    let snap = server.db().metrics().snapshot();
    assert_eq!(snap.counter("lawsdb_server_admitted"), (clients * per_client) as u64);
    assert_eq!(snap.counter("lawsdb_server_rejected"), 0);
    assert_eq!(snap.counter("lawsdb_server_queue_timeout"), 0);
    assert_eq!(snap.gauge("lawsdb_server_active_queries"), 0);
    assert_eq!(snap.gauge("lawsdb_server_active_queries_peak"), cap as i64);
    assert_eq!(snap.counter("lawsdb_server_queries"), (clients * per_client) as u64);
    assert_eq!(
        snap.histogram("lawsdb_server_queue_wait_us").map(|h| h.count),
        Some((clients * per_client) as u64),
        "every admitted query records a queue-wait sample"
    );
}

#[test]
fn global_memory_cap_gates_admission_by_requested_budget() {
    let server = server_with(AdmissionConfig {
        max_concurrent_queries: 8,
        max_queued: 8,
        queue_timeout: Duration::from_millis(200),
        global_memory_bytes: Some(64 << 20),
        default_reserve_bytes: 1 << 20,
        ..AdmissionConfig::default()
    });

    // A reservation that could never fit fails immediately and
    // structurally, without waiting out the queue timeout.
    let mut greedy = Client::connect_with(
        server.connect(),
        SessionOptions { memory_bytes: Some(128 << 20), ..SessionOptions::default() },
    )
    .unwrap();
    let started = Instant::now();
    match greedy.query_exact("SELECT COUNT(*) FROM t") {
        Err(ClientError::Server(WireError::Server { detail })) => {
            assert!(detail.contains("exceeds the server's global cap"), "{detail}");
        }
        other => panic!("expected a reservation refusal, got {other:?}"),
    }
    assert!(started.elapsed() < Duration::from_millis(150), "must fail fast");

    // Within the cap, the same session is served.
    greedy
        .set_options(SessionOptions { memory_bytes: Some(8 << 20), ..SessionOptions::default() })
        .unwrap();
    let r = greedy.query_exact("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.table.row_count(), 1);
    greedy.close().unwrap();
}

#[test]
fn active_sessions_gauge_tracks_connects_and_disconnects() {
    let server = server_with(AdmissionConfig::default());
    let mut a = Client::connect(server.connect()).unwrap();
    let b = Client::connect(server.connect()).unwrap();
    let c = Client::connect(server.connect()).unwrap();

    let stats = a.stats(StatsFormat::Prometheus).unwrap();
    assert!(stats.contains("lawsdb_server_active_sessions 3"), "{stats}");
    assert!(stats.contains("lawsdb_server_sessions_total 3"), "{stats}");

    c.close().unwrap();
    b.close().unwrap();
    // Close replies race the server-side unregister; drain briefly.
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.sessions().active() != 1 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    let stats = a.stats(StatsFormat::Prometheus).unwrap();
    assert!(stats.contains("lawsdb_server_active_sessions 1"), "{stats}");
    assert!(stats.contains("lawsdb_server_sessions_total 3"), "{stats}");
    a.close().unwrap();
}

#[test]
fn session_cap_refuses_the_next_connection_with_a_structured_error() {
    let db = Arc::new(LawsDb::new());
    let server = Server::new(
        db,
        ServerConfig { max_sessions: 2, ..ServerConfig::default() },
    );
    let a = Client::connect(server.connect()).unwrap();
    let b = Client::connect(server.connect()).unwrap();
    match Client::connect(server.connect()) {
        Err(ClientError::Server(WireError::SessionLimit { active, max })) => {
            assert_eq!((active, max), (2, 2));
        }
        other => panic!("expected SessionLimit, got {other:?}"),
    }
    a.close().unwrap();
    b.close().unwrap();
}

#[test]
fn queued_query_is_admitted_when_the_slot_frees_and_counts_once() {
    let server = server_with(AdmissionConfig {
        max_concurrent_queries: 1,
        max_queued: 8,
        queue_timeout: Duration::from_secs(30),
        ..AdmissionConfig::default()
    });
    let occupier = occupy_slot(&server, 400);

    // This query queues behind the occupier, then runs.
    let mut waiter = Client::connect(server.connect()).unwrap();
    let r = waiter.query_exact("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.table.row_count(), 1);
    assert!(
        r.queue_us > 0,
        "a queued query must report its wait ({} us)",
        r.queue_us
    );
    occupier.join().unwrap();

    let snap = server.db().metrics().snapshot();
    assert_eq!(snap.counter("lawsdb_server_admitted"), 2);
    assert_eq!(snap.counter("lawsdb_server_queued"), 1);
    assert_eq!(snap.counter("lawsdb_server_rejected"), 0);
    waiter.close().unwrap();
}
