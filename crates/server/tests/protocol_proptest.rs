//! Protocol robustness: the wire codec under friendly and hostile
//! bytes.
//!
//! Three disciplines, all seeded (`LAWSDB_FAULT_SEED=<seed>` is
//! printed; re-running with it set reproduces the exact corpus):
//!
//! 1. **Round-trip identity** — for every frame type, over randomly
//!    generated frames (tables with all four column types, nulls,
//!    unicode strings, every error variant): `decode(encode(f)) == f`.
//! 2. **Decode is total** — random byte blobs, truncated prefixes of
//!    valid frames, and single-bit-flipped valid frames never panic;
//!    every malformed input yields a structured [`ProtocolError`].
//! 3. **Failure scoping** — a malformed frame on one session produces a
//!    structured protocol error and closes *that* session only; a
//!    sibling session on the same server keeps answering queries.

use lawsdb_core::LawsDb;
use lawsdb_obs::{FieldValue, FlightRecord, TraceNode};
use lawsdb_server::protocol::{read_frame, Frame, QueryMode, SessionOptions, StatsFormat};
use lawsdb_server::{Client, ProtocolError, Server, ServerConfig, WireError, WireResult};
use lawsdb_storage::TableBuilder;
use proptest::prelude::*;
use std::sync::Arc;

/// SplitMix64 — the workspace's deterministic generator discipline
/// (`storage::fault` uses the same constants).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

fn seed() -> u64 {
    let s = lawsdb_core::resilience::fault_seed();
    println!("LAWSDB_FAULT_SEED={s}");
    s
}

fn random_string(rng: &mut Rng) -> String {
    const ALPHABET: &[char] = &['a', 'B', '7', '_', ' ', 'δ', 'λ', '→', '\n', '"', '\\'];
    let len = rng.below(12) as usize;
    (0..len).map(|_| ALPHABET[rng.below(ALPHABET.len() as u64) as usize]).collect()
}

/// A finite f64 (NaN breaks `PartialEq` equality, not the codec — the
/// bits themselves round-trip — so the identity corpus avoids it).
fn random_f64(rng: &mut Rng) -> f64 {
    let raw = (rng.next() as i64 % 1_000_000) as f64 / 128.0;
    if rng.chance(10) {
        0.0
    } else {
        raw
    }
}

fn random_options(rng: &mut Rng) -> SessionOptions {
    let opt_u64 = |r: &mut Rng| if r.chance(50) { Some(r.below(1 << 40)) } else { None };
    SessionOptions {
        threads: if rng.chance(50) { Some(rng.below(16) as u32) } else { None },
        morsel_rows: if rng.chance(50) { Some(rng.below(1 << 20) as u32) } else { None },
        pruning: if rng.chance(50) { Some(rng.chance(50)) } else { None },
        deadline_ms: opt_u64(rng),
        memory_bytes: opt_u64(rng),
        max_rows: opt_u64(rng),
    }
}

fn random_table(rng: &mut Rng) -> lawsdb_storage::Table {
    let rows = rng.below(20) as usize;
    let mut b = TableBuilder::new(random_string(rng));
    // Column names must be distinct; prefix with a counter.
    let ncols = 1 + rng.below(4);
    for c in 0..ncols {
        let name = format!("c{c}_{}", random_string(rng).replace(['\n', '"', '\\'], ""));
        match rng.below(4) {
            0 => {
                b.add_i64(&name, (0..rows).map(|_| rng.next() as i64).collect());
            }
            1 => {
                if rng.chance(50) {
                    b.add_f64_opt(
                        &name,
                        (0..rows)
                            .map(|_| if rng.chance(30) { None } else { Some(random_f64(rng)) })
                            .collect(),
                    );
                } else {
                    b.add_f64(&name, (0..rows).map(|_| random_f64(rng)).collect());
                }
            }
            2 => {
                b.add_str(&name, (0..rows).map(|_| random_string(rng)).collect());
            }
            _ => {
                let bits: Vec<bool> = (0..rows).map(|_| rng.chance(50)).collect();
                b.add_bool(&name, &bits);
            }
        }
    }
    b.build().expect("generated table must be valid")
}

fn random_field_value(rng: &mut Rng) -> FieldValue {
    match rng.below(5) {
        0 => FieldValue::U64(rng.next()),
        1 => FieldValue::I64(rng.next() as i64),
        2 => FieldValue::F64(random_f64(rng)),
        3 => FieldValue::Bool(rng.chance(50)),
        _ => FieldValue::Str(random_string(rng)),
    }
}

/// A random trace tree, at most 4 levels deep so the corpus stays
/// well inside `MAX_TRACE_DEPTH` (a separate unit test pins the
/// over-deep refusal).
fn random_trace(rng: &mut Rng, depth: usize) -> TraceNode {
    let nchildren = if depth >= 3 { 0 } else { rng.below(3) };
    TraceNode {
        name: random_string(rng),
        start_us: rng.next(),
        duration_us: if rng.chance(70) { Some(rng.next()) } else { None },
        index: if rng.chance(30) { Some(rng.below(64)) } else { None },
        fields: (0..rng.below(3))
            .map(|_| (random_string(rng), random_field_value(rng)))
            .collect(),
        children: (0..nchildren).map(|_| random_trace(rng, depth + 1)).collect(),
    }
}

fn random_flight_record(rng: &mut Rng) -> FlightRecord {
    FlightRecord {
        query_id: rng.next(),
        sql: random_string(rng),
        mode: random_string(rng),
        total_us: rng.next(),
        error: if rng.chance(30) { Some(random_string(rng)) } else { None },
        layers: (0..rng.below(4)).map(|_| (random_string(rng), rng.next())).collect(),
        dominant_layer: random_string(rng),
        dominant_us: rng.next(),
        trace: if rng.chance(60) { Some(random_trace(rng, 0)) } else { None },
    }
}

fn random_wire_error(rng: &mut Rng) -> WireError {
    match rng.below(6) {
        0 => WireError::Rejected {
            active: rng.next() as u32,
            queued: rng.next() as u32,
            retry_after_ms: rng.next(),
        },
        1 => WireError::QueueTimeout { waited_ms: rng.next(), budget_ms: rng.next() },
        2 => WireError::SessionLimit { active: rng.next() as u32, max: rng.next() as u32 },
        3 => WireError::Query { kind: random_string(rng), detail: random_string(rng) },
        4 => WireError::Protocol { detail: random_string(rng) },
        _ => WireError::Server { detail: random_string(rng) },
    }
}

/// One random frame of each of the 16 wire types, in tag order.
fn frame_corpus(rng: &mut Rng) -> Vec<Frame> {
    vec![
        Frame::Hello { protocol_version: rng.next() as u32, options: random_options(rng) },
        Frame::Query {
            mode: match rng.below(5) {
                0 => QueryMode::Exact,
                1 => QueryMode::Resilient,
                2 => QueryMode::Adaptive,
                3 => QueryMode::Explain,
                _ => QueryMode::Cluster,
            },
            sql: random_string(rng),
            trace: rng.chance(50),
        },
        Frame::SetOptions { options: random_options(rng) },
        Frame::Stats {
            format: if rng.chance(50) { StatsFormat::Prometheus } else { StatsFormat::Json },
        },
        Frame::Cancel { session: rng.next() },
        Frame::Close,
        Frame::SlowLog { n: rng.next() as u32 },
        Frame::HelloAck { session: rng.next(), protocol_version: rng.next() as u32 },
        Frame::ResultSet(Box::new(WireResult {
            table: random_table(rng),
            rows_scanned: rng.next(),
            approximate: rng.chance(50),
            error_bound: if rng.chance(50) { Some(random_f64(rng)) } else { None },
            degraded: (0..rng.below(4)).map(|_| random_string(rng)).collect(),
            service_us: rng.next(),
            queue_us: rng.next(),
            query_id: rng.next(),
            trace: if rng.chance(50) { Some(random_trace(rng, 0)) } else { None },
        })),
        Frame::Error(random_wire_error(rng)),
        Frame::StatsReply { text: random_string(rng) },
        Frame::ExplainReply { text: random_string(rng) },
        Frame::OptionsAck,
        Frame::CancelAck { delivered: rng.chance(50) },
        Frame::Goodbye,
        Frame::SlowLogReply {
            entries: (0..rng.below(3)).map(|_| random_flight_record(rng)).collect(),
        },
    ]
}

#[test]
fn every_frame_type_roundtrips_over_many_seeds() {
    let mut rng = Rng(seed());
    for round in 0..64 {
        for frame in frame_corpus(&mut rng) {
            let payload = frame.encode();
            let decoded = Frame::decode(&payload)
                .unwrap_or_else(|e| panic!("round {round}: {frame:?} failed to decode: {e}"));
            assert_eq!(decoded, frame, "round {round}");
        }
    }
}

/// The frame with its v2 trailing-optional extensions defaulted — what
/// a valid v1 body of the same frame decodes to.
fn strip_v2_extensions(f: &Frame) -> Frame {
    match f {
        Frame::Query { mode, sql, .. } => {
            Frame::Query { mode: *mode, sql: sql.clone(), trace: false }
        }
        Frame::ResultSet(r) => {
            let mut r = r.clone();
            r.query_id = 0;
            r.trace = None;
            Frame::ResultSet(r)
        }
        other => other.clone(),
    }
}

#[test]
fn every_strict_prefix_of_a_valid_frame_is_an_error_or_a_v1_body() {
    // Version compatibility is carried by trailing-optional fields, so
    // one strict prefix of a v2 Query/ResultSet *is* well-formed: the
    // one that ends exactly where a v1 body would. Any prefix that
    // decodes must decode to precisely the extensions-defaulted frame —
    // anything else is a real ambiguity.
    let mut rng = Rng(seed() ^ 0x5EED_0001);
    for frame in frame_corpus(&mut rng) {
        let payload = frame.encode();
        let v1 = strip_v2_extensions(&frame);
        for cut in 0..payload.len() {
            match Frame::decode(&payload[..cut]) {
                Err(_) => {}
                Ok(f) if f == v1 => {}
                Ok(f) => panic!(
                    "prefix {cut}/{} of {frame:?} decoded as {f:?} — the format is ambiguous",
                    payload.len()
                ),
            }
        }
    }
}

#[test]
fn bit_flipped_frames_never_panic() {
    let mut rng = Rng(seed() ^ 0x5EED_0002);
    for _ in 0..16 {
        for frame in frame_corpus(&mut rng) {
            let payload = frame.encode();
            if payload.is_empty() {
                continue;
            }
            for _ in 0..32 {
                let mut corrupted = payload.clone();
                let bit = rng.below((corrupted.len() * 8) as u64) as usize;
                corrupted[bit / 8] ^= 1 << (bit % 8);
                // Either a valid (different or same-typed) frame or a
                // structured error — anything but a panic.
                let _ = Frame::decode(&corrupted);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn decode_of_random_bytes_is_total(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        // No panic, no abort; errors must be structured.
        let _ = Frame::decode(&bytes);
    }

    #[test]
    fn framed_read_of_random_streams_is_total(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let mut stream = &bytes[..];
        // Drain the stream; every iteration either yields a frame,
        // a clean EOF, or a structured transport error.
        for _ in 0..8 {
            match read_frame(&mut stream) {
                Ok(Some(_)) => {}
                Ok(None) | Err(_) => break,
            }
        }
    }
}

fn tiny_server() -> Arc<Server> {
    let db = LawsDb::new();
    let mut b = TableBuilder::new("t");
    b.add_i64("g", vec![1, 2, 3, 4]);
    b.add_f64("v", vec![1.0, 2.0, 3.0, 4.0]);
    db.register_table(b.build().unwrap()).unwrap();
    Server::new(Arc::new(db), ServerConfig::default())
}

#[test]
fn malformed_frame_closes_only_the_offending_session() {
    let server = tiny_server();
    let mut rogue = Client::connect(server.connect()).unwrap();
    let mut sibling = Client::connect(server.connect()).unwrap();

    // The sibling is healthy before the attack.
    let before = sibling.query_exact("SELECT COUNT(*) FROM t").unwrap();

    // The rogue session speaks garbage: an unknown frame tag.
    rogue.send_raw(&[0x7F, 1, 2, 3]).unwrap();
    match rogue.recv().unwrap() {
        Some(Frame::Error(WireError::Protocol { detail })) => {
            assert!(detail.contains("tag"), "unexpected detail: {detail}");
        }
        other => panic!("expected a structured protocol error, got {other:?}"),
    }
    // ... and its session is closed: the stream ends cleanly.
    assert!(rogue.recv().unwrap().is_none(), "rogue session must be closed");

    // The sibling never noticed.
    let after = sibling.query_exact("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(before.table, after.table);
    let stats = sibling.stats(StatsFormat::Prometheus).unwrap();
    assert!(
        stats.contains("lawsdb_server_protocol_errors 1"),
        "exactly one protocol error must be counted:\n{stats}"
    );
    sibling.close().unwrap();
}

#[test]
fn truncated_stream_mid_frame_is_a_structured_close() {
    use std::io::Write;
    let server = tiny_server();
    let mut stream = server.connect();
    lawsdb_server::write_frame(
        &mut stream,
        &Frame::Hello { protocol_version: lawsdb_server::PROTOCOL_VERSION, options: SessionOptions::default() },
    )
    .unwrap();
    assert!(matches!(read_frame(&mut stream).unwrap(), Some(Frame::HelloAck { .. })));
    // Promise 100 payload bytes, deliver 4, then hang up: the server
    // sees EOF mid-frame. It must tear this session down without
    // hanging or panicking, and siblings must not notice.
    stream.write_all(&100u32.to_le_bytes()).unwrap();
    stream.write_all(&[1, 2, 3, 4]).unwrap();
    drop(stream);
    let mut sibling = Client::connect(server.connect()).unwrap();
    let r = sibling.query_exact("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.table.row_count(), 1);
    sibling.close().unwrap();
}

#[test]
fn version_mismatch_is_refused_with_a_structured_error() {
    let server = tiny_server();
    let mut stream = server.connect();
    lawsdb_server::write_frame(
        &mut stream,
        &Frame::Hello { protocol_version: 999, options: SessionOptions::default() },
    )
    .unwrap();
    match read_frame(&mut stream).unwrap() {
        Some(Frame::Error(WireError::Protocol { detail })) => {
            assert!(detail.contains("version"), "{detail}");
        }
        other => panic!("expected version refusal, got {other:?}"),
    }
}

#[test]
fn v1_client_negotiates_and_queries_without_trace_fields() {
    // A v1-era client: speaks Hello with version 1, sends Query bodies
    // without the trailing trace flag, and expects v1 result bodies
    // (no query_id / trace extension). The server must negotiate down
    // and keep the whole exchange working.
    let server = tiny_server();
    let mut stream = server.connect();
    lawsdb_server::write_frame(
        &mut stream,
        &Frame::Hello { protocol_version: 1, options: SessionOptions::default() },
    )
    .unwrap();
    match read_frame(&mut stream).unwrap() {
        Some(Frame::HelloAck { protocol_version, .. }) => assert_eq!(protocol_version, 1),
        other => panic!("expected HelloAck, got {other:?}"),
    }
    // Hand-built v1 Query body: tag, mode, sql — and no trace byte.
    let sql = b"SELECT COUNT(*) FROM t";
    let mut body = vec![0x02u8, 0u8];
    body.extend_from_slice(&(sql.len() as u32).to_le_bytes());
    body.extend_from_slice(sql);
    use std::io::Write;
    stream.write_all(&(body.len() as u32).to_le_bytes()).unwrap();
    stream.write_all(&body).unwrap();
    match read_frame(&mut stream).unwrap() {
        Some(Frame::ResultSet(r)) => {
            assert_eq!(r.table.row_count(), 1);
            // The v1 body carries no trace extension; the decoder
            // defaults both fields.
            assert_eq!(r.query_id, 0);
            assert!(r.trace.is_none());
        }
        other => panic!("expected ResultSet, got {other:?}"),
    }
}

#[test]
fn protocol_error_display_is_stable() {
    let e = ProtocolError::Truncated { needed: 8, available: 3 };
    assert_eq!(e.to_string(), "truncated frame: needed 8 bytes, 3 available");
}
