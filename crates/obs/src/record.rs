//! Slow-query flight recorder: owned trace trees, per-layer tail
//! attribution, and a bounded ring of the worst queries a server has
//! served.
//!
//! [`QueryProfile`] trees borrow `&'static str` names from
//! instrumentation sites, which cannot cross a process boundary. A
//! [`TraceNode`] is the owned mirror that survives the wire: it
//! round-trips through the protocol codec and renders byte-identically
//! to the profile it was built from, so a client-side trace is
//! indistinguishable from the server-side original.
//!
//! [`attribute_layers`] folds a trace into per-layer totals (queue,
//! decode, fetch, execute, gather, merge, encode) by summing the
//! top-most span mapped to each layer — children of an attributed span
//! are already inside its duration and are not double-counted. The
//! layer with the largest total is the *dominant* layer: the first
//! place an operator should look when a query lands in the slowlog.
//!
//! The [`FlightRecorder`] keeps complete [`FlightRecord`]s in a bounded
//! ring (`capacity × record size` memory bound); admission is by total
//! latency threshold, with errors always admitted when configured.
//! See DESIGN.md §17.

use crate::profile::{ProfileTreeNode, QueryProfile};
use crate::trace::FieldValue;
use std::collections::VecDeque;
use std::sync::{Mutex, PoisonError};

/// One node of an owned, wire-transportable trace tree. Field-for-field
/// mirror of [`ProfileTreeNode`] with owned strings.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceNode {
    /// Span/point name from the dotted taxonomy (DESIGN.md §17).
    pub name: String,
    /// Microseconds on the collector clock when this node started.
    pub start_us: u64,
    /// Span length; `None` for points.
    pub duration_us: Option<u64>,
    /// Explicit sibling ordering key (morsel offset), if any.
    pub index: Option<u64>,
    /// Typed key/value payload.
    pub fields: Vec<(String, FieldValue)>,
    /// Children, in the profile's deterministic order.
    pub children: Vec<TraceNode>,
}

impl From<&ProfileTreeNode> for TraceNode {
    fn from(n: &ProfileTreeNode) -> TraceNode {
        TraceNode {
            name: n.name.to_string(),
            start_us: n.start_us,
            duration_us: n.duration_us,
            index: n.index,
            fields: n
                .fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
            children: n.children.iter().map(TraceNode::from).collect(),
        }
    }
}

impl From<&QueryProfile> for TraceNode {
    fn from(p: &QueryProfile) -> TraceNode {
        TraceNode::from(&p.root)
    }
}

impl TraceNode {
    /// Look up a field by key.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Every node in this subtree (preorder) named `name`.
    pub fn find<'a>(&'a self, name: &str) -> Vec<&'a TraceNode> {
        let mut out = Vec::new();
        self.collect(name, &mut out);
        out
    }

    fn collect<'a>(&'a self, name: &str, out: &mut Vec<&'a TraceNode>) {
        if self.name == name {
            out.push(self);
        }
        for c in &self.children {
            c.collect(name, out);
        }
    }

    /// The rendered tree — byte-identical to
    /// [`QueryProfile::render`] on the profile this node was built from.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into("", true, true, &mut out);
        out
    }

    fn render_into(&self, prefix: &str, is_last: bool, is_root: bool, out: &mut String) {
        if is_root {
            out.push_str(&self.name);
        } else {
            out.push_str(prefix);
            out.push_str(if is_last { "└─ " } else { "├─ " });
            out.push_str(&self.name);
        }
        if let Some(i) = self.index {
            out.push_str(&format!(" #{i}"));
        }
        if let Some(d) = self.duration_us {
            out.push_str(&format!(" ({d} us)"));
        }
        for (k, v) in &self.fields {
            out.push_str(&format!(" {k}={v}"));
        }
        out.push('\n');
        let child_prefix = if is_root {
            String::new()
        } else {
            format!("{prefix}{}", if is_last { "   " } else { "│  " })
        };
        let n = self.children.len();
        for (i, c) in self.children.iter().enumerate() {
            c.render_into(&child_prefix, i + 1 == n, false, out);
        }
    }
}

impl std::fmt::Display for TraceNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Canonical layer order for attribution output and dominant-layer
/// tie-breaks: the order a query moves through the stack.
pub const LAYERS: [&str; 7] =
    ["queue", "decode", "fetch", "execute", "gather", "merge", "encode"];

/// The attribution layer a span name belongs to, if any. `plan.*` spans
/// are engine-local execution (the single-node path); cluster spans map
/// to their scatter-gather phase.
fn layer_of(name: &str) -> Option<&'static str> {
    match name {
        "server.admission" => Some("queue"),
        "server.decode" => Some("decode"),
        "server.encode" => Some("encode"),
        "cluster.fetch" => Some("fetch"),
        "cluster.execute" => Some("execute"),
        "cluster.gather" => Some("gather"),
        "cluster.merge" => Some("merge"),
        n if n.starts_with("plan.") => Some("execute"),
        _ => None,
    }
}

/// Fold a trace into per-layer microsecond totals, in canonical
/// [`LAYERS`] order, omitting layers with no attributed span. An
/// attributed span's subtree is not descended — its children are
/// already inside its duration.
pub fn attribute_layers(trace: &TraceNode) -> Vec<(String, u64)> {
    fn walk(n: &TraceNode, totals: &mut [u64; LAYERS.len()], at_root: bool) {
        // The root's own name ("query") never attributes; only descend.
        if !at_root {
            if let Some(layer) = layer_of(&n.name) {
                if let Some(slot) = LAYERS.iter().position(|l| *l == layer) {
                    totals[slot] += n.duration_us.unwrap_or(0);
                    return;
                }
            }
        }
        for c in &n.children {
            walk(c, totals, false);
        }
    }
    let mut totals = [0u64; LAYERS.len()];
    walk(trace, &mut totals, true);
    LAYERS
        .iter()
        .zip(totals)
        .filter(|(_, us)| *us > 0)
        .map(|(l, us)| (l.to_string(), us))
        .collect()
}

/// The layer with the largest attributed total (ties break toward the
/// earlier canonical layer). `("none", 0)` for an unattributed trace.
pub fn dominant_layer(layers: &[(String, u64)]) -> (String, u64) {
    let mut best: Option<&(String, u64)> = None;
    for l in layers {
        // `layers` is in canonical order, so strict `>` keeps the
        // earliest layer on ties.
        if best.map(|b| l.1 > b.1).unwrap_or(true) {
            best = Some(l);
        }
    }
    best.cloned().unwrap_or_else(|| ("none".to_string(), 0))
}

/// One complete slow-query record: identity, outcome, the per-layer
/// attribution, and the full trace tree.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightRecord {
    /// Server-minted query id (also stamped on the wire result).
    pub query_id: u64,
    /// The query text as received.
    pub sql: String,
    /// Execution mode label (`"exact"`, `"cluster"`, ...).
    pub mode: String,
    /// Whole-query duration (the trace root's span length).
    pub total_us: u64,
    /// Structured error text when the query failed.
    pub error: Option<String>,
    /// Per-layer attributed microseconds, canonical order.
    pub layers: Vec<(String, u64)>,
    /// The layer that dominated `total_us`.
    pub dominant_layer: String,
    /// Microseconds attributed to the dominant layer.
    pub dominant_us: u64,
    /// The complete trace tree.
    pub trace: Option<TraceNode>,
}

impl FlightRecord {
    /// Build a record from a finished trace, computing the total from
    /// the root span and the layer attribution from the tree.
    pub fn from_trace(
        query_id: u64,
        sql: impl Into<String>,
        mode: impl Into<String>,
        error: Option<String>,
        trace: TraceNode,
    ) -> FlightRecord {
        let total_us = trace.duration_us.unwrap_or(0);
        let layers = attribute_layers(&trace);
        let (dominant_layer, dominant_us) = dominant_layer(&layers);
        FlightRecord {
            query_id,
            sql: sql.into(),
            mode: mode.into(),
            total_us,
            error,
            layers,
            dominant_layer,
            dominant_us,
            trace: Some(trace),
        }
    }
}

/// Admission policy and memory bound for a [`FlightRecorder`].
#[derive(Debug, Clone)]
pub struct RecorderConfig {
    /// Ring size; 0 disables recording entirely.
    pub capacity: usize,
    /// Minimum `total_us` for admission (0 records every query).
    pub min_total_us: u64,
    /// Admit failed queries regardless of latency.
    pub record_errors: bool,
}

impl Default for RecorderConfig {
    fn default() -> RecorderConfig {
        RecorderConfig { capacity: 64, min_total_us: 0, record_errors: true }
    }
}

/// A bounded ring of the most recent admitted [`FlightRecord`]s.
/// Memory is bounded by `capacity` complete traces; eviction is FIFO so
/// the ring always holds the *latest* slow queries, while
/// [`worst`](FlightRecorder::worst) ranks them by latency on read.
#[derive(Debug)]
pub struct FlightRecorder {
    cfg: RecorderConfig,
    ring: Mutex<VecDeque<FlightRecord>>,
}

impl FlightRecorder {
    /// A recorder with the given admission policy.
    pub fn new(cfg: RecorderConfig) -> FlightRecorder {
        FlightRecorder { ring: Mutex::new(VecDeque::new()), cfg }
    }

    /// The admission policy.
    pub fn config(&self) -> &RecorderConfig {
        &self.cfg
    }

    /// Whether recording is on at all (capacity > 0). Sessions skip
    /// profile collection entirely when the recorder is disabled and
    /// the client did not ask for a trace.
    pub fn enabled(&self) -> bool {
        self.cfg.capacity > 0
    }

    fn ring(&self) -> std::sync::MutexGuard<'_, VecDeque<FlightRecord>> {
        self.ring.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Offer a record; returns whether the policy admitted it.
    pub fn observe(&self, rec: FlightRecord) -> bool {
        if !self.enabled() {
            return false;
        }
        let admit = (rec.error.is_some() && self.cfg.record_errors)
            || rec.total_us >= self.cfg.min_total_us;
        if !admit {
            return false;
        }
        let mut ring = self.ring();
        while ring.len() >= self.cfg.capacity {
            ring.pop_front();
        }
        ring.push_back(rec);
        true
    }

    /// The `n` worst recorded queries, slowest first (ties by query id
    /// for a deterministic listing).
    pub fn worst(&self, n: usize) -> Vec<FlightRecord> {
        let mut all: Vec<FlightRecord> = self.ring().iter().cloned().collect();
        all.sort_by_key(|r| (std::cmp::Reverse(r.total_us), r.query_id));
        all.truncate(n);
        all
    }

    /// Records currently held.
    pub fn len(&self) -> usize {
        self.ring().len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.ring().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::MockClock;
    use crate::profile::ProfileCollector;
    use std::sync::Arc;

    fn sample_profile() -> QueryProfile {
        let col = ProfileCollector::with_clock(Arc::new(MockClock::new(7)));
        let ctx = col.context();
        {
            let mut adm = ctx.span("server.admission");
            adm.field("queued", false);
        }
        {
            let exec = ctx.span("plan.filter");
            exec.child().leaf("morsel", 0, crate::fields![rows = 3u64]);
        }
        ctx.point("resilient.degrade", crate::fields![reason = "drift"]);
        col.build("query")
    }

    #[test]
    fn trace_node_renders_byte_identical_to_the_profile() {
        let p = sample_profile();
        let t = TraceNode::from(&p);
        assert_eq!(t.render(), p.render());
        assert_eq!(t.to_string(), p.to_string());
    }

    #[test]
    fn trace_node_find_and_field_mirror_the_profile() {
        let p = sample_profile();
        let t = TraceNode::from(&p);
        assert_eq!(t.find("morsel").len(), 1);
        assert_eq!(
            t.find("morsel")[0].field("rows").and_then(FieldValue::as_u64),
            Some(3)
        );
        assert_eq!(t.find("server.admission").len(), 1);
        assert!(t.find("no.such.span").is_empty());
    }

    #[test]
    fn attribution_sums_top_spans_without_double_counting() {
        let mk = |name: &str, dur: u64, children: Vec<TraceNode>| TraceNode {
            name: name.to_string(),
            start_us: 0,
            duration_us: Some(dur),
            index: None,
            fields: Vec::new(),
            children,
        };
        // cluster.execute contains plan.* children — only the outer
        // span's 100us counts toward "execute".
        let trace = mk(
            "query",
            200,
            vec![
                mk("server.admission", 30, vec![]),
                mk("cluster.shard", 150, vec![
                    mk("cluster.fetch", 40, vec![]),
                    mk("cluster.execute", 100, vec![mk("plan.scan", 90, vec![])]),
                ]),
                mk("cluster.merge", 10, vec![]),
            ],
        );
        let layers = attribute_layers(&trace);
        assert_eq!(
            layers,
            vec![
                ("queue".to_string(), 30),
                ("fetch".to_string(), 40),
                ("execute".to_string(), 100),
                ("merge".to_string(), 10),
            ]
        );
        let (dom, us) = dominant_layer(&layers);
        assert_eq!((dom.as_str(), us), ("execute", 100));
    }

    #[test]
    fn dominant_layer_ties_break_toward_the_earlier_layer() {
        let layers =
            vec![("fetch".to_string(), 50), ("gather".to_string(), 50)];
        assert_eq!(dominant_layer(&layers).0, "fetch");
        assert_eq!(dominant_layer(&[]).0, "none");
    }

    #[test]
    fn recorder_ring_is_bounded_and_worst_is_sorted() {
        let rec = FlightRecorder::new(RecorderConfig {
            capacity: 3,
            ..RecorderConfig::default()
        });
        for (id, us) in [(1u64, 50u64), (2, 500), (3, 5), (4, 300)] {
            let mut t = TraceNode::from(&sample_profile());
            t.duration_us = Some(us);
            assert!(rec.observe(FlightRecord::from_trace(id, "SELECT 1", "exact", None, t)));
        }
        // FIFO eviction dropped id 1; worst() ranks the survivors.
        assert_eq!(rec.len(), 3);
        let worst = rec.worst(2);
        assert_eq!(
            worst.iter().map(|r| r.query_id).collect::<Vec<_>>(),
            vec![2, 4]
        );
        assert_eq!(worst[0].total_us, 500);
    }

    #[test]
    fn recorder_threshold_admits_errors_and_slow_queries_only() {
        let rec = FlightRecorder::new(RecorderConfig {
            capacity: 8,
            min_total_us: 100,
            record_errors: true,
        });
        let mut fast = TraceNode::from(&sample_profile());
        fast.duration_us = Some(10);
        let mut slow = fast.clone();
        slow.duration_us = Some(100);
        assert!(!rec.observe(FlightRecord::from_trace(1, "q", "exact", None, fast.clone())));
        assert!(rec.observe(FlightRecord::from_trace(2, "q", "exact", None, slow)));
        assert!(rec.observe(FlightRecord::from_trace(
            3,
            "q",
            "exact",
            Some("boom".to_string()),
            fast
        )));
        assert_eq!(rec.len(), 2);
    }

    #[test]
    fn zero_capacity_disables_recording() {
        let rec = FlightRecorder::new(RecorderConfig {
            capacity: 0,
            ..RecorderConfig::default()
        });
        assert!(!rec.enabled());
        let t = TraceNode::from(&sample_profile());
        assert!(!rec.observe(FlightRecord::from_trace(1, "q", "exact", None, t)));
        assert!(rec.is_empty());
    }
}
