//! Structured tracing: spans and events over a ring-buffer sink.
//!
//! The process-wide [`Tracer`] is disabled until a subscriber is
//! installed; every emit site pays exactly one relaxed atomic load on
//! the disabled path — the same zero-cost-when-off discipline as
//! `Governor::arm` returning `None` for unbudgeted queries. Field
//! construction is behind a closure, so a disabled emit allocates
//! nothing.
//!
//! Events land in a fixed-capacity [`RingBufferSink`] with a
//! monotonically increasing sequence number, so readers can take a
//! cursor, run some work, and fetch exactly the events that happened in
//! between (`events_since`) — this is how per-query profiles absorb
//! storage-layer retry and quarantine events emitted far below the
//! executor.

use crate::clock::{Clock, MonotonicClock};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};

/// A typed event/span field value.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer (counts, sizes, ids).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (R², residuals, ratios).
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Free-form text (reasons, modes, names).
    Str(String),
}

impl std::fmt::Display for FieldValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
        }
    }
}

impl FieldValue {
    /// The value as u64 when it is one (tests and gates).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            FieldValue::U64(v) => Some(*v),
            FieldValue::I64(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as text when it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            FieldValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<i32> for FieldValue {
    fn from(v: i32) -> Self {
        FieldValue::I64(i64::from(v))
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// One structured event. `seq` is assigned by the sink and strictly
/// increases across the process lifetime of an installed subscriber.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Dotted taxonomy name, e.g. `storage.retry.attempt`.
    pub name: &'static str,
    /// Sink-assigned sequence number.
    pub seq: u64,
    /// Microseconds on the subscriber's clock.
    pub timestamp_us: u64,
    /// Typed key/value payload.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl Event {
    /// Look up a field by key.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

struct Ring {
    buf: VecDeque<Event>,
    next_seq: u64,
    dropped: u64,
}

/// Thread-safe fixed-capacity event sink: the oldest events are dropped
/// (and counted) when the buffer is full.
pub struct RingBufferSink {
    cap: usize,
    inner: Mutex<Ring>,
}

impl std::fmt::Debug for RingBufferSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let r = self.ring();
        f.debug_struct("RingBufferSink")
            .field("cap", &self.cap)
            .field("len", &r.buf.len())
            .field("next_seq", &r.next_seq)
            .field("dropped", &r.dropped)
            .finish()
    }
}

impl RingBufferSink {
    /// A sink holding the most recent `capacity` events (min 1).
    pub fn new(capacity: usize) -> Arc<RingBufferSink> {
        Arc::new(RingBufferSink {
            cap: capacity.max(1),
            inner: Mutex::new(Ring { buf: VecDeque::new(), next_seq: 0, dropped: 0 }),
        })
    }

    fn ring(&self) -> std::sync::MutexGuard<'_, Ring> {
        // A panicking recorder cannot corrupt a push-only ring; keep
        // serving events rather than poisoning the whole subscriber.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Append one event, assigning its sequence number.
    pub fn record(
        &self,
        name: &'static str,
        timestamp_us: u64,
        fields: Vec<(&'static str, FieldValue)>,
    ) {
        let mut r = self.ring();
        let seq = r.next_seq;
        r.next_seq += 1;
        if r.buf.len() == self.cap {
            r.buf.pop_front();
            r.dropped += 1;
        }
        r.buf.push_back(Event { name, seq, timestamp_us, fields });
    }

    /// The sequence number the *next* event will get; use as a cursor
    /// for [`RingBufferSink::events_since`].
    pub fn cursor(&self) -> u64 {
        self.ring().next_seq
    }

    /// Events with `seq >= cursor` still held by the ring, oldest first.
    pub fn events_since(&self, cursor: u64) -> Vec<Event> {
        self.ring().buf.iter().filter(|e| e.seq >= cursor).cloned().collect()
    }

    /// Remove and return everything currently buffered.
    pub fn drain(&self) -> Vec<Event> {
        self.ring().buf.drain(..).collect()
    }

    /// Copy of everything currently buffered.
    pub fn snapshot(&self) -> Vec<Event> {
        self.ring().buf.iter().cloned().collect()
    }

    /// Events evicted by capacity pressure so far.
    pub fn dropped(&self) -> u64 {
        self.ring().dropped
    }

    /// Buffered event count.
    pub fn len(&self) -> usize {
        self.ring().buf.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

struct Installed {
    sink: Arc<RingBufferSink>,
    clock: Arc<dyn Clock>,
}

/// The process-wide event tracer. All emit sites go through
/// [`tracer()`]; with no subscriber installed, [`Tracer::emit`] is a
/// single relaxed atomic load and an immediate return.
pub struct Tracer {
    enabled: AtomicBool,
    inner: RwLock<Option<Installed>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer").field("enabled", &self.is_enabled()).finish()
    }
}

impl Tracer {
    /// A disabled tracer (const, so it can be a `static`).
    pub const fn new() -> Tracer {
        Tracer { enabled: AtomicBool::new(false), inner: RwLock::new(None) }
    }

    fn installed(&self) -> std::sync::RwLockReadGuard<'_, Option<Installed>> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// The disabled-path check every emit site pays: one relaxed load.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Install a subscriber: events flow to `sink`, stamped by `clock`.
    pub fn install(&self, sink: Arc<RingBufferSink>, clock: Arc<dyn Clock>) {
        *self.inner.write().unwrap_or_else(PoisonError::into_inner) =
            Some(Installed { sink, clock });
        self.enabled.store(true, Ordering::Release);
    }

    /// Install a fresh ring-buffer subscriber on the wall clock and
    /// return it.
    pub fn install_ring(&self, capacity: usize) -> Arc<RingBufferSink> {
        let sink = RingBufferSink::new(capacity);
        self.install(Arc::clone(&sink), Arc::new(MonotonicClock::new()));
        sink
    }

    /// Remove the subscriber; emit sites go back to the single-load
    /// disabled path.
    pub fn uninstall(&self) {
        self.enabled.store(false, Ordering::Release);
        *self.inner.write().unwrap_or_else(PoisonError::into_inner) = None;
    }

    /// Emit one event. `fields` is only invoked when a subscriber is
    /// installed, so the disabled path allocates nothing.
    #[inline]
    pub fn emit(
        &self,
        name: &'static str,
        fields: impl FnOnce() -> Vec<(&'static str, FieldValue)>,
    ) {
        if !self.is_enabled() {
            return;
        }
        self.emit_now(name, fields());
    }

    fn emit_now(&self, name: &'static str, fields: Vec<(&'static str, FieldValue)>) {
        if let Some(ins) = self.installed().as_ref() {
            ins.sink.record(name, ins.clock.now_micros(), fields);
        }
    }

    /// The installed ring, if any.
    pub fn ring(&self) -> Option<Arc<RingBufferSink>> {
        self.installed().as_ref().map(|i| Arc::clone(&i.sink))
    }

    /// Cursor into the installed ring (0 when disabled).
    pub fn cursor(&self) -> u64 {
        self.installed().as_ref().map_or(0, |i| i.sink.cursor())
    }

    /// Events recorded since `cursor` (empty when disabled).
    pub fn events_since(&self, cursor: u64) -> Vec<Event> {
        self.installed().as_ref().map_or_else(Vec::new, |i| i.sink.events_since(cursor))
    }

    /// Open a span: an RAII guard that emits one event carrying a
    /// `duration_us` field when dropped. Inert (no clock read, no
    /// allocation) when disabled at open time.
    #[inline]
    pub fn span(
        &'static self,
        name: &'static str,
        fields: impl FnOnce() -> Vec<(&'static str, FieldValue)>,
    ) -> SpanGuard {
        if !self.is_enabled() {
            return SpanGuard { tracer: self, name, start_us: 0, fields: Vec::new(), active: false };
        }
        let start_us =
            self.installed().as_ref().map_or(0, |i| i.clock.now_micros());
        SpanGuard { tracer: self, name, start_us, fields: fields(), active: true }
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

/// RAII span handle from [`Tracer::span`]; emits on drop.
#[derive(Debug)]
pub struct SpanGuard {
    tracer: &'static Tracer,
    name: &'static str,
    start_us: u64,
    fields: Vec<(&'static str, FieldValue)>,
    active: bool,
}

impl SpanGuard {
    /// Attach an outcome field before the span closes.
    pub fn field(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        if self.active {
            self.fields.push((key, value.into()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let mut fields = std::mem::take(&mut self.fields);
        if let Some(ins) = self.tracer.installed().as_ref() {
            let end = ins.clock.now_micros();
            fields.push(("duration_us", FieldValue::U64(end.saturating_sub(self.start_us))));
            ins.sink.record(self.name, end, fields);
        }
    }
}

static GLOBAL: Tracer = Tracer::new();

/// The process-wide tracer every emit site reports through.
pub fn tracer() -> &'static Tracer {
    &GLOBAL
}

/// Emit a structured event through the global tracer.
///
/// `event!("storage.retry.attempt", page = id, attempt)` — a bare
/// identifier uses the variable as both key and value. Zero cost when
/// no subscriber is installed.
#[macro_export]
macro_rules! event {
    ($name:expr $(,)?) => {
        $crate::trace::tracer().emit($name, ::std::vec::Vec::new)
    };
    ($name:expr, $($key:ident $(= $val:expr)?),+ $(,)?) => {
        $crate::trace::tracer().emit($name, || ::std::vec![
            $((
                stringify!($key),
                $crate::trace::FieldValue::from($crate::__field_value!($key $(= $val)?)),
            )),+
        ])
    };
}

/// Open a span on the global tracer: `let _s = span!("scan", table, pages);`
/// emits one `scan` event with a `duration_us` field when the guard
/// drops.
#[macro_export]
macro_rules! span {
    ($name:expr $(,)?) => {
        $crate::trace::tracer().span($name, ::std::vec::Vec::new)
    };
    ($name:expr, $($key:ident $(= $val:expr)?),+ $(,)?) => {
        $crate::trace::tracer().span($name, || ::std::vec![
            $((
                stringify!($key),
                $crate::trace::FieldValue::from($crate::__field_value!($key $(= $val)?)),
            )),+
        ])
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __field_value {
    ($key:ident) => {
        $key
    };
    ($key:ident = $val:expr) => {
        $val
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::MockClock;

    /// Tests share the global tracer; serialize the ones that install.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_tracer_emits_nothing_and_never_calls_fields() {
        let _g = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        tracer().uninstall();
        let mut called = false;
        tracer().emit("x", || {
            called = true;
            Vec::new()
        });
        assert!(!called, "disabled emit must not build fields");
        assert_eq!(tracer().cursor(), 0);
    }

    #[test]
    fn events_round_trip_with_fields_and_sequence() {
        let _g = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let sink = RingBufferSink::new(16);
        tracer().install(Arc::clone(&sink), Arc::new(MockClock::new(5)));
        crate::event!("a", n = 1u64);
        crate::event!("b", ok = true, why = "because");
        tracer().uninstall();
        let evs = sink.drain();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].name, "a");
        assert_eq!(evs[0].timestamp_us, 0);
        assert_eq!(evs[0].field("n"), Some(&FieldValue::U64(1)));
        assert_eq!(evs[1].seq, evs[0].seq + 1);
        assert_eq!(evs[1].field("why").and_then(FieldValue::as_str), Some("because"));
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let sink = RingBufferSink::new(2);
        sink.record("a", 0, Vec::new());
        sink.record("b", 1, Vec::new());
        sink.record("c", 2, Vec::new());
        assert_eq!(sink.dropped(), 1);
        let names: Vec<&str> = sink.snapshot().iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["b", "c"]);
    }

    #[test]
    fn cursor_windows_select_only_newer_events() {
        let sink = RingBufferSink::new(16);
        sink.record("old", 0, Vec::new());
        let cur = sink.cursor();
        sink.record("new", 1, Vec::new());
        let evs = sink.events_since(cur);
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].name, "new");
    }

    #[test]
    fn span_emits_duration_on_drop() {
        let _g = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let sink = RingBufferSink::new(16);
        tracer().install(Arc::clone(&sink), Arc::new(MockClock::new(7)));
        {
            let mut s = crate::span!("work", items = 3u64);
            s.field("outcome", "ok");
        }
        tracer().uninstall();
        let evs = sink.drain();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].name, "work");
        // MockClock step 7: start read 0, end read 7.
        assert_eq!(evs[0].field("duration_us"), Some(&FieldValue::U64(7)));
        assert_eq!(evs[0].field("outcome").and_then(FieldValue::as_str), Some("ok"));
    }

    #[test]
    fn bare_identifier_field_shorthand() {
        let _g = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let sink = RingBufferSink::new(4);
        tracer().install(Arc::clone(&sink), Arc::new(MockClock::new(1)));
        let pages = 9usize;
        crate::event!("scan", pages);
        tracer().uninstall();
        assert_eq!(sink.drain()[0].field("pages"), Some(&FieldValue::U64(9)));
    }
}
