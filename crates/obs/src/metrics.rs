//! Hand-rolled metrics registry: named counters, gauges and log-scale
//! histograms with Prometheus-text and JSON exposition.
//!
//! Counters are striped across cache-line-aligned atomics so hot-path
//! increments from many workers do not bounce one line; reads sum the
//! stripes. Histograms use fixed power-of-two buckets (bucket *i* holds
//! values whose bit length is *i*), which is exact enough for latency
//! distributions and needs no configuration. Metric names follow
//! `lawsdb_<crate>_<name>` (see DESIGN.md §12).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError, RwLock};

/// Stripes per counter; increments pick one by thread, reads sum all.
pub const COUNTER_STRIPES: usize = 8;

/// One cache line per stripe so concurrent incrementers don't false-share.
#[repr(align(64))]
#[derive(Default)]
struct Stripe(AtomicU64);

static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Round-robin stripe assignment, fixed per thread for its lifetime.
    static STRIPE: usize = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) % COUNTER_STRIPES;
}

#[inline]
fn stripe_index() -> usize {
    STRIPE.with(|s| *s)
}

/// A monotonically increasing counter (sharded atomics).
#[derive(Default)]
pub struct Counter {
    stripes: [Stripe; COUNTER_STRIPES],
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.stripes[stripe_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total (sums the stripes).
    pub fn get(&self) -> u64 {
        self.stripes.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Counter({})", self.get())
    }
}

/// A settable signed value.
#[derive(Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Set the value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Add (possibly negative) `delta`.
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Gauge({})", self.get())
    }
}

/// Fixed log-scale histogram buckets: bucket `i` covers values with bit
/// length `i` (`[2^(i-1), 2^i)`), bucket 0 holds exactly 0, the last
/// bucket absorbs everything huge.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A log-scale histogram for latency-like u64 samples.
///
/// Observations recorded through
/// [`observe_with_exemplar`](Histogram::observe_with_exemplar) also
/// keep one *exemplar* per bucket — the query id of the worst sample
/// that landed there since the last snapshot — so a latency spike in
/// `/stats` links directly to a flight-recorder trace.
#[derive(Default)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    /// bucket → (worst value, query id); drained by `snapshot`.
    exemplars: Mutex<BTreeMap<usize, (u64, u64)>>,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Bucket index for a value: its bit length, clamped.
    pub fn bucket_index(value: u64) -> usize {
        (64 - value.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// Inclusive upper bound of bucket `i` (`u64::MAX` for the last).
    pub fn bucket_upper_bound(i: usize) -> u64 {
        if i >= HISTOGRAM_BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Record one sample.
    #[inline]
    pub fn observe(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Record one sample carrying a query id; the max-valued sample per
    /// bucket is kept as that bucket's exemplar until the next
    /// snapshot drains it (per-snapshot-window attribution).
    pub fn observe_with_exemplar(&self, value: u64, query_id: u64) {
        self.observe(value);
        let bucket = Self::bucket_index(value);
        let mut ex = self.exemplars.lock().unwrap_or_else(PoisonError::into_inner);
        let slot = ex.entry(bucket).or_insert((value, query_id));
        if value >= slot.0 {
            *slot = (value, query_id);
        }
    }

    /// Total samples (sums the buckets, so it never disagrees with them).
    pub fn get(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Point-in-time copy. Draining the exemplar map here starts a
    /// fresh attribution window, so each snapshot reports the worst
    /// query id per bucket *since the previous snapshot*.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> =
            self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let count = buckets.iter().sum();
        let exemplars = std::mem::take(
            &mut *self.exemplars.lock().unwrap_or_else(PoisonError::into_inner),
        )
        .into_iter()
        .map(|(bucket, (value, query_id))| (bucket, value, query_id))
        .collect();
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            exemplars,
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Histogram(count={})", self.get())
    }
}

/// Point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts ([`HISTOGRAM_BUCKETS`] entries).
    pub buckets: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// `(bucket, worst value, query id)` exemplars recorded since the
    /// previous snapshot (empty for histograms never observed with an
    /// exemplar).
    pub exemplars: Vec<(usize, u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean sample value (NaN when empty).
    pub fn mean(&self) -> f64 {
        self.sum as f64 / self.count as f64
    }

    /// Upper bound of the bucket containing the `q`-quantile sample
    /// (0 when empty). A coarse estimate — exact within a factor of 2.
    pub fn quantile_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target.max(1) {
                return Histogram::bucket_upper_bound(i);
            }
        }
        Histogram::bucket_upper_bound(HISTOGRAM_BUCKETS - 1)
    }
}

/// A named registry of counters, gauges and histograms. Metric handles
/// are `Arc`s: look up once, increment forever with no lock.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

fn get_or_insert<T: Default>(
    map: &RwLock<BTreeMap<String, Arc<T>>>,
    name: &str,
) -> Arc<T> {
    if let Some(m) = map.read().unwrap_or_else(PoisonError::into_inner).get(name) {
        return Arc::clone(m);
    }
    Arc::clone(
        map.write()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(name.to_string())
            .or_default(),
    )
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The counter named `name`, registering it on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_insert(&self.counters, name)
    }

    /// The gauge named `name`, registering it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_insert(&self.gauges, name)
    }

    /// The histogram named `name`, registering it on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_insert(&self.histograms, name)
    }

    /// Point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: self
                .counters
                .read()
                .unwrap_or_else(PoisonError::into_inner)
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .unwrap_or_else(PoisonError::into_inner)
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .unwrap_or_else(PoisonError::into_inner)
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// The process-wide registry the storage layer reports into (it has no
/// engine handle); engines own their own [`MetricsRegistry`] as well.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// Point-in-time copy of a [`MetricsRegistry`], already sorted by name.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RegistrySnapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl RegistrySnapshot {
    /// Counter total by name (0 when never registered).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value by name (0 when never registered).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Histogram snapshot by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Prometheus text exposition format. Histogram buckets are
    /// cumulative with power-of-two `le` bounds; empty high buckets are
    /// elided before the `+Inf` line.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!("# TYPE {name} histogram\n"));
            let last = h.buckets.iter().rposition(|&b| b > 0).unwrap_or(0);
            let mut cum = 0u64;
            for (i, b) in h.buckets.iter().enumerate().take(last + 1) {
                cum += b;
                let le = Histogram::bucket_upper_bound(i);
                if le == u64::MAX {
                    break;
                }
                out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cum}\n"));
            }
            out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            out.push_str(&format!("{name}_sum {}\n{name}_count {}\n", h.sum, h.count));
        }
        out
    }

    /// JSON exposition: `{"counters":{...},"gauges":{...},"histograms":
    /// {"name":{"count":..,"sum":..,"buckets":[[le,cumulative],..]}}}`.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        let mut first = true;
        for (name, v) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\"{}\":{v}", json_escape(name)));
        }
        out.push_str("},\"gauges\":{");
        first = true;
        for (name, v) in &self.gauges {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\"{}\":{v}", json_escape(name)));
        }
        out.push_str("},\"histograms\":{");
        first = true;
        for (name, h) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"sum\":{},\"buckets\":[",
                json_escape(name),
                h.count,
                h.sum
            ));
            let last = h.buckets.iter().rposition(|&b| b > 0).unwrap_or(0);
            let mut cum = 0u64;
            let mut bfirst = true;
            for (i, b) in h.buckets.iter().enumerate().take(last + 1) {
                cum += b;
                if !bfirst {
                    out.push(',');
                }
                bfirst = false;
                let le = Histogram::bucket_upper_bound(i);
                out.push_str(&format!("[{le},{cum}]"));
            }
            out.push(']');
            // Exemplars are JSON-only (Prometheus text stays classic):
            // `[le, worst value, query id]` per bucket with a recorded
            // exemplar this snapshot window.
            if !h.exemplars.is_empty() {
                out.push_str(",\"exemplars\":[");
                let mut efirst = true;
                for &(bucket, value, query_id) in &h.exemplars {
                    if !efirst {
                        out.push(',');
                    }
                    efirst = false;
                    let le = Histogram::bucket_upper_bound(bucket);
                    out.push_str(&format!("[{le},{value},{query_id}]"));
                }
                out.push(']');
            }
            out.push('}');
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts_across_threads() {
        let c = Arc::new(Counter::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 40_000);
    }

    #[test]
    fn gauge_sets_and_deltas() {
        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(Histogram::bucket_upper_bound(0), 0);
        assert_eq!(Histogram::bucket_upper_bound(3), 7);
        assert_eq!(Histogram::bucket_upper_bound(HISTOGRAM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn histogram_snapshot_is_consistent() {
        let h = Histogram::new();
        for v in [0, 1, 3, 100, 100_000] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 100_104);
        assert_eq!(s.buckets.iter().sum::<u64>(), s.count);
        assert!((s.mean() - 20_020.8).abs() < 1e-9);
        // Median bound: 3 of 5 samples are ≤ 3, so the 0.5-quantile
        // bucket bound is 3.
        assert_eq!(s.quantile_bound(0.5), 3);
    }

    #[test]
    fn registry_returns_the_same_metric_for_the_same_name() {
        let r = MetricsRegistry::new();
        let a = r.counter("lawsdb_test_x");
        let b = r.counter("lawsdb_test_x");
        a.inc();
        assert_eq!(b.get(), 1);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn prometheus_and_json_exposition() {
        let r = MetricsRegistry::new();
        r.counter("lawsdb_q_total").add(3);
        r.gauge("lawsdb_q_depth").set(-2);
        r.histogram("lawsdb_q_us").observe(5);
        let s = r.snapshot();
        let prom = s.render_prometheus();
        assert!(prom.contains("# TYPE lawsdb_q_total counter\nlawsdb_q_total 3\n"), "{prom}");
        assert!(prom.contains("# TYPE lawsdb_q_depth gauge\nlawsdb_q_depth -2\n"), "{prom}");
        assert!(prom.contains("lawsdb_q_us_bucket{le=\"7\"} 1"), "{prom}");
        assert!(prom.contains("lawsdb_q_us_bucket{le=\"+Inf\"} 1"), "{prom}");
        assert!(prom.contains("lawsdb_q_us_sum 5\nlawsdb_q_us_count 1"), "{prom}");
        let json = s.render_json();
        assert!(json.contains("\"lawsdb_q_total\":3"), "{json}");
        assert!(json.contains("\"lawsdb_q_depth\":-2"), "{json}");
        assert!(json.contains("\"count\":1,\"sum\":5"), "{json}");
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn exemplars_keep_the_worst_query_per_bucket_per_window() {
        let h = Histogram::new();
        h.observe_with_exemplar(5, 11); // bucket le=7
        h.observe_with_exemplar(6, 22); // same bucket, worse value wins
        h.observe_with_exemplar(4, 33); // same bucket, smaller → ignored
        h.observe_with_exemplar(100, 44); // bucket le=127
        let s = h.snapshot();
        assert_eq!(s.exemplars, vec![(3, 6, 22), (7, 100, 44)]);
        // The snapshot drained the window: a fresh snapshot is clean.
        assert!(h.snapshot().exemplars.is_empty());
        // Plain observe never records an exemplar.
        h.observe(9);
        assert!(h.snapshot().exemplars.is_empty());
    }

    #[test]
    fn json_exposition_carries_exemplars_but_prometheus_does_not() {
        let r = MetricsRegistry::new();
        r.histogram("lawsdb_q_us").observe_with_exemplar(5, 7);
        let s = r.snapshot();
        let json = s.render_json();
        assert!(json.contains("\"exemplars\":[[7,5,7]]"), "{json}");
        assert!(!s.render_prometheus().contains("exemplar"));
        // Histograms without exemplars keep the original shape.
        let r2 = MetricsRegistry::new();
        r2.histogram("lawsdb_q_us").observe(5);
        assert!(!r2.snapshot().render_json().contains("exemplars"));
    }

    #[test]
    fn snapshot_reads_are_between_before_and_after() {
        let r = MetricsRegistry::new();
        let c = r.counter("c");
        c.add(5);
        let before = r.snapshot();
        c.add(5);
        let after = r.snapshot();
        assert_eq!(before.counter("c"), 5);
        assert_eq!(after.counter("c"), 10);
    }
}
