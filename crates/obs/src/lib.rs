//! LawsDB observability substrate: structured tracing, a metrics
//! registry, and per-query execution profiles.
//!
//! Dependency-free by design — this crate sits below `lawsdb-storage`
//! in the build graph so every layer (pager, WAL, retry, morsel
//! executor, governor, pruning, fit diagnostics, resilience ladder)
//! reports through the same pipe. Three pillars:
//!
//! - [`trace`]: span/event API over a ring-buffer sink with monotonic
//!   timestamps from a mockable [`Clock`]. Zero cost when no subscriber
//!   is installed: one relaxed atomic load per emit site.
//! - [`metrics`]: named counters/gauges/histograms with sharded atomics
//!   and Prometheus-text + JSON exposition.
//! - [`profile`]: `EXPLAIN ANALYZE`-style [`QueryProfile`] trees
//!   assembled from executor spans, morsel leaves, pruning decisions,
//!   governor charges, and bridged storage events.
//!
//! See DESIGN.md §12 for the span taxonomy and metric naming scheme
//! (`lawsdb_<crate>_<name>`).

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod clock;
pub mod metrics;
pub mod profile;
pub mod record;
pub mod trace;

pub use clock::{Clock, MockClock, MonotonicClock};
pub use metrics::{
    global as global_metrics, Counter, Gauge, Histogram, HistogramSnapshot,
    MetricsRegistry, RegistrySnapshot,
};
pub use profile::{ProfileCollector, ProfileContext, ProfileSpan, ProfileTreeNode, QueryProfile};
pub use record::{
    attribute_layers, dominant_layer, FlightRecord, FlightRecorder, RecorderConfig,
    TraceNode, LAYERS,
};
pub use trace::{tracer, Event, FieldValue, RingBufferSink, SpanGuard, Tracer};
