//! Per-query execution profiles: `EXPLAIN ANALYZE`-style trees.
//!
//! A [`ProfileCollector`] accumulates flat span/point entries from any
//! thread (workers record morsel leaves through cloned
//! [`ProfileContext`] handles) and [`ProfileCollector::build`]
//! assembles them into one [`QueryProfile`] tree. The collector also
//! remembers the global tracer's cursor at creation, so events emitted
//! far below the executor — storage retries, page quarantines — are
//! bridged into the tree as root-level points.
//!
//! Children sort by `(index, arrival)`: leaves carrying an explicit
//! index (morsel offsets) come first in index order regardless of which
//! worker finished when, so a profile tree is deterministic under any
//! thread count given a deterministic clock.

use crate::clock::{Clock, MonotonicClock};
use crate::trace::{tracer, FieldValue};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Identifier of a span node within one collector. 0 is the root.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeId(u64);

/// The implicit root every top-level span/point attaches to.
pub const ROOT: NodeId = NodeId(0);

#[derive(Debug)]
enum Entry {
    Begin { id: NodeId, parent: NodeId, name: &'static str, start_us: u64 },
    End { id: NodeId, end_us: u64, fields: Vec<(&'static str, FieldValue)> },
    Point {
        parent: NodeId,
        name: &'static str,
        at_us: u64,
        index: Option<u64>,
        fields: Vec<(&'static str, FieldValue)>,
    },
}

/// Thread-safe accumulator behind every [`ProfileContext`].
#[derive(Debug)]
pub struct ProfileCollector {
    clock: Arc<dyn Clock>,
    start_us: u64,
    ring_from: u64,
    next_id: AtomicU64,
    entries: Mutex<Vec<Entry>>,
}

impl ProfileCollector {
    /// A collector on the wall clock.
    pub fn new() -> Arc<ProfileCollector> {
        ProfileCollector::with_clock(Arc::new(MonotonicClock::new()))
    }

    /// A collector on an explicit clock (tests pass a `MockClock`).
    pub fn with_clock(clock: Arc<dyn Clock>) -> Arc<ProfileCollector> {
        let start_us = clock.now_micros();
        Arc::new(ProfileCollector {
            clock,
            start_us,
            ring_from: tracer().cursor(),
            next_id: AtomicU64::new(1),
            entries: Mutex::new(Vec::new()),
        })
    }

    fn entries(&self) -> std::sync::MutexGuard<'_, Vec<Entry>> {
        self.entries.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The root context instrumentation sites record through.
    pub fn context(self: &Arc<ProfileCollector>) -> ProfileContext {
        ProfileContext { collector: Arc::clone(self), parent: ROOT }
    }

    /// A reading of this collector's clock, for callers that time work
    /// themselves (morsel workers) — using the collector clock keeps
    /// profile trees deterministic under a `MockClock`.
    pub fn now_micros(&self) -> u64 {
        self.clock.now_micros()
    }

    fn begin(&self, parent: NodeId, name: &'static str) -> NodeId {
        let id = NodeId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let start_us = self.clock.now_micros();
        self.entries().push(Entry::Begin { id, parent, name, start_us });
        id
    }

    fn end(&self, id: NodeId, fields: Vec<(&'static str, FieldValue)>) {
        let end_us = self.clock.now_micros();
        self.entries().push(Entry::End { id, end_us, fields });
    }

    fn point(
        &self,
        parent: NodeId,
        name: &'static str,
        index: Option<u64>,
        fields: Vec<(&'static str, FieldValue)>,
    ) {
        let at_us = self.clock.now_micros();
        self.entries().push(Entry::Point { parent, name, at_us, index, fields });
    }

    /// Assemble everything recorded so far — plus tracer events bridged
    /// since this collector was created — into one tree rooted at
    /// `root_name`.
    pub fn build(&self, root_name: &'static str) -> QueryProfile {
        struct Pending {
            node: ProfileNode,
            parent: NodeId,
            seq: u64,
        }
        let end_us = self.clock.now_micros();
        let entries = self.entries();
        let mut pending: Vec<Pending> = Vec::new();
        let mut by_id: Vec<(NodeId, usize)> = Vec::new();
        for (seq, e) in entries.iter().enumerate() {
            match e {
                Entry::Begin { id, parent, name, start_us } => {
                    by_id.push((*id, pending.len()));
                    pending.push(Pending {
                        node: ProfileNode {
                            name,
                            start_us: *start_us,
                            duration_us: None,
                            index: None,
                            fields: Vec::new(),
                            children: Vec::new(),
                        },
                        parent: *parent,
                        seq: seq as u64,
                    });
                }
                Entry::End { id, end_us, fields } => {
                    if let Some(&(_, slot)) = by_id.iter().find(|(i, _)| i == id) {
                        let p = &mut pending[slot];
                        p.node.duration_us =
                            Some(end_us.saturating_sub(p.node.start_us));
                        p.node.fields = fields.clone();
                    }
                }
                Entry::Point { parent, name, at_us, index, fields } => {
                    pending.push(Pending {
                        node: ProfileNode {
                            name,
                            start_us: *at_us,
                            duration_us: None,
                            index: *index,
                            fields: fields.clone(),
                            children: Vec::new(),
                        },
                        parent: *parent,
                        seq: seq as u64,
                    });
                }
            }
        }
        let bridge_base = entries.len() as u64;
        drop(entries);
        // Bridge tracer events that fired while this profile was live.
        // Their timestamps come from the subscriber's clock (different
        // origin), so they are attached as points and never contribute
        // to the root duration.
        for (i, ev) in tracer().events_since(self.ring_from).into_iter().enumerate() {
            pending.push(Pending {
                node: ProfileNode {
                    name: ev.name,
                    start_us: ev.timestamp_us,
                    duration_us: None,
                    index: None,
                    fields: ev.fields,
                    children: Vec::new(),
                },
                parent: ROOT,
                seq: bridge_base + i as u64,
            });
        }
        // Assemble bottom-up: later entries can only be children of
        // earlier Begins (or the root), so one reverse pass suffices.
        let mut root = ProfileNode {
            name: root_name,
            start_us: self.start_us,
            duration_us: Some(end_us.saturating_sub(self.start_us)),
            index: None,
            fields: Vec::new(),
            children: Vec::new(),
        };
        // Collect children per parent, sorted deterministically.
        let mut order: Vec<usize> = (0..pending.len()).collect();
        order.sort_by_key(|&i| {
            (pending[i].node.index.unwrap_or(u64::MAX), pending[i].seq)
        });
        // Attach deepest-first: a child Begin always has a larger seq
        // than its parent Begin, so walking seq-descending and moving
        // each node into its parent keeps subtrees intact.
        let mut by_seq: Vec<usize> = (0..pending.len()).collect();
        by_seq.sort_by_key(|&i| std::cmp::Reverse(pending[i].seq));
        let rank: std::collections::HashMap<u64, usize> = order
            .iter()
            .enumerate()
            .map(|(rank, &i)| (pending[i].seq, rank))
            .collect();
        for &i in &by_seq {
            let parent = pending[i].parent;
            let node = std::mem::replace(
                &mut pending[i].node,
                ProfileNode {
                    name: "",
                    start_us: 0,
                    duration_us: None,
                    index: None,
                    fields: Vec::new(),
                    children: Vec::new(),
                },
            );
            let seq = pending[i].seq;
            if parent == ROOT {
                root.children.push((node, seq));
            } else if let Some(&(_, slot)) = by_id.iter().find(|(id, _)| *id == parent) {
                pending[slot].node.children.push((node, seq));
            } else {
                root.children.push((node, seq));
            }
        }
        fn finish(
            node: &mut ProfileNode,
            rank: &std::collections::HashMap<u64, usize>,
        ) {
            node.children
                .sort_by_key(|(_, seq)| rank.get(seq).copied().unwrap_or(usize::MAX));
            for (c, _) in &mut node.children {
                finish(c, rank);
            }
        }
        finish(&mut root, &rank);
        QueryProfile { root: root.strip() }
    }
}

/// A cheap, cloneable handle for recording into one collector under a
/// fixed parent. `Send + Sync`, so worker threads record morsel leaves
/// directly.
#[derive(Debug, Clone)]
pub struct ProfileContext {
    collector: Arc<ProfileCollector>,
    parent: NodeId,
}

impl ProfileContext {
    /// The collector this context records into.
    pub fn collector(&self) -> &Arc<ProfileCollector> {
        &self.collector
    }

    /// A reading of the collector's clock (see
    /// [`ProfileCollector::now_micros`]).
    pub fn now_micros(&self) -> u64 {
        self.collector.now_micros()
    }

    /// Open a child span; the guard records its end (and any fields
    /// attached via [`ProfileSpan::field`]) when dropped.
    pub fn span(&self, name: &'static str) -> ProfileSpan {
        let id = self.collector.begin(self.parent, name);
        ProfileSpan {
            collector: Arc::clone(&self.collector),
            id,
            fields: Vec::new(),
        }
    }

    /// Record an instantaneous child point.
    pub fn point(&self, name: &'static str, fields: Vec<(&'static str, FieldValue)>) {
        self.collector.point(self.parent, name, None, fields);
    }

    /// Record an indexed child leaf (e.g. per-morsel, indexed by row
    /// offset); indexed leaves sort before unindexed siblings, in index
    /// order, making the tree deterministic under parallel execution.
    pub fn leaf(
        &self,
        name: &'static str,
        index: u64,
        fields: Vec<(&'static str, FieldValue)>,
    ) {
        self.collector.point(self.parent, name, Some(index), fields);
    }
}

/// RAII guard for an open profile span; records its end on drop.
#[derive(Debug)]
pub struct ProfileSpan {
    collector: Arc<ProfileCollector>,
    id: NodeId,
    fields: Vec<(&'static str, FieldValue)>,
}

impl ProfileSpan {
    /// Attach an outcome field, emitted when the span closes.
    pub fn field(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        self.fields.push((key, value.into()));
    }

    /// A context whose spans/points become children of this span.
    pub fn child(&self) -> ProfileContext {
        ProfileContext { collector: Arc::clone(&self.collector), parent: self.id }
    }
}

impl Drop for ProfileSpan {
    fn drop(&mut self) {
        self.collector.end(self.id, std::mem::take(&mut self.fields));
    }
}

/// Internal assembly node: children carry their seq until ordering is
/// finalized, then [`strip`](ProfileNode::strip) removes it.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileNode {
    /// Span/point name from the dotted taxonomy (DESIGN.md §12).
    pub name: &'static str,
    /// Microseconds on the collector clock when this node started.
    pub start_us: u64,
    /// Span length; `None` for points and never-closed spans.
    pub duration_us: Option<u64>,
    /// Explicit sibling ordering key (morsel offset), if any.
    pub index: Option<u64>,
    /// Typed key/value payload.
    pub fields: Vec<(&'static str, FieldValue)>,
    /// Ordered children (seq tags dropped by `strip`).
    children: Vec<(ProfileNode, u64)>,
}

impl ProfileNode {
    fn strip(self) -> ProfileTreeNode {
        ProfileTreeNode {
            name: self.name,
            start_us: self.start_us,
            duration_us: self.duration_us,
            index: self.index,
            fields: self.fields,
            children: self.children.into_iter().map(|(c, _)| c.strip()).collect(),
        }
    }
}

/// One node of a finished [`QueryProfile`] tree.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileTreeNode {
    /// Span/point name from the dotted taxonomy (DESIGN.md §12).
    pub name: &'static str,
    /// Microseconds on the collector clock when this node started.
    pub start_us: u64,
    /// Span length; `None` for points.
    pub duration_us: Option<u64>,
    /// Explicit sibling ordering key (morsel offset), if any.
    pub index: Option<u64>,
    /// Typed key/value payload.
    pub fields: Vec<(&'static str, FieldValue)>,
    /// Children, deterministically ordered.
    pub children: Vec<ProfileTreeNode>,
}

impl ProfileTreeNode {
    /// Look up a field by key.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Every node in this subtree (preorder) named `name`.
    pub fn find<'a>(&'a self, name: &str) -> Vec<&'a ProfileTreeNode> {
        let mut out = Vec::new();
        self.collect(name, &mut out);
        out
    }

    fn collect<'a>(&'a self, name: &str, out: &mut Vec<&'a ProfileTreeNode>) {
        if self.name == name {
            out.push(self);
        }
        for c in &self.children {
            c.collect(name, out);
        }
    }

    fn render(&self, prefix: &str, is_last: bool, is_root: bool, out: &mut String) {
        if is_root {
            out.push_str(self.name);
        } else {
            out.push_str(prefix);
            out.push_str(if is_last { "└─ " } else { "├─ " });
            out.push_str(self.name);
        }
        if let Some(i) = self.index {
            out.push_str(&format!(" #{i}"));
        }
        if let Some(d) = self.duration_us {
            out.push_str(&format!(" ({d} us)"));
        }
        for (k, v) in &self.fields {
            out.push_str(&format!(" {k}={v}"));
        }
        out.push('\n');
        let child_prefix = if is_root {
            String::new()
        } else {
            format!("{prefix}{}", if is_last { "   " } else { "│  " })
        };
        let n = self.children.len();
        for (i, c) in self.children.iter().enumerate() {
            c.render(&child_prefix, i + 1 == n, false, out);
        }
    }
}

/// An `EXPLAIN ANALYZE`-style execution profile: one deterministic tree
/// unifying executor spans, morsel leaves, pruning decisions, governor
/// charges and bridged storage events. `Display` renders the tree.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryProfile {
    /// The root node (whole-query span).
    pub root: ProfileTreeNode,
}

impl QueryProfile {
    /// Every node named `name`, preorder.
    pub fn find(&self, name: &str) -> Vec<&ProfileTreeNode> {
        self.root.find(name)
    }

    /// The rendered tree (same as `Display`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.root.render("", true, true, &mut out);
        out
    }
}

impl std::fmt::Display for QueryProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Build a `Vec<(&'static str, FieldValue)>` payload:
/// `fields![rows = n, pruned]` (bare identifiers use the variable as
/// both key and value).
#[macro_export]
macro_rules! fields {
    () => { ::std::vec::Vec::new() };
    ($($key:ident $(= $val:expr)?),+ $(,)?) => {
        ::std::vec![
            $((
                stringify!($key),
                $crate::trace::FieldValue::from($crate::__field_value!($key $(= $val)?)),
            )),+
        ]
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::MockClock;

    #[test]
    fn nested_spans_build_a_tree_with_durations() {
        let clock = Arc::new(MockClock::new(10));
        let col = ProfileCollector::with_clock(clock);
        let ctx = col.context();
        {
            let mut outer = ctx.span("exec");
            outer.field("rows", 5u64);
            {
                let inner = outer.child().span("scan");
                inner.child().point("zone", crate::fields![skipped = true]);
            }
        }
        let profile = col.build("query");
        assert_eq!(profile.root.name, "query");
        let exec = &profile.root.children[0];
        assert_eq!(exec.name, "exec");
        assert_eq!(exec.field("rows").and_then(FieldValue::as_u64), Some(5));
        assert!(exec.duration_us.is_some());
        let scan = &exec.children[0];
        assert_eq!(scan.name, "scan");
        assert_eq!(scan.children[0].name, "zone");
        assert_eq!(scan.children[0].duration_us, None);
    }

    #[test]
    fn indexed_leaves_order_by_index_not_arrival() {
        let col = ProfileCollector::with_clock(Arc::new(MockClock::new(1)));
        let ctx = col.context();
        // Simulate out-of-order worker completion.
        ctx.leaf("morsel", 200, crate::fields![rows = 7u64]);
        ctx.leaf("morsel", 0, crate::fields![rows = 9u64]);
        ctx.leaf("morsel", 100, Vec::new());
        ctx.point("note", Vec::new());
        let profile = col.build("query");
        let names: Vec<(&str, Option<u64>)> =
            profile.root.children.iter().map(|c| (c.name, c.index)).collect();
        assert_eq!(
            names,
            vec![
                ("morsel", Some(0)),
                ("morsel", Some(100)),
                ("morsel", Some(200)),
                ("note", None)
            ]
        );
    }

    #[test]
    fn mock_clock_runs_are_byte_identical() {
        let run = || {
            let col = ProfileCollector::with_clock(Arc::new(MockClock::new(3)));
            let ctx = col.context();
            let mut s = ctx.span("exec");
            s.field("rows", 42u64);
            s.child().leaf("morsel", 0, crate::fields![rows = 42u64]);
            drop(s);
            col.build("query").render()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(a.contains("query"));
        assert!(a.contains("morsel #0"));
    }

    #[test]
    fn bridged_tracer_events_attach_to_root() {
        use crate::trace::{tracer, RingBufferSink};
        let sink = RingBufferSink::new(16);
        tracer().install(Arc::clone(&sink), Arc::new(MockClock::new(1)));
        // An event from *before* the collector existed must not bridge.
        crate::event!("too.early");
        let col = ProfileCollector::with_clock(Arc::new(MockClock::new(1)));
        crate::event!("storage.retry.attempt", attempt = 2u64);
        let profile = col.build("query");
        tracer().uninstall();
        assert!(profile.find("too.early").is_empty());
        let bridged = profile.find("storage.retry.attempt");
        assert_eq!(bridged.len(), 1);
        assert_eq!(bridged[0].field("attempt").and_then(FieldValue::as_u64), Some(2));
    }

    #[test]
    fn render_shows_tree_structure_and_fields() {
        let col = ProfileCollector::with_clock(Arc::new(MockClock::new(5)));
        let ctx = col.context();
        {
            let s = ctx.span("plan.filter");
            s.child().leaf("morsel", 0, crate::fields![rows = 3u64]);
        }
        let text = col.build("query").render();
        assert!(text.contains("query ("), "{text}");
        assert!(text.contains("└─ plan.filter"), "{text}");
        assert!(text.contains("└─ morsel #0 rows=3"), "{text}");
    }
}
