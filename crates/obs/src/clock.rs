//! Monotonic time sources.
//!
//! Every timestamp in the observability layer — span durations, event
//! stamps, profile trees — comes from a [`Clock`] so tests can swap the
//! wall clock for a [`MockClock`] and get byte-identical output across
//! runs. Readings are microseconds since an arbitrary per-clock origin;
//! only differences are meaningful.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic microsecond clock.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Microseconds since this clock's origin. Never decreases.
    fn now_micros(&self) -> u64;
}

/// Wall clock: microseconds since the clock was constructed, backed by
/// [`Instant`] (monotonic, immune to wall-time adjustments).
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is "now".
    pub fn new() -> MonotonicClock {
        MonotonicClock { origin: Instant::now() }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_micros(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }
}

/// Deterministic test clock: every reading returns the current value
/// and advances it by a fixed step, so a serial run observes the exact
/// same timestamp sequence every time — the basis of the byte-identical
/// profile-tree determinism test.
#[derive(Debug)]
pub struct MockClock {
    now: AtomicU64,
    step: u64,
}

impl MockClock {
    /// A clock starting at 0 that advances `step_us` per reading.
    pub fn new(step_us: u64) -> MockClock {
        MockClock::starting_at(0, step_us)
    }

    /// A clock starting at `start_us` that advances `step_us` per
    /// reading.
    pub fn starting_at(start_us: u64, step_us: u64) -> MockClock {
        MockClock { now: AtomicU64::new(start_us), step: step_us }
    }

    /// Jump to an absolute reading.
    pub fn set(&self, us: u64) {
        self.now.store(us, Ordering::Relaxed);
    }

    /// Advance by `us` without producing a reading.
    pub fn advance(&self, us: u64) {
        self.now.fetch_add(us, Ordering::Relaxed);
    }
}

impl Clock for MockClock {
    fn now_micros(&self) -> u64 {
        self.now.fetch_add(self.step, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_never_decreases() {
        let c = MonotonicClock::new();
        let a = c.now_micros();
        let b = c.now_micros();
        assert!(b >= a);
    }

    #[test]
    fn mock_clock_is_a_deterministic_sequence() {
        let c = MockClock::new(10);
        assert_eq!((c.now_micros(), c.now_micros(), c.now_micros()), (0, 10, 20));
        c.set(100);
        assert_eq!(c.now_micros(), 100);
        c.advance(5);
        assert_eq!(c.now_micros(), 115);
    }

    #[test]
    fn two_mock_clocks_agree_reading_for_reading() {
        let a = MockClock::starting_at(7, 3);
        let b = MockClock::starting_at(7, 3);
        for _ in 0..100 {
            assert_eq!(a.now_micros(), b.now_micros());
        }
    }
}
